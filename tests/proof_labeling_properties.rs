//! Property-based tests of the proof-labeling schemes: completeness on legal instances,
//! soundness under random corruption of labels and parent pointers, and the MST
//! potential characterization.
//!
//! The build is hermetic (no proptest), so the properties run over deterministic
//! seeded sweeps instead of proptest's shrinker: every case derives its parameters
//! from a seeded RNG, so a failure message pins down the reproducing case exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use self_stabilizing_spanning_trees::graph::{bfs, generators, mst, NodeId};
use self_stabilizing_spanning_trees::labeling::distance::DistanceScheme;
use self_stabilizing_spanning_trees::labeling::nca::{nca_of_labels, NcaScheme};
use self_stabilizing_spanning_trees::labeling::redundant::RedundantScheme;
use self_stabilizing_spanning_trees::labeling::scheme::{Instance, ProofLabelingScheme};
use self_stabilizing_spanning_trees::labeling::size::SizeScheme;

const CASES: u64 = 48;

/// Completeness: for every workload and every scheme, the prover-built labels of a
/// legal spanning tree are accepted at every node.
#[test]
fn schemes_accept_legal_trees() {
    let mut rng = StdRng::seed_from_u64(0xc01);
    for case in 0..CASES {
        let n = rng.gen_range(4usize..40);
        let seed = rng.gen_range(0u64..500);
        let g = generators::workload(n, 0.2, seed);
        let t = bfs::bfs_tree(&g, g.min_ident_node());
        assert!(
            DistanceScheme.accepts_legal(&g, &t),
            "case {case}: n={n} seed={seed}"
        );
        assert!(
            SizeScheme.accepts_legal(&g, &t),
            "case {case}: n={n} seed={seed}"
        );
        assert!(
            RedundantScheme.accepts_legal(&g, &t),
            "case {case}: n={n} seed={seed}"
        );
        assert!(
            NcaScheme.accepts_legal(&g, &t),
            "case {case}: n={n} seed={seed}"
        );
    }
}

/// Soundness against structural corruption: re-pointing one node's parent pointer to
/// a random non-parent neighbor (without fixing the labels) is detected by the
/// redundant scheme.
#[test]
fn redundant_scheme_detects_reparented_pointers() {
    let mut rng = StdRng::seed_from_u64(0xc02);
    let mut checked = 0u64;
    let mut case = 0u64;
    while checked < CASES {
        case += 1;
        let n = rng.gen_range(6usize..30);
        let seed = rng.gen_range(0u64..200);
        let victim_pick = rng.gen_range(0usize..64);
        let neighbor_pick = rng.gen_range(0usize..8);
        let g = generators::workload(n, 0.3, seed);
        let t = bfs::bfs_tree(&g, g.min_ident_node());
        let labels = RedundantScheme.prove(&g, &t);
        // Pick a non-root victim and point it somewhere else.
        let victims: Vec<NodeId> = t.nodes().filter(|&v| t.parent(v).is_some()).collect();
        let victim = victims[victim_pick % victims.len()];
        let neighbors = g.neighbors(victim);
        let new_parent = neighbors[neighbor_pick % neighbors.len()].0;
        if Some(new_parent) == t.parent(victim) {
            continue; // the corruption must actually change the pointer
        }
        checked += 1;
        let mut parents = t.parents().to_vec();
        parents[victim.index()] = Some(new_parent);
        // The corrupted pointer either creates a cycle / second root situation or an
        // inconsistent distance; the verifier must notice in all cases.
        let inst = Instance {
            graph: &g,
            parents: &parents,
        };
        assert!(
            !RedundantScheme.verify_all(&inst, &labels).accepted(),
            "case {case}: n={n} seed={seed} victim={victim} new_parent={new_parent}"
        );
    }
}

/// Soundness against label corruption: randomly perturbing a distance or size value
/// in one label is detected.
#[test]
fn redundant_scheme_detects_corrupted_labels() {
    let mut rng = StdRng::seed_from_u64(0xc03);
    for case in 0..CASES {
        let n = rng.gen_range(6usize..30);
        let seed = rng.gen_range(0u64..200);
        let victim_pick = rng.gen_range(0usize..64);
        let delta = rng.gen_range(1u64..5);
        let corrupt_size = rng.gen_bool(0.5);
        let g = generators::workload(n, 0.3, seed);
        let t = bfs::bfs_tree(&g, g.min_ident_node());
        let mut labels = RedundantScheme.prove(&g, &t);
        let victim = NodeId(victim_pick % n);
        if corrupt_size {
            labels[victim.index()].size = labels[victim.index()].size.map(|s| s + delta);
        } else {
            labels[victim.index()].dist = labels[victim.index()].dist.map(|d| d + delta);
        }
        let inst = Instance::from_tree(&g, &t);
        assert!(
            !RedundantScheme.verify_all(&inst, &labels).accepted(),
            "case {case}: n={n} seed={seed} victim={victim} delta={delta} size={corrupt_size}"
        );
    }
}

/// The NCA labels computed by the prover answer arbitrary queries exactly like the
/// parent-pointer ground truth.
#[test]
fn nca_labels_answer_queries_correctly() {
    let mut rng = StdRng::seed_from_u64(0xc04);
    for case in 0..CASES {
        let n = rng.gen_range(4usize..36);
        let seed = rng.gen_range(0u64..200);
        let a = rng.gen_range(0usize..64);
        let b = rng.gen_range(0usize..64);
        let g = generators::workload(n, 0.2, seed);
        let t = bfs::bfs_tree(&g, g.min_ident_node());
        let labels = NcaScheme.prove(&g, &t);
        let u = NodeId(a % n);
        let v = NodeId(b % n);
        let w = t.nca(u, v);
        assert_eq!(
            &nca_of_labels(&labels[u.index()], &labels[v.index()]),
            &labels[w.index()],
            "case {case}: n={n} seed={seed} u={u} v={v}"
        );
    }
}

/// The MST fragment potential is zero exactly on minimum spanning trees.
#[test]
fn mst_potential_characterizes_msts() {
    let mut rng = StdRng::seed_from_u64(0xc05);
    for case in 0..CASES {
        let n = rng.gen_range(5usize..22);
        let seed = rng.gen_range(0u64..120);
        let g = generators::workload(n, 0.3, seed);
        let kruskal = mst::kruskal(&g).unwrap();
        assert_eq!(
            self_stabilizing_spanning_trees::labeling::mst_fragments::mst_potential(&g, &kruskal),
            0,
            "case {case}: n={n} seed={seed}"
        );
        let bfs_tree = bfs::bfs_tree(&g, g.min_ident_node());
        let phi =
            self_stabilizing_spanning_trees::labeling::mst_fragments::mst_potential(&g, &bfs_tree);
        assert_eq!(
            phi == 0,
            mst::is_mst(&g, &bfs_tree),
            "case {case}: n={n} seed={seed} phi={phi}"
        );
    }
}
