//! Property-based tests of the proof-labeling schemes: completeness on legal instances,
//! soundness under random corruption of labels and parent pointers, and malleability of
//! the redundant scheme during switches.

use proptest::prelude::*;

use self_stabilizing_spanning_trees::graph::{bfs, generators, mst, NodeId};
use self_stabilizing_spanning_trees::labeling::distance::DistanceScheme;
use self_stabilizing_spanning_trees::labeling::nca::{nca_of_labels, NcaScheme};
use self_stabilizing_spanning_trees::labeling::redundant::RedundantScheme;
use self_stabilizing_spanning_trees::labeling::scheme::{Instance, ProofLabelingScheme};
use self_stabilizing_spanning_trees::labeling::size::SizeScheme;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Completeness: for every workload and every scheme, the prover-built labels of a
    /// legal spanning tree are accepted at every node.
    #[test]
    fn schemes_accept_legal_trees(n in 4usize..40, seed in 0u64..500) {
        let g = generators::workload(n, 0.2, seed);
        let t = bfs::bfs_tree(&g, g.min_ident_node());
        prop_assert!(DistanceScheme.accepts_legal(&g, &t));
        prop_assert!(SizeScheme.accepts_legal(&g, &t));
        prop_assert!(RedundantScheme.accepts_legal(&g, &t));
        prop_assert!(NcaScheme.accepts_legal(&g, &t));
    }

    /// Soundness against structural corruption: re-pointing one node's parent pointer to
    /// a random non-parent neighbor (without fixing the labels) is detected by the
    /// redundant scheme.
    #[test]
    fn redundant_scheme_detects_reparented_pointers(
        n in 6usize..30,
        seed in 0u64..200,
        victim_pick in 0usize..64,
        neighbor_pick in 0usize..8,
    ) {
        let g = generators::workload(n, 0.3, seed);
        let t = bfs::bfs_tree(&g, g.min_ident_node());
        let labels = RedundantScheme.prove(&g, &t);
        // Pick a non-root victim and point it somewhere else.
        let victims: Vec<NodeId> = t.nodes().filter(|&v| t.parent(v).is_some()).collect();
        let victim = victims[victim_pick % victims.len()];
        let neighbors = g.neighbors(victim);
        let new_parent = neighbors[neighbor_pick % neighbors.len()].0;
        prop_assume!(Some(new_parent) != t.parent(victim));
        let mut parents = t.parents().to_vec();
        parents[victim.index()] = Some(new_parent);
        // The corrupted pointer either creates a cycle / second root situation or an
        // inconsistent distance; the verifier must notice in all cases.
        let inst = Instance { graph: &g, parents: &parents };
        prop_assert!(!RedundantScheme.verify_all(&inst, &labels).accepted());
    }

    /// Soundness against label corruption: randomly perturbing a distance or size value
    /// in one label is detected.
    #[test]
    fn redundant_scheme_detects_corrupted_labels(
        n in 6usize..30,
        seed in 0u64..200,
        victim_pick in 0usize..64,
        delta in 1u64..5,
        corrupt_size in proptest::bool::ANY,
    ) {
        let g = generators::workload(n, 0.3, seed);
        let t = bfs::bfs_tree(&g, g.min_ident_node());
        let mut labels = RedundantScheme.prove(&g, &t);
        let victim = NodeId(victim_pick % n);
        if corrupt_size {
            labels[victim.index()].size = labels[victim.index()].size.map(|s| s + delta);
        } else {
            labels[victim.index()].dist = labels[victim.index()].dist.map(|d| d + delta);
        }
        let inst = Instance::from_tree(&g, &t);
        prop_assert!(!RedundantScheme.verify_all(&inst, &labels).accepted());
    }

    /// The NCA labels computed by the prover answer arbitrary queries exactly like the
    /// parent-pointer ground truth.
    #[test]
    fn nca_labels_answer_queries_correctly(
        n in 4usize..36,
        seed in 0u64..200,
        a in 0usize..64,
        b in 0usize..64,
    ) {
        let g = generators::workload(n, 0.2, seed);
        let t = bfs::bfs_tree(&g, g.min_ident_node());
        let labels = NcaScheme.prove(&g, &t);
        let u = NodeId(a % n);
        let v = NodeId(b % n);
        let w = t.nca(u, v);
        prop_assert_eq!(&nca_of_labels(&labels[u.index()], &labels[v.index()]), &labels[w.index()]);
    }

    /// The MST fragment potential is zero exactly on minimum spanning trees.
    #[test]
    fn mst_potential_characterizes_msts(n in 5usize..22, seed in 0u64..120) {
        let g = generators::workload(n, 0.3, seed);
        let kruskal = mst::kruskal(&g).unwrap();
        prop_assert_eq!(
            self_stabilizing_spanning_trees::labeling::mst_fragments::mst_potential(&g, &kruskal),
            0
        );
        let bfs_tree = bfs::bfs_tree(&g, g.min_ident_node());
        let phi = self_stabilizing_spanning_trees::labeling::mst_fragments::mst_potential(&g, &bfs_tree);
        prop_assert_eq!(phi == 0, mst::is_mst(&g, &bfs_tree));
    }
}
