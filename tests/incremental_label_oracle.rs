//! Differential oracle for the incremental label maintenance of the composition engine
//! (mirroring `tests/incremental_executor_oracle.rs` one layer up).
//!
//! The engine repairs the Borůvka fragment labels, the NCA labels and the redundant
//! distance/size labels on the dirty region of every loop-free switch. These tests pin
//! the core invariant — the repaired labels are **bit-identical** to from-scratch
//! reproofs on the current tree — after every single switch, across MST and MDST runs,
//! multiple seeds, and under injected label corruption; and they assert the acceptance
//! criterion of the refactor: on a 1,000-node sparse workload, the incremental mode
//! performs ≥ 5× fewer label writes (the deterministic work counter) than the retained
//! `Relabel::FromScratch` reference mode while stabilizing on the identical tree.

use self_stabilizing_spanning_trees::core::{
    CompositionEngine, EngineConfig, EngineTask, PhaseEvent, Relabel,
};
use self_stabilizing_spanning_trees::graph::{generators, mst, Graph};
use self_stabilizing_spanning_trees::labeling::mst_fragments::assign_fragment_labels;
use self_stabilizing_spanning_trees::labeling::nca::assign_nca_labels;
use self_stabilizing_spanning_trees::labeling::redundant::RedundantScheme;
use self_stabilizing_spanning_trees::labeling::scheme::ProofLabelingScheme;

/// Steps an engine to silence, asserting after every labeling wave that the maintained
/// label families equal fresh from-scratch proofs on the current tree. Optionally
/// injects `k` random label faults every `corrupt_every`-th wave boundary.
fn drive_with_oracle(
    graph: &Graph,
    engine: &mut CompositionEngine<'_>,
    corrupt_every: Option<usize>,
    label: &str,
) {
    let mut waves = 0usize;
    let mut recoveries = 0usize;
    loop {
        match engine.step() {
            PhaseEvent::TreeConstructed { .. } | PhaseEvent::Switched { .. } => {}
            PhaseEvent::LabelsReady { .. } | PhaseEvent::Recovered { .. } => {
                let tree = engine.tree();
                if let Some(fragments) = engine.fragment_labels() {
                    assert_eq!(
                        fragments,
                        assign_fragment_labels(graph, tree).as_slice(),
                        "{label}: fragment labels diverged at wave {waves}"
                    );
                }
                assert_eq!(
                    engine.nca_labels(),
                    assign_nca_labels(graph, tree).as_slice(),
                    "{label}: NCA labels diverged at wave {waves}"
                );
                assert_eq!(
                    engine.redundant_labels(),
                    RedundantScheme.prove(graph, tree).as_slice(),
                    "{label}: redundant labels diverged at wave {waves}"
                );
                waves += 1;
                if let Some(every) = corrupt_every {
                    if waves.is_multiple_of(every) && recoveries < 4 {
                        engine.corrupt_random_labels(3);
                        recoveries += 1;
                    }
                }
            }
            PhaseEvent::Stabilized { legal } => {
                assert!(legal, "{label}: must stabilize legally");
                break;
            }
            event @ (PhaseEvent::TopologyApplied { .. } | PhaseEvent::Partitioned { .. }) => {
                // This harness never mutates the topology (tests/churn_oracle.rs
                // covers those paths).
                unreachable!("{label}: unexpected topology event {event:?}");
            }
        }
        assert!(waves < 2_000, "{label}: runaway composition");
    }
    assert!(waves > 0, "{label}: at least one labeling wave runs");
}

#[test]
fn mst_labels_are_identical_to_from_scratch_reproofs_after_every_switch() {
    for seed in 0..5 {
        let g = generators::workload(30, 0.2, seed);
        let mut engine = CompositionEngine::new(&g, EngineTask::Mst, EngineConfig::seeded(seed));
        drive_with_oracle(&g, &mut engine, None, &format!("mst seed {seed}"));
        assert!(mst::is_mst(&g, engine.tree()));
    }
}

#[test]
fn mdst_labels_are_identical_to_from_scratch_reproofs_after_every_improvement() {
    for seed in 0..5 {
        let g = generators::workload(24, 0.3, seed);
        let mut engine = CompositionEngine::new(&g, EngineTask::Mdst, EngineConfig::seeded(seed));
        drive_with_oracle(&g, &mut engine, None, &format!("mdst seed {seed}"));
    }
}

#[test]
fn labels_stay_identical_under_injected_corruption() {
    for (task, name) in [(EngineTask::Mst, "mst"), (EngineTask::Mdst, "mdst")] {
        for seed in 0..3 {
            let g = generators::workload(26, 0.25, seed);
            let mut engine = CompositionEngine::new(&g, task, EngineConfig::seeded(seed));
            drive_with_oracle(
                &g,
                &mut engine,
                Some(2),
                &format!("corrupted {name} seed {seed}"),
            );
        }
    }
}

#[test]
fn corruption_after_stabilization_is_recovered_without_moving_the_tree() {
    let g = generators::workload(32, 0.2, 11);
    let mut engine = CompositionEngine::new(&g, EngineTask::Mst, EngineConfig::seeded(11));
    let report = engine.run();
    assert!(report.legal);
    let stable = engine.tree().clone();
    for round in 0..3 {
        engine.corrupt_random_labels(4);
        assert!(
            matches!(engine.step(), PhaseEvent::Recovered { families_rebuilt, .. } if families_rebuilt > 0),
            "round {round}"
        );
        assert!(matches!(
            engine.step(),
            PhaseEvent::Stabilized { legal: true }
        ));
        assert_eq!(
            engine.tree(),
            &stable,
            "round {round}: recovery must not move the tree"
        );
        assert_eq!(
            engine.fragment_labels().unwrap(),
            assign_fragment_labels(&g, &stable).as_slice()
        );
    }
}

#[test]
fn thousand_node_mst_needs_5x_fewer_label_writes_than_from_scratch() {
    // The acceptance criterion of the refactor, measured in the deterministic label-write
    // counter (wall clock for the same pair is shown by benches/composition_scale.rs).
    let g = generators::workload(1_000, 0.004, 2015);
    let incremental = CompositionEngine::new(&g, EngineTask::Mst, EngineConfig::seeded(2015)).run();
    let from_scratch = CompositionEngine::new(
        &g,
        EngineTask::Mst,
        EngineConfig::seeded(2015).with_relabel(Relabel::FromScratch),
    )
    .run();
    assert!(incremental.legal && from_scratch.legal);
    assert_eq!(
        incremental.tree, from_scratch.tree,
        "both modes stabilize on the identical tree"
    );
    assert_eq!(incremental.improvements, from_scratch.improvements);
    assert!(
        incremental.improvements > 0,
        "the workload must exercise the improvement loop"
    );
    println!(
        "1,000-node MST: {} switches, {} label writes incremental vs {} from scratch ({:.1}x)",
        incremental.improvements,
        incremental.labels_written,
        from_scratch.labels_written,
        from_scratch.labels_written as f64 / incremental.labels_written as f64
    );
    assert!(
        incremental.labels_written * 5 <= from_scratch.labels_written,
        "label writes: incremental {} vs from-scratch {} — expected at least a 5x gap",
        incremental.labels_written,
        from_scratch.labels_written
    );
}
