//! Review repro: two tree edges on one ancestor chain deleted in one batch.

use self_stabilizing_spanning_trees::core::engine::{CompositionEngine, EngineTask, PhaseEvent};
use self_stabilizing_spanning_trees::core::EngineConfig;
use self_stabilizing_spanning_trees::graph::{Graph, Mutation, NodeId};

#[test]
fn batch_deleting_nested_tree_edges_keeps_tree_valid() {
    // MST is the chain 0-1-2-3 (weights 1,2,3); replacements: 3-0 (10), 1-3 (20).
    let g = Graph::from_edges(
        4,
        &[(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 0, 10), (1, 3, 20)],
    );
    let mut engine = CompositionEngine::new(&g, EngineTask::Mst, EngineConfig::seeded(1));
    assert!(engine.run().legal);
    // Tree should be the chain rooted at 0: parents 1->0, 2->1, 3->2.
    let event = engine.apply_topology(&[
        Mutation::RemoveEdge {
            u: NodeId(0),
            v: NodeId(1),
        },
        Mutation::RemoveEdge {
            u: NodeId(1),
            v: NodeId(2),
        },
    ]);
    assert!(
        matches!(event, PhaseEvent::TopologyApplied { .. }),
        "{event:?}"
    );
    let report = engine.run();
    assert!(report.legal);
    assert!(
        engine.tree().is_spanning_tree_of(engine.graph()),
        "tree contains an edge deleted from the graph"
    );
}
