//! Differential oracle for deterministic parallel wave execution.
//!
//! The contract of `stst-runtime::par` (and of every consumer: the executor's
//! parallel guard waves, the engine's concurrent from-scratch provers and sharded
//! verification waves) is that results are **bit-identical to the sequential path at
//! any thread count**: work is split into stable node-range shards of pure reads over
//! the immutable pre-wave snapshot, and everything order-sensitive is applied on the
//! calling thread in the sequential order. These tests pin that contract across
//! seeds, daemons and thread counts ∈ {1, 2, 8}, including under fault injection —
//! both step-by-step (trajectory equality) and end-to-end (final configurations,
//! round/move/guard counters, engine reports).

use self_stabilizing_spanning_trees::core::engine::{CompositionEngine, EngineTask, PhaseEvent};
use self_stabilizing_spanning_trees::core::spanning::MinIdSpanningTree;
use self_stabilizing_spanning_trees::core::{EngineConfig, Relabel};
use self_stabilizing_spanning_trees::graph::generators;
use self_stabilizing_spanning_trees::obs::Obs;
use self_stabilizing_spanning_trees::runtime::{Executor, ExecutorConfig, SchedulerKind};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn executor_trajectories_are_bit_identical_across_thread_counts() {
    // Big enough that synchronous waves cross the executor's parallel threshold, so
    // the pool path genuinely runs (not just trivially equal by sharing code).
    let g = generators::workload(400, 0.015, 31);
    for kind in SchedulerKind::all() {
        for seed in [3u64, 9] {
            let run = |threads: usize| {
                let config = ExecutorConfig::with_scheduler(seed, kind).with_threads(threads);
                let mut exec = Executor::from_arbitrary(&g, MinIdSpanningTree, config);
                let q = exec.run_to_quiescence(5_000_000).expect("converges");
                (
                    exec.states(),
                    q,
                    exec.guard_evaluations(),
                    exec.guard_screen_hits(),
                    exec.guard_full_decodes(),
                    exec.activation_counts(),
                )
            };
            let reference = run(1);
            for &threads in &THREAD_COUNTS[1..] {
                assert_eq!(
                    run(threads),
                    reference,
                    "daemon {kind}, seed {seed}, {threads} threads"
                );
            }
        }
    }
}

#[test]
fn executor_stepwise_equality_holds_under_fault_injection() {
    let g = generators::workload(350, 0.02, 7);
    for kind in [SchedulerKind::Synchronous, SchedulerKind::UniformRandom] {
        let config = ExecutorConfig::with_scheduler(5, kind);
        let mut seq = Executor::from_arbitrary(&g, MinIdSpanningTree, config);
        let mut par2 = Executor::from_arbitrary(&g, MinIdSpanningTree, config.with_threads(2));
        let mut par8 = Executor::from_arbitrary(&g, MinIdSpanningTree, config.with_threads(8));
        assert_eq!(seq.states(), par2.states());
        assert_eq!(seq.states(), par8.states());
        for step in 0..120 {
            if step % 13 == 12 {
                // Same seed ⇒ the three executors corrupt the same registers with the
                // same garbage; the RNG never depends on the thread count.
                let a = seq.corrupt_random_nodes(5);
                let b = par2.corrupt_random_nodes(5);
                let c = par8.corrupt_random_nodes(5);
                assert_eq!(a, b, "daemon {kind}, step {step}");
                assert_eq!(a, c, "daemon {kind}, step {step}");
            }
            if seq.is_quiescent() {
                assert!(par2.is_quiescent() && par8.is_quiescent());
                break;
            }
            let chosen = seq.step_once().to_vec();
            assert_eq!(chosen, par2.step_once(), "daemon {kind}, step {step}");
            assert_eq!(chosen, par8.step_once(), "daemon {kind}, step {step}");
            assert_eq!(seq.states(), par2.states(), "daemon {kind}, step {step}");
            assert_eq!(seq.states(), par8.states(), "daemon {kind}, step {step}");
            assert_eq!(seq.rounds(), par2.rounds(), "daemon {kind}, step {step}");
            assert_eq!(seq.rounds(), par8.rounds(), "daemon {kind}, step {step}");
            assert_eq!(
                seq.guard_evaluations(),
                par8.guard_evaluations(),
                "daemon {kind}, step {step}"
            );
            // The screened/decoded split is applied on the calling thread in frontier
            // order, so it is as thread-invariant as every other counter.
            assert_eq!(
                (seq.guard_screen_hits(), seq.guard_full_decodes()),
                (par8.guard_screen_hits(), par8.guard_full_decodes()),
                "daemon {kind}, step {step}"
            );
        }
    }
}

#[test]
fn engine_reports_are_identical_across_thread_counts() {
    for (task, n) in [(EngineTask::Mst, 260), (EngineTask::Mdst, 100)] {
        for relabel in [Relabel::Incremental, Relabel::FromScratch] {
            let g = generators::workload(n, 8.0 / n as f64, 13);
            let run = |threads: usize| {
                let config = EngineConfig::seeded(13)
                    .with_relabel(relabel)
                    .with_threads(threads);
                let mut engine = CompositionEngine::new(&g, task, config);
                engine.run()
            };
            let reference = run(1);
            for &threads in &THREAD_COUNTS[1..] {
                let report = run(threads);
                let label = format!("{task:?}/{relabel:?}/{threads} threads");
                assert_eq!(report.tree, reference.tree, "{label}");
                assert_eq!(report.total_rounds, reference.total_rounds, "{label}");
                assert_eq!(report.phase_rounds, reference.phase_rounds, "{label}");
                assert_eq!(report.labels_written, reference.labels_written, "{label}");
                assert_eq!(report.improvements, reference.improvements, "{label}");
                assert_eq!(
                    report.max_register_bits, reference.max_register_bits,
                    "{label}"
                );
                assert!(report.legal, "{label}");
            }
        }
    }
}

#[test]
fn executor_runs_with_tracing_enabled_are_bit_identical_to_disabled() {
    // Determinism transparency: attaching an enabled observability handle must not
    // change a bit of the execution, at any thread count and under every daemon.
    let g = generators::workload(400, 0.015, 31);
    for kind in SchedulerKind::all() {
        let run = |threads: usize, obs: Option<Obs>| {
            let config = ExecutorConfig::with_scheduler(9, kind).with_threads(threads);
            let mut exec = Executor::from_arbitrary(&g, MinIdSpanningTree, config);
            if let Some(obs) = obs {
                exec.attach_obs(obs);
            }
            let q = exec.run_to_quiescence(5_000_000).expect("converges");
            (
                exec.states(),
                q,
                exec.guard_evaluations(),
                exec.guard_screen_hits(),
                exec.guard_full_decodes(),
                exec.activation_counts(),
            )
        };
        let reference = run(1, None);
        for &threads in &THREAD_COUNTS {
            let obs = Obs::enabled();
            let observed = run(threads, Some(obs.clone()));
            assert_eq!(observed, reference, "daemon {kind}, {threads} threads");
            // At quiescence every guard delta has been flushed, so the registry
            // totals equal the executor's own counters.
            let registry = obs.registry().unwrap();
            assert_eq!(
                registry.counter_value("executor_guard_evaluations"),
                Some(reference.2),
                "daemon {kind}, {threads} threads"
            );
            assert!(
                !obs.trace().unwrap().is_empty(),
                "daemon {kind}: empty trace"
            );
        }
    }
}

#[test]
fn engine_runs_with_tracing_enabled_are_bit_identical_to_disabled() {
    // The engine's whole lifecycle — build, label, improve, fault recovery — with an
    // enabled handle attached must match the unobserved reference bit for bit.
    let g = generators::workload(300, 6.0 / 300.0, 17);
    let run = |threads: usize, obs: Option<Obs>| {
        let config = EngineConfig::seeded(17).with_threads(threads);
        let mut engine = CompositionEngine::new(&g, EngineTask::Mst, config);
        if let Some(obs) = obs {
            engine.attach_obs(obs);
        }
        let report = engine.run();
        let hit = engine.corrupt_random_labels(9);
        let recovery = engine.step();
        let silent = matches!(engine.step(), PhaseEvent::Stabilized { legal: true });
        (
            (
                report.tree,
                report.total_rounds,
                report.labels_written,
                report.improvements,
                report.max_register_bits,
                report.legal,
            ),
            hit,
            recovery,
            silent,
            engine.nca_labels().to_vec(),
            engine.redundant_labels().to_vec(),
        )
    };
    let reference = run(1, None);
    for &threads in &THREAD_COUNTS {
        let obs = Obs::enabled();
        assert_eq!(
            run(threads, Some(obs.clone())),
            reference,
            "{threads} threads"
        );
        let trace = obs.trace().unwrap();
        assert!(!trace.is_empty(), "{threads} threads: empty trace");
        assert_eq!(trace.dropped(), 0, "{threads} threads");
    }
}

#[test]
fn engine_fault_recovery_is_identical_across_thread_counts() {
    // n ≥ 256 so the recovery's verification waves take the sharded pool path.
    let g = generators::workload(300, 6.0 / 300.0, 17);
    let run = |threads: usize| {
        let config = EngineConfig::seeded(17).with_threads(threads);
        let mut engine = CompositionEngine::new(&g, EngineTask::Mst, config);
        engine.run();
        let hit = engine.corrupt_random_labels(9);
        let recovery = engine.step();
        let silent = matches!(engine.step(), PhaseEvent::Stabilized { legal: true });
        (
            hit,
            recovery,
            silent,
            engine.nca_labels().to_vec(),
            engine.redundant_labels().to_vec(),
        )
    };
    let reference = run(1);
    assert!(
        matches!(reference.1, PhaseEvent::Recovered { families_rebuilt, .. } if families_rebuilt >= 1)
    );
    for &threads in &THREAD_COUNTS[1..] {
        assert_eq!(run(threads), reference, "{threads} threads");
    }
}
