//! Differential oracles for checkpoint/restore durability.
//!
//! The paper's self-stabilization guarantee makes restore a *correctness* story, not
//! just a convenience: a snapshot restored into a running system is simply another
//! configuration handed to the verification wave. These oracles pin both halves of
//! that story:
//!
//! * **Bit-identity** — a run that is checkpointed, killed and restored finishes in
//!   exactly the configuration (and, for clean restores, with exactly the counters)
//!   of the uninterrupted run, across every daemon, thread count and register-store
//!   representation;
//! * **Typed failure** — a truncated, bit-flipped, wrong-version or wrong-graph
//!   snapshot produces a typed [`RestoreError`], never a panic and never silently
//!   loaded garbage;
//! * **Restore == self-stabilization** — snapshots taken mid-repair (between the
//!   phase events of an in-flight loop-free switch) or carrying unresolved label
//!   corruption restore into a configuration that the engine's verification wave
//!   detects and repairs, re-stabilizing to the uninterrupted run's output.

use std::path::PathBuf;

use self_stabilizing_spanning_trees::core::spanning::MinIdSpanningTree;
use self_stabilizing_spanning_trees::core::{
    CompositionEngine, EngineConfig, EngineTask, PhaseEvent,
};
use self_stabilizing_spanning_trees::graph::{generators, Graph};
use self_stabilizing_spanning_trees::runtime::persist::{flip_bit_in_file, truncate_file};
use self_stabilizing_spanning_trees::runtime::{
    ExecMode, Executor, ExecutorConfig, RestoreError, SchedulerKind, Snapshot, StoreMode,
};

const DAEMONS: [SchedulerKind; 5] = [
    SchedulerKind::Central,
    SchedulerKind::Synchronous,
    SchedulerKind::RoundRobin,
    SchedulerKind::UniformRandom,
    SchedulerKind::Adversarial,
];

fn scratch_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "stst_persist_oracle_{}_{name}.snap",
        std::process::id()
    ))
}

/// Final configuration plus every counter of a finished executor run.
#[derive(Debug, PartialEq)]
struct ExecOutcome {
    states: Vec<self_stabilizing_spanning_trees::core::spanning::SpanningState>,
    moves: u64,
    steps: u64,
    rounds: u64,
    guard_evals: u64,
    screen_hits: u64,
    full_decodes: u64,
    activations: Vec<u64>,
}

fn finish(exec: &mut Executor<'_, MinIdSpanningTree>) -> ExecOutcome {
    let q = exec.run_to_quiescence(5_000_000).expect("converges");
    assert!(q.silent);
    ExecOutcome {
        states: exec.states(),
        moves: exec.moves(),
        steps: exec.steps(),
        rounds: exec.rounds(),
        guard_evals: exec.guard_evaluations(),
        screen_hits: exec.guard_screen_hits(),
        full_decodes: exec.guard_full_decodes(),
        activations: exec.activation_counts(),
    }
}

/// Checkpoint/kill/restore at an arbitrary (mid-round) step ends bit-identical —
/// configuration AND counters — to the uninterrupted run, for every daemon and
/// thread count, surviving a byte-level serialization roundtrip.
#[test]
fn executor_checkpoint_restore_is_bit_identical_across_daemons_and_threads() {
    let g = generators::workload(36, 0.25, 42);
    for daemon in DAEMONS {
        for seed in [3u64, 11] {
            for threads in [1usize, 2, 8] {
                let config = ExecutorConfig::with_scheduler(seed, daemon).with_threads(threads);

                let mut reference = Executor::from_arbitrary(&g, MinIdSpanningTree, config);
                let want = finish(&mut reference);

                // Twin run: stop mid-flight at a step count that is not a wave
                // boundary, checkpoint, and "kill" the process by dropping it.
                let mut twin = Executor::from_arbitrary(&g, MinIdSpanningTree, config);
                for _ in 0..17 {
                    if twin.is_quiescent() {
                        break;
                    }
                    twin.step_once();
                }
                let bytes = twin.checkpoint().to_bytes();
                drop(twin);

                let snap = Snapshot::from_bytes(&bytes).expect("self-produced snapshot parses");
                let mut restored = Executor::restore(&g, MinIdSpanningTree, &snap, config)
                    .expect("restore from a valid snapshot");
                let got = finish(&mut restored);

                assert_eq!(
                    got, want,
                    "restored run diverged (daemon {daemon:?}, seed {seed}, {threads} threads)"
                );
            }
        }
    }
}

/// Representation choices — register store, enabled-set mode, thread count — belong
/// to the restoring process, not the snapshot: a checkpoint taken on the packed
/// store restores into the struct store (and vice versa) and still finishes in the
/// reference configuration.
#[test]
fn executor_restore_is_representation_independent() {
    let g = generators::workload(30, 0.3, 7);
    let packed = ExecutorConfig::seeded(5);

    let mut reference = Executor::from_arbitrary(&g, MinIdSpanningTree, packed);
    let want = finish(&mut reference);

    let mut twin = Executor::from_arbitrary(&g, MinIdSpanningTree, packed);
    for _ in 0..23 {
        twin.step_once();
    }
    let snap = twin.checkpoint();

    for (store, threads) in [
        (StoreMode::Struct, 1usize),
        (StoreMode::Struct, 4),
        (StoreMode::Packed, 2),
    ] {
        let into = ExecutorConfig::seeded(5)
            .with_store(store)
            .with_threads(threads);
        let mut restored = Executor::restore(&g, MinIdSpanningTree, &snap, into)
            .expect("cross-representation restore");
        let got = finish(&mut restored);
        // Screen/decode counters are representation-dependent by design; the
        // execution itself — states, moves, steps, rounds, activations — is not.
        assert_eq!(got.states, want.states, "{store:?}/{threads} threads");
        assert_eq!(got.moves, want.moves, "{store:?}/{threads} threads");
        assert_eq!(got.steps, want.steps, "{store:?}/{threads} threads");
        assert_eq!(got.rounds, want.rounds, "{store:?}/{threads} threads");
        assert_eq!(
            got.activations, want.activations,
            "{store:?}/{threads} threads"
        );
    }

    // The enabled-set mode is *trajectory-affecting* (FullRescan refreshes guards in
    // node order, not frontier order — just as between two fresh runs in different
    // modes), so a cross-mode restore is held to the self-stabilization contract
    // instead of bit-identity: it converges silently to a legal configuration.
    let into = ExecutorConfig::seeded(5).with_mode(ExecMode::FullRescan);
    let mut restored =
        Executor::restore(&g, MinIdSpanningTree, &snap, into).expect("cross-mode restore");
    let q = restored.run_to_quiescence(5_000_000).expect("converges");
    assert!(q.silent && q.legal);
}

/// The on-disk roundtrip (write_file / read_file) preserves bit-identity too.
#[test]
fn executor_snapshot_survives_the_filesystem() {
    let g = generators::workload(24, 0.3, 9);
    let config = ExecutorConfig::with_scheduler(2, SchedulerKind::Adversarial);

    let mut reference = Executor::from_arbitrary(&g, MinIdSpanningTree, config);
    let want = finish(&mut reference);

    let mut twin = Executor::from_arbitrary(&g, MinIdSpanningTree, config);
    for _ in 0..9 {
        twin.step_once();
    }
    let path = scratch_path("fs_roundtrip");
    twin.checkpoint().write_file(&path).expect("write snapshot");
    drop(twin);

    let snap = Snapshot::read_file(&path).expect("read snapshot back");
    std::fs::remove_file(&path).ok();
    let mut restored =
        Executor::restore(&g, MinIdSpanningTree, &snap, config).expect("restore from disk");
    assert_eq!(finish(&mut restored), want);
}

/// Every corruption class named by the issue — truncation, bit flips, wrong
/// version — plus wrong-kind and wrong-graph snapshots produce the right typed
/// error. No panic, no garbage configuration.
#[test]
fn corrupted_snapshot_files_fail_with_typed_errors() {
    let g = generators::workload(20, 0.3, 4);
    let config = ExecutorConfig::seeded(1);
    let mut exec = Executor::from_arbitrary(&g, MinIdSpanningTree, config);
    for _ in 0..5 {
        exec.step_once();
    }
    let snap = exec.checkpoint();
    let pristine = snap.to_bytes();

    // Truncation: cut the file mid-payload.
    let path = scratch_path("truncated");
    snap.write_file(&path).expect("write");
    truncate_file(&path, pristine.len() / 2).expect("truncate");
    match Snapshot::read_file(&path) {
        Err(RestoreError::Truncated { expected, found }) => assert!(found < expected),
        other => panic!("truncated file must fail as Truncated, got {other:?}"),
    }

    // Bit flip in the payload: caught by the checksum before any decode runs.
    snap.write_file(&path).expect("rewrite");
    flip_bit_in_file(&path, 32 * 8 + 13).expect("flip payload bit");
    match Snapshot::read_file(&path) {
        Err(RestoreError::ChecksumMismatch { stored, computed }) => {
            assert_ne!(stored, computed)
        }
        other => panic!("bit-flipped payload must fail the checksum, got {other:?}"),
    }

    // Bit flip in the version field: rejected as a version we do not speak.
    snap.write_file(&path).expect("rewrite");
    flip_bit_in_file(&path, 8 * 8 + 1).expect("flip version bit");
    match Snapshot::read_file(&path) {
        Err(RestoreError::WrongVersion { found, supported }) => assert_ne!(found, supported),
        other => panic!("wrong version must be rejected, got {other:?}"),
    }

    // Bit flip in the magic: not one of our snapshots at all.
    snap.write_file(&path).expect("rewrite");
    flip_bit_in_file(&path, 3).expect("flip magic bit");
    assert!(matches!(
        Snapshot::read_file(&path),
        Err(RestoreError::BadMagic)
    ));
    std::fs::remove_file(&path).ok();

    // Wrong kind: an engine snapshot is not an executor snapshot.
    let engine = CompositionEngine::new(&g, EngineTask::Mst, EngineConfig::seeded(1));
    let engine_snap = engine.checkpoint();
    assert!(matches!(
        Executor::restore(&g, MinIdSpanningTree, &engine_snap, config),
        Err(RestoreError::WrongKind {
            found: 2,
            expected: 1
        })
    ));

    // Wrong graph: the fingerprint embedded in the snapshot does not match.
    let other: Graph = generators::workload(20, 0.3, 5);
    assert!(matches!(
        Executor::restore(&other, MinIdSpanningTree, &snap, config),
        Err(RestoreError::GraphMismatch)
    ));
}

/// Runs `engine` to silence, returning its final report.
fn run_to_silence(
    engine: &mut CompositionEngine<'_>,
) -> self_stabilizing_spanning_trees::core::ConstructionReport {
    loop {
        if let PhaseEvent::Stabilized { .. } = engine.step() {
            return engine.report();
        }
    }
}

fn assert_same_configuration(a: &CompositionEngine<'_>, b: &CompositionEngine<'_>, what: &str) {
    assert_eq!(a.tree(), b.tree(), "{what}: trees differ");
    assert_eq!(
        a.fragment_labels(),
        b.fragment_labels(),
        "{what}: fragment labels differ"
    );
    assert_eq!(a.nca_labels(), b.nca_labels(), "{what}: NCA labels differ");
    assert_eq!(
        a.redundant_labels(),
        b.redundant_labels(),
        "{what}: redundant labels differ"
    );
}

/// A checkpoint at a clean wave boundary restores with zero recovery rounds and
/// continues with exactly the uninterrupted run's counters: same total rounds, same
/// labels written, same improvements, same final configuration.
#[test]
fn engine_clean_boundary_restore_continues_counters_exactly() {
    let g = generators::workload(24, 0.3, 21);
    let config = EngineConfig::seeded(21);

    let mut reference = CompositionEngine::new(&g, EngineTask::Mst, config);
    let want = run_to_silence(&mut reference);

    let mut twin = CompositionEngine::new(&g, EngineTask::Mst, config);
    // Stop exactly after the first label wave: a clean boundary, nothing in flight.
    loop {
        if let PhaseEvent::LabelsReady { .. } = twin.step() {
            break;
        }
    }
    let bytes = twin.checkpoint().to_bytes();
    drop(twin);

    let snap = Snapshot::from_bytes(&bytes).expect("snapshot parses");
    let (mut restored, outcome) = CompositionEngine::restore(&snap, 1).expect("clean restore");
    assert_eq!(
        outcome.families_rebuilt, 0,
        "clean-boundary snapshot must restore verbatim"
    );
    assert_eq!(outcome.rounds, 0, "clean restore charges no rounds");

    let got = run_to_silence(&mut restored);
    assert_eq!(got.tree, want.tree);
    assert_eq!(got.total_rounds, want.total_rounds);
    assert_eq!(got.phase_rounds, want.phase_rounds);
    assert_eq!(got.labels_written, want.labels_written);
    assert_eq!(got.improvements, want.improvements);
    assert!(got.legal);
    assert_same_configuration(&restored, &reference, "clean boundary");
}

/// A checkpoint taken *between the phase events of an in-flight loop-free switch* —
/// the tree already re-hung, the label repair not yet run — is an arbitrary
/// configuration. The restore hands it to the verification wave, which rejects the
/// stale families and rebuilds them, and the engine re-stabilizes to the
/// uninterrupted run's exact final configuration.
#[test]
fn engine_mid_repair_restore_restabilizes_bit_identical() {
    let g = generators::workload(24, 0.3, 21);
    let config = EngineConfig::seeded(21);

    let mut reference = CompositionEngine::new(&g, EngineTask::Mst, config);
    let want = run_to_silence(&mut reference);
    assert!(
        want.improvements > 0,
        "oracle needs a run with at least one loop-free switch"
    );

    let mut twin = CompositionEngine::new(&g, EngineTask::Mst, config);
    loop {
        match twin.step() {
            PhaseEvent::Switched { .. } => break,
            PhaseEvent::Stabilized { .. } => {
                unreachable!("reference run has improvements, twin must switch")
            }
            _ => {}
        }
    }
    let snap = twin.checkpoint();
    drop(twin);

    let (mut restored, outcome) = CompositionEngine::restore(&snap, 2).expect("mid-repair restore");
    assert!(
        outcome.families_rebuilt > 0,
        "mid-repair snapshot must be caught by the verification wave"
    );
    assert!(outcome.rounds > 0, "recovery waves are charged rounds");

    let got = run_to_silence(&mut restored);
    assert_eq!(got.tree, want.tree, "mid-repair restore must re-stabilize");
    assert!(got.legal);
    assert_same_configuration(&restored, &reference, "mid-repair");
}

/// A snapshot taken with unresolved injected label corruption restores the corrupted
/// labels verbatim and keeps the corrupted flag: the next step runs exactly the
/// recovery the uninterrupted engine would have run, ending in the same
/// configuration with the same round totals.
#[test]
fn engine_corrupted_snapshot_recovers_like_the_uninterrupted_run() {
    let g = generators::workload(24, 0.3, 13);
    let config = EngineConfig::seeded(13);

    // Uninterrupted: stabilize, corrupt, recover in place.
    let mut reference = CompositionEngine::new(&g, EngineTask::Mst, config);
    run_to_silence(&mut reference);
    let hit = reference.corrupt_random_labels(3);
    assert!(!hit.is_empty());
    match reference.step() {
        PhaseEvent::Recovered {
            families_rebuilt, ..
        } => assert!(families_rebuilt > 0),
        other => panic!("corruption must be detected, got {other:?}"),
    }

    // Interrupted: stabilize, corrupt identically (same seed, same history),
    // checkpoint with the corruption unresolved, kill, restore, then recover.
    let mut twin = CompositionEngine::new(&g, EngineTask::Mst, config);
    run_to_silence(&mut twin);
    let twin_hit = twin.corrupt_random_labels(3);
    assert_eq!(twin_hit, hit, "same seed and history, same injected fault");
    let snap = twin.checkpoint();
    drop(twin);

    let (mut restored, outcome) =
        CompositionEngine::restore(&snap, 1).expect("corrupted snapshot restores");
    assert_eq!(
        outcome.families_rebuilt, 0,
        "unresolved corruption restores verbatim — recovery is the engine's job"
    );
    match restored.step() {
        PhaseEvent::Recovered {
            families_rebuilt, ..
        } => assert!(families_rebuilt > 0),
        other => panic!("restored corruption must be detected, got {other:?}"),
    }

    assert_eq!(restored.total_rounds(), reference.total_rounds());
    assert_eq!(restored.labels_written(), reference.labels_written());
    assert_same_configuration(&restored, &reference, "corrupted snapshot");
}

/// Stale-but-consistent certificates — proofs that verify against the wrong tree —
/// survive a checkpoint/restore and are rejected by the verification wave, exactly
/// like any other corruption.
#[test]
fn engine_stale_certificates_survive_restore_and_are_rejected() {
    let g = generators::workload(24, 0.3, 31);
    let config = EngineConfig::seeded(31);

    let mut engine = CompositionEngine::new(&g, EngineTask::Mst, config);
    run_to_silence(&mut engine);
    assert!(
        engine.corrupt_stale_certificates(),
        "the stale tree's labels must differ from the maintained ones"
    );
    let snap = engine.checkpoint();
    drop(engine);

    let (mut restored, _) =
        CompositionEngine::restore(&snap, 1).expect("stale-certificate snapshot restores");
    match restored.step() {
        PhaseEvent::Recovered {
            families_rebuilt, ..
        } => assert!(
            families_rebuilt >= 2,
            "stale NCA and redundant certificates must both be re-proved"
        ),
        other => panic!("stale certificates must be rejected, got {other:?}"),
    }
    let report = restored.report();
    assert!(report.legal, "engine re-stabilizes to a legal MST");
}

/// Crash injection at random wave boundaries: checkpoint / kill / restore cycles at
/// several points of an MDST run, each restore re-stabilizing to the uninterrupted
/// run's final tree.
#[test]
fn engine_crash_cycles_at_wave_boundaries_restabilize() {
    let g = generators::workload(18, 0.35, 8);
    let config = EngineConfig::seeded(8);

    let mut reference = CompositionEngine::new(&g, EngineTask::Mdst, config);
    let want = run_to_silence(&mut reference);

    for kill_after in [1usize, 2, 4] {
        let mut twin = CompositionEngine::new(&g, EngineTask::Mdst, config);
        let mut events = 0usize;
        let snap = loop {
            let event = twin.step();
            events += 1;
            if events >= kill_after || matches!(event, PhaseEvent::Stabilized { .. }) {
                break twin.checkpoint();
            }
        };
        drop(twin);

        let (mut restored, _) = CompositionEngine::restore(&snap, 1).expect("restore");
        let got = run_to_silence(&mut restored);
        assert_eq!(
            got.tree, want.tree,
            "crash after {kill_after} events must re-stabilize to the same MDST"
        );
        assert!(got.legal);
    }
}
