//! Self-stabilization proper: recovery from transient faults (register corruption) of
//! every severity, under different daemons, for the guarded-rule layer.

use self_stabilizing_spanning_trees::core::bfs::{BfsState, RootedBfs};
use self_stabilizing_spanning_trees::core::spanning::{MinIdSpanningTree, SpanningState};
use self_stabilizing_spanning_trees::graph::{generators, NodeId};
use self_stabilizing_spanning_trees::runtime::{Executor, ExecutorConfig, SchedulerKind};

#[test]
fn spanning_tree_recovers_from_any_number_of_corrupted_registers() {
    let g = generators::workload(30, 0.12, 17);
    let mut exec = Executor::from_arbitrary(&g, MinIdSpanningTree, ExecutorConfig::seeded(17));
    exec.run_to_quiescence(5_000_000).unwrap();
    for k in [1usize, 3, 10, 15, 30] {
        exec.corrupt_random_nodes(k);
        let q = exec
            .run_to_quiescence(5_000_000)
            .expect("recovery after {k} faults");
        assert!(q.legal, "recovery after corrupting {k} registers");
        assert!(exec.is_quiescent());
    }
}

#[test]
fn recovery_from_a_single_fault_is_cheaper_than_from_scratch() {
    let g = generators::workload(40, 0.1, 23);
    // From-scratch cost.
    let mut scratch = Executor::from_arbitrary(&g, MinIdSpanningTree, ExecutorConfig::seeded(23));
    let from_scratch = scratch.run_to_quiescence(5_000_000).unwrap();
    // Converge, then corrupt a single register's size field (a local fault): recovery
    // is a convergecast along one root path, far cheaper than a full reconstruction.
    let mut exec = Executor::from_arbitrary(&g, MinIdSpanningTree, ExecutorConfig::seeded(23));
    exec.run_to_quiescence(5_000_000).unwrap();
    let moves_before = exec.moves();
    let damaged = SpanningState {
        size: exec.state(NodeId(7)).size + 5,
        ..exec.state(NodeId(7))
    };
    exec.corrupt_node(NodeId(7), damaged);
    let q = exec.run_to_quiescence(5_000_000).unwrap();
    assert!(q.legal);
    let recovery_moves = q.moves - moves_before;
    assert!(
        recovery_moves <= from_scratch.moves,
        "recovering from one local fault ({recovery_moves} moves) should not cost more \
         than converging from scratch ({} moves)",
        from_scratch.moves
    );
}

#[test]
fn bfs_recovers_under_the_adversarial_daemon() {
    let g = generators::workload(25, 0.15, 31);
    let root_ident = g.ident(g.min_ident_node());
    let mut exec = Executor::from_arbitrary(
        &g,
        RootedBfs::new(root_ident),
        ExecutorConfig::with_scheduler(31, SchedulerKind::Adversarial),
    );
    exec.run_to_quiescence(5_000_000).unwrap();
    // Adversarially helpful-looking corruption: claim distance 0 everywhere.
    for v in 0..5 {
        exec.corrupt_node(
            NodeId(v),
            BfsState {
                parent: None,
                dist: 0,
            },
        );
    }
    let q = exec.run_to_quiescence(5_000_000).unwrap();
    assert!(
        q.legal,
        "BFS must recover even from systematically misleading corruption"
    );
}

#[test]
fn corrupting_every_register_is_just_a_fresh_start() {
    let g = generators::workload(20, 0.2, 41);
    let mut exec = Executor::from_arbitrary(&g, MinIdSpanningTree, ExecutorConfig::seeded(41));
    exec.run_to_quiescence(5_000_000).unwrap();
    exec.corrupt_random_nodes(g.node_count());
    let q = exec.run_to_quiescence(5_000_000).unwrap();
    assert!(q.legal);
}

#[test]
fn repeated_faults_on_the_same_register_are_absorbed() {
    // An adversary that keeps hitting one node's register (the paper's transient
    // faults need not be spread out) still leaves just another arbitrary
    // configuration: the last overwrite wins and stabilization proceeds from there.
    let g = generators::workload(30, 0.15, 53);
    let mut exec = Executor::from_arbitrary(&g, MinIdSpanningTree, ExecutorConfig::seeded(53));
    exec.run_to_quiescence(5_000_000).unwrap();
    for victim in [NodeId(0), NodeId(13), NodeId(29)] {
        let flips = exec.corrupt_node_repeatedly(victim, 16);
        assert!(
            flips > 0,
            "sixteen arbitrary overwrites must flip bits at least once"
        );
        let q = exec.run_to_quiescence(5_000_000).unwrap();
        assert!(
            q.legal,
            "recovery after hammering {victim:?} sixteen times in a row"
        );
    }
}

#[test]
fn stale_but_consistent_certificates_are_rejected_by_the_verification_wave() {
    use self_stabilizing_spanning_trees::core::{
        CompositionEngine, EngineConfig, EngineTask, PhaseEvent,
    };

    // The hardest corruption class: labels that are *internally* consistent — a
    // complete, correct proof of the wrong tree — so no local syntactic check can
    // reject them. The verification wave compares them against the maintained tree
    // and must re-prove both certificate families.
    let g = generators::workload(26, 0.25, 61);
    let mut engine = CompositionEngine::new(&g, EngineTask::Mst, EngineConfig::seeded(61));
    let report = engine.run();
    assert!(report.legal);

    assert!(
        engine.corrupt_stale_certificates(),
        "the stale tree's certificates must differ from the maintained ones"
    );
    match engine.step() {
        PhaseEvent::Recovered {
            families_rebuilt,
            labels_written,
            rounds,
        } => {
            assert!(
                families_rebuilt >= 2,
                "stale NCA and redundant certificates must both be re-proved"
            );
            assert!(labels_written > 0);
            assert!(rounds > 0, "recovery waves are charged real rounds");
        }
        other => panic!("stale certificates must be detected, got {other:?}"),
    }
    assert!(engine.report().legal, "the tree itself was never damaged");
}
