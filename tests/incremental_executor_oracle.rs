//! Differential oracle tests for the incremental enabled-set executor.
//!
//! The executor maintains the enabled set (and cached pending transitions)
//! incrementally: after a step it re-evaluates guards only in the closed
//! neighborhoods of the nodes that moved. These tests pin the core invariant —
//! the incremental set is *exactly* the set a brute-force full rescan computes —
//! after every step, across all five daemons and under `corrupt`-style fault
//! injection, for both a toy algorithm and the real spanning-tree layer.

use self_stabilizing_spanning_trees::core::bfs::RootedBfs;
use self_stabilizing_spanning_trees::core::spanning::MinIdSpanningTree;
use self_stabilizing_spanning_trees::graph::{generators, Graph, NodeId};
use self_stabilizing_spanning_trees::runtime::{
    Algorithm, ExecMode, Executor, ExecutorConfig, SchedulerKind,
};

/// Steps `exec` until quiescence (or `max_steps`), asserting after every step that the
/// incrementally maintained enabled set equals the brute-force rescan oracle; every
/// `perturb_every` steps, injects a random register-corruption fault first.
fn drive_with_oracle<A: Algorithm>(
    exec: &mut Executor<'_, A>,
    max_steps: usize,
    perturb_every: Option<usize>,
    label: &str,
) {
    // One scratch buffer reused across the whole step loop (`enabled_nodes_into`):
    // reading the maintained set costs no per-step allocation.
    let mut maintained = Vec::new();
    exec.enabled_nodes_into(&mut maintained);
    assert_eq!(
        maintained,
        exec.rescan_enabled_nodes(),
        "{label}: initial set"
    );
    for step in 0..max_steps {
        if exec.is_quiescent() {
            match perturb_every {
                // Keep perturbing until the step budget runs out, so the oracle is
                // also exercised on recovery executions.
                Some(_) if step + 50 < max_steps => {}
                _ => break,
            }
        }
        if let Some(every) = perturb_every {
            if step % every == every - 1 {
                exec.corrupt_random_nodes(3);
                exec.enabled_nodes_into(&mut maintained);
                assert_eq!(
                    maintained,
                    exec.rescan_enabled_nodes(),
                    "{label}: after corruption at step {step}"
                );
            }
        }
        exec.step_once();
        exec.enabled_nodes_into(&mut maintained);
        assert_eq!(
            maintained,
            exec.rescan_enabled_nodes(),
            "{label}: after step {step}"
        );
        assert_eq!(maintained.len(), exec.enabled_count(), "{label}: count");
        assert_eq!(
            exec.is_quiescent(),
            exec.rescan_enabled_nodes().is_empty(),
            "{label}: quiescence flag at step {step}"
        );
    }
}

fn workloads() -> Vec<(&'static str, Graph)> {
    vec![
        ("ring", generators::shuffle_idents(&generators::ring(12), 3)),
        (
            "grid",
            generators::shuffle_idents(&generators::grid(4, 4), 3),
        ),
        ("star", generators::shuffle_idents(&generators::star(10), 3)),
        ("random", generators::workload(20, 0.2, 3)),
    ]
}

#[test]
fn spanning_tree_enabled_set_matches_oracle_under_all_daemons() {
    for (topo, g) in workloads() {
        for kind in SchedulerKind::all() {
            let config = ExecutorConfig::with_scheduler(7, kind);
            let mut exec = Executor::from_arbitrary(&g, MinIdSpanningTree, config);
            drive_with_oracle(&mut exec, 400, None, &format!("{topo}/{kind}"));
        }
    }
}

#[test]
fn enabled_set_matches_oracle_under_fault_injection() {
    for (topo, g) in workloads() {
        for kind in SchedulerKind::all() {
            let config = ExecutorConfig::with_scheduler(13, kind);
            let mut exec = Executor::from_arbitrary(&g, MinIdSpanningTree, config);
            drive_with_oracle(
                &mut exec,
                300,
                Some(17),
                &format!("perturbed {topo}/{kind}"),
            );
        }
    }
}

#[test]
fn rooted_bfs_enabled_set_matches_oracle_with_targeted_corruption() {
    let g = generators::workload(24, 0.15, 5);
    let root_ident = g.ident(g.min_ident_node());
    for kind in SchedulerKind::all() {
        let config = ExecutorConfig::with_scheduler(11, kind);
        let mut exec = Executor::from_arbitrary(&g, RootedBfs::new(root_ident), config);
        exec.run_to_quiescence(2_000_000).expect("BFS converges");
        // Targeted single-register faults, including "helpful-looking" ones.
        for (i, v) in [0usize, 5, 11, 17, 23].into_iter().enumerate() {
            let mut state = exec.state(NodeId(v));
            state.dist = if i % 2 == 0 { 0 } else { state.dist + 7 };
            exec.corrupt_node(NodeId(v), state);
            drive_with_oracle(&mut exec, 200, None, &format!("targeted fault {i}/{kind}"));
        }
    }
}

#[test]
fn full_rescan_mode_agrees_with_incremental_on_final_configurations() {
    let g = generators::workload(18, 0.25, 9);
    for kind in [
        SchedulerKind::Synchronous,
        SchedulerKind::RoundRobin,
        SchedulerKind::Adversarial,
    ] {
        let config = ExecutorConfig::with_scheduler(3, kind);
        let mut inc = Executor::from_arbitrary(&g, MinIdSpanningTree, config);
        let mut full = Executor::from_arbitrary(
            &g,
            MinIdSpanningTree,
            config.with_mode(ExecMode::FullRescan),
        );
        let qi = inc
            .run_to_quiescence(2_000_000)
            .expect("incremental converges");
        let qf = full
            .run_to_quiescence(2_000_000)
            .expect("full rescan converges");
        // These daemons select order-insensitively, so the two modes take the same
        // trajectory: identical configurations and identical cost accounting.
        assert_eq!(inc.states(), full.states(), "daemon {kind}");
        assert_eq!(
            (qi.moves, qi.rounds, qi.steps),
            (qf.moves, qf.rounds, qf.steps)
        );
        assert!(qi.legal && qf.legal);
    }
}

#[test]
fn incremental_mode_saves_at_least_5x_guard_evaluations_on_recovery() {
    // The acceptance criterion of the incremental executor, measured in guard
    // evaluations (deterministic, unlike wall clock): steady-state recovery from a
    // small fault batch must cost at least 5x less than the full-rescan reference.
    // The companion criterion bench (benches/executor_scale.rs) shows the same gap
    // in wall-clock time on a 10k-node graph.
    let g = generators::workload(400, 0.02, 21);
    let root_ident = g.ident(g.min_ident_node());
    let recovery_cost = |mode: ExecMode| {
        let config = ExecutorConfig::with_scheduler(21, SchedulerKind::Central).with_mode(mode);
        let mut exec = Executor::from_arbitrary(&g, RootedBfs::new(root_ident), config);
        exec.run_to_quiescence(5_000_000).expect("converges");
        let before = exec.guard_evaluations();
        exec.corrupt_random_nodes(4);
        exec.run_to_quiescence(5_000_000).expect("recovers");
        exec.guard_evaluations() - before
    };
    let incremental = recovery_cost(ExecMode::Incremental);
    let full = recovery_cost(ExecMode::FullRescan);
    assert!(
        incremental * 5 <= full,
        "recovery cost: incremental {incremental} vs full rescan {full} guard evaluations \
         — expected at least a 5x gap"
    );
}
