//! End-to-end integration tests: the composed silent self-stabilizing constructions
//! (BFS, MST, MDST) on a zoo of topologies, checked against the sequential oracles.

use self_stabilizing_spanning_trees::core::bfs::RootedBfs;
use self_stabilizing_spanning_trees::core::spanning::MinIdSpanningTree;
use self_stabilizing_spanning_trees::core::{construct_mdst, construct_mst, EngineConfig};
use self_stabilizing_spanning_trees::graph::{bfs, fr, generators, mst, Graph};
use self_stabilizing_spanning_trees::runtime::{Executor, ExecutorConfig, SchedulerKind};

/// A small zoo of connected workloads with distinct weights and shuffled identities.
fn zoo(seed: u64) -> Vec<(&'static str, Graph)> {
    vec![
        (
            "ring",
            generators::randomize_weights(
                &generators::shuffle_idents(&generators::ring(14), seed),
                seed,
            ),
        ),
        (
            "grid",
            generators::randomize_weights(
                &generators::shuffle_idents(&generators::grid(4, 4), seed),
                seed,
            ),
        ),
        (
            "lollipop",
            generators::randomize_weights(
                &generators::shuffle_idents(&generators::lollipop(6, 6), seed),
                seed,
            ),
        ),
        ("sparse random", generators::workload(20, 0.12, seed)),
        ("dense random", generators::workload(16, 0.45, seed)),
        (
            "tree",
            generators::randomize_weights(
                &generators::shuffle_idents(&generators::random_tree(18, seed), seed),
                seed,
            ),
        ),
    ]
}

#[test]
fn mst_construction_matches_kruskal_on_the_zoo() {
    for (name, g) in zoo(3) {
        let report = construct_mst(&g, &EngineConfig::seeded(3));
        assert!(report.legal, "{name}: output must be an MST");
        let opt = mst::kruskal(&g).unwrap().total_weight(&g);
        assert_eq!(report.tree.total_weight(&g), opt, "{name}");
        assert!(report.tree.is_spanning_tree_of(&g), "{name}");
    }
}

#[test]
fn mdst_construction_is_fr_certified_on_the_zoo() {
    for (name, g) in zoo(5) {
        let report = construct_mdst(&g, &EngineConfig::seeded(5));
        assert!(report.legal, "{name}: output must be FR-certified");
        assert!(fr::is_fr_tree(&g, &report.tree), "{name}");
        // The FR guarantee relative to the cut lower bound.
        let lb = self_stabilizing_spanning_trees::graph::properties::min_degree_lower_bound(&g);
        assert!(
            report.tree.max_degree() >= lb.min(report.tree.max_degree()),
            "{name}"
        );
    }
}

#[test]
fn mdst_degree_is_within_one_of_exact_optimum_on_small_graphs() {
    for seed in 0..4 {
        let g = generators::workload(10, 0.4, seed);
        let report = construct_mdst(&g, &EngineConfig::seeded(seed));
        let (opt, _) = fr::exact_min_degree_spanning_tree(&g, 14);
        assert!(
            report.tree.max_degree() <= opt + 1,
            "seed {seed}: degree {} vs OPT {opt}",
            report.tree.max_degree()
        );
    }
}

#[test]
fn bfs_layer_is_correct_under_every_daemon() {
    let g = generators::workload(24, 0.15, 9);
    let gateway = g.min_ident_node();
    let oracle = bfs::distances_from(&g, gateway);
    for kind in SchedulerKind::all() {
        let mut exec = Executor::from_arbitrary(
            &g,
            RootedBfs::new(g.ident(gateway)),
            ExecutorConfig::with_scheduler(1, kind),
        );
        let q = exec.run_to_quiescence(5_000_000).unwrap();
        assert!(q.silent && q.legal, "daemon {kind}");
        let tree = exec.extract_tree().unwrap();
        let depths = tree.depths();
        for v in g.nodes() {
            assert_eq!(
                depths[v.index()],
                oracle[v.index()],
                "daemon {kind}, node {v}"
            );
        }
    }
}

#[test]
fn spanning_tree_layer_is_scheduler_independent() {
    // The guarded-rule layer stabilizes on the *same* canonical tree under every daemon
    // (its fixed point does not depend on the schedule).
    let g = generators::workload(18, 0.2, 13);
    let mut trees = Vec::new();
    for kind in SchedulerKind::all() {
        let mut exec = Executor::from_arbitrary(
            &g,
            MinIdSpanningTree,
            ExecutorConfig::with_scheduler(2, kind),
        );
        let q = exec.run_to_quiescence(5_000_000).unwrap();
        assert!(q.legal, "daemon {kind}");
        trees.push(exec.extract_tree().unwrap());
    }
    for t in &trees[1..] {
        assert_eq!(
            t.parents(),
            trees[0].parents(),
            "all daemons reach the same fixed point"
        );
    }
}

#[test]
fn composed_constructions_report_consistent_round_ledgers() {
    let g = generators::workload(16, 0.3, 21);
    for report in [
        construct_mst(&g, &EngineConfig::seeded(21)),
        construct_mdst(&g, &EngineConfig::seeded(21)),
    ] {
        let sum: u64 = report.phase_rounds.iter().map(|(_, r)| r).sum();
        assert_eq!(sum, report.total_rounds);
        assert!(report.max_register_bits > 0);
    }
}
