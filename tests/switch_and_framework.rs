//! Cross-crate tests of the PLS-guided framework: loop-free switches feeding the
//! potentials of §III/§VI/§VIII, and the equivalence between the distributed-composition
//! reports and the sequential reference engines.

use self_stabilizing_spanning_trees::core::framework::{local_search, nested_local_search};
use self_stabilizing_spanning_trees::core::potential::{BfsPotential, MdstPotential, MstPotential};
use self_stabilizing_spanning_trees::core::switch::loop_free_switch;
use self_stabilizing_spanning_trees::core::{construct_mst, EngineConfig};
use self_stabilizing_spanning_trees::graph::{bfs, fr, generators, mst};
use self_stabilizing_spanning_trees::labeling::redundant::RedundantScheme;
use self_stabilizing_spanning_trees::labeling::scheme::{Instance, ProofLabelingScheme};

#[test]
fn mst_local_search_via_loop_free_switches_reaches_the_optimum() {
    // Drive Algorithm 1 manually, but perform every swap through the loop-free switch
    // module, verifying malleability at every stage.
    for seed in 0..3 {
        let g = generators::workload(16, 0.35, seed);
        let mut tree = bfs::bfs_tree(&g, g.min_ident_node());
        let mut guard = 0;
        while let Some((e, f)) =
            self_stabilizing_spanning_trees::labeling::mst_fragments::fragment_guided_swap(
                &g, &tree,
            )
        {
            let outcome = loop_free_switch(&g, &tree, e, f);
            for stage in &outcome.stages {
                assert!(stage.tree.is_spanning_tree_of(&g), "loop-freedom");
                let inst = Instance {
                    graph: &g,
                    parents: stage.tree.parents(),
                };
                assert!(
                    RedundantScheme.verify_all(&inst, &stage.labels).accepted(),
                    "malleability at '{}'",
                    stage.description
                );
            }
            tree = outcome.tree;
            guard += 1;
            assert!(guard < 200);
        }
        assert!(mst::is_mst(&g, &tree), "seed {seed}");
    }
}

#[test]
fn sequential_engines_and_composed_construction_agree_on_the_mst() {
    let g = generators::workload(18, 0.3, 11);
    let start = bfs::bfs_tree(&g, g.min_ident_node());
    let (seq_tree, seq_stats) = local_search(&g, start, &MstPotential);
    let report = construct_mst(&g, &EngineConfig::seeded(11));
    // With distinct weights the MST is unique, so both approaches produce the same tree
    // weight (and edge set).
    assert_eq!(seq_tree.total_weight(&g), report.tree.total_weight(&g));
    assert_eq!(seq_stats.final_potential, 0);
}

#[test]
fn bfs_and_mdst_engines_hit_their_targets() {
    let g = generators::ring(20);
    let (bfs_tree, stats) = local_search(&g, stst_path_tree(20), &BfsPotential);
    assert!(bfs::is_bfs_tree(&g, &bfs_tree));
    assert_eq!(stats.final_potential, 0);

    let g = generators::workload(14, 0.4, 2);
    let start = bfs::bfs_tree(&g, g.min_ident_node());
    let (mdst_tree, stats) = nested_local_search(&g, start, &MdstPotential);
    assert!(fr::is_fr_tree(&g, &mdst_tree));
    assert_eq!(stats.final_potential, 0);
}

fn stst_path_tree(n: usize) -> self_stabilizing_spanning_trees::graph::Tree {
    self_stabilizing_spanning_trees::graph::Tree::path(n)
}

#[test]
fn switch_rounds_grow_linearly_with_the_cycle_length() {
    // E2's shape: the cost of a switch is governed by the tree height / cycle length,
    // i.e. O(n), not O(n²).
    let mut last = 0u64;
    for n in [16usize, 32, 64] {
        let g = generators::ring(n);
        let t = bfs::bfs_tree(&g, self_stabilizing_spanning_trees::graph::NodeId(0));
        let e = g
            .edge_ids()
            .find(|&e| {
                let ed = g.edge(e);
                !t.contains_edge(ed.u, ed.v)
            })
            .unwrap();
        let f = t.fundamental_cycle_tree_edges(&g, e)[n / 4];
        let outcome = loop_free_switch(&g, &t, e, f);
        assert!(
            outcome.rounds <= 8 * n as u64,
            "n = {n}: {} rounds",
            outcome.rounds
        );
        assert!(
            outcome.rounds >= last / 4,
            "cost should grow roughly linearly"
        );
        last = outcome.rounds;
    }
}
