//! Silence and certification: once a composed construction has stabilized, the
//! proof-labeling schemes it relies on accept the configuration at every node, and the
//! registers exposed by the guarded-rule layer translate into accepted labels — the
//! defining property of a *silent* algorithm (§II-C).

use self_stabilizing_spanning_trees::core::spanning::MinIdSpanningTree;
use self_stabilizing_spanning_trees::core::{construct_mdst, construct_mst, EngineConfig};
use self_stabilizing_spanning_trees::graph::{generators, NodeId};
use self_stabilizing_spanning_trees::labeling::distance::{DistanceLabel, DistanceScheme};
use self_stabilizing_spanning_trees::labeling::fr_labels::FrScheme;
use self_stabilizing_spanning_trees::labeling::mst_fragments::FragmentScheme;
use self_stabilizing_spanning_trees::labeling::nca::NcaScheme;
use self_stabilizing_spanning_trees::labeling::redundant::RedundantScheme;
use self_stabilizing_spanning_trees::labeling::scheme::{Instance, ProofLabelingScheme};
use self_stabilizing_spanning_trees::labeling::size::{SizeLabel, SizeScheme};
use self_stabilizing_spanning_trees::runtime::{Executor, ExecutorConfig};

#[test]
fn stabilized_mst_is_accepted_by_every_relevant_scheme() {
    let g = generators::workload(22, 0.25, 33);
    let report = construct_mst(&g, &EngineConfig::seeded(33));
    assert!(report.legal);
    let tree = &report.tree;
    let inst = Instance::from_tree(&g, tree);
    // Spanning-tree schemes.
    for accepted in [
        DistanceScheme
            .verify_all(&inst, &DistanceScheme.prove(&g, tree))
            .accepted(),
        SizeScheme
            .verify_all(&inst, &SizeScheme.prove(&g, tree))
            .accepted(),
        RedundantScheme
            .verify_all(&inst, &RedundantScheme.prove(&g, tree))
            .accepted(),
        NcaScheme
            .verify_all(&inst, &NcaScheme.prove(&g, tree))
            .accepted(),
        // MST-specific fragment labels: φ(T) = 0 means every verifier accepts.
        FragmentScheme
            .verify_all(&inst, &FragmentScheme.prove(&g, tree))
            .accepted(),
    ] {
        assert!(accepted);
    }
}

#[test]
fn stabilized_mdst_is_fr_certified_at_every_node() {
    let g = generators::workload(18, 0.35, 44);
    let report = construct_mdst(&g, &EngineConfig::seeded(44));
    assert!(report.legal);
    let inst = Instance::from_tree(&g, &report.tree);
    let labels = FrScheme.prove(&g, &report.tree);
    let outcome = FrScheme.verify_all(&inst, &labels);
    assert!(
        outcome.accepted(),
        "rejecting nodes: {:?}",
        outcome.rejecting
    );
    // Label sizes are the O(log n)-class budget of Corollary 8.1 (codec-derived
    // accounting: each field costs its fixed instance width plus one escape bit).
    let ctx = stst_runtime::CodecCtx::for_graph(&g);
    assert!(FrScheme.max_label_bits(&ctx, &labels) <= 46);
}

#[test]
fn spanning_registers_translate_into_accepted_distance_and_size_labels() {
    // The guarded-rule layer maintains (root, parent, dist, size); projecting those
    // registers onto the distance and size schemes must yield accepted labelings — this
    // is what makes the layer silent *with* local verification rather than by fiat.
    let g = generators::workload(26, 0.18, 55);
    let mut exec = Executor::from_arbitrary(&g, MinIdSpanningTree, ExecutorConfig::seeded(55));
    let q = exec.run_to_quiescence(5_000_000).unwrap();
    assert!(q.silent && q.legal);
    let tree = exec.extract_tree().unwrap();
    let root_ident = g.ident(tree.root());
    let dist_labels: Vec<DistanceLabel> = exec
        .states()
        .iter()
        .map(|s| DistanceLabel {
            root: root_ident,
            dist: s.dist,
        })
        .collect();
    let size_labels: Vec<SizeLabel> = exec
        .states()
        .iter()
        .map(|s| SizeLabel {
            root: root_ident,
            size: s.size,
        })
        .collect();
    let inst = Instance::from_tree(&g, &tree);
    assert!(DistanceScheme.verify_all(&inst, &dist_labels).accepted());
    assert!(SizeScheme.verify_all(&inst, &size_labels).accepted());
}

#[test]
fn a_single_corrupted_register_is_locally_detectable() {
    // Silence requires that *illegality is detected locally*: corrupt one stabilized
    // register and check that some node in its 1-hop neighborhood becomes enabled
    // (detects the inconsistency), not some far-away node.
    let g = generators::workload(24, 0.2, 66);
    let mut exec = Executor::from_arbitrary(&g, MinIdSpanningTree, ExecutorConfig::seeded(66));
    exec.run_to_quiescence(5_000_000).unwrap();
    let victim = NodeId(5);
    let mut corrupted = exec.state(victim);
    corrupted.dist += 3;
    corrupted.size += 1;
    exec.corrupt_node(victim, corrupted);
    let enabled = exec.enabled_nodes();
    assert!(!enabled.is_empty(), "the fault must be detected");
    let neighborhood: Vec<NodeId> = std::iter::once(victim)
        .chain(g.neighbors(victim).iter().map(|&(w, _)| w))
        .collect();
    assert!(
        enabled.iter().all(|v| neighborhood.contains(v)),
        "detection must be local to the fault: enabled = {enabled:?}"
    );
}
