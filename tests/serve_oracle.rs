//! Differential oracle and reader-vs-writer lockstep for the serving layer.
//!
//! * **Every answer equals direct tree traversal** on the pinned epoch's tree: the
//!   label-only query engine is checked against an [`NcaOracle`] + depth table built
//!   from the snapshot's own parent vector, for every pair of nodes, on both tasks
//!   and both store modes. Fragment answers are checked against the fragment
//!   *structures* (the FR certificate's good/fragment partition; the Borůvka level
//!   traces of a fresh prover).
//! * **Decode-free means decode-free**: on packed stores of a certified (fault-free)
//!   configuration, no query may fall back to a full decode.
//! * **Reader-vs-writer lockstep**: a reader pinned to an old epoch replays a query
//!   stream bit-identically before and after the writer publishes a new epoch under
//!   churn — across engine thread counts {1, 2, 8} and both store modes — and every
//!   (mode, threads) combination serves the same answers.
//! * **Wave-boundary flushing**: obs counters stay at zero until the reader's epoch
//!   boundary, then account exactly the queries served; enabled observability never
//!   changes an answer.

use self_stabilizing_spanning_trees::churn::{trace, ChurnDriver};
use self_stabilizing_spanning_trees::core::engine::{CompositionEngine, EngineTask};
use self_stabilizing_spanning_trees::core::EngineConfig;
use self_stabilizing_spanning_trees::graph::nca::NcaOracle;
use self_stabilizing_spanning_trees::graph::{fr, generators, Graph, NodeId, Tree};
use self_stabilizing_spanning_trees::labeling::mst_fragments::assign_fragment_labels;
use self_stabilizing_spanning_trees::obs::Obs;
use self_stabilizing_spanning_trees::runtime::StoreMode;
use self_stabilizing_spanning_trees::serve::{
    Answer, LoadGen, Query, QueryMix, ServeHub, ServeSnapshot,
};

const MODES: [StoreMode; 2] = [StoreMode::Packed, StoreMode::Struct];
const THREADS: [usize; 3] = [1, 2, 8];

/// Depth table + NCA oracle rebuilt from the snapshot's own parent vector — the
/// direct-traversal reference every label-derived answer is compared against.
struct TraversalOracle {
    tree: Tree,
    oracle: NcaOracle,
    depths: Vec<usize>,
}

impl TraversalOracle {
    fn of(snapshot: &ServeSnapshot) -> Self {
        let tree = Tree::from_parents(snapshot.parents().to_vec())
            .expect("published snapshots carry a well-formed tree");
        let oracle = NcaOracle::new(&tree);
        let depths = tree.depths();
        TraversalOracle {
            tree,
            oracle,
            depths,
        }
    }

    fn expected(&self, query: Query) -> Option<Answer> {
        match query {
            Query::DistToRoot(v) => Some(Answer::Count(self.depths[v.0] as u64)),
            Query::TreeDist(u, v) => Some(Answer::Count(
                self.oracle.tree_distance(&self.tree, u, v) as u64,
            )),
            Query::NcaDepth(u, v) => {
                Some(Answer::Count(self.depths[self.oracle.nca(u, v).0] as u64))
            }
            Query::Ancestor(u, v) => Some(Answer::Flag(self.oracle.is_ancestor(u, v))),
            Query::SameFragment(..) => None, // fragment structure is checked separately
        }
    }
}

fn stabilized(graph: &Graph, task: EngineTask, seed: u64, threads: usize) -> CompositionEngine<'_> {
    let config = EngineConfig::seeded(seed).with_threads(threads);
    let mut engine = CompositionEngine::new(graph, task, config);
    engine.run();
    engine
}

#[test]
fn answers_match_direct_traversal_on_the_pinned_tree() {
    for task in [EngineTask::Mst, EngineTask::Mdst] {
        let g = generators::workload(40, 0.3, 9);
        let engine = stabilized(&g, task, 9, 1);
        for mode in MODES {
            let hub = ServeHub::new(mode);
            hub.publish_from_engine(&engine);
            let mut reader = hub.reader().expect("published");
            let oracle = TraversalOracle::of(reader.snapshot());
            let n = reader.snapshot().node_count();
            for u in 0..n {
                for v in 0..n {
                    let (u, v) = (NodeId(u), NodeId(v));
                    for query in [
                        Query::TreeDist(u, v),
                        Query::NcaDepth(u, v),
                        Query::Ancestor(u, v),
                    ] {
                        assert_eq!(
                            reader.query(query),
                            oracle.expected(query).unwrap(),
                            "{task:?}/{mode:?}: {query:?}"
                        );
                    }
                }
                let query = Query::DistToRoot(NodeId(u));
                assert_eq!(
                    reader.query(query),
                    oracle.expected(query).unwrap(),
                    "{task:?}/{mode:?}: {query:?}"
                );
            }
            let stats = reader.stats();
            match mode {
                StoreMode::Packed => assert_eq!(
                    stats.full_decodes, 0,
                    "{task:?}: certified packed labels must answer decode-free"
                ),
                StoreMode::Struct => assert_eq!(
                    stats.screened, 0,
                    "{task:?}: struct stores have no bit windows to screen"
                ),
            }
            assert_eq!(stats.total(), (3 * n * n + n) as u64);
        }
    }
}

#[test]
fn fragment_answers_match_the_fragment_structures() {
    // MDST: the FR certificate's good/fragment partition is the ground truth.
    let g = generators::workload(36, 0.3, 4);
    let engine = stabilized(&g, EngineTask::Mdst, 4, 1);
    let cert = fr::fr_certificate(engine.graph(), engine.tree())
        .expect("silent MDST configurations certify FR-trees");
    for mode in MODES {
        let hub = ServeHub::new(mode);
        hub.publish_from_engine(&engine);
        let mut reader = hub.reader().expect("published");
        let n = reader.snapshot().node_count();
        for u in 0..n {
            for v in 0..n {
                let expected = cert.good[u] && cert.good[v] && cert.fragment[u] == cert.fragment[v];
                assert_eq!(
                    reader.query(Query::SameFragment(NodeId(u), NodeId(v))),
                    Answer::Flag(expected),
                    "MDST/{mode:?}: fragment({u}, {v})"
                );
            }
        }
    }
    // MST: deepest-common-level equality over a fresh prover's Borůvka traces.
    let engine = stabilized(&g, EngineTask::Mst, 4, 1);
    let labels = assign_fragment_labels(engine.graph(), engine.tree());
    for mode in MODES {
        let hub = ServeHub::new(mode);
        hub.publish_from_engine(&engine);
        let mut reader = hub.reader().expect("published");
        let n = reader.snapshot().node_count();
        for u in 0..n {
            for v in 0..n {
                let level = labels[u].levels.len().min(labels[v].levels.len());
                let expected = level > 0
                    && labels[u].levels[level - 1].fragment == labels[v].levels[level - 1].fragment;
                assert_eq!(
                    reader.query(Query::SameFragment(NodeId(u), NodeId(v))),
                    Answer::Flag(expected),
                    "MST/{mode:?}: fragment({u}, {v})"
                );
            }
        }
        if mode == StoreMode::Packed {
            assert_eq!(
                reader.stats().full_decodes,
                0,
                "fragment queries screen too"
            );
        }
    }
}

/// Replays `count` queries from a fresh generator against the reader.
fn replay(
    reader: &mut self_stabilizing_spanning_trees::serve::ServeReader<'_>,
    count: usize,
    seed: u64,
) -> Vec<Answer> {
    let n = reader.snapshot().node_count();
    let mut gen = LoadGen::new(n, 0.99, QueryMix::default_mix(), seed);
    (0..count).map(|_| reader.query(gen.next_query())).collect()
}

#[test]
fn pinned_readers_are_immune_to_concurrent_publications() {
    let seed = 5;
    let g = generators::workload(48, 0.25, seed);
    // Link-only churn keeps the node set fixed, so one query stream is valid
    // against every epoch.
    let churn = trace::steady_poisson(&g, 4, 1.5, 0.0, seed);
    let mut all_before: Vec<Vec<Answer>> = Vec::new();
    let mut all_after: Vec<Vec<Answer>> = Vec::new();
    for mode in MODES {
        for threads in THREADS {
            let config = EngineConfig::seeded(seed).with_threads(threads);
            let engine = CompositionEngine::new(&g, EngineTask::Mst, config);
            let mut driver = ChurnDriver::new(engine);
            driver.stabilize();
            let mut hub = ServeHub::new(mode);
            hub.attach_obs(Obs::enabled());
            let first_epoch = hub.publish_from_engine(driver.engine());
            assert_eq!(first_epoch, 1);
            let mut reader = hub.reader().expect("published");
            let before = replay(&mut reader, 400, seed);

            // The writer mutates topology and publishes a new silent configuration.
            let mut published = 1;
            for batch in churn.batches.iter().filter(|b| !b.is_empty()) {
                driver.inject(batch);
                if driver.engine().is_publishable() {
                    published = hub.publish_from_engine(driver.engine());
                }
            }
            assert!(published > 1, "churn should yield further publications");
            assert!(reader.is_stale());
            assert_eq!(reader.epoch(), 1, "the pin does not move on its own");

            // Bit-identical replay off the old pin, indifferent to the publications.
            let after = replay(&mut reader, 400, seed);
            assert_eq!(
                before, after,
                "{mode:?}/{threads}t: old-epoch answers moved"
            );

            // The epoch boundary: the reader re-pins and now serves the new tree,
            // agreeing bit for bit with a brand-new reader.
            assert!(reader.refresh());
            assert_eq!(reader.epoch(), published);
            assert_eq!(reader.staleness_waves(), 0);
            let refreshed = replay(&mut reader, 400, seed);
            let mut fresh = hub.reader().expect("published");
            assert_eq!(refreshed, replay(&mut fresh, 400, seed));

            all_before.push(before);
            all_after.push(refreshed);
        }
    }
    // Engines are bit-identical across thread counts and store representation is
    // transparent, so every (mode, threads) combination serves the same answers.
    for sig in &all_before[1..] {
        assert_eq!(
            sig, &all_before[0],
            "pre-churn answers diverge across combos"
        );
    }
    for sig in &all_after[1..] {
        assert_eq!(
            sig, &all_after[0],
            "post-churn answers diverge across combos"
        );
    }
}

#[test]
fn concurrent_readers_verify_against_their_own_pinned_epoch_while_the_writer_churns() {
    let seed = 11;
    let g = generators::workload(48, 0.25, seed);
    let churn = trace::steady_poisson(&g, 5, 1.5, 0.0, seed);
    let engine = CompositionEngine::new(&g, EngineTask::Mst, EngineConfig::seeded(seed));
    let mut driver = ChurnDriver::new(engine);
    driver.stabilize();
    let hub = ServeHub::new(StoreMode::Packed);
    hub.publish_from_engine(driver.engine());
    std::thread::scope(|scope| {
        for reader_seed in 0..4u64 {
            let hub = &hub;
            scope.spawn(move || {
                let mut reader = hub.reader().expect("published");
                let mut oracle = TraversalOracle::of(reader.snapshot());
                let n = reader.snapshot().node_count();
                let mut gen = LoadGen::new(n, 0.99, QueryMix::default_mix(), reader_seed);
                for i in 0..6000 {
                    let query = gen.next_query();
                    let answer = reader.query(query);
                    // Every traversal-checkable answer is verified against the
                    // reader's *own pinned* tree — publications by the writer must
                    // never bleed into a pinned epoch.
                    if let Some(expected) = oracle.expected(query) {
                        assert_eq!(answer, expected, "reader {reader_seed}: {query:?}");
                    }
                    if i % 1024 == 1023 && reader.refresh() {
                        oracle = TraversalOracle::of(reader.snapshot());
                    }
                }
                assert_eq!(reader.stats().full_decodes, 0);
            });
        }
        // Writer: churn → silence → publish, concurrently with the readers.
        for batch in churn.batches.iter().filter(|b| !b.is_empty()) {
            driver.inject(batch);
            if driver.engine().is_publishable() {
                hub.publish_from_engine(driver.engine());
            }
        }
    });
    assert!(hub.epoch() > 1);
}

#[test]
fn obs_tallies_flush_at_epoch_boundaries_only() {
    let g = generators::workload(32, 0.3, 2);
    let engine = stabilized(&g, EngineTask::Mst, 2, 1);
    let mut hub = ServeHub::new(StoreMode::Packed);
    let obs = Obs::enabled();
    hub.attach_obs(obs.clone());
    hub.publish_from_engine(&engine);
    let registry = obs.registry().expect("enabled");
    assert_eq!(registry.counter_value("serve_snapshots_published"), Some(1));

    let mut reader = hub.reader().expect("published");
    let answers: Vec<Answer> = replay(&mut reader, 300, 2);
    // Nothing reaches the registry on the per-query path.
    assert_eq!(registry.counter_value("queries_served"), None);
    reader.refresh();
    assert_eq!(registry.counter_value("queries_served"), Some(300));
    assert_eq!(registry.counter_value("serve_full_decodes"), Some(0));
    assert_eq!(registry.counter_value("serve_screen_hits"), Some(300));
    assert_eq!(registry.gauge_value("snapshot_staleness_waves"), Some(0));
    let per_kind: u64 = (0..self_stabilizing_spanning_trees::serve::QUERY_KINDS)
        .filter_map(|k| registry.counter_value(&format!("queries_served_{}", Query::kind_name(k))))
        .sum();
    assert_eq!(per_kind, 300, "per-kind counters partition the total");

    // Dropping a reader flushes what is left.
    let _ = replay(&mut reader, 50, 3);
    drop(reader);
    assert_eq!(registry.counter_value("queries_served"), Some(350));

    // Determinism transparency: a disabled-obs hub serves bit-identical answers.
    let silent_hub = ServeHub::new(StoreMode::Packed);
    silent_hub.publish_from_engine(&engine);
    let mut silent_reader = silent_hub.reader().expect("published");
    assert_eq!(answers, replay(&mut silent_reader, 300, 2));
}
