//! Integration tests for the observability layer (`stst-obs`) against *real*
//! runs of the stabilization stack.
//!
//! The unit tests inside `crates/obs` pin the codec and the registry in
//! isolation; these tests pin the *wiring*: the screen-counter invariant as
//! published to the registry across thread counts and store modes, byte-exact
//! JSONL round-trips of traces produced by actual executions, ring-overflow
//! behavior under a real event stream, wave ordering across all four layers
//! sharing one handle, and the `Repair` events a fault recovery emits.

use self_stabilizing_spanning_trees::churn::soak::{run_soak_observed, SoakConfig};
use self_stabilizing_spanning_trees::churn::{trace, ChurnDriver};
use self_stabilizing_spanning_trees::core::engine::{CompositionEngine, EngineTask, PhaseEvent};
use self_stabilizing_spanning_trees::core::spanning::MinIdSpanningTree;
use self_stabilizing_spanning_trees::core::EngineConfig;
use self_stabilizing_spanning_trees::graph::generators;
use self_stabilizing_spanning_trees::obs::{
    check_wave_order, Layer, Obs, TraceBuffer, TraceEvent, LAYERS,
};
use self_stabilizing_spanning_trees::runtime::{
    Executor, ExecutorConfig, SchedulerKind, StoreMode,
};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// The two-tier guard invariant, read from the *registry* (not the executor's
/// own counters): in packed mode every evaluation is either resolved by the
/// decode-free screen or by a full decode; the struct store has nothing to
/// screen and publishes zeros for both tiers. Holds at every thread count.
#[test]
fn screen_counter_invariant_holds_in_the_registry_across_threads() {
    let g = generators::workload(400, 0.015, 21);
    for store in [StoreMode::Packed, StoreMode::Struct] {
        for &threads in &THREAD_COUNTS {
            let obs = Obs::enabled();
            let config = ExecutorConfig::with_scheduler(6, SchedulerKind::Synchronous)
                .with_threads(threads)
                .with_store(store);
            let mut exec = Executor::from_arbitrary(&g, MinIdSpanningTree, config);
            exec.attach_obs(obs.clone());
            exec.run_to_quiescence(5_000_000).expect("converges");
            let registry = obs.registry().unwrap();
            let evals = registry
                .counter_value("executor_guard_evaluations")
                .unwrap_or(0);
            let hits = registry
                .counter_value("executor_guard_screen_hits")
                .unwrap_or(0);
            let decodes = registry
                .counter_value("executor_guard_full_decodes")
                .unwrap_or(0);
            let label = format!("{store:?}, {threads} threads");
            // At quiescence every delta has been flushed to the registry.
            assert_eq!(evals, exec.guard_evaluations(), "{label}");
            assert!(evals > 0, "{label}: no evaluations published");
            match store {
                StoreMode::Packed => {
                    assert_eq!(hits + decodes, evals, "{label}: tier accounting");
                    assert!(hits > 0, "{label}: the screen never resolved a guard");
                }
                StoreMode::Struct => {
                    assert_eq!((hits, decodes), (0, 0), "{label}: nothing to screen");
                }
            }
        }
    }
}

/// A trace produced by a real mixed-load run (soak + churn on one handle)
/// covers all four layers, passes the wave-order checker, and survives a
/// byte-identical JSONL round-trip.
#[test]
fn real_traces_cover_all_layers_order_cleanly_and_round_trip_exactly() {
    let g = generators::workload(40, 0.2, 11);
    let obs = Obs::enabled();
    // Soak layer (plus Engine and Executor through the engine's phases). The
    // smoke config keeps every stressor on, including kill-and-restore cycles.
    let config = SoakConfig::smoke(11);
    let report = run_soak_observed(&g, EngineTask::Mst, &config, obs.clone());
    assert!(report.legal);
    assert!(report.restores > 0, "the smoke soak must kill-and-restore");
    // Churn layer on the same handle.
    let engine = CompositionEngine::new(&g, EngineTask::Mst, EngineConfig::seeded(11));
    let mut driver = ChurnDriver::new(engine);
    driver.attach_obs(obs.clone());
    let churn = trace::steady_poisson(&g, 4, 1.5, 0.0, 11);
    driver.run_trace(&churn);

    let buffer = obs.trace().unwrap();
    let events = buffer.snapshot();
    assert!(!events.is_empty());
    assert_eq!(
        buffer.dropped(),
        0,
        "the default ring must not overflow here"
    );
    for layer in LAYERS {
        assert!(
            events.iter().any(|(_, e)| e.layer() == layer),
            "layer {} emitted nothing",
            layer.as_str()
        );
    }
    check_wave_order(&events, false).expect("wave ordering");
    // Byte-exact round trip: emit -> parse -> re-emit.
    let jsonl = buffer.to_jsonl();
    let parsed = TraceBuffer::parse_jsonl(&jsonl).expect("every line parses");
    assert_eq!(parsed, events);
    let mut re_emitted = String::new();
    for (seq, event) in &parsed {
        re_emitted.push_str(&event.jsonl(*seq));
        re_emitted.push('\n');
    }
    assert_eq!(re_emitted, jsonl, "re-emit must be byte-identical");
    // The per-wave events carry the stressors the soak actually injected.
    assert!(
        events.iter().any(|(_, e)| matches!(
            e,
            TraceEvent::Checkpoint {
                layer: Layer::Soak,
                ..
            }
        )),
        "soak checkpoints must be traced"
    );
    assert!(
        events.iter().any(|(_, e)| matches!(
            e,
            TraceEvent::Restore {
                layer: Layer::Soak,
                ..
            }
        )),
        "soak restores must be traced"
    );
}

/// A tiny ring under a real event stream keeps the newest events, counts the
/// evictions, and the truncated trace still passes the order checker in
/// truncation-tolerant mode.
#[test]
fn ring_overflow_on_a_real_run_keeps_newest_events_and_counts_drops() {
    let g = generators::workload(60, 0.1, 5);
    let obs = Obs::with_trace_capacity(16);
    let mut engine = CompositionEngine::new(&g, EngineTask::Mst, EngineConfig::seeded(5));
    engine.attach_obs(obs.clone());
    engine.run();
    let buffer = obs.trace().unwrap();
    assert_eq!(buffer.len(), 16, "ring filled to capacity");
    assert!(buffer.dropped() > 0, "a full engine run overflows 16 slots");
    assert_eq!(
        buffer.dropped(),
        obs.registry()
            .unwrap()
            .counter_value("trace_dropped_events")
            .unwrap_or(0),
        "the registry mirrors the ring's eviction count"
    );
    let events = buffer.snapshot();
    // Newest retained: the final event is the engine reaching silence.
    let seqs: Vec<u64> = events.iter().map(|(seq, _)| *seq).collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]));
    assert_eq!(
        *seqs.last().unwrap() + 1,
        buffer.dropped() + buffer.len() as u64,
        "retained suffix is contiguous with the eviction count"
    );
    check_wave_order(&events, true).expect("truncated traces order cleanly");
}

/// Fault recovery emits `Repair` events naming the rebuilt label families, and
/// the corruption itself is traced.
#[test]
fn fault_recovery_emits_corruption_and_repair_events() {
    let g = generators::workload(60, 0.1, 13);
    let obs = Obs::enabled();
    let mut engine = CompositionEngine::new(&g, EngineTask::Mst, EngineConfig::seeded(13));
    engine.attach_obs(obs.clone());
    engine.run();
    let before = obs.trace().unwrap().len();
    let hit = engine.corrupt_random_labels(6);
    assert!(!hit.is_empty());
    let recovery = engine.step();
    assert!(matches!(recovery, PhaseEvent::Recovered { .. }));
    let events = obs.trace().unwrap().snapshot();
    let tail = &events[before.min(events.len())..];
    assert!(
        tail.iter().any(|(_, e)| matches!(
            e,
            TraceEvent::CorruptionInjected { layer: Layer::Engine, nodes, .. } if *nodes > 0
        )),
        "the injection must be traced"
    );
    assert!(
        tail.iter().any(|(_, e)| matches!(
            e,
            TraceEvent::Repair {
                layer: Layer::Engine,
                ..
            }
        )),
        "the recovery must emit Repair events for the rebuilt families"
    );
    let registry = obs.registry().unwrap();
    assert!(
        registry
            .counter_value("engine_corruptions_injected")
            .unwrap_or(0)
            >= 6
    );
    assert!(
        registry
            .counter_value("engine_families_rebuilt")
            .unwrap_or(0)
            >= 1
    );
}
