//! Differential oracle for live topology churn.
//!
//! After **every** injected topology event batch — across all five daemons, several
//! seeds, and worker-thread counts {1, 2, 8} — the engine's incrementally repaired
//! state must be *bit-identical* to a from-scratch rebuild on the mutated graph:
//!
//! * every label family equals its fresh prover on `(mutated graph, current tree)`;
//! * the re-stabilized tree is the (unique, by distinct weights) minimum spanning
//!   tree of the mutated graph — re-checked against Kruskal after every event and
//!   against a brand-new engine run at the end;
//! * for the MDST task, every recovery re-certifies an FR-tree (degree within +1 of
//!   the optimum);
//! * executions are bit-identical at every thread count (trees, label-write and
//!   round counters, per-batch recovery reports);
//! * severing batches are reported as `Partitioned` and leave nothing committed.

use self_stabilizing_spanning_trees::churn::{trace, ChurnDriver, TopologyEvent};
use self_stabilizing_spanning_trees::core::engine::{CompositionEngine, EngineTask};
use self_stabilizing_spanning_trees::core::{EngineConfig, Relabel};
use self_stabilizing_spanning_trees::graph::mst::kruskal;
use self_stabilizing_spanning_trees::graph::{fr, generators, NodeId};
use self_stabilizing_spanning_trees::labeling::mst_fragments::assign_fragment_labels;
use self_stabilizing_spanning_trees::labeling::nca::assign_nca_labels;
use self_stabilizing_spanning_trees::labeling::redundant::RedundantScheme;
use self_stabilizing_spanning_trees::labeling::scheme::ProofLabelingScheme;
use self_stabilizing_spanning_trees::runtime::SchedulerKind;

const THREADS: [usize; 3] = [1, 2, 8];

/// Everything a churned run is compared on across thread counts.
#[derive(Debug, PartialEq)]
struct Signature {
    parents: Vec<Option<NodeId>>,
    labels_written: u64,
    total_rounds: u64,
    batch_reports: Vec<(bool, u64, u64, u64)>, // (applied, rounds, labels, switches)
}

fn assert_labels_match_fresh_provers(engine: &CompositionEngine<'_>, context: &str) {
    let g = engine.graph();
    let t = engine.tree();
    assert!(t.is_spanning_tree_of(g), "{context}: tree spans the graph");
    if let Some(fragments) = engine.fragment_labels() {
        assert_eq!(
            fragments,
            assign_fragment_labels(g, t).as_slice(),
            "{context}: fragment labels == fresh prover"
        );
    }
    assert_eq!(
        engine.nca_labels(),
        assign_nca_labels(g, t).as_slice(),
        "{context}: NCA labels == fresh prover"
    );
    assert_eq!(
        engine.redundant_labels(),
        RedundantScheme.prove(g, t).as_slice(),
        "{context}: redundant labels == fresh prover"
    );
}

#[test]
fn mst_churn_is_bit_identical_to_from_scratch_rebuilds() {
    for kind in SchedulerKind::all() {
        for seed in [1u64, 2] {
            let g = generators::workload(24, 0.3, seed);
            // Mixed churn: single-edge events plus node joins and leaves.
            let churn = trace::steady_poisson(&g, 6, 1.2, 0.25, seed);
            let mut signatures: Vec<Signature> = Vec::new();
            for &threads in &THREADS {
                let config = EngineConfig::seeded(seed)
                    .with_scheduler(kind)
                    .with_threads(threads);
                let engine = CompositionEngine::new(&g, EngineTask::Mst, config);
                let mut driver = ChurnDriver::new(engine);
                driver.stabilize();
                let mut batch_reports = Vec::new();
                for (i, batch) in churn.batches.iter().enumerate() {
                    if batch.is_empty() {
                        continue;
                    }
                    let report = driver.inject(batch);
                    batch_reports.push((
                        report.applied,
                        report.recovery_rounds,
                        report.labels_written,
                        report.switches,
                    ));
                    if !report.applied {
                        continue;
                    }
                    assert!(report.legal, "{kind}, seed {seed}, batch {i}: legal");
                    let context = format!("{kind}, seed {seed}, threads {threads}, batch {i}");
                    let engine = driver.engine();
                    assert_labels_match_fresh_provers(engine, &context);
                    // The repaired-and-resumed tree is the unique MST of the
                    // mutated graph.
                    let mutated = engine.graph();
                    assert_eq!(
                        engine.tree().total_weight(mutated),
                        kruskal(mutated).unwrap().total_weight(mutated),
                        "{context}: MST weight optimal"
                    );
                }
                // Final cross-check against a brand-new engine on the churned graph:
                // same root election, same unique MST, bit-identical parent vector.
                let final_graph = driver.engine().graph().clone();
                let mut fresh = CompositionEngine::new(
                    &final_graph,
                    EngineTask::Mst,
                    EngineConfig::seeded(seed).with_scheduler(kind),
                );
                let rebuilt = fresh.run();
                assert!(rebuilt.legal);
                assert_eq!(
                    fresh.tree(),
                    driver.engine().tree(),
                    "{kind}, seed {seed}, threads {threads}: churned tree == rebuilt tree"
                );
                let engine = driver.engine();
                signatures.push(Signature {
                    parents: engine.tree().parents().to_vec(),
                    labels_written: engine.labels_written(),
                    total_rounds: engine.total_rounds(),
                    batch_reports,
                });
            }
            for (i, sig) in signatures.iter().enumerate().skip(1) {
                assert_eq!(
                    sig, &signatures[0],
                    "{kind}, seed {seed}: threads {} diverged from threads 1",
                    THREADS[i]
                );
            }
        }
    }
}

#[test]
fn incremental_and_from_scratch_relabeling_agree_under_churn() {
    // The retained reference mode (every family re-proved after every wave) must
    // walk through the same trees while writing many more labels.
    for seed in [3u64, 4] {
        let g = generators::workload(20, 0.3, seed);
        let churn = trace::steady_poisson(&g, 5, 1.0, 0.0, seed);
        let run = |relabel: Relabel| {
            let config = EngineConfig::seeded(seed).with_relabel(relabel);
            let engine = CompositionEngine::new(&g, EngineTask::Mst, config);
            let mut driver = ChurnDriver::new(engine);
            driver.stabilize();
            let summary = driver.run_trace(&churn);
            assert!(summary.all_legal, "seed {seed}, {relabel:?}");
            let engine = driver.into_engine();
            (engine.tree().clone(), engine.labels_written())
        };
        let (inc_tree, inc_labels) = run(Relabel::Incremental);
        let (full_tree, full_labels) = run(Relabel::FromScratch);
        assert_eq!(inc_tree, full_tree, "seed {seed}: same stabilized tree");
        assert!(
            inc_labels < full_labels,
            "seed {seed}: incremental wrote {inc_labels} labels, from-scratch {full_labels}"
        );
    }
}

#[test]
fn mdst_churn_recertifies_fr_trees_after_every_event() {
    for kind in SchedulerKind::all() {
        let seed = 5u64;
        let g = generators::workload(14, 0.35, seed);
        let churn = trace::steady_poisson(&g, 5, 1.0, 0.0, seed);
        let config = EngineConfig::seeded(seed).with_scheduler(kind);
        let engine = CompositionEngine::new(&g, EngineTask::Mdst, config);
        let mut driver = ChurnDriver::new(engine);
        driver.stabilize();
        for (i, batch) in churn.batches.iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let report = driver.inject(batch);
            if !report.applied {
                continue;
            }
            assert!(report.legal, "{kind}, batch {i}: FR-certified after churn");
            let engine = driver.engine();
            let (mutated, tree) = (engine.graph(), engine.tree());
            assert!(fr::fr_certificate(mutated, tree).is_some());
            // FR-degree optimality re-check: within +1 of the exact optimum.
            let (opt, _) = fr::exact_min_degree_spanning_tree(mutated, 14);
            assert!(
                tree.max_degree() <= opt + 1,
                "{kind}, batch {i}: degree {} vs OPT {opt}",
                tree.max_degree()
            );
            assert_labels_match_fresh_provers(engine, &format!("MDST {kind}, batch {i}"));
        }
    }
}

#[test]
fn severing_batches_are_reported_and_leave_nothing_committed() {
    // 0-1-2-3 path plus chord 0-2: {2, 3} is a bridge.
    let g = self_stabilizing_spanning_trees::graph::Graph::from_edges(
        4,
        &[(0, 1, 1), (1, 2, 2), (2, 3, 3), (0, 2, 4)],
    );
    let engine = CompositionEngine::new(&g, EngineTask::Mst, EngineConfig::seeded(9));
    let mut driver = ChurnDriver::new(engine);
    driver.stabilize();
    let tree_before = driver.engine().tree().clone();
    let report = driver.inject(&[TopologyEvent::EdgeRemove {
        u: NodeId(2),
        v: NodeId(3),
    }]);
    assert!(!report.applied);
    assert_eq!(report.severed_components, 2);
    assert_eq!(report.labels_written, 0);
    let engine = driver.engine();
    assert!(engine.graph().edge_between(NodeId(2), NodeId(3)).is_some());
    assert_eq!(engine.tree(), &tree_before);
    // The engine is still perfectly usable afterwards.
    let report = driver.inject(&[TopologyEvent::WeightChange {
        u: NodeId(0),
        v: NodeId(1),
        weight: 99,
    }]);
    assert!(report.applied && report.legal);
}

#[test]
fn partition_and_heal_round_trips_under_all_daemons() {
    for kind in SchedulerKind::all() {
        let seed = 6u64;
        let g = generators::workload(16, 0.2, seed);
        let config = EngineConfig::seeded(seed).with_scheduler(kind);
        let engine = CompositionEngine::new(&g, EngineTask::Mst, config);
        let mut driver = ChurnDriver::new(engine);
        driver.stabilize();
        let churn = trace::partition_and_heal(&g, seed);
        let summary = driver.run_trace(&churn);
        assert!(summary.severed >= 1, "{kind}: the cut severs at least once");
        assert!(summary.all_legal, "{kind}");
        let engine = driver.engine();
        assert_eq!(
            engine.graph().edge_count(),
            g.edge_count(),
            "{kind}: healed"
        );
        assert_eq!(
            engine.tree().total_weight(engine.graph()),
            kruskal(engine.graph())
                .unwrap()
                .total_weight(engine.graph()),
            "{kind}: MST restored after healing"
        );
    }
}
