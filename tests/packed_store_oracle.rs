//! Differential oracle for the packed configuration store.
//!
//! The packed store ([`stst_runtime::store::ConfigStore`]) keeps every register as a
//! fixed-width bit slot; the struct-backed mode is the retained reference (analogous
//! to the executor's `FullRescan` mode). Because every codec round-trips exactly
//! (`decode(encode(x)) == x`, including fault garbage), executions over the two
//! stores must be **bit-identical**: same states after every step, same move/round/
//! guard-evaluation counters, same recovery behavior under register corruption and
//! the same re-seeding under topology churn. These tests pin that across both
//! guarded-rule layers, all 5 daemons, several seeds and thread counts {1, 2, 8}.

use self_stabilizing_spanning_trees::baselines::naive_reset::DistanceOnlySpanningTree;
use self_stabilizing_spanning_trees::core::bfs::RootedBfs;
use self_stabilizing_spanning_trees::core::spanning::MinIdSpanningTree;
use self_stabilizing_spanning_trees::graph::{generators, Graph, Mutation, NodeId};
use self_stabilizing_spanning_trees::obs::Obs;
use self_stabilizing_spanning_trees::runtime::{
    Algorithm, Executor, ExecutorConfig, SchedulerKind, StoreMode,
};

/// Runs packed and struct-backed executors in lockstep: identical chosen nodes,
/// identical states after every step, identical counters — with a register-corruption
/// fault injected every `perturb_every` steps (the RNG draws are part of the lockstep:
/// both executors must consume them identically). Both executors run with an enabled
/// observability handle attached, so the lockstep equality doubles as a determinism-
/// transparency pin, and the published guard counters are checked against the
/// two-tier invariant at the end.
fn drive_lockstep<A: Algorithm + Clone>(
    g: &Graph,
    algo: A,
    config: ExecutorConfig,
    max_steps: usize,
    perturb_every: Option<usize>,
    label: &str,
) {
    let packed_obs = Obs::enabled();
    let struct_obs = Obs::enabled();
    let mut packed = Executor::from_arbitrary(g, algo.clone(), config);
    packed.attach_obs(packed_obs.clone());
    let mut structs = Executor::from_arbitrary(g, algo, config.with_store(StoreMode::Struct));
    structs.attach_obs(struct_obs.clone());
    assert_eq!(packed.states(), structs.states(), "{label}: initial");
    for step in 0..max_steps {
        if packed.is_quiescent() {
            assert!(structs.is_quiescent(), "{label}: quiescence at step {step}");
            match perturb_every {
                Some(_) if step + 40 < max_steps => {}
                _ => break,
            }
        }
        if let Some(every) = perturb_every {
            if step % every == every - 1 {
                let a = packed.corrupt_random_nodes(3);
                let b = structs.corrupt_random_nodes(3);
                assert_eq!(a, b, "{label}: fault targets at step {step}");
            }
        }
        let a = packed.step_once().to_vec();
        let b = structs.step_once().to_vec();
        assert_eq!(a, b, "{label}: chosen nodes at step {step}");
        assert_eq!(
            packed.states(),
            structs.states(),
            "{label}: states at step {step}"
        );
        assert_eq!(
            (packed.moves(), packed.rounds(), packed.guard_evaluations()),
            (
                structs.moves(),
                structs.rounds(),
                structs.guard_evaluations()
            ),
            "{label}: counters at step {step}"
        );
        // Two-tier accounting: every packed evaluation is either screened or fully
        // decoded; the struct path neither screens nor decodes.
        assert_eq!(
            packed.guard_screen_hits() + packed.guard_full_decodes(),
            packed.guard_evaluations(),
            "{label}: tier accounting at step {step}"
        );
        assert_eq!(
            (structs.guard_screen_hits(), structs.guard_full_decodes()),
            (0, 0),
            "{label}: struct runs have nothing to screen"
        );
    }
    assert!(
        packed.guard_screen_hits() > 0,
        "{label}: the screen never resolved a guard"
    );
    // Registry view of the same invariant: what the executors published at wave
    // boundaries must obey the tier accounting — packed splits every published
    // evaluation between the screen and the decoder, the struct store publishes
    // zeros for both tiers.
    let registry = packed_obs.registry().unwrap();
    let evals = registry
        .counter_value("executor_guard_evaluations")
        .unwrap_or(0);
    let hits = registry
        .counter_value("executor_guard_screen_hits")
        .unwrap_or(0);
    let decodes = registry
        .counter_value("executor_guard_full_decodes")
        .unwrap_or(0);
    assert_eq!(hits + decodes, evals, "{label}: registry tier accounting");
    assert!(
        evals <= packed.guard_evaluations(),
        "{label}: the registry never runs ahead of the executor"
    );
    let struct_registry = struct_obs.registry().unwrap();
    assert_eq!(
        (
            struct_registry
                .counter_value("executor_guard_screen_hits")
                .unwrap_or(0),
            struct_registry
                .counter_value("executor_guard_full_decodes")
                .unwrap_or(0),
        ),
        (0, 0),
        "{label}: struct runs publish nothing to screen"
    );
}

#[test]
fn packed_and_struct_stores_run_bit_identically_under_all_daemons() {
    let g = generators::workload(22, 0.2, 8);
    for kind in SchedulerKind::all() {
        for seed in [3u64, 19] {
            let config = ExecutorConfig::with_scheduler(seed, kind);
            drive_lockstep(
                &g,
                MinIdSpanningTree,
                config,
                400,
                None,
                &format!("spanning/{kind}/seed {seed}"),
            );
        }
    }
}

#[test]
fn packed_and_struct_stores_agree_under_fault_injection() {
    let g = generators::workload(20, 0.2, 5);
    let root_ident = g.ident(g.min_ident_node());
    for kind in SchedulerKind::all() {
        drive_lockstep(
            &g,
            RootedBfs::new(root_ident),
            ExecutorConfig::with_scheduler(7, kind),
            300,
            Some(13),
            &format!("bfs faults/{kind}"),
        );
        drive_lockstep(
            &g,
            DistanceOnlySpanningTree,
            ExecutorConfig::with_scheduler(11, kind),
            300,
            Some(17),
            &format!("distance-only faults/{kind}"),
        );
    }
}

#[test]
fn packed_runs_are_bit_identical_at_every_thread_count() {
    // Large enough that the parallel wave path genuinely runs (PAR_MIN_ITEMS).
    let g = generators::workload(400, 0.01, 2);
    let reference = {
        let config = ExecutorConfig::with_scheduler(4, SchedulerKind::Synchronous);
        let mut exec = Executor::from_arbitrary(&g, MinIdSpanningTree, config);
        let q = exec.run_to_quiescence(1_000_000).unwrap();
        (
            exec.states(),
            q,
            exec.guard_evaluations(),
            exec.guard_screen_hits(),
            exec.guard_full_decodes(),
        )
    };
    for store in [StoreMode::Packed, StoreMode::Struct] {
        for threads in [1usize, 2, 8] {
            let config = ExecutorConfig::with_scheduler(4, SchedulerKind::Synchronous)
                .with_threads(threads)
                .with_store(store);
            let mut exec = Executor::from_arbitrary(&g, MinIdSpanningTree, config);
            let q = exec.run_to_quiescence(1_000_000).unwrap();
            assert_eq!(exec.states(), reference.0, "{store:?}, {threads} threads");
            assert_eq!(q, reference.1, "{store:?}, {threads} threads");
            assert_eq!(
                exec.guard_evaluations(),
                reference.2,
                "{store:?}, {threads} threads"
            );
            // The tier split is as thread-count-invariant as the execution: a guard's
            // screenability depends only on the slot bits, never on which worker
            // evaluated it.
            let expected_tiers = match store {
                StoreMode::Packed => (reference.3, reference.4),
                StoreMode::Struct => (0, 0),
            };
            assert_eq!(
                (exec.guard_screen_hits(), exec.guard_full_decodes()),
                expected_tiers,
                "{store:?}, {threads} threads"
            );
        }
    }
}

#[test]
fn packed_store_survives_topology_churn_like_the_struct_store() {
    // Edge churn and node churn re-seed the executor; the packed store re-encodes the
    // surviving registers under the refreshed codec widths and must land in exactly
    // the struct store's configuration — including the weight-drift case that grows
    // the weight field.
    let g0 = generators::workload(30, 0.15, 6);
    for kind in [SchedulerKind::Central, SchedulerKind::Synchronous] {
        let config = ExecutorConfig::with_scheduler(9, kind);
        let mut packed = Executor::from_arbitrary(&g0, MinIdSpanningTree, config);
        let mut structs =
            Executor::from_arbitrary(&g0, MinIdSpanningTree, config.with_store(StoreMode::Struct));
        packed.run_to_quiescence(2_000_000).unwrap();
        structs.run_to_quiescence(2_000_000).unwrap();
        assert_eq!(packed.states(), structs.states(), "{kind}: stabilized");
        // Batch 1: an insertion plus a (connectivity-preserving) removal plus weight
        // drift beyond the old maximum.
        let (a, b) = {
            let mut found = None;
            'outer: for a in g0.nodes() {
                for b in g0.nodes() {
                    if a < b && g0.edge_between(a, b).is_none() {
                        found = Some((a, b));
                        break 'outer;
                    }
                }
            }
            found.unwrap()
        };
        let removable = g0
            .edge_ids()
            .find(|&e| {
                let ed = *g0.edge(e);
                let mut trial = g0.clone();
                trial.remove_edge(ed.u, ed.v);
                trial.is_connected()
            })
            .unwrap();
        let (ru, rv) = (g0.edge(removable).u, g0.edge(removable).v);
        let drift = {
            let e = g0
                .edge_ids()
                .find(|&e| e != removable)
                .expect("more than one edge");
            (g0.edge(e).u, g0.edge(e).v)
        };
        let max_w = g0.edge_ids().map(|e| g0.weight(e)).max().unwrap();
        let batch = vec![
            Mutation::AddEdge {
                u: a,
                v: b,
                weight: 1,
            },
            Mutation::RemoveEdge { u: ru, v: rv },
            Mutation::SetWeight {
                u: drift.0,
                v: drift.1,
                weight: 4 * max_w,
            },
        ];
        let mut g1 = g0.clone();
        let outcome = g1.apply_mutations(&batch);
        packed.apply_topology(&g1, &outcome);
        structs.apply_topology(&g1, &outcome);
        assert_eq!(
            packed.states(),
            structs.states(),
            "{kind}: after edge churn"
        );
        assert_eq!(packed.enabled_nodes(), structs.enabled_nodes());
        assert_eq!(packed.enabled_nodes(), packed.rescan_enabled_nodes());
        let qp = packed.run_to_quiescence(2_000_000).unwrap();
        let qs = structs.run_to_quiescence(2_000_000).unwrap();
        assert_eq!(qp, qs, "{kind}: re-stabilization after edge churn");
        assert_eq!(packed.states(), structs.states());
        // Batch 2: node churn (join with a large identity — grows the ident field).
        let n = g1.node_count();
        let mut g2 = g1.clone();
        let outcome = g2.apply_mutations(&[
            Mutation::AddNode { ident: 5_000 },
            Mutation::AddEdge {
                u: NodeId(n),
                v: NodeId(0),
                weight: 2,
            },
        ]);
        packed.apply_topology(&g2, &outcome);
        structs.apply_topology(&g2, &outcome);
        assert_eq!(
            packed.states(),
            structs.states(),
            "{kind}: after node churn"
        );
        let qp = packed.run_to_quiescence(2_000_000).unwrap();
        let qs = structs.run_to_quiescence(2_000_000).unwrap();
        assert_eq!(qp, qs, "{kind}: re-stabilization after node churn");
        assert_eq!(packed.states(), structs.states());
        assert!(qp.legal);
    }
}
