//! Offline shim for the subset of the [`rand` crate](https://crates.io/crates/rand)
//! (0.8 API) used by this workspace.
//!
//! The build environment is hermetic (no crates registry), so instead of the real
//! `rand` we vendor a deterministic, seedable generator behind the same paths:
//!
//! * [`rngs::StdRng`] — an xoshiro256** generator (not ChaCha12 like the real
//!   `StdRng`; the workspace only relies on *determinism given a seed*, never on a
//!   particular stream);
//! * [`Rng::gen_range`] / [`Rng::gen_bool`] over integer ranges;
//! * [`SeedableRng::seed_from_u64`];
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! Everything is `no_std`-free plain Rust with no dependencies.

/// Low-level source of randomness: 64 random bits per call.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (the only construction path the workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open `a..b` or inclusive `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        // 53 random mantissa bits, exactly like rand's `gen_bool`.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, n)` by masked rejection (`n > 0`).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n == 1 {
        return 0;
    }
    let mask = u64::MAX >> (n - 1).leading_zeros();
    loop {
        let x = rng.next_u64() & mask;
        if x < n {
            return x;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from an empty range");
                let span = hi.abs_diff(lo) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(bounded_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via SplitMix64.
    ///
    /// Deterministic given the seed; *not* stream-compatible with the real
    /// `rand::rngs::StdRng` (which the workspace never relies on).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical way to seed xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// The raw xoshiro256** state, for checkpointing.
        ///
        /// Restoring via [`StdRng::from_state`] resumes the stream exactly where
        /// [`StdRng::state`] captured it.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers: shuffling and random choice.

    use super::{bounded_u64, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the sequence.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(bounded_u64(rng, self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_and_divergence() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen_range(0..1_000_000u64)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen_range(0..1_000_000u64)).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen_range(0..1_000_000u64)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(5..17u64);
            assert!((5..17).contains(&x));
            let y = rng.gen_range(0..=3usize);
            assert!(y <= 3);
            let z = rng.gen_range(-4..4i32);
            assert!((-4..4).contains(&z));
        }
        assert_eq!(rng.gen_range(9..10u64), 9);
        assert_eq!(rng.gen_range(2..=2i64), 2);
    }

    #[test]
    fn all_values_of_a_small_range_appear() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 gave {hits}/10000");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation_and_choose_is_uniformish() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "a 50-element shuffle is not identity"
        );
        let mut counts = [0usize; 3];
        let items = [10, 20, 30];
        for _ in 0..3_000 {
            match items.choose(&mut rng) {
                Some(&10) => counts[0] += 1,
                Some(&20) => counts[1] += 1,
                Some(&30) => counts[2] += 1,
                _ => unreachable!(),
            }
        }
        assert!(counts.iter().all(|&c| c > 700), "{counts:?}");
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
