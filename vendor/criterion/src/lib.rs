//! Offline shim for the subset of the [`criterion`](https://crates.io/crates/criterion)
//! (0.5 API) benchmark harness used by this workspace.
//!
//! The build environment is hermetic (no crates registry), so the benches run against
//! this minimal wall-clock harness instead: it honors `sample_size`,
//! `measurement_time` and `warm_up_time`, reports min/mean/max per benchmark on
//! stdout, and compiles with `harness = false` bench targets exactly like the real
//! crate. No statistical analysis, HTML reports, or baselines — just timing.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimizer from deleting benchmarked work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: a function name plus a printable parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`, e.g. `rooted_bfs_converge/48`.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// A bare identifier without a parameter.
    pub fn from_name(name: &str) -> Self {
        BenchmarkId {
            text: name.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing configuration shared by a group's benchmarks.
#[derive(Clone, Copy, Debug)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

/// The top-level harness handle passed to every bench function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("\n== bench group: {name}");
        BenchmarkGroup {
            name: name.to_string(),
            config: Config::default(),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = BenchmarkGroup {
            name: String::new(),
            config: Config::default(),
        };
        group.bench_function(name, f);
        self
    }
}

/// A named set of benchmarks sharing timing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    config: Config,
}

impl BenchmarkGroup {
    /// Number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Soft budget for the whole measurement phase of one benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Time spent running the closure untimed before measuring.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Benchmarks `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.config);
        f(&mut bencher, input);
        self.report(&id.to_string(), &bencher);
        self
    }

    /// Benchmarks `f`, labelled by `id`.
    pub fn bench_function<F>(&mut self, id: impl IdLike, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.config);
        f(&mut bencher);
        self.report(&id.into_id(), &bencher);
        self
    }

    /// Ends the group (prints nothing extra; provided for API compatibility).
    pub fn finish(self) {}

    fn report(&self, id: &str, bencher: &Bencher) {
        let label = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{id}", self.name)
        };
        println!("{label:<50} {}", bencher.summary());
    }
}

/// Anything usable as a benchmark label.
pub trait IdLike {
    /// Renders the label.
    fn into_id(self) -> String;
}

impl IdLike for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IdLike for String {
    fn into_id(self) -> String {
        self
    }
}

impl IdLike for BenchmarkId {
    fn into_id(self) -> String {
        self.to_string()
    }
}

/// Collects timing samples for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    config: Config,
    samples: Vec<Duration>,
}

impl Bencher {
    fn new(config: Config) -> Self {
        Bencher {
            config,
            samples: Vec::with_capacity(config.sample_size),
        }
    }

    /// Times `routine`, once per sample, after a warm-up phase.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.samples.clear();
        let warm_up_end = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_up_end {
            black_box(routine());
        }
        let budget = Instant::now();
        for _ in 0..self.config.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if budget.elapsed() > self.config.measurement_time {
                break;
            }
        }
        if self.samples.is_empty() {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
        }
    }

    fn summary(&self) -> String {
        let mut out = String::new();
        if self.samples.is_empty() {
            out.push_str("no samples");
            return out;
        }
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        let _ = write!(
            out,
            "time: [{} {} {}]  ({} samples)",
            fmt_duration(*min),
            fmt_duration(mean),
            fmt_duration(*max),
            self.samples.len()
        );
        out
    }

    /// Mean duration over the collected samples (used by ratio-printing benches).
    pub fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            Duration::ZERO
        } else {
            self.samples.iter().sum::<Duration>() / self.samples.len() as u32
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's simple form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = 0u64;
        group.bench_with_input(BenchmarkId::new("count", 5), &5u64, |b, &n| {
            b.iter(|| {
                ran += 1;
                (0..n).sum::<u64>()
            });
        });
        group.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
        assert!(ran >= 3, "at least the sample count must run");
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
