//! # Self-Stabilizing Constrained Spanning Trees
//!
//! A Rust reproduction of Blin & Fraigniaud, *"Space-Optimal Time-Efficient Silent
//! Self-Stabilizing Constructions of Constrained Spanning Trees"*, ICDCS 2015.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`graph`] — graph model, generators, and sequential reference algorithms
//!   (Kruskal/Prim/Borůvka MST, BFS, NCA oracle, Fürer–Raghavachari MDST).
//! * [`runtime`] — the self-stabilization *state model*: registers, guarded rules,
//!   schedulers (including the unfair daemon), round/move accounting, fault injection.
//! * [`labeling`] — proof-labeling schemes: distance/size/redundant (malleable) schemes,
//!   the NCA informative labeling and its proof-labeling scheme, MST fragment labels,
//!   FR-tree labels.
//! * [`core`] — the paper's contribution: the PLS-guided local-search framework and the
//!   silent self-stabilizing BFS, MST and MDST (FR-tree) constructions.
//! * [`churn`] — live topology churn: the event model, seeded deterministic trace
//!   generators (steady Poisson churn, link flapping, partition-and-heal, weight
//!   drift), and the wave-boundary churn driver with measured per-event recovery.
//! * [`serve`] — the serving layer: epoch-published immutable snapshots of each
//!   silent configuration, a decode-free distance/NCA/fragment query engine over the
//!   packed certificate stores, and seeded zipfian load generation. Readers pin an
//!   epoch and answer queries lock-free while the engine keeps repairing under churn.
//! * [`baselines`] — comparator algorithms used by the experiment harness.
//! * [`obs`] — zero-dependency observability: the metrics registry (counters, gauges,
//!   log2-bucketed histograms with Prometheus/JSON export), wave-level typed trace
//!   events in a bounded ring with a byte-exact JSONL codec, and profiling hooks
//!   (per-phase wall-time spans, RSS sampling). Attached via `attach_obs` on the
//!   executor, the engine, the churn driver and the soak harness; runs with
//!   observability enabled are bit-identical to runs without it.
//!
//! ## Quickstart
//!
//! Build a minimum-weight spanning tree, self-stabilizingly, from an arbitrary initial
//! configuration, and check the result against the sequential oracle:
//!
//! ```
//! use self_stabilizing_spanning_trees::core::{construct_mst, EngineConfig};
//! use self_stabilizing_spanning_trees::graph::{generators, mst};
//!
//! // A small random connected graph with distinct weights and shuffled identities.
//! let g = generators::workload(16, 0.25, 7);
//!
//! // Run the silent self-stabilizing MST construction (Corollary 6.1).
//! let report = construct_mst(&g, &EngineConfig::seeded(7));
//! assert!(report.legal, "the stabilized tree is a minimum spanning tree");
//!
//! // Same weight as Kruskal; with distinct weights, the same tree.
//! let oracle = mst::kruskal(&g).expect("connected graph");
//! assert_eq!(report.tree.total_weight(&g), oracle.total_weight(&g));
//!
//! // The measured costs of the run are in the report.
//! assert!(report.total_rounds > 0);
//! assert!(report.max_register_bits > 0);
//! ```
//!
//! The guarded-rule layer can also be driven directly under any scheduler:
//!
//! ```
//! use self_stabilizing_spanning_trees::core::spanning::MinIdSpanningTree;
//! use self_stabilizing_spanning_trees::graph::generators;
//! use self_stabilizing_spanning_trees::runtime::{Executor, ExecutorConfig, SchedulerKind};
//!
//! let g = generators::workload(12, 0.3, 3);
//! let config = ExecutorConfig::with_scheduler(3, SchedulerKind::Adversarial);
//! let mut exec = Executor::from_arbitrary(&g, MinIdSpanningTree, config);
//! let outcome = exec.run_to_quiescence(1_000_000).expect("converges");
//! assert!(outcome.silent && outcome.legal);
//! ```

pub use stst_baselines as baselines;
pub use stst_churn as churn;
pub use stst_core as core;
pub use stst_graph as graph;
pub use stst_labeling as labeling;
pub use stst_obs as obs;
pub use stst_runtime as runtime;
pub use stst_serve as serve;
