//! Live churn on the paper's §I sensor-network scenario: a backbone radio link
//! *flaps* (goes down, comes back up, repeatedly — the classic unstable-link
//! pathology), and the silent self-stabilizing MST composition absorbs every flap as
//! a localized fault: the orphaned subtree re-anchors through the loop-free switch
//! machinery, labels repair on the dirty region, and local search resumes — instead
//! of rebuilding the backbone from scratch each time.
//!
//! Run with `cargo run --release --example link_churn`.

use self_stabilizing_spanning_trees::churn::{trace, ChurnDriver};
use self_stabilizing_spanning_trees::core::engine::{CompositionEngine, EngineTask};
use self_stabilizing_spanning_trees::core::EngineConfig;
use self_stabilizing_spanning_trees::graph::{generators, mst};

fn main() {
    // The same sensor field as `sensor_mac_tree`: a random geometric-ish connected
    // radio graph with distinct link weights (link quality metrics).
    let seed = 7;
    let field = generators::random_with_avg_degree(48, 6.0, seed);
    let graph = generators::randomize_weights(&generators::shuffle_idents(&field, seed), seed);
    println!(
        "sensor field: {} motes, {} radio links",
        graph.node_count(),
        graph.edge_count()
    );

    // Stabilize the backbone once.
    let engine = CompositionEngine::new(&graph, EngineTask::Mst, EngineConfig::seeded(seed));
    let mut driver = ChurnDriver::new(engine);
    let initial = driver.stabilize();
    println!(
        "initial stabilization: {} rounds, {} label writes, weight {}\n",
        initial.total_rounds,
        initial.labels_written,
        initial.tree.total_weight(&graph)
    );

    // Pick a *backbone* link (a tree edge) that has a detour, and flap it 6 times.
    let backbone = driver
        .engine()
        .tree()
        .edge_ids_in(&graph)
        .into_iter()
        .find(|&e| {
            let ed = *graph.edge(e);
            let mut trial = graph.clone();
            trial.remove_edge(ed.u, ed.v);
            trial.is_connected()
        })
        .expect("some backbone link has a detour");
    let (u, v) = (graph.edge(backbone).u, graph.edge(backbone).v);
    println!(
        "flapping backbone link {}-{} (weight {}):",
        u,
        v,
        graph.weight(backbone)
    );
    let flaps = trace::link_flapping(&graph, u, v, 6);
    for (i, batch) in flaps.batches.iter().enumerate() {
        let report = driver.inject(batch);
        println!(
            "  flap {}: {:<22} recovery: {:>3} rounds, {:>3} label writes, {} switch(es), MST again: {}",
            i + 1,
            format!("{}", batch[0]),
            report.recovery_rounds,
            report.labels_written,
            report.switches,
            report.legal
        );
    }

    // The link is back up; the backbone is the exact MST of the (restored) field.
    let engine = driver.into_engine();
    let g = engine.graph();
    let optimal = mst::kruskal(g).unwrap().total_weight(g);
    println!(
        "\nfinal backbone weight {} (Kruskal optimum {}), silent again: {}",
        engine.tree().total_weight(g),
        optimal,
        engine.is_stabilized()
    );
    assert_eq!(engine.tree().total_weight(g), optimal);
}
