//! Checkpoint/restore durability: snapshot a running execution mid-flight, "crash"
//! by dropping it, restore from the serialized bytes, and finish bit-identically to
//! the uninterrupted run — then corrupt the snapshot on disk and watch every
//! corruption class fail with a typed error instead of loaded garbage.
//!
//! Restore needs no special correctness machinery here: self-stabilization already
//! guarantees convergence from *any* configuration, so a restored checkpoint — even
//! one carrying unresolved label corruption — is just another starting point for the
//! verification wave.
//!
//! Run with `cargo run --example checkpoint_restore`.

use self_stabilizing_spanning_trees::core::spanning::MinIdSpanningTree;
use self_stabilizing_spanning_trees::core::{
    CompositionEngine, EngineConfig, EngineTask, PhaseEvent,
};
use self_stabilizing_spanning_trees::graph::generators;
use self_stabilizing_spanning_trees::runtime::persist::flip_bit_in_file;
use self_stabilizing_spanning_trees::runtime::{Executor, ExecutorConfig, Snapshot};

fn main() {
    let graph = generators::workload(36, 0.2, 7);
    let config = ExecutorConfig::seeded(7);

    // Uninterrupted reference run.
    let mut reference = Executor::from_arbitrary(&graph, MinIdSpanningTree, config);
    let want = reference.run_to_quiescence(5_000_000).expect("converges");
    println!(
        "uninterrupted run: {} rounds, {} moves, legal = {}",
        want.rounds, want.moves, want.legal
    );

    // Twin run: stop mid-flight (not at a round boundary), checkpoint, and "crash".
    let mut twin = Executor::from_arbitrary(&graph, MinIdSpanningTree, config);
    for _ in 0..19 {
        twin.step_once();
    }
    let snap = twin.checkpoint();
    let bytes = snap.to_bytes();
    println!(
        "\ncheckpoint at step {}: {} bytes (packed registers + scheduler + counters + enabled order)",
        twin.steps(),
        bytes.len()
    );
    drop(twin); // the crash

    // Restore from the serialized bytes and finish.
    let reloaded = Snapshot::from_bytes(&bytes).expect("snapshot validates");
    let mut restored =
        Executor::restore(&graph, MinIdSpanningTree, &reloaded, config).expect("restores");
    let got = restored.run_to_quiescence(5_000_000).expect("converges");
    assert_eq!(
        (got.rounds, got.moves, restored.states()),
        (want.rounds, want.moves, reference.states()),
        "the restored run must finish bit-identically"
    );
    println!(
        "restored run: {} rounds, {} moves — bit-identical to the uninterrupted run",
        got.rounds, got.moves
    );

    // Corruption on disk fails typed, never loads garbage.
    let path = std::env::temp_dir().join(format!("stst_example_{}.snap", std::process::id()));
    snap.write_file(&path).expect("snapshot written");
    flip_bit_in_file(&path, 40 * 8 + 3).expect("flip a payload bit");
    let err = Snapshot::read_file(&path).expect_err("corrupted snapshot must be rejected");
    println!("\nflipped one payload bit on disk -> {err}");
    std::fs::remove_file(&path).ok();

    // A snapshot carrying unresolved label corruption restores into a configuration
    // the engine's verification wave repairs: restore == self-stabilization.
    let mut engine = CompositionEngine::new(&graph, EngineTask::Mst, EngineConfig::seeded(7));
    let report = engine.run();
    assert!(report.legal);
    engine.corrupt_random_labels(3);
    let bytes = engine.checkpoint().to_bytes();
    drop(engine); // crash with the corruption still unresolved
    let reloaded = Snapshot::from_bytes(&bytes).expect("engine snapshot validates");
    let (mut engine, _) = CompositionEngine::restore(&reloaded, 1).expect("engine restores");
    match engine.step() {
        PhaseEvent::Recovered {
            families_rebuilt,
            rounds,
            ..
        } => println!(
            "\nrestored a snapshot carrying 3 corrupted labels: verification wave rebuilt \
             {families_rebuilt} families in {rounds} rounds"
        ),
        other => panic!("expected a recovery wave, got {other:?}"),
    }
    assert!(engine.report().legal);
    println!("OK: restore is just self-stabilization from a configuration on disk.");
}
