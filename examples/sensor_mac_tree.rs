//! The paper's motivating scenario (§I): a sensor network under an 802.15.4-style MAC
//! protocol wants a *low-degree* communication backbone — each node can only serve a
//! bounded number of children without exhausting its duty cycle. We model the radio
//! connectivity graph, run the silent self-stabilizing MDST construction (Corollary
//! 8.1), and compare the backbone degree against a naive BFS backbone, the prior-art
//! baseline and the exact optimum.
//!
//! Run with `cargo run --example sensor_mac_tree`.

use self_stabilizing_spanning_trees::baselines::prior_mdst;
use self_stabilizing_spanning_trees::core::{construct_mdst, EngineConfig};
use self_stabilizing_spanning_trees::graph::{bfs, fr, generators};

fn main() {
    // A sensor field: a random geometric-ish connected graph (grid plus random links).
    let seed = 7;
    let field = generators::random_with_avg_degree(48, 6.0, seed);
    let graph = generators::shuffle_idents(&field, seed);
    println!(
        "sensor field: {} motes, {} radio links, max radio degree {}",
        graph.node_count(),
        graph.edge_count(),
        graph.max_degree()
    );

    // Naive backbone: a BFS tree from the sink (minimum-identity mote).
    let sink = graph.min_ident_node();
    let bfs_backbone = bfs::bfs_tree(&graph, sink);
    println!(
        "\nBFS backbone degree:                {}",
        bfs_backbone.max_degree()
    );

    // Our backbone: silent self-stabilizing MDST (stabilizes on an FR-tree).
    let report = construct_mdst(&graph, &EngineConfig::seeded(seed));
    println!(
        "self-stabilizing MDST degree:       {}",
        report.tree.max_degree()
    );
    println!("  certified FR-tree:                {}", report.legal);
    println!(
        "  rounds:                           {}",
        report.total_rounds
    );
    println!(
        "  register size:                    {} bits per mote",
        report.max_register_bits
    );

    // Prior-art baseline: same degree guarantee, but Ω(n log n) bits per mote and never
    // silent (the radio never gets to sleep).
    let prior = prior_mdst::run(&graph);
    println!(
        "prior-art MDST degree:              {}",
        prior.tree.max_degree()
    );
    println!(
        "  register size:                    {} bits per mote",
        prior.max_register_bits
    );
    println!("  silent:                           {}", prior.silent);

    // Sanity: the FR guarantee.
    let lower_bound =
        self_stabilizing_spanning_trees::graph::properties::min_degree_lower_bound(&graph);
    println!("\ncut lower bound on any backbone degree: {lower_bound}");
    assert!(report.legal);
    assert!(report.tree.max_degree() <= bfs_backbone.max_degree());
    assert!(fr::is_fr_tree(&graph, &report.tree));
    println!("OK: the self-stabilizing backbone is an FR-tree (degree ≤ OPT + 1).");
}
