//! Observability tour: attach one enabled `Obs` handle to a composition engine,
//! run it to silence, inject a label fault, and watch the repair wave land in the
//! trace — then print the trace as JSONL and the metrics registry as Prometheus
//! text. The same run with the handle detached is bit-identical (determinism
//! transparency); this example checks that too.
//!
//! Run with `cargo run --example trace_run`.

use self_stabilizing_spanning_trees::core::engine::{CompositionEngine, EngineTask};
use self_stabilizing_spanning_trees::core::EngineConfig;
use self_stabilizing_spanning_trees::graph::generators;
use self_stabilizing_spanning_trees::obs::{check_wave_order, Obs};

fn main() {
    let graph = generators::workload(48, 0.12, 9);

    // The observed run: build + label + improve to silence, then a fault wave.
    let obs = Obs::enabled();
    let mut engine = CompositionEngine::new(&graph, EngineTask::Mst, EngineConfig::seeded(9));
    engine.attach_obs(obs.clone());
    let report = engine.run();
    assert!(report.legal);
    let hit = engine.corrupt_random_labels(5);
    println!(
        "converged in {} rounds, then corrupted {} label registers\n",
        report.total_rounds,
        hit.len()
    );
    engine.run(); // the verification wave detects and repairs the damage

    // An unobserved twin: same seed, no handle. Bit-identical state.
    let mut twin = CompositionEngine::new(&graph, EngineTask::Mst, EngineConfig::seeded(9));
    twin.run();
    twin.corrupt_random_labels(5);
    twin.run();
    assert_eq!(
        engine.checkpoint().to_bytes(),
        twin.checkpoint().to_bytes(),
        "tracing must not change a bit of the execution"
    );

    let trace = obs.trace().unwrap();
    let events = trace.snapshot();
    check_wave_order(&events, trace.dropped() > 0).expect("wave ordering");
    println!(
        "--- trace ({} events, {} dropped), as JSONL ---",
        events.len(),
        trace.dropped()
    );
    print!("{}", trace.to_jsonl());

    println!("\n--- metrics registry, Prometheus text exposition ---");
    print!("{}", obs.registry().unwrap().prometheus_text());

    println!("\nOK: traced run bit-identical to the untraced twin; wave order clean.");
}
