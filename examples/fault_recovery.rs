//! Fault recovery: converge, corrupt a batch of registers (a transient fault), watch the
//! proof-labeling verification detect the damage locally, and measure how long the
//! system takes to become silent and legal again.
//!
//! Run with `cargo run --example fault_recovery`.

use self_stabilizing_spanning_trees::core::spanning::MinIdSpanningTree;
use self_stabilizing_spanning_trees::graph::generators;
use self_stabilizing_spanning_trees::runtime::{Executor, ExecutorConfig, SchedulerKind};

fn main() {
    let graph = generators::workload(40, 0.12, 11);
    let config = ExecutorConfig::with_scheduler(11, SchedulerKind::Central);
    let mut exec = Executor::from_arbitrary(&graph, MinIdSpanningTree, config);

    let first = exec
        .run_to_quiescence(5_000_000)
        .expect("initial convergence");
    println!(
        "initial convergence: {} rounds, {} moves, legal = {}",
        first.rounds, first.moves, first.legal
    );
    assert!(first.legal);

    for k in [1usize, 4, 10, 20, 40] {
        let rounds_before = exec.rounds();
        let moves_before = exec.moves();
        let hit = exec.corrupt_random_nodes(k);
        let enabled = exec.enabled_count();
        println!(
            "\ncorrupted {} registers ({} nodes detect something to fix locally)",
            hit.len(),
            enabled
        );
        let q = exec.run_to_quiescence(5_000_000).expect("recovery");
        println!(
            "  recovered in {} rounds / {} moves; legal = {}",
            q.rounds - rounds_before,
            q.moves - moves_before,
            q.legal
        );
        assert!(q.legal, "recovery must restore a legal configuration");
    }
    println!("\nOK: the construction self-stabilizes after every injected fault batch.");
}
