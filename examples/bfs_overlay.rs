//! Space-optimal silent BFS overlay (the paper's §III example): construct a BFS tree
//! rooted at a designated gateway under several daemons, check the distances against the
//! sequential oracle, and print the measured register sizes.
//!
//! Run with `cargo run --example bfs_overlay`.

use self_stabilizing_spanning_trees::core::bfs::RootedBfs;
use self_stabilizing_spanning_trees::graph::{bfs, generators};
use self_stabilizing_spanning_trees::runtime::{Executor, ExecutorConfig, SchedulerKind};

fn main() {
    let graph = generators::workload(60, 0.08, 3);
    let gateway = graph.min_ident_node();
    let oracle_distances = bfs::distances_from(&graph, gateway);
    println!(
        "overlay network: {} nodes, {} edges, diameter {}",
        graph.node_count(),
        graph.edge_count(),
        bfs::diameter(&graph)
    );

    for kind in SchedulerKind::all() {
        let algo = RootedBfs::new(graph.ident(gateway));
        let mut exec =
            Executor::from_arbitrary(&graph, algo, ExecutorConfig::with_scheduler(3, kind));
        let q = exec.run_to_quiescence(5_000_000).expect("BFS converges");
        let tree = exec.extract_tree().expect("spanning tree");
        let depths = tree.depths();
        let all_shortest = graph
            .nodes()
            .all(|v| depths[v.index()] == oracle_distances[v.index()]);
        println!(
            "daemon {kind:>15}: {} rounds, {} moves, register ≤ {} bits, shortest paths = {}",
            q.rounds,
            q.moves,
            exec.space_report().max_bits,
            all_shortest
        );
        assert!(q.legal && all_shortest);
    }
    println!("\nOK: every daemon stabilizes on a breadth-first spanning tree.");
}
