//! A million-node silent BFS stabilization on the packed configuration store.
//!
//! The packed store (DESIGN.md §2.9) allocates every register at its accounted bit
//! width, so a 10⁶-node configuration — pre-round snapshot *and* pending buffer —
//! fits in a few megabytes where the struct-backed layout needs tens. This example
//! runs the §III sync-BFS construction from an arbitrary (garbage) configuration at
//! n = 1,000,000, then reports rounds, legality, and the measured
//! allocated-vs-accounted space.
//!
//! Run with `cargo run --release --example million_node_bfs [-- <n>]` (default
//! n = 1,000,000; pass a smaller size for a quick tour).

use self_stabilizing_spanning_trees::core::bfs::RootedBfs;
use self_stabilizing_spanning_trees::graph::generators;
use self_stabilizing_spanning_trees::runtime::{Executor, ExecutorConfig, SchedulerKind};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1_000_000);
    let seed = 2015;
    // O(n + m) sparse generator (a random spanning tree plus n/2 chords), shuffled
    // identities, distinct random weights — the E11 workload.
    let g = {
        let g = generators::random_sparse(n, n / 2, seed);
        let g = generators::shuffle_idents(&g, seed + 1);
        generators::randomize_weights(&g, seed + 2)
    };
    println!(
        "network: {} nodes, {} edges (avg degree {:.1})",
        g.node_count(),
        g.edge_count(),
        2.0 * g.edge_count() as f64 / n as f64
    );

    let root_ident = g.ident(g.min_ident_node());
    let config = ExecutorConfig::with_scheduler(seed, SchedulerKind::Synchronous);
    let start = std::time::Instant::now();
    let mut exec = Executor::from_arbitrary(&g, RootedBfs::new(root_ident), config);
    let q = exec
        .run_to_quiescence(50_000_000)
        .expect("sync-BFS converges");
    let elapsed = start.elapsed();

    let space = exec.space_report();
    let store = exec.store_report();
    println!("\nsilent rooted BFS (§III example), packed configuration store");
    println!("  silent + legal:       {} / {}", q.silent, q.legal);
    println!("  rounds to silence:    {}", q.rounds);
    println!("  moves:                {}", q.moves);
    println!("  wall clock:           {:.1?}", elapsed);
    println!(
        "  accounted register:   {:.1} bits/node avg, {} bits max",
        space.avg_bits, space.max_bits
    );
    println!(
        "  allocated store:      {:.1} B/node ({} store mode, snapshot + pending)",
        store.bytes_per_node,
        format!("{:?}", store.mode).to_lowercase()
    );
    println!(
        "  allocated / accounted: {:.2}x (struct-backed structs would pay ~{:.0}x)",
        store.bytes_per_node * 8.0 / store.accounted_bits_per_node,
        (std::mem::size_of::<self_stabilizing_spanning_trees::core::bfs::BfsState>()
            + std::mem::size_of::<Option<self_stabilizing_spanning_trees::core::bfs::BfsState>>())
            as f64
            * 8.0
            / store.accounted_bits_per_node
    );
    assert!(q.legal, "the stabilized configuration must be a BFS tree");
}
