//! Serving tour: publish the silent configuration as an epoch, answer
//! distance/NCA/fragment queries from the certificates alone while churn mutates
//! the topology, and cross the epoch boundary with `refresh()`.
//!
//! The pinned epoch is the whole story: the reader's answers are bit-identical for
//! as long as the pin is held — the writer republishing underneath changes nothing
//! until the reader opts in. With an `Obs` handle attached, the reader's tallies
//! land in the metrics registry at the refresh (never per query).
//!
//! Run with `cargo run --release --example serve_queries`.

use self_stabilizing_spanning_trees::churn::{trace, ChurnDriver};
use self_stabilizing_spanning_trees::core::engine::{CompositionEngine, EngineTask};
use self_stabilizing_spanning_trees::core::EngineConfig;
use self_stabilizing_spanning_trees::graph::{generators, NodeId};
use self_stabilizing_spanning_trees::obs::Obs;
use self_stabilizing_spanning_trees::runtime::StoreMode;
use self_stabilizing_spanning_trees::serve::{LoadGen, Query, QueryMix, ServeHub};

fn main() {
    let graph = generators::workload(64, 0.15, 7);
    let engine = CompositionEngine::new(&graph, EngineTask::Mst, EngineConfig::seeded(7));
    let mut driver = ChurnDriver::new(engine);
    let report = driver.stabilize();
    println!("stabilized the MST in {} rounds", report.total_rounds);

    // Publish the silent configuration: epoch 1.
    let mut hub = ServeHub::new(StoreMode::Packed);
    let obs = Obs::enabled();
    hub.attach_obs(obs.clone());
    hub.publish_from_engine(driver.engine());
    let mut reader = hub.reader().expect("published");
    println!(
        "pinned epoch {} (wave {})",
        reader.epoch(),
        reader.snapshot().wave()
    );

    // Answer a few queries off the certificates — no tree walk, no decode.
    let (u, v) = (NodeId(3), NodeId(40));
    println!(
        "  dist_to_root({u:?})  = {:?}",
        reader.query(Query::DistToRoot(u))
    );
    println!(
        "  tree_dist({u:?},{v:?}) = {:?}",
        reader.query(Query::TreeDist(u, v))
    );
    println!(
        "  nca_depth({u:?},{v:?}) = {:?}",
        reader.query(Query::NcaDepth(u, v))
    );
    println!(
        "  same_fragment        = {:?}",
        reader.query(Query::SameFragment(u, v))
    );

    // The writer churns the topology and republishes at every silence. The pinned
    // reader does not move: its answers stay bit-identical.
    let before = reader.query(Query::TreeDist(u, v));
    for batch in &trace::steady_poisson(&graph, 6, 1.5, 0.0, 7).batches {
        if batch.is_empty() {
            continue;
        }
        driver.inject(batch);
        if driver.engine().is_publishable() {
            hub.publish_from_engine(driver.engine());
        }
    }
    assert_eq!(before, reader.query(Query::TreeDist(u, v)));
    println!(
        "\nwriter published through epoch {}; pinned reader still at epoch {} \
         ({} waves stale), answers unchanged",
        hub.epoch(),
        reader.epoch(),
        reader.staleness_waves()
    );

    // A burst of zipfian load, then the epoch boundary: refresh() flushes the
    // reader's tallies into the registry and re-pins the newest snapshot.
    let mut gen = LoadGen::new(graph.node_count(), 0.99, QueryMix::default_mix(), 7);
    for _ in 0..10_000 {
        let query = gen.next_query();
        reader.query(query);
    }
    reader.refresh();
    println!(
        "refreshed to epoch {}; tree_dist({u:?},{v:?}) on the churned tree = {:?}",
        reader.epoch(),
        reader.query(Query::TreeDist(u, v))
    );

    let registry = obs.registry().expect("enabled");
    println!(
        "\nmetrics: queries_served={} screen_hits={} full_decodes={} staleness_waves={}",
        registry.counter_value("queries_served").unwrap_or(0),
        registry.counter_value("serve_screen_hits").unwrap_or(0),
        registry.counter_value("serve_full_decodes").unwrap_or(0),
        registry
            .gauge_value("snapshot_staleness_waves")
            .unwrap_or(0),
    );
}
