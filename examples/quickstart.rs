//! Quickstart: build a minimum-weight spanning tree self-stabilizingly on a random
//! graph, starting from an arbitrary (corrupted) configuration, and compare the result
//! with the sequential oracle.
//!
//! Run with `cargo run --example quickstart`.

use self_stabilizing_spanning_trees::core::{construct_mst, EngineConfig};
use self_stabilizing_spanning_trees::graph::{generators, mst};

fn main() {
    let n = 32;
    let seed = 42;
    let graph = generators::workload(n, 0.15, seed);
    println!(
        "network: {} nodes, {} edges, max degree {}",
        graph.node_count(),
        graph.edge_count(),
        graph.max_degree()
    );

    let report = construct_mst(&graph, &EngineConfig::seeded(seed));
    let oracle = mst::kruskal(&graph).expect("connected graph");

    println!("\nsilent self-stabilizing MST construction (Corollary 6.1)");
    println!("  legal output (is an MST): {}", report.legal);
    println!(
        "  tree weight:              {}",
        report.tree.total_weight(&graph)
    );
    println!(
        "  oracle (Kruskal) weight:  {}",
        oracle.total_weight(&graph)
    );
    println!("  improving switches:       {}", report.improvements);
    println!("  total rounds:             {}", report.total_rounds);
    println!(
        "  max register size:        {} bits per node",
        report.max_register_bits
    );
    println!("\nrounds by phase:");
    for (phase, rounds) in &report.phase_rounds {
        println!("  {rounds:>8}  {phase}");
    }
    assert!(report.legal, "the construction must stabilize on an MST");
    assert_eq!(
        report.tree.total_weight(&graph),
        oracle.total_weight(&graph)
    );
    println!("\nOK: stabilized on the minimum spanning tree.");
}
