//! Epoch-based snapshot publication.
//!
//! The writer (the engine reaching silence) publishes whole immutable snapshots; each
//! publication bumps a monotone **epoch**. Readers *pin* an epoch — an `Arc` clone of
//! the snapshot current at pin time — and answer every query from that pinned value
//! until they explicitly re-pin. The hot path is therefore free of reader-side locks
//! *and* of torn reads by construction: a snapshot is never mutated after publication,
//! only replaced, so the only synchronization is the brief slot lock taken when a
//! reader re-pins (never per query).
//!
//! Hand-rolled on `std::sync` in the spirit of `stst_runtime::par`: no epoch-GC
//! machinery is needed because `Arc` *is* the reclamation — a superseded snapshot is
//! freed exactly when the last reader holding it drops its pin.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A reader's pinned snapshot: the epoch it was published at, the writer-side wave
/// stamp it carries, and the shared immutable value.
#[derive(Debug)]
pub struct Pinned<T> {
    /// Publication epoch (1 for the first publication).
    pub epoch: u64,
    /// Writer-side wave stamp passed to [`SnapshotHub::publish`] (the engine's round
    /// total at the silence the snapshot was taken from).
    pub wave: u64,
    /// The pinned immutable snapshot.
    pub snapshot: Arc<T>,
}

impl<T> Clone for Pinned<T> {
    fn clone(&self) -> Self {
        Pinned {
            epoch: self.epoch,
            wave: self.wave,
            snapshot: Arc::clone(&self.snapshot),
        }
    }
}

/// The publication slot shared by one writer and any number of readers.
#[derive(Debug, Default)]
pub struct SnapshotHub<T> {
    /// Authoritative (epoch, wave, snapshot) triple. Locked only by `publish` and
    /// `pin` — never on the per-query path.
    slot: Mutex<Option<Pinned<T>>>,
    /// Advisory copy of the current epoch for lock-free staleness checks
    /// ([`SnapshotHub::epoch`]); written after the slot under the same publication.
    epoch: AtomicU64,
    /// Advisory copy of the newest snapshot's wave stamp, same discipline.
    wave: AtomicU64,
}

impl<T> SnapshotHub<T> {
    /// An empty hub: nothing published yet, [`SnapshotHub::pin`] returns `None`.
    pub fn new() -> Self {
        SnapshotHub {
            slot: Mutex::new(None),
            epoch: AtomicU64::new(0),
            wave: AtomicU64::new(0),
        }
    }

    /// Publishes `snapshot` with the writer's wave stamp, replacing the previous one,
    /// and returns the new epoch. Readers already pinned are unaffected — their `Arc`
    /// keeps the superseded snapshot alive until they re-pin or drop.
    pub fn publish(&self, wave: u64, snapshot: T) -> u64 {
        let mut slot = self.slot.lock().unwrap();
        let epoch = self.epoch.load(Ordering::Relaxed) + 1;
        *slot = Some(Pinned {
            epoch,
            wave,
            snapshot: Arc::new(snapshot),
        });
        // Advisory cells are updated while still holding the lock, so a pin can never
        // observe an epoch newer than the slot it reads.
        self.wave.store(wave, Ordering::Release);
        self.epoch.store(epoch, Ordering::Release);
        epoch
    }

    /// The current epoch (0 before the first publication). Lock-free: this is the
    /// reader's "is there something newer than my pin?" probe.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The wave stamp of the newest snapshot (0 before the first publication).
    /// Lock-free; `latest_wave() − pinned.wave` is a reader's staleness in waves.
    #[inline]
    pub fn latest_wave(&self) -> u64 {
        self.wave.load(Ordering::Acquire)
    }

    /// Pins the current snapshot: one brief slot lock, then the returned value is
    /// self-contained — queries against it touch no shared mutable state. `None`
    /// before the first publication.
    pub fn pin(&self) -> Option<Pinned<T>> {
        self.slot.lock().unwrap().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pin_before_any_publication_is_none() {
        let hub: SnapshotHub<u64> = SnapshotHub::new();
        assert_eq!(hub.epoch(), 0);
        assert_eq!(hub.latest_wave(), 0);
        assert!(hub.pin().is_none());
    }

    #[test]
    fn publication_bumps_the_epoch_and_old_pins_survive() {
        let hub = SnapshotHub::new();
        assert_eq!(hub.publish(10, "alpha"), 1);
        let old = hub.pin().unwrap();
        assert_eq!((old.epoch, old.wave, *old.snapshot), (1, 10, "alpha"));
        assert_eq!(hub.publish(25, "beta"), 2);
        assert_eq!(hub.epoch(), 2);
        assert_eq!(hub.latest_wave(), 25);
        // The old pin still reads the superseded snapshot, bit for bit.
        assert_eq!((old.epoch, *old.snapshot), (1, "alpha"));
        let new = hub.pin().unwrap();
        assert_eq!((new.epoch, new.wave, *new.snapshot), (2, 25, "beta"));
    }

    #[test]
    fn concurrent_pins_only_ever_see_whole_publications() {
        let hub = Arc::new(SnapshotHub::new());
        hub.publish(0, (0u64, 0u64));
        let stop = Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let hub = Arc::clone(&hub);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    while stop.load(Ordering::Relaxed) == 0 {
                        let pin = hub.pin().unwrap();
                        // Snapshots are published with both halves equal: a torn read
                        // would surface as a mismatch.
                        assert_eq!(pin.snapshot.0, pin.snapshot.1);
                        assert!(pin.epoch <= hub.epoch());
                    }
                });
            }
            for i in 1..=2000u64 {
                hub.publish(i, (i, i));
            }
            stop.store(1, Ordering::Relaxed);
        });
        assert_eq!(hub.epoch(), 2001);
    }
}
