//! The label-only query engine over one pinned [`ServeSnapshot`].
//!
//! Every query is answered from the certificates alone — the tree is never walked on
//! the serving path. On packed stores the hot path is **decode-free**: an
//! escape-aware [`FieldReader`] streams the label fields straight out of the slot's
//! bit window (§V heavy-path segments for NCA/distance, §IV redundant fields for
//! distance-to-root, §VI/§VIII fragment fields for membership) without constructing a
//! single label struct or touching the allocator. The moment an escape bit fires —
//! or on struct-mode stores, which have no bit windows — the query falls back to the
//! full [`Codec`] decode path, which is total for arbitrary garbage. Both outcomes
//! are tallied ([`QueryStats`]) so the benches can report the screen-hit rate.
//!
//! Distance from NCA labels: a label's depth is `Σ segment depths + (len − 1)` (one
//! light edge per heavy-path change), so `dist(u, v) = depth(u) + depth(v) −
//! 2·depth(nca(u, v))` — and the NCA's depth falls out of the same single pass that
//! computes the two label depths, by case analysis on where the segment sequences
//! diverge (exactly the cases of [`nca_of_labels`]).

use stst_core::EngineTask;
use stst_graph::NodeId;
use stst_labeling::nca::{nca_of_labels, NcaLabel};
use stst_labeling::redundant::RedundantLabel;
use stst_obs::{Histogram, HISTOGRAM_BUCKETS};
use stst_runtime::FieldReader;

use crate::snapshot::ServeSnapshot;

/// Number of query kinds (the width of the per-kind counters).
pub const QUERY_KINDS: usize = 5;

/// One serving query. Node arguments are [`NodeId`]s of the pinned configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Query {
    /// Tree distance from `0` to the pinned root (§IV redundant labels).
    DistToRoot(NodeId),
    /// Tree distance between the two nodes (§V NCA labels).
    TreeDist(NodeId, NodeId),
    /// Depth of the nearest common ancestor of the two nodes (§V NCA labels).
    NcaDepth(NodeId, NodeId),
    /// Is `0` an ancestor of `1` (every node is its own ancestor)?
    Ancestor(NodeId, NodeId),
    /// Are the two nodes in the same fragment (§VI Borůvka fragments at the deepest
    /// common level for MST; §VIII good-node FR fragments for MDST)?
    SameFragment(NodeId, NodeId),
}

impl Query {
    /// Dense per-kind index, for the [`QueryStats`] counters.
    pub fn kind_index(&self) -> usize {
        match self {
            Query::DistToRoot(..) => 0,
            Query::TreeDist(..) => 1,
            Query::NcaDepth(..) => 2,
            Query::Ancestor(..) => 3,
            Query::SameFragment(..) => 4,
        }
    }

    /// Metric-name suffix of the query kind, by [`Query::kind_index`].
    pub fn kind_name(index: usize) -> &'static str {
        [
            "dist_to_root",
            "tree_dist",
            "nca_depth",
            "ancestor",
            "same_fragment",
        ][index]
    }
}

/// A query answer. Counting queries yield [`Answer::Count`], predicates
/// [`Answer::Flag`]; the differential oracle compares answers for bit-identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Answer {
    Count(u64),
    Flag(bool),
}

/// Reader-local tallies, accumulated lock-free on the query path and flushed into
/// the shared `stst-obs` registry only at epoch boundaries (the serving layer's wave
/// boundaries) — never per query.
#[derive(Clone, Debug)]
pub struct QueryStats {
    /// Served queries by [`Query::kind_index`].
    pub served: [u64; QUERY_KINDS],
    /// Queries answered decode-free off the packed bit windows.
    pub screened: u64,
    /// Queries that fell back to the full decode path (escape fired, struct mode, or
    /// a pruned optional field).
    pub full_decodes: u64,
    /// Local `query_ns` histogram buckets, laid out by [`Histogram::bucket_index`].
    pub query_ns_buckets: [u64; HISTOGRAM_BUCKETS],
    /// Exact sum of the sampled query latencies, in nanoseconds.
    pub query_ns_sum: u64,
}

impl Default for QueryStats {
    fn default() -> Self {
        QueryStats {
            served: [0; QUERY_KINDS],
            screened: 0,
            full_decodes: 0,
            query_ns_buckets: [0; HISTOGRAM_BUCKETS],
            query_ns_sum: 0,
        }
    }
}

impl QueryStats {
    /// Total queries served across every kind.
    pub fn total(&self) -> u64 {
        self.served.iter().sum()
    }

    /// Records one latency sample into the local histogram.
    pub fn record_ns(&mut self, ns: u64) {
        self.query_ns_buckets[Histogram::bucket_index(ns)] += 1;
        self.query_ns_sum += ns;
    }
}

/// Answers `query` from the snapshot's labels, tallying into `stats`.
pub fn answer(snap: &ServeSnapshot, query: Query, stats: &mut QueryStats) -> Answer {
    stats.served[query.kind_index()] += 1;
    match query {
        Query::DistToRoot(v) => Answer::Count(dist_to_root(snap, v, stats)),
        Query::TreeDist(u, v) => Answer::Count(pair(snap, u, v, stats).distance()),
        Query::NcaDepth(u, v) => Answer::Count(pair(snap, u, v, stats).nca_depth),
        Query::Ancestor(u, v) => Answer::Flag(pair(snap, u, v, stats).nca_is_a),
        Query::SameFragment(u, v) => Answer::Flag(same_fragment(snap, u, v, stats)),
    }
}

/// Depths of a label pair and of their NCA, plus whether the NCA *is* one of the two
/// endpoints — everything the pair queries need, from one streaming pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct PairDepths {
    depth_a: u64,
    depth_b: u64,
    nca_depth: u64,
    /// The NCA is the first endpoint (⇔ it is an ancestor of the second).
    nca_is_a: bool,
}

impl PairDepths {
    fn distance(&self) -> u64 {
        // Exact on certified labels; saturating so that garbage labels reached via
        // the total fallback path degrade to 0 instead of wrapping.
        (self.depth_a + self.depth_b).saturating_sub(2 * self.nca_depth)
    }
}

/// Streaming decode-free pair computation over the packed NCA store. `None` when the
/// store offers no bit window (struct mode), a label is absent or empty, or any
/// escape bit fires — the caller falls back to the full decode path.
fn stream_pair(snap: &ServeSnapshot, u: NodeId, v: NodeId) -> Option<PairDepths> {
    let ctx = snap.ctx();
    let mut fa = snap.nca.field_reader(u)?;
    let mut fb = snap.nca.field_reader(v)?;
    let la = fa.uint(ctx.len_bits)?;
    let lb = fb.uint(ctx.len_bits)?;
    if la == 0 || lb == 0 {
        return None; // degenerate labels never occur in certified configurations
    }
    // Longest common prefix of full (head, depth) segments, accumulating the depth
    // sum of the matched prefix as we go.
    let common = la.min(lb);
    let mut prefix_depth = 0u64;
    let mut matched = 0u64;
    let mut divergence: Option<(u64, u64, u64, u64)> = None;
    while matched < common {
        let ha = fa.uint(ctx.ident_bits)?;
        let da = fa.uint(ctx.count_bits)?;
        let hb = fb.uint(ctx.ident_bits)?;
        let db = fb.uint(ctx.count_bits)?;
        if ha == hb && da == db {
            prefix_depth += da;
            matched += 1;
        } else {
            divergence = Some((ha, da, hb, db));
            break;
        }
    }
    let mut sum_a = prefix_depth;
    let mut sum_b = prefix_depth;
    if let Some((ha, da, hb, db)) = divergence {
        sum_a += da;
        sum_b += db;
        for _ in matched + 1..la {
            fa.uint(ctx.ident_bits)?;
            sum_a += fa.uint(ctx.count_bits)?;
        }
        for _ in matched + 1..lb {
            fb.uint(ctx.ident_bits)?;
            sum_b += fb.uint(ctx.count_bits)?;
        }
        let nca_depth = if ha == hb {
            // Same heavy path, different exit depths: the NCA is the shallower
            // position — its label is the prefix plus one segment of depth min.
            prefix_depth + matched + da.min(db)
        } else {
            // Divergence into different heavy paths: the NCA is the shared exit
            // node, whose label is exactly the matched prefix. A zero-length prefix
            // would mean two different roots — impossible for one tree's certified
            // labels, so bail to the total fallback rather than underflow.
            if matched == 0 {
                return None;
            }
            prefix_depth + matched - 1
        };
        Some(PairDepths {
            depth_a: sum_a + la - 1,
            depth_b: sum_b + lb - 1,
            nca_depth,
            nca_is_a: ha == hb && matched + 1 == la && da < db,
        })
    } else {
        // One label is a full-segment prefix of the other: the shorter labels an
        // ancestor of the longer (or the labels are equal).
        for _ in common..la {
            fa.uint(ctx.ident_bits)?;
            sum_a += fa.uint(ctx.count_bits)?;
        }
        for _ in common..lb {
            fb.uint(ctx.ident_bits)?;
            sum_b += fb.uint(ctx.count_bits)?;
        }
        let depth_a = sum_a + la - 1;
        let depth_b = sum_b + lb - 1;
        Some(PairDepths {
            depth_a,
            depth_b,
            nca_depth: if la <= lb { depth_a } else { depth_b },
            nca_is_a: la <= lb,
        })
    }
}

/// Pair computation with the full-decode fallback (total for arbitrary labels).
fn pair(snap: &ServeSnapshot, u: NodeId, v: NodeId, stats: &mut QueryStats) -> PairDepths {
    if let Some(depths) = stream_pair(snap, u, v) {
        stats.screened += 1;
        return depths;
    }
    stats.full_decodes += 1;
    let ctx = snap.ctx();
    let a: NcaLabel = snap.nca.get(u, ctx);
    let b: NcaLabel = snap.nca.get(v, ctx);
    let nca = nca_of_labels(&a, &b);
    PairDepths {
        depth_a: a.depth(),
        depth_b: b.depth(),
        nca_depth: nca.depth(),
        nca_is_a: nca == a,
    }
}

/// Distance to the pinned root, preferring the §IV redundant label's distance field
/// (two field reads); a pruned distance falls back to the NCA label's depth, which
/// always exists in a silent configuration.
fn dist_to_root(snap: &ServeSnapshot, v: NodeId, stats: &mut QueryStats) -> u64 {
    let ctx = snap.ctx();
    let streamed = snap.redundant.field_reader(v).and_then(|mut f| {
        f.uint(ctx.ident_bits)?; // root identity: agreed network-wide at silence
        f.opt_uint(ctx.count_bits)?
    });
    if let Some(dist) = streamed {
        stats.screened += 1;
        return dist;
    }
    stats.full_decodes += 1;
    let label: RedundantLabel = snap.redundant.get(v, ctx);
    match label.dist {
        Some(dist) => dist,
        None => snap.nca.get(v, ctx).depth(),
    }
}

/// Fragment membership. MST: same Borůvka fragment at the deepest level both label
/// traces reach (§VI). MDST: both nodes good and pointing at the same FR fragment
/// head (§VIII) — bad nodes belong to no fragment.
fn same_fragment(snap: &ServeSnapshot, u: NodeId, v: NodeId, stats: &mut QueryStats) -> bool {
    match snap.task() {
        EngineTask::Mst => {
            if let Some(answer) = stream_mst_fragment(snap, u, v) {
                stats.screened += 1;
                return answer;
            }
            stats.full_decodes += 1;
            let ctx = snap.ctx();
            let store = snap
                .fragments
                .as_ref()
                .expect("MST snapshots carry fragment labels");
            let a = store.get(u, ctx);
            let b = store.get(v, ctx);
            let level = a.levels.len().min(b.levels.len());
            level > 0 && a.levels[level - 1].fragment == b.levels[level - 1].fragment
        }
        EngineTask::Mdst => {
            if let Some(answer) = stream_fr_fragment(snap, u, v) {
                stats.screened += 1;
                return answer;
            }
            stats.full_decodes += 1;
            let ctx = snap.ctx();
            let store = snap.fr.as_ref().expect("MDST snapshots carry FR labels");
            let a = store.get(u, ctx);
            let b = store.get(v, ctx);
            match (a.good, a.fragment, b.good, b.fragment) {
                (true, Some((ha, _)), true, Some((hb, _))) => ha == hb,
                _ => false,
            }
        }
    }
}

/// Decode-free MST fragment membership: walk both level traces to the deepest common
/// level, skipping the outgoing-edge tuples field by field.
fn stream_mst_fragment(snap: &ServeSnapshot, u: NodeId, v: NodeId) -> Option<bool> {
    let ctx = snap.ctx();
    let store = snap.fragments.as_ref()?;
    let mut fa = store.field_reader(u)?;
    let mut fb = store.field_reader(v)?;
    let la = fa.uint(ctx.len_bits)?;
    let lb = fb.uint(ctx.len_bits)?;
    let common = la.min(lb);
    if common == 0 {
        return Some(false);
    }
    let frag_at = |f: &mut FieldReader<'_>| -> Option<u64> {
        for level in 0..common {
            let fragment = f.uint(ctx.ident_bits)?;
            if level + 1 == common {
                return Some(fragment);
            }
            if f.bit() {
                f.uint(ctx.ident_bits)?;
                f.uint(ctx.ident_bits)?;
                f.uint(ctx.weight_bits)?;
            }
        }
        unreachable!("the loop returns at level common - 1")
    };
    Some(frag_at(&mut fa)? == frag_at(&mut fb)?)
}

/// Decode-free FR fragment membership: two counter skips, the good bit, and the
/// fragment head.
fn stream_fr_fragment(snap: &ServeSnapshot, u: NodeId, v: NodeId) -> Option<bool> {
    let ctx = snap.ctx();
    let store = snap.fr.as_ref()?;
    let head = |f: &mut FieldReader<'_>| -> Option<Option<u64>> {
        f.uint(ctx.count_bits)?; // tree_degree
        f.uint(ctx.count_bits)?; // subtree_max_degree
        let good = f.bit();
        let fragment = if f.bit() {
            let head = f.uint(ctx.ident_bits)?;
            f.uint(ctx.count_bits)?; // distance to head: membership ignores it
            Some(head)
        } else {
            None
        };
        Some(good.then_some(fragment).flatten())
    };
    let ha = head(&mut store.field_reader(u)?)?;
    let hb = head(&mut store.field_reader(v)?)?;
    Some(matches!((ha, hb), (Some(a), Some(b)) if a == b))
}
