//! `stst-serve`: the serving layer over silent configurations.
//!
//! The paper's point of *silence* is that a stabilized configuration — the spanning
//! tree plus its `O(log² n)`-bit certificates — is meant to be **consumed** by
//! higher-level protocols under real load ("millions of users, heavy traffic").
//! This crate is that consumer: it turns the certified labels into a concurrent
//! distance/NCA/fragment oracle that keeps answering while the engine repairs under
//! churn.
//!
//! Three pieces:
//!
//! * **Epoch publication** ([`epoch`]): the engine publishes an immutable
//!   [`ServeSnapshot`] at each silence; readers pin an epoch and answer every query
//!   from the pinned value — no reader-side locks on the hot path, no torn reads by
//!   construction, staleness bounded by one repair convergence (readers observe the
//!   *last* silent configuration, never an intermediate repair state).
//! * **Query engine** ([`query`]): answers come from the labels alone. On packed
//!   stores the hot path streams fields straight out of the bit-packed slots
//!   (escape-aware [`stst_runtime::FieldReader`]); full decodes happen only on
//!   escape or in the struct reference mode.
//! * **Load generation** ([`workload`]): seeded scrambled-zipfian query streams for
//!   the benches and the differential oracle.
//!
//! [`ServeHub`] wires the pieces to `stst-obs`: readers tally served/screened
//! counts and latencies locally and flush them only at epoch boundaries (the
//! serving layer's wave boundaries), keeping the registry off the per-query path.

pub mod epoch;
pub mod query;
pub mod snapshot;
pub mod workload;

use std::time::Instant;

use stst_core::CompositionEngine;
use stst_obs::Obs;
use stst_runtime::store::StoreMode;

pub use epoch::{Pinned, SnapshotHub};
pub use query::{Answer, Query, QueryStats, QUERY_KINDS};
pub use snapshot::ServeSnapshot;
pub use workload::{LoadGen, QueryMix, Zipfian};

/// The serving hub: the publication slot plus the observability handle the readers
/// flush into. One writer (whoever drives the engine), any number of readers.
#[derive(Debug)]
pub struct ServeHub {
    hub: SnapshotHub<ServeSnapshot>,
    mode: StoreMode,
    obs: Obs,
}

impl ServeHub {
    /// A hub whose published snapshots use `mode` for their label stores.
    pub fn new(mode: StoreMode) -> Self {
        ServeHub {
            hub: SnapshotHub::new(),
            mode,
            obs: Obs::disabled(),
        }
    }

    /// Attaches an observability handle. Readers created afterwards flush their
    /// per-epoch tallies (`queries_served*`, `query_ns`, `snapshot_staleness_waves`,
    /// screen-hit counters) into its registry; latency sampling is active only while
    /// the handle is enabled.
    pub fn attach_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// The attached observability handle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// The store mode published snapshots use.
    pub fn mode(&self) -> StoreMode {
        self.mode
    }

    /// Publishes the engine's current silent configuration and returns the new
    /// epoch. Call at silence boundaries — after [`CompositionEngine::run`] or
    /// whenever a churn batch has re-stabilized.
    ///
    /// # Panics
    ///
    /// Panics if the engine is not publishable (see [`ServeSnapshot::from_engine`]).
    pub fn publish_from_engine(&self, engine: &CompositionEngine<'_>) -> u64 {
        let snapshot = ServeSnapshot::from_engine(engine, self.mode);
        let wave = snapshot.wave();
        let epoch = self.hub.publish(wave, snapshot);
        if self.obs.is_enabled() {
            self.obs.counter("serve_snapshots_published").inc();
            self.obs.gauge("serve_epoch").set(epoch);
        }
        epoch
    }

    /// The current epoch (0 before the first publication); lock-free.
    pub fn epoch(&self) -> u64 {
        self.hub.epoch()
    }

    /// The newest snapshot's wave stamp; lock-free.
    pub fn latest_wave(&self) -> u64 {
        self.hub.latest_wave()
    }

    /// Pins the current snapshot into a new reader session. `None` before the first
    /// publication.
    pub fn reader(&self) -> Option<ServeReader<'_>> {
        let pinned = self.hub.pin()?;
        Some(ServeReader {
            hub: self,
            pinned,
            stats: QueryStats::default(),
            timed: self.obs.is_enabled(),
        })
    }
}

/// One reader session: a pinned epoch plus local tallies. Queries run lock-free off
/// the pinned snapshot; [`ServeReader::refresh`] is the session's epoch boundary —
/// it flushes the tallies into the hub's obs registry and re-pins if the writer has
/// published a newer snapshot. Dropping the reader flushes too.
#[derive(Debug)]
pub struct ServeReader<'h> {
    hub: &'h ServeHub,
    pinned: Pinned<ServeSnapshot>,
    stats: QueryStats,
    timed: bool,
}

impl ServeReader<'_> {
    /// The pinned epoch.
    pub fn epoch(&self) -> u64 {
        self.pinned.epoch
    }

    /// The pinned snapshot.
    pub fn snapshot(&self) -> &ServeSnapshot {
        &self.pinned.snapshot
    }

    /// The local tallies accumulated since the last flush.
    pub fn stats(&self) -> &QueryStats {
        &self.stats
    }

    /// Answers `query` from the pinned snapshot. Lock-free; repeated calls return
    /// bit-identical answers regardless of concurrent publications.
    #[inline]
    pub fn query(&mut self, query: Query) -> Answer {
        if self.timed {
            let start = Instant::now();
            let answer = query::answer(&self.pinned.snapshot, query, &mut self.stats);
            self.stats
                .record_ns(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
            answer
        } else {
            query::answer(&self.pinned.snapshot, query, &mut self.stats)
        }
    }

    /// `true` if the writer has published past the pinned epoch; lock-free.
    pub fn is_stale(&self) -> bool {
        self.hub.epoch() != self.pinned.epoch
    }

    /// Staleness in waves: the newest snapshot's wave stamp minus the pinned one's.
    /// Bounded by one repair convergence — the writer publishes at every silence.
    pub fn staleness_waves(&self) -> u64 {
        self.hub.latest_wave().saturating_sub(self.pinned.wave)
    }

    /// The session's epoch boundary: flushes the local tallies into the obs
    /// registry, then re-pins the newest snapshot. Returns `true` if the pin moved.
    pub fn refresh(&mut self) -> bool {
        self.flush();
        if !self.is_stale() {
            return false;
        }
        if let Some(pinned) = self.hub.hub.pin() {
            let moved = pinned.epoch != self.pinned.epoch;
            self.pinned = pinned;
            if moved && self.hub.obs.is_enabled() {
                self.hub.obs.counter("serve_epoch_refreshes").inc();
            }
            return moved;
        }
        false
    }

    /// Flushes the local tallies into the obs registry (no re-pin). A no-op with a
    /// disabled handle; tallies reset either way so they are never double-counted.
    pub fn flush(&mut self) {
        let obs = &self.hub.obs;
        if obs.is_enabled() {
            let total = self.stats.total();
            if total > 0 {
                obs.counter("queries_served").add(total);
                for (kind, &served) in self.stats.served.iter().enumerate() {
                    if served > 0 {
                        obs.counter(&format!("queries_served_{}", Query::kind_name(kind)))
                            .add(served);
                    }
                }
                obs.counter("serve_screen_hits").add(self.stats.screened);
                obs.counter("serve_full_decodes")
                    .add(self.stats.full_decodes);
                obs.histogram("query_ns")
                    .merge(&self.stats.query_ns_buckets, self.stats.query_ns_sum);
            }
            obs.gauge("snapshot_staleness_waves")
                .set(self.staleness_waves());
        }
        self.stats = QueryStats::default();
    }
}

impl Drop for ServeReader<'_> {
    fn drop(&mut self) {
        self.flush();
    }
}
