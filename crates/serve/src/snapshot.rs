//! The immutable serving snapshot: one silent configuration, packed for queries.
//!
//! A [`ServeSnapshot`] is taken from a [`CompositionEngine`] at a *publishable*
//! boundary ([`CompositionEngine::is_publishable`]): the composition is silent and
//! every verifier has accepted the configuration, so the certificates the snapshot
//! carries are exactly the ones the paper's silent configurations expose to
//! higher-level protocols. The label families are re-encoded into fresh packed
//! [`ConfigStore`]s (one heap allocation each, [`ConfigStore::packed_from_slice`]),
//! so the snapshot shares no memory with the engine's live state — the engine is free
//! to keep repairing under churn while readers query the snapshot.
//!
//! The snapshot also keeps the tree's parent vector. Queries never touch it (they run
//! off the labels alone); it exists so the differential oracle can re-derive every
//! answer by direct tree traversal *of the pinned epoch's tree* and so routing
//! escapes have a reference structure to walk.

use stst_core::{CompositionEngine, EngineTask};
use stst_graph::{Ident, NodeId};
use stst_labeling::fr_labels::{FrLabel, FrScheme};
use stst_labeling::mst_fragments::FragmentLabel;
use stst_labeling::nca::NcaLabel;
use stst_labeling::redundant::RedundantLabel;
use stst_labeling::scheme::ProofLabelingScheme;
use stst_runtime::store::{ConfigStore, StoreMode};
use stst_runtime::CodecCtx;

/// One silent configuration, frozen for serving. Immutable after construction.
#[derive(Debug)]
pub struct ServeSnapshot {
    /// The engine's deterministic round total at the silence this snapshot was taken
    /// from — the wave stamp staleness is measured against.
    wave: u64,
    /// Codec field widths the label stores were encoded under.
    ctx: CodecCtx,
    mode: StoreMode,
    task: EngineTask,
    /// Node identities, indexed by [`NodeId`].
    idents: Vec<Ident>,
    /// The silent tree's parent vector (differential-oracle reference; not used by
    /// the label-only query paths).
    parents: Vec<Option<NodeId>>,
    root: NodeId,
    /// Heavy-path NCA labels (§V) — NCA, ancestor and distance queries.
    pub(crate) nca: ConfigStore<NcaLabel>,
    /// Redundant distance+size labels (§IV) — distance-to-root queries.
    pub(crate) redundant: ConfigStore<RedundantLabel>,
    /// Borůvka fragment labels (§VI), present for MST tasks.
    pub(crate) fragments: Option<ConfigStore<FragmentLabel>>,
    /// FR-tree labels (§VIII), present for MDST tasks.
    pub(crate) fr: Option<ConfigStore<FrLabel>>,
}

impl ServeSnapshot {
    /// Freezes the engine's current silent configuration into a snapshot whose label
    /// stores use `mode` ([`StoreMode::Packed`] for serving; [`StoreMode::Struct`] is
    /// the reference representation the differential tests compare against).
    ///
    /// # Panics
    ///
    /// Panics if the engine is not at a publishable boundary
    /// ([`CompositionEngine::is_publishable`]) — publishing a non-silent
    /// configuration would leak uncertified state to readers.
    pub fn from_engine(engine: &CompositionEngine<'_>, mode: StoreMode) -> Self {
        assert!(
            engine.is_publishable(),
            "snapshots are published from silent configurations only"
        );
        let ctx = engine.codec_ctx();
        let graph = engine.graph();
        let tree = engine.tree();
        let nca = match mode {
            StoreMode::Packed => ConfigStore::packed_from_slice(engine.nca_labels(), &ctx),
            StoreMode::Struct => ConfigStore::from_states(mode, engine.nca_labels().to_vec(), &ctx),
        };
        let redundant = match mode {
            StoreMode::Packed => ConfigStore::packed_from_slice(engine.redundant_labels(), &ctx),
            StoreMode::Struct => {
                ConfigStore::from_states(mode, engine.redundant_labels().to_vec(), &ctx)
            }
        };
        let fragments = engine.fragment_labels().map(|labels| match mode {
            StoreMode::Packed => ConfigStore::packed_from_slice(labels, &ctx),
            StoreMode::Struct => ConfigStore::from_states(mode, labels.to_vec(), &ctx),
        });
        // MDST engines do not retain FR labels between waves; the silent tree is an
        // FR-tree (that is what its verifiers accepted), so the prover re-derives
        // them here — a read-only O(n) pass, same cost class as the re-encoding.
        let fr = (engine.task() == EngineTask::Mdst).then(|| {
            let labels = FrScheme.prove(graph, tree);
            match mode {
                StoreMode::Packed => ConfigStore::packed_from_slice(&labels, &ctx),
                StoreMode::Struct => ConfigStore::from_states(mode, labels, &ctx),
            }
        });
        ServeSnapshot {
            wave: engine.total_rounds(),
            ctx,
            mode,
            task: engine.task(),
            idents: graph.nodes().map(|v| graph.ident(v)).collect(),
            parents: tree.parents().to_vec(),
            root: tree.root(),
            nca,
            redundant,
            fragments,
            fr,
        }
    }

    /// Number of nodes in the snapshot's configuration.
    pub fn node_count(&self) -> usize {
        self.idents.len()
    }

    /// The wave stamp (engine round total at the source silence).
    pub fn wave(&self) -> u64 {
        self.wave
    }

    /// The codec field widths the stores were encoded under.
    pub fn ctx(&self) -> &CodecCtx {
        &self.ctx
    }

    /// The store representation of the label families.
    pub fn mode(&self) -> StoreMode {
        self.mode
    }

    /// The task of the engine the snapshot was taken from.
    pub fn task(&self) -> EngineTask {
        self.task
    }

    /// The identity of node `v`.
    pub fn ident(&self, v: NodeId) -> Ident {
        self.idents[v.0]
    }

    /// The pinned tree's parent vector (differential-oracle reference).
    pub fn parents(&self) -> &[Option<NodeId>] {
        &self.parents
    }

    /// The pinned tree's root.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Depth of `v` by direct parent-pointer traversal of the pinned tree — the
    /// reference the label-derived answers are differentially checked against.
    pub fn traversal_depth(&self, v: NodeId) -> u64 {
        let mut depth = 0;
        let mut cur = v;
        while let Some(p) = self.parents[cur.0] {
            depth += 1;
            cur = p;
        }
        depth
    }

    /// NCA of `u` and `v` by direct parent-pointer traversal of the pinned tree.
    pub fn traversal_nca(&self, u: NodeId, v: NodeId) -> NodeId {
        let (mut a, mut b) = (u, v);
        let (mut da, mut db) = (self.traversal_depth(a), self.traversal_depth(b));
        while da > db {
            a = self.parents[a.0].expect("depth positive implies a parent");
            da -= 1;
        }
        while db > da {
            b = self.parents[b.0].expect("depth positive implies a parent");
            db -= 1;
        }
        while a != b {
            a = self.parents[a.0].expect("roots are unique, so walks meet");
            b = self.parents[b.0].expect("roots are unique, so walks meet");
        }
        a
    }
}
