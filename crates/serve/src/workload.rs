//! Seeded query-load generation: zipfian-skewed endpoints, weighted query mixes.
//!
//! The vendored rand shim has no zipfian distribution, so this is the standard
//! Gray et al. rejection-free inverse-CDF approximation (the YCSB generator):
//! `zeta(n, θ)` is precomputed once, sampling is then O(1) per draw. Raw zipfian
//! ranks cluster the hot keys at the low node ids; a fixed multiplicative hash
//! scatters them across the id space (scrambled zipfian) so skew does not alias
//! with the topology generator's id layout. Everything is seeded and deterministic:
//! same seed, same query sequence — which is what lets the differential oracle and
//! the lockstep tests replay identical load.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use stst_graph::NodeId;

use crate::query::{Query, QUERY_KINDS};

/// O(1) zipfian sampler over ranks `0..n` with exponent `theta` (0 < θ < 1).
#[derive(Clone, Debug)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    eta: f64,
    threshold1: f64,
    threshold2: f64,
}

impl Zipfian {
    /// Precomputes `zeta(n, θ)` (one O(n) pass). `n` must be ≥ 1.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n >= 1, "zipfian needs a non-empty rank space");
        assert!(
            theta > 0.0 && theta < 1.0,
            "the inverse-CDF approximation needs 0 < theta < 1"
        );
        let zetan: f64 = (1..=n as u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let zeta2: f64 = 1.0 + 0.5f64.powf(theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n: n as u64,
            theta,
            eta,
            threshold1: 1.0 / zetan,
            threshold2: zeta2 / zetan,
        }
    }

    /// Draws one rank in `0..n`; rank 0 is the hottest.
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let u = uniform_f64(rng);
        if u < self.threshold1 {
            return 0;
        }
        if self.n >= 2 && u < self.threshold2 {
            return 1;
        }
        let rank = (self.n as f64
            * (self.eta.mul_add(u, 1.0 - self.eta)).powf(1.0 / (1.0 - self.theta)))
            as u64;
        rank.min(self.n - 1)
    }
}

/// Uniform `f64` in `[0, 1)` from the top 53 bits of one `u64` draw (the shim has no
/// float sampling).
#[inline]
fn uniform_f64(rng: &mut StdRng) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Scatters zipfian ranks across `0..n` with a fixed multiplicative hash, so the hot
/// set is not the first few node ids (scrambled zipfian).
#[inline]
fn scramble(rank: u64, n: u64) -> u64 {
    (rank.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_right(17)) % n
}

/// Relative weights of the five query kinds, indexed by [`Query::kind_index`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryMix {
    pub weights: [u32; QUERY_KINDS],
}

impl QueryMix {
    /// The bench's default read mix: distance-heavy (the paper's routing consumers),
    /// with NCA/ancestor/fragment lookups mixed in.
    pub fn default_mix() -> Self {
        QueryMix {
            weights: [20, 40, 15, 15, 10],
        }
    }

    /// A single-kind mix (per-kind throughput rows of the bench table).
    pub fn only(kind: usize) -> Self {
        let mut weights = [0; QUERY_KINDS];
        weights[kind] = 1;
        QueryMix { weights }
    }

    fn total(&self) -> u32 {
        self.weights.iter().sum()
    }
}

/// Deterministic query stream: seeded rng, zipfian endpoints, weighted kinds.
#[derive(Clone, Debug)]
pub struct LoadGen {
    rng: StdRng,
    zipf: Zipfian,
    mix: QueryMix,
    mix_total: u32,
    n: u64,
}

impl LoadGen {
    /// A generator over `n` nodes with zipfian exponent `theta` (0.99 is the
    /// conventional heavy skew) and the given kind mix.
    pub fn new(n: usize, theta: f64, mix: QueryMix, seed: u64) -> Self {
        assert!(mix.total() > 0, "the query mix must have positive weight");
        LoadGen {
            rng: StdRng::seed_from_u64(seed ^ 0x5e7e),
            zipf: Zipfian::new(n, theta),
            mix_total: mix.total(),
            mix,
            n: n as u64,
        }
    }

    fn node(&mut self) -> NodeId {
        let rank = self.zipf.sample(&mut self.rng);
        NodeId(scramble(rank, self.n) as usize)
    }

    /// Draws the next query.
    pub fn next_query(&mut self) -> Query {
        let mut pick = (self.rng.next_u64() % self.mix_total as u64) as u32;
        let mut kind = 0;
        for (index, &weight) in self.mix.weights.iter().enumerate() {
            if pick < weight {
                kind = index;
                break;
            }
            pick -= weight;
        }
        let u = self.node();
        match kind {
            0 => Query::DistToRoot(u),
            1 => Query::TreeDist(u, self.node()),
            2 => Query::NcaDepth(u, self.node()),
            3 => Query::Ancestor(u, self.node()),
            _ => Query::SameFragment(u, self.node()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = LoadGen::new(500, 0.99, QueryMix::default_mix(), 7);
        let mut b = LoadGen::new(500, 0.99, QueryMix::default_mix(), 7);
        for _ in 0..1000 {
            assert_eq!(a.next_query(), b.next_query());
        }
        let mut c = LoadGen::new(500, 0.99, QueryMix::default_mix(), 8);
        assert!(
            (0..1000).any(|_| a.next_query() != c.next_query()),
            "different seeds should diverge"
        );
    }

    #[test]
    fn zipfian_is_skewed_and_in_range() {
        let zipf = Zipfian::new(1000, 0.99);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = vec![0u64; 1000];
        for _ in 0..200_000 {
            let rank = zipf.sample(&mut rng) as usize;
            assert!(rank < 1000);
            counts[rank] += 1;
        }
        // Rank 0 dominates and the head outweighs the tail by a wide margin.
        assert!(counts[0] > counts[10] && counts[10] > 0);
        let head: u64 = counts[..10].iter().sum();
        let tail: u64 = counts[500..].iter().sum();
        assert!(
            head > 4 * tail,
            "zipf(0.99) head {head} should dwarf tail {tail}"
        );
    }

    #[test]
    fn single_kind_mix_only_emits_that_kind() {
        for kind in 0..QUERY_KINDS {
            let mut gen = LoadGen::new(64, 0.9, QueryMix::only(kind), 11);
            for _ in 0..200 {
                assert_eq!(gen.next_query().kind_index(), kind);
            }
        }
    }

    #[test]
    fn scramble_spreads_the_hot_ranks() {
        let hot: Vec<u64> = (0..10).map(|r| scramble(r, 1000)).collect();
        let mut sorted = hot.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            hot.len(),
            "hot keys must not collide: {hot:?}"
        );
        assert!(
            hot.iter().any(|&k| k > 100),
            "hot set should leave the low ids"
        );
    }
}
