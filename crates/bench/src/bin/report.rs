//! Regenerates every experiment table of EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p stst-bench --bin report [seed]`
//! (pass `--json` as a second argument to emit machine-readable output).

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2015);
    let json = args.iter().any(|a| a == "--json");
    let tables = stst_bench::full_report(seed);
    if json {
        println!("{}", stst_bench::tables_to_json(&tables));
        return;
    }
    println!("# Experiment report (seed {seed})\n");
    for table in tables {
        println!("{}\n", table.to_markdown());
    }
}
