//! Regenerates every experiment table of EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p stst-bench --bin report [seed] [--json] [--smoke] [--space] [--soak] [--trace] [--serve] [--threads=N]`
//!
//! * `--json` emits machine-readable output — a `{host, tables}` document whose
//!   `host` block records the logical core count and thread grid, so recorded
//!   `BENCH_*.json` baselines are self-describing;
//! * `--smoke` runs the tiny-size grid (every experiment at toy sizes — the CI check
//!   that keeps the harness runnable);
//! * `--space` runs only the space tables (E5, E7 and the large-scale E11) at their
//!   full sizes — what `BENCH_space.json` is recorded from;
//! * `--soak` runs only the long-haul E12 soak at full size (MST composition soak at
//!   composition scale, sync-BFS executor soak at n = 10⁶) and, with `--json`, emits
//!   the `{host, runs}` time-series document recorded as `BENCH_soak.json`;
//! * `--trace` runs the observability scenario (one enabled `Obs` handle across all
//!   four layers) and checks every trace contract — non-empty trace, no drops, wave
//!   ordering, byte-exact JSONL round-trip, determinism transparency, the guard-counter
//!   invariant, and the disabled-cost overhead gate. Exits 1 when any contract fails
//!   (the CI gate); with `--json` the document embeds the full trace and registry;
//! * `--serve` runs the serving-layer scenario (S1/S2): reader threads answer
//!   zipfian query mixes off epoch-pinned snapshots while the writer churns the
//!   topology and republishes at every silence. Exits 1 when the differential
//!   oracle catches a sampled answer diverging from direct tree traversal or a
//!   packed query falls back to a full decode (the CI gate); with `--json` the
//!   document is what `BENCH_serve.json` is recorded from;
//! * `--threads=N` pins the worker thread count (for `--serve`, the reader-thread
//!   grid becomes `[N]`; defaults to the host grid). The `=` form is required: a
//!   bare value would be read as the seed.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = args
        .iter()
        .skip(1)
        .filter(|s| !s.starts_with("--"))
        .find_map(|s| s.parse().ok())
        .unwrap_or(2015);
    let json = args.iter().any(|a| a == "--json");
    let smoke = args.iter().any(|a| a == "--smoke");
    let space = args.iter().any(|a| a == "--space");
    let soak = args.iter().any(|a| a == "--soak");
    let trace = args.iter().any(|a| a == "--trace");
    let serve = args.iter().any(|a| a == "--serve");
    let threads_override: Option<usize> = args
        .iter()
        .find_map(|a| a.strip_prefix("--threads="))
        .and_then(|v| v.parse().ok());
    if serve {
        let grid: Vec<usize> = match threads_override {
            Some(t) => vec![t],
            None if smoke => vec![1, 4],
            None => vec![1, 2, 4, 8],
        };
        let (n, waves, queries) = if smoke {
            (80, 6, 30_000)
        } else {
            (2_000, 16, 400_000)
        };
        let (tables, passed) = stst_bench::serve_report(n, waves, queries, &grid, seed);
        if json {
            println!("{}", stst_bench::serve_json(&tables, &grid, passed));
        } else {
            println!("# Serve report (seed {seed})\n");
            for table in &tables {
                println!("{}\n", table.to_markdown());
            }
        }
        if !passed {
            eprintln!("serve differential oracle FAILED");
            std::process::exit(1);
        }
        return;
    }
    if trace {
        let threads = threads_override.unwrap_or_else(stst_bench::default_threads);
        let (n, waves) = if smoke { (60, 8) } else { (2_000, 24) };
        let doc = stst_bench::trace_report(n, waves, seed, threads);
        if json {
            println!("{}", doc.to_json(threads));
        } else {
            println!("{}", doc.to_markdown());
        }
        if !doc.passed() {
            eprintln!("trace contracts FAILED");
            std::process::exit(1);
        }
        return;
    }
    if soak {
        let threads = threads_override.unwrap_or_else(stst_bench::default_threads);
        let (engine_sizes, executor_sizes, waves) = if smoke {
            (vec![20usize], vec![400usize], 8)
        } else {
            (vec![2_000], vec![1_000_000], 24)
        };
        let runs = stst_bench::e12_soak_runs(&engine_sizes, &executor_sizes, waves, seed, threads);
        if json {
            println!("{}", stst_bench::soak_json(&runs, threads));
        } else {
            let table = stst_bench::e12_table_from_runs(&runs, threads);
            println!("# Soak report (seed {seed})\n\n{}\n", table.to_markdown());
        }
        return;
    }
    let (tables, thread_grid) = if smoke {
        (stst_bench::smoke_report(seed), vec![2])
    } else if space {
        let threads = threads_override.unwrap_or_else(stst_bench::default_threads);
        (
            vec![
                stst_bench::e5_mst_space(&[16, 32, 64, 128], seed),
                stst_bench::e7_mdst_space(&[16, 32, 64], seed),
                stst_bench::e11_space_scale(&[100_000, 1_000_000], &[100_000], seed, threads),
            ],
            vec![threads],
        )
    } else {
        (
            stst_bench::full_report(seed),
            vec![threads_override.unwrap_or_else(stst_bench::default_threads)],
        )
    };
    if json {
        println!("{}", stst_bench::report_json(&tables, &thread_grid));
        return;
    }
    println!(
        "# Experiment report (seed {seed}{})\n",
        if smoke { ", smoke sizes" } else { "" }
    );
    for table in tables {
        println!("{}\n", table.to_markdown());
    }
}
