//! Regenerates every experiment table of EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p stst-bench --bin report [seed] [--json] [--smoke] [--space]`
//!
//! * `--json` emits machine-readable output — a `{host, tables}` document whose
//!   `host` block records the logical core count and thread grid, so recorded
//!   `BENCH_*.json` baselines are self-describing;
//! * `--smoke` runs the tiny-size grid (every experiment at toy sizes — the CI check
//!   that keeps the harness runnable);
//! * `--space` runs only the space tables (E5, E7 and the large-scale E11) at their
//!   full sizes — what `BENCH_space.json` is recorded from.

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = args
        .iter()
        .skip(1)
        .find_map(|s| s.parse().ok())
        .unwrap_or(2015);
    let json = args.iter().any(|a| a == "--json");
    let smoke = args.iter().any(|a| a == "--smoke");
    let space = args.iter().any(|a| a == "--space");
    let (tables, thread_grid) = if smoke {
        (stst_bench::smoke_report(seed), vec![2])
    } else if space {
        let threads = stst_bench::default_threads();
        (
            vec![
                stst_bench::e5_mst_space(&[16, 32, 64, 128], seed),
                stst_bench::e7_mdst_space(&[16, 32, 64], seed),
                stst_bench::e11_space_scale(&[100_000, 1_000_000], &[100_000], seed, threads),
            ],
            vec![threads],
        )
    } else {
        (
            stst_bench::full_report(seed),
            vec![stst_bench::default_threads()],
        )
    };
    if json {
        println!("{}", stst_bench::report_json(&tables, &thread_grid));
        return;
    }
    println!(
        "# Experiment report (seed {seed}{})\n",
        if smoke { ", smoke sizes" } else { "" }
    );
    for table in tables {
        println!("{}\n", table.to_markdown());
    }
}
