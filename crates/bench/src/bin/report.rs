//! Regenerates every experiment table of EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p stst-bench --bin report [seed] [--json] [--smoke]`
//!
//! * `--json` emits machine-readable output;
//! * `--smoke` runs the tiny-size grid (every experiment at toy sizes — the CI check
//!   that keeps the harness runnable).

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = args
        .iter()
        .skip(1)
        .find_map(|s| s.parse().ok())
        .unwrap_or(2015);
    let json = args.iter().any(|a| a == "--json");
    let smoke = args.iter().any(|a| a == "--smoke");
    let tables = if smoke {
        stst_bench::smoke_report(seed)
    } else {
        stst_bench::full_report(seed)
    };
    if json {
        println!("{}", stst_bench::tables_to_json(&tables));
        return;
    }
    println!(
        "# Experiment report (seed {seed}{})\n",
        if smoke { ", smoke sizes" } else { "" }
    );
    for table in tables {
        println!("{}\n", table.to_markdown());
    }
}
