//! Experiment harness for the ICDCS 2015 reproduction.
//!
//! The paper has no empirical tables (it is a theory paper), so the experiments E1–E10
//! defined in DESIGN.md operationalize its claims: each function here runs one
//! experiment over a parameter sweep and returns printable rows; the `report` binary
//! assembles them into the tables recorded in EXPERIMENTS.md, and the Criterion benches
//! under `benches/` time representative points of each sweep.

use stst_baselines::compact_mst::{self, CompactVariant};
use stst_baselines::naive_reset::DistanceOnlySpanningTree;
use stst_baselines::prior_mdst;
use stst_churn::soak::{run_executor_soak, run_soak, run_soak_observed, SoakConfig, SoakReport};
use stst_churn::{trace, ChurnDriver};
use stst_core::bfs::RootedBfs;
use stst_core::engine::{CompositionEngine, EngineTask, PhaseEvent};
use stst_core::nca_build::build_nca_labels;
use stst_core::spanning::MinIdSpanningTree;
use stst_core::switch::loop_free_switch;
use stst_core::{construct_mdst, construct_mst, EngineConfig};
use stst_graph::nca::NcaOracle;
use stst_graph::{bfs, fr, generators, mst, Graph, NodeId, Tree};
use stst_labeling::mst_fragments::fragment_guided_swap;
use stst_labeling::redundant::RedundantScheme;
use stst_labeling::scheme::{Instance, ProofLabelingScheme};
use stst_obs::{check_wave_order, Obs, TraceBuffer, LAYERS};
use stst_runtime::{Executor, ExecutorConfig, SchedulerKind, StoreMode};
use stst_serve::{Answer, LoadGen, Query, QueryMix, ServeHub, ServeSnapshot, QUERY_KINDS};

/// Renders a markdown table from a header and rows of strings.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// A named experiment result table.
#[derive(Clone, Debug)]
pub struct ExperimentTable {
    /// Experiment identifier (E1–E10).
    pub id: String,
    /// One-line description (the paper claim being exercised).
    pub claim: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of rendered values.
    pub rows: Vec<Vec<String>>,
}

impl ExperimentTable {
    /// Renders the table as markdown with its heading.
    pub fn to_markdown(&self) -> String {
        let headers: Vec<&str> = self.headers.iter().map(String::as_str).collect();
        format!(
            "## {} — {}\n\n{}",
            self.id,
            self.claim,
            markdown_table(&headers, &self.rows)
        )
    }

    /// Renders the table as a JSON object (hand-rolled — the build is hermetic, so no
    /// serde; the format matches what `serde_json` would produce for this struct).
    ///
    /// Host metadata is deliberately NOT embedded per table: every report document
    /// emits one `host` block at the top level and each table carries a `host_ref`
    /// pointer to it, so recorded `BENCH_*.json` baselines state the multi-line
    /// single-core caveat once instead of once per table.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"id\":{},", json_string(&self.id)));
        out.push_str("\"host_ref\":\"host\",");
        out.push_str(&format!("\"claim\":{},", json_string(&self.claim)));
        out.push_str(&format!(
            "\"headers\":{},",
            json_string_array(&self.headers)
        ));
        out.push_str("\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string_array(row));
        }
        out.push_str("]}");
        out
    }
}

/// JSON-escapes a string (quotes, backslashes, control characters).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_string_array(items: &[String]) -> String {
    let mut out = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(item));
    }
    out.push(']');
    out
}

/// Renders a list of tables as a JSON array (the `--json` output of the report binary).
pub fn tables_to_json(tables: &[ExperimentTable]) -> String {
    let mut out = String::from("[");
    for (i, t) in tables.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n ");
        }
        out.push_str(&t.to_json());
    }
    out.push(']');
    out
}

/// Logical cores available to this process (1 when the query fails — the honest
/// floor).
pub fn logical_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Host metadata as a JSON object: the logical core count, whether multi-thread
/// timings on this host are a meaningful *speedup baseline* (false on a single
/// logical core, where a `threads > 1` run measures only scheduling overhead), and
/// the worker-thread grid the run measured with. Recorded in every `BENCH_*.json` /
/// `report --json` output so single-core baselines (like the first
/// `BENCH_parallel.json`) are self-describing instead of explained only in prose.
pub fn host_metadata_json(thread_grid: &[usize]) -> String {
    let cores = logical_cores();
    let grid: Vec<String> = thread_grid.iter().map(|t| t.to_string()).collect();
    format!(
        "{{\"logical_cores\":{},\"speedup_baseline\":{},\"thread_grid\":[{}]}}",
        cores,
        cores > 1,
        grid.join(",")
    )
}

/// The `report --json` document: host metadata plus the experiment tables.
pub fn report_json(tables: &[ExperimentTable], thread_grid: &[usize]) -> String {
    format!(
        "{{\"host\":{},\n \"tables\":{}}}",
        host_metadata_json(thread_grid),
        tables_to_json(tables)
    )
}

fn f(x: f64) -> String {
    format!("{x:.1}")
}

/// E1 — silent BFS (§III example): rounds, moves and register bits vs `n`.
pub fn e1_bfs(sizes: &[usize], seed: u64) -> ExperimentTable {
    let mut rows = Vec::new();
    for &n in sizes {
        for (topo, g) in [
            (
                "ring",
                generators::shuffle_idents(&generators::ring(n), seed),
            ),
            ("random p=0.1", generators::workload(n, 0.1, seed)),
        ] {
            let root_ident = g.ident(g.min_ident_node());
            let mut exec = Executor::from_arbitrary(
                &g,
                RootedBfs::new(root_ident),
                ExecutorConfig::with_scheduler(seed, SchedulerKind::Synchronous),
            );
            let q = exec.run_to_quiescence(10_000_000).expect("BFS converges");
            rows.push(vec![
                topo.to_string(),
                n.to_string(),
                q.rounds.to_string(),
                q.moves.to_string(),
                exec.space_report().max_bits.to_string(),
                q.legal.to_string(),
            ]);
        }
    }
    ExperimentTable {
        id: "E1".into(),
        claim: "silent BFS: poly(n) rounds, O(log n) bits (§III example)".into(),
        headers: vec![
            "topology".into(),
            "n".into(),
            "rounds".into(),
            "moves".into(),
            "max bits/node".into(),
            "legal".into(),
        ],
        rows,
    }
}

/// E2 — loop-free switch (Lemma 4.1): rounds and verification during `T ← T + e − f`.
pub fn e2_switch(sizes: &[usize], seed: u64) -> ExperimentTable {
    let mut rows = Vec::new();
    for &n in sizes {
        let g = generators::workload(n, 0.15, seed);
        let t = bfs::bfs_tree(&g, g.min_ident_node());
        let e = g
            .edge_ids()
            .find(|&e| {
                let ed = g.edge(e);
                !t.contains_edge(ed.u, ed.v)
            })
            .expect("non-tree edge");
        let cycle = t.fundamental_cycle_tree_edges(&g, e);
        let f_edge = cycle[cycle.len() / 2];
        let outcome = loop_free_switch(&g, &t, e, f_edge);
        let loop_free = outcome
            .stages
            .iter()
            .all(|s| s.tree.is_spanning_tree_of(&g));
        let accepted = outcome.stages.iter().all(|s| {
            let inst = Instance {
                graph: &g,
                parents: s.tree.parents(),
            };
            RedundantScheme.verify_all(&inst, &s.labels).accepted()
        });
        rows.push(vec![
            n.to_string(),
            (cycle.len() + 1).to_string(),
            outcome.local_switches.to_string(),
            outcome.rounds.to_string(),
            loop_free.to_string(),
            accepted.to_string(),
        ]);
    }
    ExperimentTable {
        id: "E2".into(),
        claim: "loop-free malleable switch: O(n) rounds, no false alarms (Lemma 4.1, §IV)".into(),
        headers: vec![
            "n".into(),
            "cycle length".into(),
            "local switches".into(),
            "rounds".into(),
            "loop-free".into(),
            "all verifiers accept".into(),
        ],
        rows,
    }
}

/// E3 — NCA labeling (Lemma 5.1): label bits, construction rounds, certification.
pub fn e3_nca(sizes: &[usize], seed: u64) -> ExperimentTable {
    let mut rows = Vec::new();
    for &n in sizes {
        for (topo, g) in [
            (
                "random tree",
                generators::shuffle_idents(&generators::random_tree(n, seed), seed),
            ),
            (
                "caterpillar",
                generators::shuffle_idents(&generators::caterpillar(n / 4, 3), seed),
            ),
        ] {
            let t = bfs::bfs_tree(&g, g.min_ident_node());
            let outcome = build_nca_labels(&g, &t);
            // Spot-check correctness against the oracle.
            let oracle = stst_graph::nca::NcaOracle::new(&t);
            let index = stst_labeling::nca::label_index(&outcome.labels);
            let correct = (0..g.node_count().min(20)).all(|i| {
                let u = NodeId(i);
                let v = NodeId((i * 7 + 3) % g.node_count());
                index
                    [&stst_labeling::nca::nca_of_labels(&outcome.labels[u.0], &outcome.labels[v.0])]
                    == oracle.nca(u, v)
            });
            rows.push(vec![
                topo.to_string(),
                g.node_count().to_string(),
                outcome.rounds.to_string(),
                outcome.max_label_bits.to_string(),
                outcome.certified.to_string(),
                correct.to_string(),
            ]);
        }
    }
    ExperimentTable {
        id: "E3".into(),
        claim: "NCA labeling: O(n)-round construction, compact certified labels (Lemma 5.1, §V)"
            .into(),
        headers: vec![
            "tree".into(),
            "n".into(),
            "rounds".into(),
            "max label bits".into(),
            "certified".into(),
            "queries correct".into(),
        ],
        rows,
    }
}

/// Densities exercised per size: two fixed densities for small instances, one sparse
/// (average degree ≈ 6) workload at composition scale (the incremental label
/// maintenance of the engine is what makes n ≥ 1000 feasible at all).
fn densities_for(n: usize) -> Vec<f64> {
    if n >= 256 {
        vec![6.0 / n as f64]
    } else {
        vec![0.15, 0.35]
    }
}

/// E4 — silent MST (Corollary 6.1): rounds, switches, label writes, register bits,
/// optimality — now swept up to 5,000-node sparse workloads. `threads` drives the
/// engine's parallel wave execution (results are bit-identical at any value; the
/// column records what the wall clock was measured with).
pub fn e4_mst(sizes: &[usize], seed: u64, threads: usize) -> ExperimentTable {
    let mut rows = Vec::new();
    for &n in sizes {
        for p in densities_for(n) {
            let g = generators::workload(n, p, seed);
            let report = construct_mst(&g, &EngineConfig::seeded(seed).with_threads(threads));
            let opt = mst::kruskal(&g).unwrap().total_weight(&g);
            rows.push(vec![
                n.to_string(),
                g.edge_count().to_string(),
                threads.to_string(),
                report.total_rounds.to_string(),
                report.improvements.to_string(),
                report.labels_written.to_string(),
                report.max_register_bits.to_string(),
                f(report.tree.total_weight(&g) as f64 / opt as f64),
                report.legal.to_string(),
            ]);
        }
    }
    ExperimentTable {
        id: "E4".into(),
        claim: "silent self-stabilizing MST: poly(n) rounds, O(log² n) bits (Corollary 6.1)".into(),
        headers: vec![
            "n".into(),
            "m".into(),
            "threads".into(),
            "rounds".into(),
            "switches".into(),
            "label writes".into(),
            "max bits/node".into(),
            "weight / OPT".into(),
            "is MST".into(),
        ],
        rows,
    }
}

/// E5 — MST space and silence comparison against the cited baselines. The
/// `measured B/node` column is an *allocation measurement*: the engine's stabilized
/// label families packed into the runtime's [`stst_runtime::ConfigStore`]
/// ([`CompositionEngine::packed_space`]), recorded next to the accounted bits so the
/// two can never silently diverge.
pub fn e5_mst_space(sizes: &[usize], seed: u64) -> ExperimentTable {
    let mut rows = Vec::new();
    for &n in sizes {
        let g = generators::workload(n, 0.15, seed);
        let mut engine = CompositionEngine::new(&g, EngineTask::Mst, EngineConfig::seeded(seed));
        let ours = engine.run();
        let space = engine.packed_space();
        let kkm = compact_mst::run(&g, CompactVariant::KormanKuttenMasuzawa);
        let bgrt = compact_mst::run(&g, CompactVariant::BlinGradinariuRovedakisTixeuil);
        let mut distance_only =
            Executor::from_arbitrary(&g, DistanceOnlySpanningTree, ExecutorConfig::seeded(seed));
        distance_only.run_to_quiescence(10_000_000).unwrap();
        rows.push(vec![
            n.to_string(),
            format!("{} (silent)", ours.max_register_bits),
            f(space.bytes_per_node),
            f(space.accounted_bits_per_node),
            format!("{} (not silent)", kkm.max_register_bits),
            format!("{} (not silent)", bgrt.max_register_bits),
            format!(
                "{} (silent, ST only)",
                distance_only.space_report().max_bits
            ),
        ]);
    }
    ExperimentTable {
        id: "E5".into(),
        claim: "MST space: ours (silent, Θ(log² n)) vs non-silent compact MST (Θ(log n)) vs distance-only ST".into(),
        headers: vec![
            "n".into(),
            "this work [bits]".into(),
            "measured B/node (packed)".into(),
            "accounted bits/node".into(),
            "KKM'11 model [bits]".into(),
            "BGRT'09 model [bits]".into(),
            "distance-only ST [bits]".into(),
        ],
        rows,
    }
}

/// E6 — silent MDST / FR-trees (Corollary 8.1): degree vs optimum, rounds, bits — now
/// swept up to 1,000-node sparse workloads.
pub fn e6_mdst(sizes: &[usize], seed: u64) -> ExperimentTable {
    let mut rows = Vec::new();
    for &n in sizes {
        let p = if n >= 256 { 8.0 / n as f64 } else { 0.3 };
        let g = generators::workload(n, p, seed);
        let report = construct_mdst(&g, &EngineConfig::seeded(seed));
        let (opt_text, within_one) = if n <= 14 {
            let (opt, _) = fr::exact_min_degree_spanning_tree(&g, 14);
            (opt.to_string(), report.tree.max_degree() <= opt + 1)
        } else {
            let lb = stst_graph::properties::min_degree_lower_bound(&g);
            (format!("≥{lb}"), true)
        };
        rows.push(vec![
            n.to_string(),
            report.tree.max_degree().to_string(),
            opt_text,
            within_one.to_string(),
            report.total_rounds.to_string(),
            report.max_register_bits.to_string(),
            report.legal.to_string(),
        ]);
    }
    ExperimentTable {
        id: "E6".into(),
        claim: "silent MDST on FR-trees: degree ≤ OPT+1, poly(n) rounds (Corollary 8.1)".into(),
        headers: vec![
            "n".into(),
            "degree".into(),
            "OPT (or bound)".into(),
            "≤ OPT+1".into(),
            "rounds".into(),
            "max bits/node".into(),
            "FR-certified".into(),
        ],
        rows,
    }
}

/// E7 — MDST memory comparison against the prior-art model ([16], Ω(n log n) bits),
/// with the measured packed-store allocation recorded next to the accounted bits
/// (see [`e5_mst_space`]).
pub fn e7_mdst_space(sizes: &[usize], seed: u64) -> ExperimentTable {
    let mut rows = Vec::new();
    for &n in sizes {
        let g = generators::workload(n, 0.2, seed);
        let mut engine = CompositionEngine::new(&g, EngineTask::Mdst, EngineConfig::seeded(seed));
        let ours = engine.run();
        let space = engine.packed_space();
        let prior = prior_mdst::run(&g);
        rows.push(vec![
            n.to_string(),
            format!("{} (silent)", ours.max_register_bits),
            f(space.bytes_per_node),
            f(space.accounted_bits_per_node),
            format!("{} (not silent)", prior.max_register_bits),
            f(prior.max_register_bits as f64 / ours.max_register_bits.max(1) as f64),
        ]);
    }
    ExperimentTable {
        id: "E7".into(),
        claim: "MDST space: ours (O(log n)-class) vs prior-art explicit lists (Ω(n log n))".into(),
        headers: vec![
            "n".into(),
            "this work [bits]".into(),
            "measured B/node (packed)".into(),
            "accounted bits/node".into(),
            "BGR'11 model [bits]".into(),
            "ratio".into(),
        ],
        rows,
    }
}

/// E8 — recovery from transient faults: rounds, moves **and guard evaluations** (the
/// incremental executor's work unit) to re-stabilize after corrupting `k` registers of
/// a converged spanning-tree layer, with the two-tier split of those evaluations
/// (screened decode-free vs fully decoded — the packed store's cost model). `threads`
/// drives the executor's parallel wave evaluation (bit-identical results; the column
/// records the measurement setting).
pub fn e8_faults(n: usize, fractions: &[f64], seed: u64, threads: usize) -> ExperimentTable {
    let g = generators::workload(n, 0.12, seed);
    let config = ExecutorConfig::seeded(seed).with_threads(threads);
    let mut exec = Executor::from_arbitrary(&g, MinIdSpanningTree, config);
    let initial = exec.run_to_quiescence(10_000_000).unwrap();
    let mut rows = vec![vec![
        "from scratch".to_string(),
        "-".into(),
        threads.to_string(),
        initial.rounds.to_string(),
        initial.moves.to_string(),
        exec.guard_evaluations().to_string(),
        exec.guard_screen_hits().to_string(),
        exec.guard_full_decodes().to_string(),
        initial.legal.to_string(),
    ]];
    for &frac in fractions {
        let k = ((n as f64 * frac).round() as usize).max(1);
        let rounds_before = exec.rounds();
        let moves_before = exec.moves();
        let guards_before = exec.guard_evaluations();
        let hits_before = exec.guard_screen_hits();
        let decodes_before = exec.guard_full_decodes();
        exec.corrupt_random_nodes(k);
        let q = exec.run_to_quiescence(10_000_000).unwrap();
        rows.push(vec![
            format!("corrupt {k} registers"),
            format!("{:.0}%", frac * 100.0),
            threads.to_string(),
            (q.rounds - rounds_before).to_string(),
            (q.moves - moves_before).to_string(),
            (exec.guard_evaluations() - guards_before).to_string(),
            (exec.guard_screen_hits() - hits_before).to_string(),
            (exec.guard_full_decodes() - decodes_before).to_string(),
            q.legal.to_string(),
        ]);
    }
    // The structured repeated-fault generator: the adversary keeps hitting the same
    // register (8 arbitrary overwrites in a row) — the last write wins, and recovery
    // proceeds from just another arbitrary configuration.
    let rounds_before = exec.rounds();
    let moves_before = exec.moves();
    let guards_before = exec.guard_evaluations();
    let hits_before = exec.guard_screen_hits();
    let decodes_before = exec.guard_full_decodes();
    exec.corrupt_node_repeatedly(NodeId(n / 2), 8);
    let q = exec.run_to_quiescence(10_000_000).unwrap();
    rows.push(vec![
        format!("hit register {} eight times in a row", n / 2),
        "-".into(),
        threads.to_string(),
        (q.rounds - rounds_before).to_string(),
        (q.moves - moves_before).to_string(),
        (exec.guard_evaluations() - guards_before).to_string(),
        (exec.guard_screen_hits() - hits_before).to_string(),
        (exec.guard_full_decodes() - decodes_before).to_string(),
        q.legal.to_string(),
    ]);
    ExperimentTable {
        id: "E8".into(),
        claim: format!("self-stabilization: recovery after register corruption (n = {n})"),
        headers: vec![
            "scenario".into(),
            "fault fraction".into(),
            "threads".into(),
            "recovery rounds".into(),
            "recovery moves".into(),
            "recovery guard evals".into(),
            "guard screen hits".into(),
            "guard full decodes".into(),
            "legal after".into(),
        ],
        rows,
    }
}

/// E8b — the new scenario class unlocked by the resumable engine: transient label
/// corruption injected *between waves* of a composed MST run. The engine's next step
/// runs the 1-round verification wave, rebuilds exactly the rejected families, and the
/// table records the measured recovery cost in rounds and label writes.
pub fn e8_label_faults(n: usize, faults: &[usize], seed: u64) -> ExperimentTable {
    let g = generators::workload(n, 0.15, seed);
    let mut engine = CompositionEngine::new(&g, EngineTask::Mst, EngineConfig::seeded(seed));
    let report = engine.run();
    let mut rows = vec![vec![
        "stabilize from scratch".to_string(),
        "-".into(),
        "-".into(),
        report.total_rounds.to_string(),
        report.labels_written.to_string(),
        report.legal.to_string(),
    ]];
    for &k in faults {
        engine.corrupt_random_labels(k);
        let event = engine.step();
        let PhaseEvent::Recovered {
            families_rebuilt,
            labels_written,
            rounds,
        } = event
        else {
            panic!("corruption must trigger a recovery wave, got {event:?}");
        };
        let silent_again = matches!(engine.step(), PhaseEvent::Stabilized { legal: true });
        rows.push(vec![
            format!("corrupt {k} labels mid-composition"),
            k.to_string(),
            families_rebuilt.to_string(),
            rounds.to_string(),
            labels_written.to_string(),
            silent_again.to_string(),
        ]);
    }
    // The hardest corruption class: stale-but-consistent certificates — a complete,
    // internally correct proof of the *wrong* tree. No syntactic check rejects it;
    // only the verification wave's comparison against the maintained tree does.
    if engine.corrupt_stale_certificates() {
        let event = engine.step();
        let PhaseEvent::Recovered {
            families_rebuilt,
            labels_written,
            rounds,
        } = event
        else {
            panic!("stale certificates must trigger a recovery wave, got {event:?}");
        };
        let silent_again = matches!(engine.step(), PhaseEvent::Stabilized { legal: true });
        rows.push(vec![
            "stale-but-consistent certificates".into(),
            "all".into(),
            families_rebuilt.to_string(),
            rounds.to_string(),
            labels_written.to_string(),
            silent_again.to_string(),
        ]);
    }
    ExperimentTable {
        id: "E8b".into(),
        claim: format!(
            "composition-layer fault recovery: label corruption between waves (n = {n})"
        ),
        headers: vec![
            "scenario".into(),
            "corrupted labels".into(),
            "families rebuilt".into(),
            "recovery rounds".into(),
            "labels rewritten".into(),
            "silent again".into(),
        ],
        rows,
    }
}

/// E9 — scheduler robustness and the potential-guidance ablation.
pub fn e9_sched_ablation(n: usize, seed: u64) -> ExperimentTable {
    let g = generators::workload(n, 0.2, seed);
    let mut rows = Vec::new();
    // Scheduler sweep for the guarded-rule layer.
    for kind in SchedulerKind::all() {
        let mut exec = Executor::from_arbitrary(
            &g,
            MinIdSpanningTree,
            ExecutorConfig::with_scheduler(seed, kind),
        );
        let q = exec.run_to_quiescence(10_000_000).unwrap();
        rows.push(vec![
            format!("spanning tree under {kind}"),
            q.rounds.to_string(),
            q.moves.to_string(),
            q.legal.to_string(),
        ]);
    }
    // Ablation: potential-guided (fragment) swap selection vs unguided improving swaps.
    let start = bfs::bfs_tree(&g, g.min_ident_node());
    let mut guided_tree = start.clone();
    let mut guided_swaps = 0u64;
    while let Some((e, f_edge)) = fragment_guided_swap(&g, &guided_tree) {
        guided_tree = guided_tree.with_swap(&g, e, f_edge);
        guided_swaps += 1;
    }
    let mut unguided_tree = start;
    let mut unguided_swaps = 0u64;
    while let Some((e, f_edge)) = mst::improving_swap(&g, &unguided_tree) {
        unguided_tree = unguided_tree.with_swap(&g, e, f_edge);
        unguided_swaps += 1;
    }
    rows.push(vec![
        "MST swaps, PLS-guided (fragment potential)".into(),
        "-".into(),
        guided_swaps.to_string(),
        mst::is_mst(&g, &guided_tree).to_string(),
    ]);
    rows.push(vec![
        "MST swaps, unguided red-rule".into(),
        "-".into(),
        unguided_swaps.to_string(),
        mst::is_mst(&g, &unguided_tree).to_string(),
    ]);
    ExperimentTable {
        id: "E9".into(),
        claim: format!("scheduler robustness and potential-guidance ablation (n = {n})"),
        headers: vec![
            "configuration".into(),
            "rounds".into(),
            "moves / swaps".into(),
            "legal".into(),
        ],
        rows,
    }
}

/// E10 — live topology churn (the headline scenario of self-stabilization): a
/// steady stream of single-edge events (link add/remove, weight drift) hits a
/// stabilized MST composition, and the engine's incremental re-stabilization
/// (`CompositionEngine::apply_topology` + resumed local search) is compared, per
/// event, against tearing the engine down and rebuilding from scratch on the mutated
/// graph. Severing events are dropped and counted (`Partitioned` is reported, never
/// repaired). Results are bit-identical at any `threads` value.
pub fn e10_churn(
    sizes: &[usize],
    rates: &[f64],
    waves: usize,
    seed: u64,
    threads: usize,
) -> ExperimentTable {
    let mut rows = Vec::new();
    for &n in sizes {
        for &rate in rates {
            let p = densities_for(n)[0];
            let g = generators::workload(n, p, seed);
            let engine = CompositionEngine::new(
                &g,
                EngineTask::Mst,
                EngineConfig::seeded(seed).with_threads(threads),
            );
            let mut driver = ChurnDriver::new(engine);
            driver.stabilize();
            let churn = trace::steady_poisson(&g, waves, rate, 0.0, seed);
            let mut severed = 0u64;
            let mut events = 0u64;
            let mut incr_labels = 0u64;
            let mut incr_rounds = 0u64;
            let mut incr_switches = 0u64;
            let mut rebuild_labels = 0u64;
            let mut rebuild_rounds = 0u64;
            for batch in &churn.batches {
                if batch.is_empty() {
                    continue;
                }
                let report = driver.inject(batch);
                if !report.applied {
                    severed += 1;
                    continue;
                }
                events += report.events as u64;
                incr_labels += report.labels_written;
                incr_rounds += report.recovery_rounds;
                incr_switches += report.switches;
                // The rebuild-from-scratch baseline: a fresh engine on the mutated
                // graph (what a system without topology deltas would have to do).
                let mutated = driver.engine().graph().clone();
                let mut fresh = CompositionEngine::new(
                    &mutated,
                    EngineTask::Mst,
                    EngineConfig::seeded(seed).with_threads(threads),
                );
                let rebuilt = fresh.run();
                assert!(rebuilt.legal, "the rebuild baseline is an MST");
                rebuild_labels += rebuilt.labels_written;
                rebuild_rounds += rebuilt.total_rounds;
            }
            let per = |total: u64| {
                if events == 0 {
                    "-".to_string()
                } else {
                    f(total as f64 / events as f64)
                }
            };
            rows.push(vec![
                n.to_string(),
                g.edge_count().to_string(),
                threads.to_string(),
                format!("{rate:.1}"),
                events.to_string(),
                severed.to_string(),
                per(incr_labels),
                per(rebuild_labels),
                per(incr_rounds),
                per(rebuild_rounds),
                per(incr_switches),
                if incr_labels == 0 {
                    "inf".to_string()
                } else {
                    f(rebuild_labels as f64 / incr_labels as f64)
                },
            ]);
        }
    }
    ExperimentTable {
        id: "E10".into(),
        claim: "live topology churn: incremental re-stabilization vs rebuild-from-scratch, per single-edge event".into(),
        headers: vec![
            "n".into(),
            "m".into(),
            "threads".into(),
            "events/wave".into(),
            "events".into(),
            "severed (dropped)".into(),
            "label writes/event (incr)".into(),
            "label writes/event (rebuild)".into(),
            "rounds/event (incr)".into(),
            "rounds/event (rebuild)".into(),
            "switches/event".into(),
            "label-writes ratio (rebuild/incr)".into(),
        ],
        rows,
    }
}

/// The large-scale workload of E11: a connected sparse graph built in `O(n + m)`
/// (random spanning tree plus `extra` chords — the quadratic `workload` generator
/// cannot reach 10⁶ nodes), with shuffled identities and distinct random weights.
pub fn sparse_workload(n: usize, extra: usize, seed: u64) -> Graph {
    let g = generators::random_sparse(n, extra, seed);
    let g = generators::shuffle_idents(&g, seed.wrapping_add(1));
    generators::randomize_weights(&g, seed.wrapping_add(2))
}

/// E11 — large-scale packed configuration store: the workload the packed store was
/// built for. Sync-BFS stabilizes from an arbitrary configuration at up to
/// n = 1,000,000 with the registers living in the bit-packed [`stst_runtime::ConfigStore`];
/// the struct-backed reference runs the identical execution (same quiescence, bit for
/// bit) so the `measured B/node` column shows allocation, not algorithm, differences.
/// The full MST composition runs at n ≥ 100,000 with its `O(log² n)`-bit label
/// families packed the same way. `measured×8 / accounted` is the allocated-bits over
/// accounted-bits ratio the acceptance gate bounds (≤ 4 for the packed store).
pub fn e11_space_scale(
    bfs_sizes: &[usize],
    mst_sizes: &[usize],
    seed: u64,
    threads: usize,
) -> ExperimentTable {
    let mut rows = Vec::new();
    for &n in bfs_sizes {
        let g = sparse_workload(n, n / 2, seed);
        let root_ident = g.ident(g.min_ident_node());
        for store in [StoreMode::Packed, StoreMode::Struct] {
            let config = ExecutorConfig::with_scheduler(seed, SchedulerKind::Synchronous)
                .with_threads(threads)
                .with_store(store);
            let start = std::time::Instant::now();
            let mut exec = Executor::from_arbitrary(&g, RootedBfs::new(root_ident), config);
            let q = exec
                .run_to_quiescence(50_000_000)
                .expect("sync-BFS converges");
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            let report = exec.store_report();
            rows.push(vec![
                format!("sync-BFS ({store:?})"),
                n.to_string(),
                threads.to_string(),
                q.rounds.to_string(),
                f(report.accounted_bits_per_node),
                f(report.bytes_per_node),
                f(report.bytes_per_node * 8.0 / report.accounted_bits_per_node.max(1.0)),
                exec.guard_screen_hits().to_string(),
                exec.guard_full_decodes().to_string(),
                f(wall_ms),
                q.legal.to_string(),
            ]);
        }
    }
    for &n in mst_sizes {
        let g = sparse_workload(n, n / 2, seed);
        // The synchronous daemon keeps the guarded-rule build phase to O(rounds)
        // steps (the central daemon's one-activation-per-step bookkeeping would need
        // tens of millions of steps at this scale before the composition even
        // starts); the composition's output is legality-checked either way.
        let start = std::time::Instant::now();
        let mut engine = CompositionEngine::new(
            &g,
            EngineTask::Mst,
            EngineConfig::seeded(seed)
                .with_scheduler(SchedulerKind::Synchronous)
                .with_max_steps(100_000_000)
                .with_threads(threads),
        );
        let report = engine.run();
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        assert!(report.legal, "E11 MST composition must stabilize on an MST");
        let space = engine.packed_space();
        rows.push(vec![
            "MST composition (Packed labels)".to_string(),
            n.to_string(),
            threads.to_string(),
            report.total_rounds.to_string(),
            f(space.accounted_bits_per_node),
            f(space.bytes_per_node),
            f(space.bytes_per_node * 8.0 / space.accounted_bits_per_node.max(1.0)),
            "-".into(),
            "-".into(),
            f(wall_ms),
            report.legal.to_string(),
        ]);
    }
    ExperimentTable {
        id: "E11".into(),
        claim: "large-scale packed store: accounted O(log² n) bits are the allocated bits (measured×8/accounted ≤ 4 packed vs 10–50 struct)".into(),
        headers: vec![
            "workload".into(),
            "n".into(),
            "threads".into(),
            "rounds".into(),
            "accounted bits/node".into(),
            "measured B/node".into(),
            "measured×8 / accounted".into(),
            "guard screen hits".into(),
            "guard full decodes".into(),
            "wall ms".into(),
            "legal".into(),
        ],
        rows,
    }
}

/// One row of the E12 soak table from a finished [`SoakReport`].
fn soak_row(scenario: &str, n: usize, threads: usize, r: &SoakReport) -> Vec<String> {
    vec![
        scenario.to_string(),
        n.to_string(),
        threads.to_string(),
        r.waves.to_string(),
        r.events.to_string(),
        r.faults.to_string(),
        r.checkpoints.to_string(),
        r.restores.to_string(),
        f(r.p50_repair_ms),
        f(r.p99_repair_ms),
        f(r.peak_rss_bytes as f64 / (1024.0 * 1024.0)),
        format!("{:.2}", r.silence_ratio),
        f(r.mean_checkpoint_ms),
        r.max_checkpoint_bytes.to_string(),
        r.legal.to_string(),
    ]
}

/// E12 — the long-haul soak: mixed churn, periodic label/register faults, periodic
/// durability checkpoints and kill-and-restore cycles, with the measured recovery
/// story (repair-latency percentiles, peak RSS, silence ratio, checkpoint cost).
///
/// Two layers share the harness, sized for what one host can actually run (see
/// `BENCH_space.json`): the full MST composition soaks at composition scale
/// (`engine_sizes` — churn + label faults + engine snapshots), and the guarded-rule
/// sync-BFS executor soaks at up to n = 10⁶ (`executor_sizes` — register faults,
/// incl. the repeated-fault generator, + full execution-state snapshots restored
/// bit-identically mid-run).
pub fn e12_soak(
    engine_sizes: &[usize],
    executor_sizes: &[usize],
    waves: usize,
    seed: u64,
    threads: usize,
) -> ExperimentTable {
    e12_table_from_runs(
        &e12_soak_runs(engine_sizes, executor_sizes, waves, seed, threads),
        threads,
    )
}

/// Renders already-finished E12 runs as the experiment table (shared with the report
/// binary's `--soak` mode, which needs both the table and the raw series from one
/// set of runs).
pub fn e12_table_from_runs(
    runs: &[(String, usize, SoakReport)],
    threads: usize,
) -> ExperimentTable {
    let mut rows = Vec::new();
    for (scenario, n, report) in runs {
        rows.push(soak_row(scenario, *n, threads, report));
    }
    ExperimentTable {
        id: "E12".into(),
        claim: "long-haul soak: churn + faults + checkpoint/kill/restore cycles with bounded RSS and repair latency".into(),
        headers: vec![
            "scenario".into(),
            "n".into(),
            "threads".into(),
            "waves".into(),
            "churn events".into(),
            "faults".into(),
            "checkpoints".into(),
            "restores".into(),
            "p50 repair ms".into(),
            "p99 repair ms".into(),
            "peak RSS MiB".into(),
            "silence ratio".into(),
            "mean ckpt ms".into(),
            "max snapshot B".into(),
            "legal".into(),
        ],
        rows,
    }
}

/// The raw E12 runs: `(scenario, n, report)` per soak, shared between the table
/// rendering ([`e12_soak`]) and the time-series artifact ([`soak_json`]).
pub fn e12_soak_runs(
    engine_sizes: &[usize],
    executor_sizes: &[usize],
    waves: usize,
    seed: u64,
    threads: usize,
) -> Vec<(String, usize, SoakReport)> {
    let mut runs = Vec::new();
    for &n in engine_sizes {
        let g = sparse_workload(n, n / 2, seed);
        let config = SoakConfig {
            waves,
            threads,
            scheduler: SchedulerKind::Synchronous,
            max_steps: 100_000_000,
            ..SoakConfig::smoke(seed)
        };
        let report = run_soak(&g, EngineTask::Mst, &config);
        runs.push((
            "MST composition soak (churn+faults+restore)".into(),
            n,
            report,
        ));
    }
    for &n in executor_sizes {
        let g = sparse_workload(n, n / 2, seed);
        let root_ident = g.ident(g.min_ident_node());
        let config = SoakConfig {
            waves,
            threads,
            // Register faults scale with the network so recovery is visible at 10⁶.
            fault_burst: (n / 250).max(2),
            scheduler: SchedulerKind::Synchronous,
            max_steps: 100_000_000,
            ..SoakConfig::smoke(seed)
        };
        let report = run_executor_soak(&g, RootedBfs::new(root_ident), &config);
        runs.push(("sync-BFS executor soak (faults+restore)".into(), n, report));
    }
    runs
}

fn json_f64_array(values: &[f64]) -> String {
    let rendered: Vec<String> = values.iter().map(|v| format!("{v:.3}")).collect();
    format!("[{}]", rendered.join(","))
}

fn json_u64_array<I: Iterator<Item = u64>>(values: I) -> String {
    let rendered: Vec<String> = values.map(|v| v.to_string()).collect();
    format!("[{}]", rendered.join(","))
}

/// The `report --soak` document (recorded as `BENCH_soak.json`): host metadata plus,
/// per soak run, the aggregate summary *and* the full per-wave time series (repair
/// latency, recovery rounds, RSS, checkpoint cost, restore markers) that the summary
/// percentiles are computed from.
pub fn soak_json(runs: &[(String, usize, SoakReport)], threads: usize) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"host\":{},", host_metadata_json(&[threads])));
    out.push_str("\"runs\":[");
    for (i, (scenario, n, r)) in runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"scenario\":{},\"n\":{},\"threads\":{},\"summary\":{{\
             \"waves\":{},\"events\":{},\"faults\":{},\"checkpoints\":{},\"restores\":{},\
             \"restore_rebuilds\":{},\"peak_rss_bytes\":{},\"p50_repair_ms\":{:.3},\
             \"p99_repair_ms\":{:.3},\"max_repair_ms\":{:.3},\"silence_ratio\":{:.4},\
             \"mean_checkpoint_ms\":{:.3},\"max_checkpoint_bytes\":{},\"legal\":{},\
             \"total_rounds\":{},\"wall_ms\":{:.1}}},",
            json_string(scenario),
            n,
            threads,
            r.waves,
            r.events,
            r.faults,
            r.checkpoints,
            r.restores,
            r.restore_rebuilds,
            r.peak_rss_bytes,
            r.p50_repair_ms,
            r.p99_repair_ms,
            r.max_repair_ms,
            r.silence_ratio,
            r.mean_checkpoint_ms,
            r.max_checkpoint_bytes,
            r.legal,
            r.total_rounds,
            r.wall_ms,
        ));
        let restored = format!(
            "[{}]",
            r.samples
                .iter()
                .map(|s| s.restored.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
        out.push_str(&format!(
            "\"series\":{{\"wave\":{},\"events\":{},\"faults\":{},\"recovery_rounds\":{},\
             \"repair_ms\":{},\"rss_bytes\":{},\"checkpoint_ms\":{},\"checkpoint_bytes\":{},\
             \"restored\":{restored}}}}}",
            json_u64_array(r.samples.iter().map(|s| s.wave as u64)),
            json_u64_array(r.samples.iter().map(|s| s.events as u64)),
            json_u64_array(r.samples.iter().map(|s| s.faults as u64)),
            json_u64_array(r.samples.iter().map(|s| s.recovery_rounds)),
            json_f64_array(&r.samples.iter().map(|s| s.repair_ms).collect::<Vec<_>>()),
            json_u64_array(r.samples.iter().map(|s| s.rss_bytes)),
            json_f64_array(
                &r.samples
                    .iter()
                    .map(|s| s.checkpoint_ms)
                    .collect::<Vec<_>>()
            ),
            json_u64_array(r.samples.iter().map(|s| s.checkpoint_bytes as u64)),
        ));
    }
    out.push_str("]}");
    out
}

/// Outcome of the observability scenario behind `report -- --trace`: one enabled
/// [`Obs`] handle threaded through all four layers (a mixed soak for
/// Soak/Engine/Executor, the churn driver for Churn, a timed sync-BFS for the
/// overhead gate), with every trace-contract check evaluated.
#[derive(Clone, Debug)]
pub struct TraceReportDoc {
    /// Nodes of the workload graph.
    pub n: usize,
    /// Soak waves driven.
    pub waves: usize,
    /// Events retained in the ring.
    pub event_count: usize,
    /// Events evicted by ring overflow (must be 0 for the scenario's sizing).
    pub dropped: u64,
    /// Layer names that emitted at least one event (must be all four).
    pub layers: Vec<String>,
    /// First wave-ordering violation, if any.
    pub wave_order_error: Option<String>,
    /// Whether `emit -> parse -> re-emit` reproduced the JSONL byte for byte.
    pub round_trip_ok: bool,
    /// Whether the observed runs were bit-identical to unobserved twins
    /// (soak series + engine checkpoint bytes + executor checkpoint bytes).
    pub determinism_ok: bool,
    /// Whether `executor_guard_screen_hits + executor_guard_full_decodes ==
    /// executor_guard_evaluations` held in the registry.
    pub guard_invariant_ok: bool,
    /// Sync-BFS wall time with observability disabled, ms.
    pub disabled_wall_ms: f64,
    /// Sync-BFS wall time with the enabled handle attached, ms.
    pub enabled_wall_ms: f64,
    /// Whether the enabled run stayed within the overhead budget
    /// (2x + 250 ms of the disabled run — loose, to absorb CI timer noise).
    pub overhead_ok: bool,
    /// The exported trace, one JSON object per line.
    pub jsonl: String,
    /// The metric registry in Prometheus text exposition.
    pub prometheus: String,
    /// The metric registry as a JSON object.
    pub metrics_json: String,
}

impl TraceReportDoc {
    /// `true` iff every contract the CI trace gate enforces held.
    pub fn passed(&self) -> bool {
        self.event_count > 0
            && self.dropped == 0
            && self.layers.len() == LAYERS.len()
            && self.wave_order_error.is_none()
            && self.round_trip_ok
            && self.determinism_ok
            && self.guard_invariant_ok
            && self.overhead_ok
    }

    /// Human-readable summary (the non-`--json` output of `report -- --trace`).
    pub fn to_markdown(&self) -> String {
        let mut out = format!(
            "# Trace report (n = {}, {} soak waves)\n\n\
             | check | value |\n|---|---|\n\
             | events | {} |\n\
             | dropped | {} |\n\
             | layers | {} |\n\
             | wave order | {} |\n\
             | JSONL round-trip | {} |\n\
             | determinism transparency | {} |\n\
             | guard-counter invariant | {} |\n\
             | sync-BFS wall (disabled / enabled) | {:.1} ms / {:.1} ms |\n\
             | overhead gate | {} |\n\
             | verdict | {} |\n",
            self.n,
            self.waves,
            self.event_count,
            self.dropped,
            self.layers.join(", "),
            self.wave_order_error.as_deref().unwrap_or("ok"),
            self.round_trip_ok,
            self.determinism_ok,
            self.guard_invariant_ok,
            self.disabled_wall_ms,
            self.enabled_wall_ms,
            if self.overhead_ok { "ok" } else { "REGRESSED" },
            if self.passed() { "PASS" } else { "FAIL" },
        );
        out.push_str("\n## Metrics\n\n```\n");
        out.push_str(&self.prometheus);
        out.push_str("```\n");
        out
    }

    /// The `--trace --json` document: host metadata, the check results, the
    /// full trace (each line is already a JSON object, so the export embeds
    /// verbatim), and the registry dump.
    pub fn to_json(&self, threads: usize) -> String {
        let trace_array = format!(
            "[{}]",
            self.jsonl
                .lines()
                .filter(|l| !l.trim().is_empty())
                .collect::<Vec<_>>()
                .join(",")
        );
        format!(
            "{{\"host\":{},\n \"checks\":{{\"n\":{},\"waves\":{},\"events\":{},\"dropped\":{},\
             \"layers\":{},\"wave_order_error\":{},\"round_trip_ok\":{},\"determinism_ok\":{},\
             \"guard_invariant_ok\":{},\"disabled_wall_ms\":{:.3},\"enabled_wall_ms\":{:.3},\
             \"overhead_ok\":{},\"passed\":{}}},\n \"trace\":{},\n \"metrics\":{}}}",
            host_metadata_json(&[threads]),
            self.n,
            self.waves,
            self.event_count,
            self.dropped,
            json_string_array(&self.layers),
            self.wave_order_error
                .as_deref()
                .map_or("null".to_string(), json_string),
            self.round_trip_ok,
            self.determinism_ok,
            self.guard_invariant_ok,
            self.disabled_wall_ms,
            self.enabled_wall_ms,
            self.overhead_ok,
            self.passed(),
            trace_array,
            self.metrics_json,
        )
    }
}

/// Runs the combined observability scenario against one enabled [`Obs`] handle
/// and evaluates every trace contract. Covers all four layers: the mixed soak
/// (Soak waves, Engine phase waves, Executor waves from the build phase), the
/// churn driver (Churn waves), and a timed sync-BFS pair for the disabled-cost
/// overhead gate. Each observed run has an unobserved twin whose state must
/// match bit for bit (determinism transparency).
pub fn trace_report(n: usize, waves: usize, seed: u64, threads: usize) -> TraceReportDoc {
    let obs = Obs::enabled();
    let g = sparse_workload(n, n / 2, seed);

    // Soak scenario: Soak + Engine (+ Executor via the engine's build phase).
    let soak_config = SoakConfig {
        waves,
        threads,
        scheduler: SchedulerKind::Synchronous,
        max_steps: 100_000_000,
        ..SoakConfig::smoke(seed)
    };
    let observed = run_soak_observed(&g, EngineTask::Mst, &soak_config, obs.clone());
    let reference = run_soak(&g, EngineTask::Mst, &soak_config);
    let soak_identical = observed.total_rounds == reference.total_rounds
        && observed.events == reference.events
        && observed.faults == reference.faults
        && observed.restores == reference.restores
        && observed
            .samples
            .iter()
            .map(|s| s.recovery_rounds)
            .eq(reference.samples.iter().map(|s| s.recovery_rounds));

    // Churn scenario: the driver's Churn-layer waves, with a disabled twin
    // compared through serialized engine state (bit-identity, not summaries).
    let run_churn = |obs: Option<Obs>| {
        let engine = CompositionEngine::new(
            &g,
            EngineTask::Mst,
            EngineConfig::seeded(seed)
                .with_scheduler(SchedulerKind::Synchronous)
                .with_max_steps(100_000_000)
                .with_threads(threads),
        );
        let mut driver = ChurnDriver::new(engine);
        if let Some(obs) = obs {
            driver.attach_obs(obs);
        }
        driver.stabilize();
        let churn = trace::steady_poisson(&g, waves.min(6), 1.0, 0.0, seed);
        driver.run_trace(&churn);
        driver.into_engine().checkpoint().to_bytes()
    };
    let churn_identical = run_churn(Some(obs.clone())) == run_churn(None);

    // Overhead gate: the packed sync-BFS hot path, disabled handle vs the
    // enabled one. The disabled path must stay near-free; the bound is loose
    // (2x + 250 ms) because CI wall clocks are noisy at smoke sizes — the
    // million-node acceptance run pins the tight 5% bound.
    let root_ident = g.ident(g.min_ident_node());
    let bfs_config =
        ExecutorConfig::with_scheduler(seed, SchedulerKind::Synchronous).with_threads(threads);
    let timed_bfs = |handle: Obs| {
        let start = std::time::Instant::now();
        let mut exec = Executor::from_arbitrary(&g, RootedBfs::new(root_ident), bfs_config);
        exec.attach_obs(handle);
        exec.run_to_quiescence(50_000_000)
            .expect("sync-BFS converges");
        (
            start.elapsed().as_secs_f64() * 1e3,
            exec.checkpoint().to_bytes(),
        )
    };
    let (disabled_wall_ms, bfs_disabled_state) = timed_bfs(Obs::disabled());
    let (enabled_wall_ms, bfs_enabled_state) = timed_bfs(obs.clone());
    let executor_identical = bfs_disabled_state == bfs_enabled_state;
    let overhead_ok = enabled_wall_ms <= disabled_wall_ms * 2.0 + 250.0;

    // Trace contracts.
    let registry = obs.registry().expect("enabled handle");
    let trace_buf = obs.trace().expect("enabled handle");
    let events = trace_buf.snapshot();
    let dropped = trace_buf.dropped();
    let wave_order_error = check_wave_order(&events, dropped > 0).err();
    let jsonl = trace_buf.to_jsonl();
    let round_trip_ok = TraceBuffer::parse_jsonl(&jsonl)
        .map(|parsed| {
            let mut re_emitted = String::new();
            for (seq, event) in &parsed {
                re_emitted.push_str(&event.jsonl(*seq));
                re_emitted.push('\n');
            }
            parsed == events && re_emitted == jsonl
        })
        .unwrap_or(false);
    let layers: Vec<String> = LAYERS
        .iter()
        .filter(|layer| events.iter().any(|(_, e)| e.layer() == **layer))
        .map(|layer| layer.as_str().to_string())
        .collect();
    let evals = registry
        .counter_value("executor_guard_evaluations")
        .unwrap_or(0);
    let hits = registry
        .counter_value("executor_guard_screen_hits")
        .unwrap_or(0);
    let decodes = registry
        .counter_value("executor_guard_full_decodes")
        .unwrap_or(0);
    let guard_invariant_ok = evals > 0 && hits + decodes == evals;

    TraceReportDoc {
        n,
        waves,
        event_count: events.len(),
        dropped,
        layers,
        wave_order_error,
        round_trip_ok,
        determinism_ok: soak_identical && churn_identical && executor_identical,
        guard_invariant_ok,
        disabled_wall_ms,
        enabled_wall_ms,
        overhead_ok,
        jsonl,
        prometheus: registry.prometheus_text(),
        metrics_json: registry.json(),
    }
}

/// Worker threads the full report measures with: the host's available parallelism,
/// capped at 8 (the widest point of the `parallel_scale` sweep). Results are
/// bit-identical at any value — this only affects wall clock and the recorded
/// `threads` column.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(8)
}

/// Runs the full default experiment grid (the one recorded in EXPERIMENTS.md).
pub fn full_report(seed: u64) -> Vec<ExperimentTable> {
    let threads = default_threads();
    vec![
        e1_bfs(&[16, 32, 64, 128], seed),
        e2_switch(&[16, 32, 64, 128], seed),
        e3_nca(&[32, 64, 128, 256], seed),
        e4_mst(&[16, 32, 64, 1000, 2500, 5000], seed, threads),
        e5_mst_space(&[16, 32, 64, 128], seed),
        e6_mdst(&[10, 14, 24, 40, 1000], seed),
        e7_mdst_space(&[16, 32, 64], seed),
        e8_faults(40, &[0.05, 0.25, 0.5, 1.0], seed, threads),
        e8_label_faults(64, &[1, 4, 16], seed),
        e9_sched_ablation(24, seed),
        e10_churn(&[64, 1000], &[0.5, 2.0], 8, seed, threads),
        e11_space_scale(&[100_000, 1_000_000], &[100_000], seed, threads),
        e12_soak(&[256], &[50_000], 24, seed, threads),
    ]
}

/// A tiny-size pass over every experiment, exercised by CI so the harness and the
/// report binary can no longer rot uncompiled (or un-runnable). Runs with 2 worker
/// threads so the parallel plumbing is exercised end-to-end (the pool degrades
/// gracefully at toy sizes — small waves stay inline).
pub fn smoke_report(seed: u64) -> Vec<ExperimentTable> {
    vec![
        e1_bfs(&[12], seed),
        e2_switch(&[12], seed),
        e3_nca(&[16], seed),
        e4_mst(&[12], seed, 2),
        e5_mst_space(&[12], seed),
        e6_mdst(&[10], seed),
        e7_mdst_space(&[12], seed),
        e8_faults(12, &[0.5], seed, 2),
        e8_label_faults(16, &[2], seed),
        e9_sched_ablation(12, seed),
        e10_churn(&[16], &[1.5], 4, seed, 2),
        e11_space_scale(&[2_000], &[400], seed, 2),
        e12_soak(&[20], &[400], 8, seed, 2),
    ]
}

/// Convenience used by the Criterion benches: a small instance of the given workload.
pub fn small_workload(n: usize, seed: u64) -> Graph {
    generators::workload(n, 0.2, seed)
}

// ---------------------------------------------------------------------------
// S1/S2 — the serving layer (`stst-serve`): query throughput off epoch-published
// snapshots under concurrent churn, gated by the differential oracle.
// ---------------------------------------------------------------------------

/// Direct-traversal reference for serve answers: a depth table and an [`NcaOracle`]
/// rebuilt from a pinned snapshot's own parent vector. `SameFragment` has no
/// traversal form (its ground truth is the fragment partition, covered by
/// `tests/serve_oracle.rs`), so [`ServeTraversal::expected`] returns `None` for it.
struct ServeTraversal {
    oracle: NcaOracle,
    depths: Vec<usize>,
}

impl ServeTraversal {
    fn of(snapshot: &ServeSnapshot) -> Self {
        let tree = Tree::from_parents(snapshot.parents().to_vec())
            .expect("published snapshots carry a well-formed tree");
        let oracle = NcaOracle::new(&tree);
        let depths = tree.depths();
        ServeTraversal { oracle, depths }
    }

    fn expected(&self, query: Query) -> Option<Answer> {
        match query {
            Query::DistToRoot(v) => Some(Answer::Count(self.depths[v.0] as u64)),
            Query::TreeDist(u, v) => {
                // Distance from the precomputed depth table, not
                // `NcaOracle::tree_distance` — that convenience recomputes the whole
                // depth vector per call, which would dominate the sampled checks.
                let nca = self.oracle.nca(u, v);
                Some(Answer::Count(
                    (self.depths[u.0] + self.depths[v.0] - 2 * self.depths[nca.0]) as u64,
                ))
            }
            Query::NcaDepth(u, v) => {
                Some(Answer::Count(self.depths[self.oracle.nca(u, v).0] as u64))
            }
            Query::Ancestor(u, v) => Some(Answer::Flag(self.oracle.is_ancestor(u, v))),
            Query::SameFragment(..) => None,
        }
    }
}

/// Outcome of one timed serve run (see [`serve_scale_run`]).
#[derive(Clone, Copy, Debug)]
pub struct ServeRunStats {
    /// Reader threads.
    pub threads: usize,
    /// Queries answered across all readers.
    pub queries: u64,
    /// Answers sampled into the differential oracle.
    pub checked: u64,
    /// Sampled answers that disagreed with direct traversal (the gate: must be 0).
    pub mismatches: u64,
    /// Queries answered by streaming bit windows (no decode).
    pub screened: u64,
    /// Queries that fell back to a full label decode (must be 0 on certified
    /// packed configurations).
    pub full_decodes: u64,
    /// Epochs the writer published during the run (1 = the initial publication).
    pub epochs: u64,
    /// Churn batches the writer injected while readers were querying.
    pub batches: u64,
    /// Wall time of the slowest reader thread, nanoseconds.
    pub wall_ns: u64,
}

impl ServeRunStats {
    /// Aggregate queries per second: total queries over the slowest reader's wall
    /// time (all readers start together, so this is the honest aggregate rate).
    pub fn qps(&self) -> f64 {
        self.queries as f64 * 1e9 / self.wall_ns.max(1) as f64
    }
}

/// One serve run: `threads` readers each answer `queries_per_thread` zipfian-mixed
/// queries off their pinned epochs while the writer injects `waves` of link churn
/// and republishes at every silence. Every `CHECK_EVERY`-th answer is verified
/// against direct traversal of the reader's *pinned* tree; readers re-pin every few
/// thousand queries, so the run exercises epochs both behind and at the head.
pub fn serve_scale_run(
    n: usize,
    waves: usize,
    queries_per_thread: u64,
    threads: usize,
    seed: u64,
) -> ServeRunStats {
    const CHECK_EVERY: u64 = 64;
    const REFRESH_EVERY: u64 = 4096;
    let g = generators::workload(n, 6.0 / n as f64, seed);
    // Link-only churn keeps the node set fixed across epochs, so one generator's
    // node ids stay valid no matter which epoch a reader is pinned to.
    let churn = trace::steady_poisson(&g, waves, 1.5, 0.0, seed);
    let engine = CompositionEngine::new(&g, EngineTask::Mst, EngineConfig::seeded(seed));
    let mut driver = ChurnDriver::new(engine);
    driver.stabilize();
    let hub = ServeHub::new(StoreMode::Packed);
    hub.publish_from_engine(driver.engine());

    let finished = std::sync::atomic::AtomicUsize::new(0);
    let mut batches = 0u64;
    let per_reader: Vec<(u64, u64, u64, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|reader| {
                let hub = &hub;
                let finished = &finished;
                scope.spawn(move || {
                    let mut rd = hub.reader().expect("published before the scope");
                    let mut traversal = ServeTraversal::of(rd.snapshot());
                    let mut gen =
                        LoadGen::new(n, 0.99, QueryMix::default_mix(), seed ^ reader as u64);
                    let (mut checked, mut mismatches) = (0u64, 0u64);
                    let (mut screened, mut full_decodes) = (0u64, 0u64);
                    let start = std::time::Instant::now();
                    for i in 0..queries_per_thread {
                        let query = gen.next_query();
                        let answer = rd.query(query);
                        if i % CHECK_EVERY == 0 {
                            if let Some(expected) = traversal.expected(query) {
                                checked += 1;
                                mismatches += u64::from(answer != expected);
                            }
                        }
                        if i % REFRESH_EVERY == REFRESH_EVERY - 1 {
                            screened += rd.stats().screened;
                            full_decodes += rd.stats().full_decodes;
                            if rd.refresh() {
                                traversal = ServeTraversal::of(rd.snapshot());
                            }
                        }
                    }
                    let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    screened += rd.stats().screened;
                    full_decodes += rd.stats().full_decodes;
                    finished.fetch_add(1, std::sync::atomic::Ordering::Release);
                    (wall_ns, checked, mismatches, screened, full_decodes)
                })
            })
            .collect();
        // The writer: inject churn and republish at every silence until the trace
        // runs out or every reader is done. On a small host this thread competes
        // with the readers for cores — that contention is part of what the run
        // measures.
        for batch in churn.batches.iter().filter(|b| !b.is_empty()) {
            if finished.load(std::sync::atomic::Ordering::Acquire) == threads {
                break;
            }
            driver.inject(batch);
            batches += 1;
            if driver.engine().is_publishable() {
                hub.publish_from_engine(driver.engine());
            }
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut stats = ServeRunStats {
        threads,
        queries: queries_per_thread * threads as u64,
        checked: 0,
        mismatches: 0,
        screened: 0,
        full_decodes: 0,
        epochs: hub.epoch(),
        batches,
        wall_ns: 0,
    };
    for (wall_ns, checked, mismatches, screened, full_decodes) in per_reader {
        stats.wall_ns = stats.wall_ns.max(wall_ns);
        stats.checked += checked;
        stats.mismatches += mismatches;
        stats.screened += screened;
        stats.full_decodes += full_decodes;
    }
    stats
}

/// Times one query mix on a single pinned reader (no churn): the per-kind cost rows
/// of the S2 table. Returns `(queries, wall_ns, screened, full_decodes, mismatches)`.
pub fn serve_mix_run(
    n: usize,
    queries: u64,
    mix: QueryMix,
    seed: u64,
) -> (u64, u64, u64, u64, u64) {
    let g = generators::workload(n, 6.0 / n as f64, seed);
    let mut engine = CompositionEngine::new(&g, EngineTask::Mst, EngineConfig::seeded(seed));
    engine.run();
    let hub = ServeHub::new(StoreMode::Packed);
    hub.publish_from_engine(&engine);
    let mut rd = hub.reader().expect("published");
    let traversal = ServeTraversal::of(rd.snapshot());
    let mut gen = LoadGen::new(n, 0.99, mix, seed);
    let mut mismatches = 0u64;
    let start = std::time::Instant::now();
    for i in 0..queries {
        let query = gen.next_query();
        let answer = rd.query(query);
        if i % 64 == 0 {
            if let Some(expected) = traversal.expected(query) {
                mismatches += u64::from(answer != expected);
            }
        }
    }
    let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    (
        queries,
        wall_ns,
        rd.stats().screened,
        rd.stats().full_decodes,
        mismatches,
    )
}

/// The serve report: S1 (throughput under churn across the thread grid) and S2
/// (per-kind single-reader throughput). Returns the tables plus the gate verdict —
/// `true` only if every sampled answer matched direct traversal AND no packed query
/// fell back to a full decode.
pub fn serve_report(
    n: usize,
    waves: usize,
    queries_per_thread: u64,
    thread_grid: &[usize],
    seed: u64,
) -> (Vec<ExperimentTable>, bool) {
    let mut passed = true;
    let mut rows = Vec::new();
    let mut single_thread_qps = None;
    for &threads in thread_grid {
        let run = serve_scale_run(n, waves, queries_per_thread, threads, seed);
        passed &= run.mismatches == 0 && run.full_decodes == 0;
        if threads == 1 {
            single_thread_qps = Some(run.qps());
        }
        // On a small host extra reader threads buy contention, not speedup; the
        // column says which one this row measured.
        let vs_single = single_thread_qps
            .map(|base| format!("{:.2}", run.qps() / base))
            .unwrap_or_else(|| "-".into());
        rows.push(vec![
            n.to_string(),
            threads.to_string(),
            run.queries.to_string(),
            format!("{:.1}", run.wall_ns as f64 / 1e6),
            format!("{:.0}", run.qps()),
            format!("{:.0}", run.qps() / threads as f64),
            vs_single,
            run.epochs.to_string(),
            run.batches.to_string(),
            format!("{}/{}", run.checked - run.mismatches, run.checked),
            format!(
                "{:.1}",
                100.0 * run.screened as f64 / (run.screened + run.full_decodes).max(1) as f64
            ),
        ]);
    }
    let s1 = ExperimentTable {
        id: "S1".into(),
        claim: format!(
            "serve throughput under churn: {} queries/reader off pinned epochs while \
             the writer injects link churn and republishes at every silence \
             (aggregate-vs-1-reader is overhead on a {}-core host, speedup only when \
             cores exceed readers)",
            queries_per_thread,
            logical_cores()
        ),
        headers: [
            "n",
            "readers",
            "queries",
            "wall ms",
            "qps",
            "qps/reader",
            "vs 1 reader",
            "epochs",
            "churn batches",
            "oracle ok",
            "decode-free %",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    };

    let mix_queries = queries_per_thread / 2;
    let mut rows = Vec::new();
    let mixes: Vec<(String, QueryMix)> =
        std::iter::once(("default".to_string(), QueryMix::default_mix()))
            .chain((0..QUERY_KINDS).map(|k| (Query::kind_name(k).to_string(), QueryMix::only(k))))
            .collect();
    for (name, mix) in mixes {
        let (queries, wall_ns, screened, full_decodes, mismatches) =
            serve_mix_run(n, mix_queries, mix, seed);
        passed &= mismatches == 0 && full_decodes == 0;
        rows.push(vec![
            name,
            queries.to_string(),
            format!("{:.0}", queries as f64 * 1e9 / wall_ns.max(1) as f64),
            format!("{:.0}", wall_ns as f64 / queries.max(1) as f64),
            screened.to_string(),
            full_decodes.to_string(),
        ]);
    }
    let s2 = ExperimentTable {
        id: "S2".into(),
        claim: "per-kind query cost on one pinned reader (no churn): every kind \
                answers decode-free off the packed certificate store"
            .into(),
        headers: [
            "mix",
            "queries",
            "qps",
            "ns/query",
            "screen hits",
            "full decodes",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
        rows,
    };
    (vec![s1, s2], passed)
}

/// The `report --serve --json` document (recorded as `BENCH_serve.json`): host
/// metadata once at the top, the gate verdict, and the S1/S2 tables (which carry
/// `host_ref` pointers back to the top-level block).
pub fn serve_json(tables: &[ExperimentTable], thread_grid: &[usize], passed: bool) -> String {
    format!(
        "{{\"host\":{},\n \"passed\":{},\n \"tables\":{}}}",
        host_metadata_json(thread_grid),
        passed,
        tables_to_json(tables)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering_is_well_formed() {
        let t = ExperimentTable {
            id: "E0".into(),
            claim: "demo".into(),
            headers: vec!["a".into(), "b".into()],
            rows: vec![vec!["1".into(), "2".into()]],
        };
        let md = t.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.starts_with("## E0"));
    }

    #[test]
    fn json_rendering_is_well_formed_and_escaped() {
        let t = ExperimentTable {
            id: "E0".into(),
            claim: "say \"hi\"\n".into(),
            headers: vec!["a".into()],
            rows: vec![vec!["x\\y".into()]],
        };
        assert_eq!(
            t.to_json(),
            "{\"id\":\"E0\",\"host_ref\":\"host\",\"claim\":\"say \\\"hi\\\"\\n\",\
             \"headers\":[\"a\"],\"rows\":[[\"x\\\\y\"]]}"
        );
        let all = tables_to_json(&[t.clone(), t]);
        assert!(all.starts_with('[') && all.ends_with(']'));
    }

    #[test]
    fn serve_report_passes_its_gates_at_toy_size() {
        let (tables, passed) = serve_report(40, 3, 2_000, &[1, 2], 7);
        assert!(passed, "oracle mismatches or full decodes at toy size");
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].rows.len(), 2, "one S1 row per thread count");
        assert_eq!(
            tables[1].rows.len(),
            1 + QUERY_KINDS,
            "default mix + per-kind"
        );
        let json = serve_json(&tables, &[1, 2], passed);
        assert!(json.starts_with("{\"host\":"));
        assert!(json.contains("\"passed\":true"));
    }

    #[test]
    fn small_experiments_run_end_to_end() {
        assert_eq!(e1_bfs(&[12], 1).rows.len(), 2);
        assert_eq!(e2_switch(&[12], 1).rows.len(), 1);
        assert_eq!(e3_nca(&[16], 1).rows.len(), 2);
        assert_eq!(e4_mst(&[12], 1, 1).rows.len(), 2);
        assert_eq!(e6_mdst(&[10], 1).rows.len(), 1);
        assert_eq!(e8_faults(12, &[0.5], 1, 1).rows.len(), 3);
        assert!(e9_sched_ablation(12, 1).rows.len() >= 7);
    }

    #[test]
    fn e8_reports_guard_evaluations_alongside_rounds() {
        let table = e8_faults(14, &[0.25], 3, 1);
        let col = table
            .headers
            .iter()
            .position(|h| h.contains("guard evals"))
            .expect("E8 exposes the guard-evaluation work unit");
        for row in &table.rows {
            assert!(row[col].parse::<u64>().unwrap() > 0);
        }
    }

    #[test]
    fn e4_and_e8_report_identical_results_at_any_thread_count() {
        let strip_threads = |t: &ExperimentTable| {
            let col = t.headers.iter().position(|h| h == "threads").unwrap();
            t.rows
                .iter()
                .map(|r| {
                    let mut r = r.clone();
                    r.remove(col);
                    r
                })
                .collect::<Vec<_>>()
        };
        let a = e4_mst(&[14], 5, 1);
        let b = e4_mst(&[14], 5, 4);
        assert_eq!(strip_threads(&a), strip_threads(&b));
        let a = e8_faults(14, &[0.25], 5, 1);
        let b = e8_faults(14, &[0.25], 5, 4);
        assert_eq!(strip_threads(&a), strip_threads(&b));
    }

    #[test]
    fn e8b_recovers_from_label_corruption() {
        let table = e8_label_faults(16, &[1, 3], 2);
        assert_eq!(
            table.rows.len(),
            4,
            "scratch + 2 random-corruption rows + the stale-certificate row"
        );
        for row in &table.rows[1..] {
            assert_eq!(row.last().unwrap(), "true", "row {row:?}");
        }
        assert!(table.rows[3][0].contains("stale"));
    }

    #[test]
    fn smoke_grid_covers_every_experiment() {
        let tables = smoke_report(5);
        assert_eq!(tables.len(), 13);
        for t in &tables {
            assert!(!t.rows.is_empty(), "{} produced no rows", t.id);
        }
        assert_eq!(tables.last().unwrap().id, "E12");
    }

    #[test]
    fn e11_packed_store_meets_the_allocation_budget() {
        let table = e11_space_scale(&[1_500], &[300], 7, 2);
        assert_eq!(table.rows.len(), 3);
        let ratio_col = table
            .headers
            .iter()
            .position(|h| h.contains("measured×8"))
            .unwrap();
        let packed_bfs: f64 = table.rows[0][ratio_col].parse().unwrap();
        let struct_bfs: f64 = table.rows[1][ratio_col].parse().unwrap();
        let packed_mst: f64 = table.rows[2][ratio_col].parse().unwrap();
        assert!(
            packed_bfs <= 4.0,
            "packed BFS store blew the 4x budget: {packed_bfs}"
        );
        assert!(
            packed_mst <= 4.0,
            "packed MST label store blew the 4x budget: {packed_mst}"
        );
        assert!(
            struct_bfs >= 2.0 * packed_bfs,
            "struct reference should cost several times the packed store \
             (packed {packed_bfs}, struct {struct_bfs})"
        );
        for row in &table.rows {
            assert_eq!(row.last().unwrap(), "true", "row {row:?} must be legal");
        }
        // The packed sync-BFS row runs the two-tier guard path: the decode-free
        // screen must carry the overwhelming share of the evaluations (the struct
        // row has nothing to screen and records zeros).
        let hits_col = table
            .headers
            .iter()
            .position(|h| h == "guard screen hits")
            .unwrap();
        let decodes_col = table
            .headers
            .iter()
            .position(|h| h == "guard full decodes")
            .unwrap();
        let hits: u64 = table.rows[0][hits_col].parse().unwrap();
        let decodes: u64 = table.rows[0][decodes_col].parse().unwrap();
        assert!(hits > 0, "the screen never resolved a guard");
        assert!(
            decodes * 5 <= hits + decodes,
            "full decodes must drop at least 5x vs total evaluations \
             ({decodes} decodes of {} evaluations)",
            hits + decodes
        );
        assert_eq!(table.rows[1][hits_col], "0");
        assert_eq!(table.rows[1][decodes_col], "0");
    }

    #[test]
    fn e12_soak_runs_and_serializes_its_time_series() {
        let runs = e12_soak_runs(&[14], &[60], 8, 9, 2);
        assert_eq!(runs.len(), 2, "one engine soak + one executor soak");
        for (scenario, _, r) in &runs {
            assert!(r.legal, "{scenario} must end legal");
            assert!(r.checkpoints > 0, "{scenario} must take checkpoints");
            assert!(r.restores > 0, "{scenario} must kill-and-restore");
            assert_eq!(r.samples.len(), r.waves);
        }
        let json = soak_json(&runs, 2);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"host\":"));
        assert!(json.contains("\"p99_repair_ms\":"));
        assert!(json.contains("\"series\":"));
        assert!(json.contains("\"restored\":[") && json.contains("true"));
        let table = e12_soak(&[14], &[60], 8, 9, 2);
        assert_eq!(table.id, "E12");
        assert_eq!(table.rows.len(), 2);
        for row in &table.rows {
            assert_eq!(row.last().unwrap(), "true", "row {row:?} must end legal");
        }
    }

    #[test]
    fn e10_incremental_beats_rebuild_on_label_writes() {
        let table = e10_churn(&[48], &[1.0], 6, 3, 1);
        assert_eq!(table.rows.len(), 1);
        let row = &table.rows[0];
        let col = |needle: &str| {
            table
                .headers
                .iter()
                .position(|h| h.contains(needle))
                .unwrap_or_else(|| panic!("no column {needle}"))
        };
        let incr: f64 = row[col("(incr)")].parse().unwrap();
        let rebuild: f64 = row[col("(rebuild)")].parse().unwrap();
        assert!(
            incr < rebuild,
            "incremental wrote {incr} labels/event, rebuild {rebuild}"
        );
        let ratio: f64 = row[col("ratio")].parse().unwrap();
        assert!(ratio > 1.0);
    }

    #[test]
    fn host_metadata_is_valid_json_with_the_grid() {
        let json = host_metadata_json(&[1, 4]);
        assert!(json.starts_with("{\"logical_cores\":"));
        assert!(json.ends_with("\"thread_grid\":[1,4]}"));
        // A run only claims to be a speedup baseline when the host can actually run
        // threads in parallel.
        let expected = format!("\"speedup_baseline\":{}", logical_cores() > 1);
        assert!(json.contains(&expected), "{json}");
        let doc = report_json(&smoke_report_stub(), &[2]);
        assert!(doc.starts_with("{\"host\":{\"logical_cores\":"));
        assert!(doc.contains("\"tables\":["));
    }

    fn smoke_report_stub() -> Vec<ExperimentTable> {
        vec![ExperimentTable {
            id: "E0".into(),
            claim: "stub".into(),
            headers: vec!["a".into()],
            rows: vec![vec!["1".into()]],
        }]
    }

    #[test]
    fn trace_report_passes_every_contract_at_smoke_size() {
        let doc = trace_report(40, 6, 2015, 2);
        assert!(
            doc.passed(),
            "trace contracts failed: events={} dropped={} layers={:?} order={:?} \
             round_trip={} determinism={} guard={} overhead={}",
            doc.event_count,
            doc.dropped,
            doc.layers,
            doc.wave_order_error,
            doc.round_trip_ok,
            doc.determinism_ok,
            doc.guard_invariant_ok,
            doc.overhead_ok,
        );
        assert!(doc.event_count > 0);
        assert_eq!(doc.layers.len(), 4, "all four layers must emit");
        let md = doc.to_markdown();
        assert!(md.contains("| verdict | PASS |"));
        let json = doc.to_json(2);
        assert!(json.starts_with("{\"host\":"));
        assert!(json.contains("\"passed\":true"));
        assert!(json.contains("\"trace\":[{\"seq\":"));
        assert!(json.contains("\"metrics\":{"));
    }
}
