//! Criterion bench for experiment e1_bfs: E1: silent BFS convergence.
//!
//! The full parameter sweep (and the tables in EXPERIMENTS.md) is produced by
//! `cargo run --release -p stst-bench --bin report`; this bench times representative
//! points of the sweep.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use stst_core::bfs::RootedBfs;
use stst_graph::generators;
use stst_runtime::{Executor, ExecutorConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_bfs");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    for &n in &[16usize, 48] {
        group.bench_with_input(BenchmarkId::new("rooted_bfs_converge", n), &n, |b, &n| {
            let g = generators::workload(n, 0.1, 7);
            let root = g.ident(g.min_ident_node());
            b.iter(|| {
                let mut exec =
                    Executor::from_arbitrary(&g, RootedBfs::new(root), ExecutorConfig::seeded(7));
                black_box(exec.run_to_quiescence(10_000_000).unwrap())
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
