//! E11 at bench scale: the packed configuration store under large sync-BFS waves and
//! the MST composition, swept over store mode × thread count.
//!
//! Before timing anything the bench asserts the packed store's two contracts:
//!
//! * **bit identity** — the packed execution (final states, quiescence counters,
//!   guard evaluations) is identical to the struct-backed reference, at every thread
//!   count in the grid;
//! * **allocation budget** — the packed double buffer (snapshot + pending) costs at
//!   most 4× the accounted register bits, while the struct reference costs several
//!   times more (the E11 acceptance gate, here at bench scale);
//! * **decode elimination** — the two-tier guard path resolves the overwhelming
//!   share of packed evaluations decode-free: full decodes drop at least 5× against
//!   the decode-everything baseline (which paid one full decode per guard
//!   evaluation), and the screened/decoded split exactly accounts for every
//!   evaluation.
//!
//! `-- --smoke` runs a reduced grid (n = 10,000, threads ∈ {1, 4}); CI uses it to
//! keep the packed path — screening gates included — from rotting.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use stst_bench::sparse_workload;
use stst_core::bfs::{BfsState, RootedBfs};
use stst_graph::Graph;
use stst_runtime::{Executor, ExecutorConfig, Quiescence, SchedulerKind, StoreMode};

const SEED: u64 = 2015;

struct BfsOutcome {
    states: Vec<BfsState>,
    quiescence: Quiescence,
    guard_evals: u64,
    screen_hits: u64,
    full_decodes: u64,
    measured_bytes: usize,
    accounted_bits: u64,
}

fn run_bfs(g: &Graph, store: StoreMode, threads: usize) -> BfsOutcome {
    let root_ident = g.ident(g.min_ident_node());
    let config = ExecutorConfig::with_scheduler(SEED, SchedulerKind::Synchronous)
        .with_threads(threads)
        .with_store(store);
    let mut exec = Executor::from_arbitrary(g, RootedBfs::new(root_ident), config);
    let quiescence = exec.run_to_quiescence(20_000_000).expect("BFS converges");
    let report = exec.store_report();
    BfsOutcome {
        states: exec.states(),
        quiescence,
        guard_evals: exec.guard_evaluations(),
        screen_hits: exec.guard_screen_hits(),
        full_decodes: exec.guard_full_decodes(),
        measured_bytes: report.measured_bytes,
        accounted_bits: report.accounted_bits,
    }
}

fn bench(c: &mut Criterion) {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sizes, thread_counts): (&[usize], &[usize]) = if smoke {
        (&[10_000], &[1, 4])
    } else {
        (&[50_000, 250_000], &[1, 2, 4, 8])
    };
    println!(
        "space_scale host: {}",
        stst_bench::host_metadata_json(thread_counts)
    );

    let mut group = c.benchmark_group("space_scale");
    group
        .sample_size(if smoke { 2 } else { 5 })
        .measurement_time(Duration::from_secs(if smoke { 2 } else { 12 }))
        .warm_up_time(Duration::from_millis(if smoke { 50 } else { 500 }));

    for &n in sizes {
        let g = sparse_workload(n, n / 2, SEED);
        // Bit-identity gate (untimed): the packed store reproduces the struct-backed
        // run exactly, at every thread count.
        let reference = run_bfs(&g, StoreMode::Struct, 1);
        assert!(
            reference.quiescence.legal,
            "BFS stabilizes legally at n={n}"
        );
        assert_eq!(
            (reference.screen_hits, reference.full_decodes),
            (0, 0),
            "the struct reference neither screens nor decodes"
        );
        let mut packed_bytes = 0usize;
        let mut tiers = (0u64, 0u64);
        for &t in thread_counts {
            let packed = run_bfs(&g, StoreMode::Packed, t);
            assert!(
                packed.states == reference.states
                    && packed.quiescence == reference.quiescence
                    && packed.guard_evals == reference.guard_evals,
                "packed store diverged from the struct reference at n={n}, threads={t}"
            );
            assert_eq!(
                packed.accounted_bits, reference.accounted_bits,
                "accounting must not depend on the store"
            );
            // Decode-elimination gate: every packed evaluation is either screened or
            // fully decoded, the screen resolves most of them, and full decodes drop
            // at least 5x against the decode-everything baseline (which paid one full
            // decode per guard evaluation). The split is thread-count invariant.
            assert_eq!(
                packed.screen_hits + packed.full_decodes,
                packed.guard_evals,
                "n={n}, threads={t}: tier accounting"
            );
            assert!(
                packed.screen_hits > 0,
                "n={n}, threads={t}: the screen never resolved a guard"
            );
            assert!(
                packed.full_decodes * 5 <= packed.guard_evals,
                "n={n}, threads={t}: {} full decodes out of {} evaluations is less \
                 than a 5x reduction over the decode-everything baseline",
                packed.full_decodes,
                packed.guard_evals
            );
            if t == thread_counts[0] {
                tiers = (packed.screen_hits, packed.full_decodes);
            } else {
                assert_eq!(
                    (packed.screen_hits, packed.full_decodes),
                    tiers,
                    "n={n}, threads={t}: tier split must not depend on the thread count"
                );
            }
            // Allocation budget gate: packed ≤ 4x the accounted bits; the struct
            // reference costs several times the packed store.
            assert!(
                (packed.measured_bytes as u64) * 8 <= 4 * packed.accounted_bits,
                "n={n}: packed store allocated {} bytes for {} accounted bits",
                packed.measured_bytes,
                packed.accounted_bits
            );
            assert!(
                packed.measured_bytes * 4 < reference.measured_bytes,
                "n={n}: packed {}B should be at least 4x below struct {}B",
                packed.measured_bytes,
                reference.measured_bytes
            );
            packed_bytes = packed.measured_bytes;
        }
        println!(
            "space_scale/{n}: packed {:.1} B/node vs struct {:.1} B/node \
             ({:.1} accounted bits/node); {} screened / {} decoded of {} evals",
            packed_bytes as f64 / n as f64,
            reference.measured_bytes as f64 / n as f64,
            reference.accounted_bits as f64 / n as f64,
            tiers.0,
            tiers.1,
            reference.guard_evals
        );
        for store in [StoreMode::Packed, StoreMode::Struct] {
            for &t in thread_counts {
                group.bench_with_input(
                    BenchmarkId::new(&format!("sync_bfs/{n}/{store:?}"), format!("threads={t}")),
                    &t,
                    |b, &t| {
                        b.iter(|| black_box(run_bfs(&g, store, t).quiescence));
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
