//! Parallel wave execution at scale: the deterministic worker pool vs the sequential
//! executor, swept over network size × thread count.
//!
//! Two workloads:
//!
//! * `sync_bfs` — synchronous-daemon BFS stabilization from an arbitrary
//!   configuration. Every round is one wave: all enabled guards read the immutable
//!   pre-round configuration, so the executor shards the refresh frontier across the
//!   pool and applies the results at the barrier. This is the paper-model workload the
//!   ≥3× @ 8 threads acceptance target is measured on (on a host with ≥ 8 cores; the
//!   bench prints the measured ratio for whatever host it runs on).
//! * `reproof_waves` — the composition engine's from-scratch label reproofs
//!   (`Relabel::FromScratch` MST): fragment/NCA/redundant provers run concurrently and
//!   the fragment prover shards its per-level scans.
//!
//! Before timing anything, the bench asserts that the final configuration and round
//! count at every thread count are **bit-identical** to the single-threaded run — the
//! determinism contract, not just a statistical check.
//!
//! `-- --smoke` runs a reduced grid (small n, threads ∈ {1, 4}); CI uses it to keep
//! the pool code from rotting.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use stst_core::{construct_mst, EngineConfig, Relabel};
use stst_graph::{generators, Graph};
use stst_runtime::{Executor, ExecutorConfig, SchedulerKind};

use stst_core::bfs::RootedBfs;

const SEED: u64 = 71;

fn bfs_graph(n: usize) -> Graph {
    // ~3 extra edges per node over the spanning backbone: sparse, small Δ, big waves.
    generators::shuffle_idents(&generators::random_sparse(n, 3 * n, SEED), SEED)
}

fn run_sync_bfs(g: &Graph, threads: usize) -> (Vec<stst_core::bfs::BfsState>, u64) {
    let root = g.ident(g.min_ident_node());
    let config =
        ExecutorConfig::with_scheduler(SEED, SchedulerKind::Synchronous).with_threads(threads);
    let mut exec = Executor::from_arbitrary(g, RootedBfs::new(root), config);
    let q = exec.run_to_quiescence(10_000_000).expect("BFS converges");
    (exec.states(), q.rounds)
}

fn bench(c: &mut Criterion) {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sizes, thread_counts): (&[usize], &[usize]) = if smoke {
        (&[2_000], &[1, 4])
    } else {
        (&[10_000, 100_000], &[1, 2, 4, 8])
    };

    println!(
        "parallel_scale host: {}",
        stst_bench::host_metadata_json(thread_counts)
    );
    let speedup_host = stst_bench::logical_cores() > 1;

    let mut group = c.benchmark_group("parallel_scale");
    group
        .sample_size(if smoke { 2 } else { 5 })
        .measurement_time(Duration::from_secs(if smoke { 2 } else { 12 }))
        .warm_up_time(Duration::from_millis(if smoke { 50 } else { 500 }));

    for &n in sizes {
        let g = bfs_graph(n);
        // Determinism gate (untimed): every thread count must reproduce the
        // single-threaded trajectory bit for bit.
        let (ref_states, ref_rounds) = run_sync_bfs(&g, 1);
        for &t in thread_counts {
            let (states, rounds) = run_sync_bfs(&g, t);
            assert!(
                states == ref_states && rounds == ref_rounds,
                "threads={t} diverged from the sequential execution at n={n}"
            );
        }
        let mut means = vec![Duration::ZERO; thread_counts.len()];
        for (slot, &t) in thread_counts.iter().enumerate() {
            group.bench_with_input(
                BenchmarkId::new(&format!("sync_bfs/{n}"), format!("threads={t}")),
                &t,
                |b, &t| {
                    b.iter(|| black_box(run_sync_bfs(&g, t)));
                    means[slot] = b.mean();
                },
            );
        }
        if means[0] > Duration::ZERO {
            // On a single logical core a threads>1 run measures scheduling overhead,
            // not parallel speedup — label the ratio honestly instead of calling it one.
            let label = if speedup_host {
                "speedup"
            } else {
                "time ratio (single-core host, NOT a speedup baseline)"
            };
            for (i, &t) in thread_counts.iter().enumerate() {
                println!(
                    "parallel_scale/sync_bfs/{n}: threads={t} {label} vs threads=1 = {:.2}x",
                    means[0].as_secs_f64() / means[i].as_secs_f64().max(1e-12)
                );
            }
        }
    }

    // The engine's from-scratch reproof waves (the Relabel::FromScratch reference
    // mode re-proves every family after every switch — the heaviest wave workload).
    // The guarded-rule tree phase runs under the synchronous daemon: it is not what
    // this group measures, and synchronously it converges in diameter-ish rounds.
    let n = if smoke { 300 } else { 2_000 };
    let g = generators::workload(n, 6.0 / n as f64, SEED);
    let engine_config = |t: usize| {
        EngineConfig::seeded(SEED)
            .with_scheduler(SchedulerKind::Synchronous)
            .with_relabel(Relabel::FromScratch)
            .with_threads(t)
    };
    let ref_report = construct_mst(&g, &engine_config(1));
    for &t in thread_counts {
        let report = construct_mst(&g, &engine_config(t));
        assert_eq!(report.tree, ref_report.tree, "threads={t} reproof diverged");
        assert_eq!(report.labels_written, ref_report.labels_written);
        group.bench_with_input(
            BenchmarkId::new(&format!("reproof_waves/{n}"), format!("threads={t}")),
            &t,
            |b, &t| {
                let config = engine_config(t);
                b.iter(|| black_box(construct_mst(&g, &config)));
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
