//! Criterion bench for experiment e8_faults: E8: recovery from transient faults.
//!
//! The full parameter sweep (and the tables in EXPERIMENTS.md) is produced by
//! `cargo run --release -p stst-bench --bin report`; this bench times representative
//! points of the sweep.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use stst_core::spanning::MinIdSpanningTree;
use stst_graph::generators;
use stst_runtime::{Executor, ExecutorConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_faults");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    for &k in &[1usize, 10] {
        group.bench_with_input(BenchmarkId::new("recover_after_faults", k), &k, |b, &k| {
            let g = generators::workload(32, 0.12, 17);
            let mut exec =
                Executor::from_arbitrary(&g, MinIdSpanningTree, ExecutorConfig::seeded(17));
            exec.run_to_quiescence(10_000_000).unwrap();
            let stable = exec.states();
            b.iter(|| {
                let mut exec = Executor::with_states(
                    &g,
                    MinIdSpanningTree,
                    stable.clone(),
                    ExecutorConfig::seeded(17),
                );
                exec.corrupt_random_nodes(k);
                black_box(exec.run_to_quiescence(10_000_000).unwrap())
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
