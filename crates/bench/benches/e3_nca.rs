//! Criterion bench for experiment e3_nca: E3: NCA labeling construction and certification.
//!
//! The full parameter sweep (and the tables in EXPERIMENTS.md) is produced by
//! `cargo run --release -p stst-bench --bin report`; this bench times representative
//! points of the sweep.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use stst_core::nca_build::build_nca_labels;
use stst_graph::{bfs, generators};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_nca");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    for &n in &[64usize, 256] {
        group.bench_with_input(BenchmarkId::new("nca_labels", n), &n, |b, &n| {
            let g = generators::workload(n, 0.1, 5);
            let t = bfs::bfs_tree(&g, g.min_ident_node());
            b.iter(|| black_box(build_nca_labels(&g, &t)));
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
