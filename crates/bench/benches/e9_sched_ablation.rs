//! Criterion bench for experiment e9_sched_ablation: E9: scheduler robustness and guidance ablation.
//!
//! The full parameter sweep (and the tables in EXPERIMENTS.md) is produced by
//! `cargo run --release -p stst-bench --bin report`; this bench times representative
//! points of the sweep.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use stst_core::spanning::MinIdSpanningTree;
use stst_graph::generators;
use stst_runtime::{Executor, ExecutorConfig, SchedulerKind};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_sched_ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    for kind in [
        SchedulerKind::Central,
        SchedulerKind::Adversarial,
        SchedulerKind::Synchronous,
    ] {
        group.bench_with_input(
            BenchmarkId::new("spanning_tree_under", kind.to_string()),
            &kind,
            |b, &kind| {
                let g = generators::workload(24, 0.2, 19);
                b.iter(|| {
                    let mut exec = Executor::from_arbitrary(
                        &g,
                        MinIdSpanningTree,
                        ExecutorConfig::with_scheduler(19, kind),
                    );
                    black_box(exec.run_to_quiescence(10_000_000).unwrap())
                });
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
