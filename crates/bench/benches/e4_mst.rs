//! Criterion bench for experiment e4_mst: E4: silent self-stabilizing MST construction.
//!
//! The full parameter sweep (and the tables in EXPERIMENTS.md) is produced by
//! `cargo run --release -p stst-bench --bin report`; this bench times representative
//! points of the sweep.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use stst_core::{construct_mst, EngineConfig};
use stst_graph::generators;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_mst");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    for &n in &[16usize, 32] {
        group.bench_with_input(BenchmarkId::new("construct_mst", n), &n, |b, &n| {
            let g = generators::workload(n, 0.25, 11);
            b.iter(|| black_box(construct_mst(&g, &EngineConfig::seeded(11))));
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
