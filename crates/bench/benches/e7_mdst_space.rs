//! Criterion bench for experiment e7_mdst_space: E7: MDST memory comparison vs prior art.
//!
//! The full parameter sweep (and the tables in EXPERIMENTS.md) is produced by
//! `cargo run --release -p stst-bench --bin report`; this bench times representative
//! points of the sweep.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_mdst_space");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    group.bench_function("e7_space_table", |b| {
        b.iter(|| black_box(stst_bench::e7_mdst_space(&[16, 32], 9)));
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
