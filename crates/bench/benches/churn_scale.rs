//! Live-churn recovery at scale: incremental re-stabilization under a steady stream
//! of single-edge topology events, swept over graph size × thread count.
//!
//! Before timing anything the bench asserts two contracts:
//!
//! * **determinism** — the churned run (final tree, label-write and round counters)
//!   is bit-identical at every thread count to the single-threaded run;
//! * **incrementality** — per applied event batch, the engine writes fewer labels
//!   than a from-scratch rebuild of the composition on the final mutated graph (the
//!   E10 acceptance gate, here at bench scale).
//!
//! `-- --smoke` runs a reduced grid (small n, threads ∈ {1, 4}); CI uses it to keep
//! the churn path from rotting.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use stst_churn::{trace, ChurnDriver, ChurnTrace};
use stst_core::engine::{CompositionEngine, EngineTask};
use stst_core::EngineConfig;
use stst_graph::{generators, Graph, Tree};

const SEED: u64 = 71;

fn churn_graph(n: usize) -> Graph {
    generators::workload(n, 6.0 / n as f64, SEED)
}

struct ChurnOutcome {
    tree: Tree,
    labels_written: u64,
    rounds: u64,
    applied_batches: u64,
    churn_labels: u64,
}

fn run_churn(g: &Graph, churn: &ChurnTrace, threads: usize) -> ChurnOutcome {
    let engine = CompositionEngine::new(
        g,
        EngineTask::Mst,
        EngineConfig::seeded(SEED).with_threads(threads),
    );
    let mut driver = ChurnDriver::new(engine);
    driver.stabilize();
    let summary = driver.run_trace(churn);
    let engine = driver.into_engine();
    ChurnOutcome {
        tree: engine.tree().clone(),
        labels_written: engine.labels_written(),
        rounds: engine.total_rounds(),
        applied_batches: summary.batches as u64 - summary.severed as u64,
        churn_labels: summary.total_labels_written,
    }
}

fn bench(c: &mut Criterion) {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (sizes, thread_counts): (&[usize], &[usize]) = if smoke {
        (&[300], &[1, 4])
    } else {
        (&[1_000, 2_500], &[1, 2, 4, 8])
    };
    let waves = if smoke { 6 } else { 10 };
    println!(
        "churn_scale host: {}",
        stst_bench::host_metadata_json(thread_counts)
    );

    let mut group = c.benchmark_group("churn_scale");
    group
        .sample_size(if smoke { 2 } else { 5 })
        .measurement_time(Duration::from_secs(if smoke { 2 } else { 12 }))
        .warm_up_time(Duration::from_millis(if smoke { 50 } else { 500 }));

    for &n in sizes {
        let g = churn_graph(n);
        let churn = trace::steady_poisson(&g, waves, 1.0, 0.0, SEED);
        // Determinism gate (untimed): every thread count reproduces the
        // single-threaded churned run bit for bit.
        let reference = run_churn(&g, &churn, 1);
        for &t in thread_counts.iter().filter(|&&t| t != 1) {
            let outcome = run_churn(&g, &churn, t);
            assert!(
                outcome.tree == reference.tree
                    && outcome.labels_written == reference.labels_written
                    && outcome.rounds == reference.rounds,
                "threads={t} diverged from the sequential churned run at n={n}"
            );
        }
        // Incrementality gate: per applied batch, the churn recovery writes fewer
        // labels than one from-scratch rebuild of the composition on the final
        // mutated graph.
        if let Some(per_batch) = reference
            .churn_labels
            .checked_div(reference.applied_batches)
        {
            let final_graph = {
                let mut replay = g.clone();
                for batch in &churn.batches {
                    for event in batch {
                        let muts = event.mutations(replay.node_count());
                        let mut trial = replay.clone();
                        trial.apply_mutations(&muts);
                        if trial.is_connected() {
                            replay = trial;
                        }
                    }
                }
                replay
            };
            let mut fresh =
                CompositionEngine::new(&final_graph, EngineTask::Mst, EngineConfig::seeded(SEED));
            let rebuild = fresh.run();
            assert_eq!(
                fresh.tree(),
                &reference.tree,
                "rebuild and churned run agree on the MST of the final graph"
            );
            assert!(
                per_batch < rebuild.labels_written,
                "n={n}: churn recovery wrote {per_batch} labels/batch, \
                 a from-scratch rebuild writes {}",
                rebuild.labels_written
            );
            println!(
                "churn_scale/{n}: {} labels/batch incremental vs {} per rebuild ({}x)",
                per_batch,
                rebuild.labels_written,
                rebuild.labels_written / per_batch.max(1)
            );
        }
        for &t in thread_counts {
            group.bench_with_input(
                BenchmarkId::new(&format!("steady_churn/{n}"), format!("threads={t}")),
                &t,
                |b, &t| {
                    b.iter(|| black_box(run_churn(&g, &churn, t)));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
