//! Criterion bench for experiment e2_switch: E2: loop-free malleable edge switch.
//!
//! The full parameter sweep (and the tables in EXPERIMENTS.md) is produced by
//! `cargo run --release -p stst-bench --bin report`; this bench times representative
//! points of the sweep.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use stst_core::switch::loop_free_switch;
use stst_graph::{bfs, generators};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_switch");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    for &n in &[32usize, 96] {
        group.bench_with_input(BenchmarkId::new("loop_free_switch", n), &n, |b, &n| {
            let g = generators::workload(n, 0.15, 3);
            let t = bfs::bfs_tree(&g, g.min_ident_node());
            let e = g
                .edge_ids()
                .find(|&e| {
                    let ed = g.edge(e);
                    !t.contains_edge(ed.u, ed.v)
                })
                .unwrap();
            let cycle = t.fundamental_cycle_tree_edges(&g, e);
            let f = cycle[cycle.len() / 2];
            b.iter(|| black_box(loop_free_switch(&g, &t, e, f)));
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
