//! Criterion bench for experiment e5_mst_space: E5: MST space comparison vs baselines.
//!
//! The full parameter sweep (and the tables in EXPERIMENTS.md) is produced by
//! `cargo run --release -p stst-bench --bin report`; this bench times representative
//! points of the sweep.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_mst_space");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    group.bench_function("e5_space_table", |b| {
        b.iter(|| black_box(stst_bench::e5_mst_space(&[16, 32], 9)));
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
