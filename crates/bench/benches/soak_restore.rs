//! The durability gate: checkpoint/kill/restore correctness and soak survival at
//! bench scale, plus timings for the snapshot roundtrip and a soak wave.
//!
//! Before timing anything the bench asserts the persistence contracts:
//!
//! * **bit identity** — a run that is checkpointed mid-flight, killed and restored
//!   from the serialized bytes finishes in exactly the configuration and with
//!   exactly the counters of the uninterrupted run, at every thread count in the
//!   grid (restore is a *representation* choice, not a semantic one);
//! * **soak survival** — a short mixed-load soak (churn + label faults + periodic
//!   checkpoint/kill/restore cycles at the engine layer; register faults + restore
//!   cycles at the executor layer) ends silent and legal, with every checkpoint
//!   and restore actually exercised;
//! * **restore == self-stabilization** — an engine snapshot carrying unresolved
//!   label corruption restores into a configuration whose next verification wave
//!   repairs it.
//!
//! `-- --smoke` runs a reduced grid (threads ∈ {1, 4}); CI uses it to keep the
//! durability path from rotting next to the other bench gates.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use stst_bench::sparse_workload;
use stst_churn::soak::{run_executor_soak, run_soak, SoakConfig};
use stst_core::engine::{CompositionEngine, EngineTask, PhaseEvent};
use stst_core::spanning::{MinIdSpanningTree, SpanningState};
use stst_core::EngineConfig;
use stst_graph::Graph;
use stst_runtime::{Executor, ExecutorConfig, SchedulerKind, Snapshot};

const SEED: u64 = 2015;

/// Uninterrupted reference outcome: final states plus every execution counter.
fn finish(
    exec: &mut Executor<'_, MinIdSpanningTree>,
) -> (Vec<SpanningState>, u64, u64, u64, Vec<u64>) {
    let q = exec.run_to_quiescence(20_000_000).expect("converges");
    assert!(q.silent && q.legal);
    (
        exec.states(),
        exec.moves(),
        exec.steps(),
        exec.rounds(),
        exec.activation_counts(),
    )
}

/// The bit-identity gate: checkpoint at a mid-round step, serialize, kill, restore,
/// finish — and compare everything against the uninterrupted twin.
fn assert_restore_bit_identical(g: &Graph, threads: usize) {
    let config = ExecutorConfig::seeded(SEED).with_threads(threads);
    let mut reference = Executor::from_arbitrary(g, MinIdSpanningTree, config);
    let want = finish(&mut reference);

    let mut twin = Executor::from_arbitrary(g, MinIdSpanningTree, config);
    for _ in 0..29 {
        if twin.is_quiescent() {
            break;
        }
        twin.step_once();
    }
    let bytes = twin.checkpoint().to_bytes();
    drop(twin);

    let snap = Snapshot::from_bytes(&bytes).expect("self-produced snapshot parses");
    let mut restored =
        Executor::restore(g, MinIdSpanningTree, &snap, config).expect("snapshot restores");
    let got = finish(&mut restored);
    assert_eq!(
        got, want,
        "restored run diverged from the uninterrupted one at {threads} threads"
    );
}

fn bench(c: &mut Criterion) {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let thread_counts: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4, 8] };
    let (exec_n, soak_waves) = if smoke { (400, 8) } else { (20_000, 16) };
    println!(
        "soak_restore host: {}",
        stst_bench::host_metadata_json(thread_counts)
    );

    // Gate 1 (untimed): checkpoint/kill/restore bit identity at every thread count.
    let g = sparse_workload(exec_n, exec_n / 2, SEED);
    for &t in thread_counts {
        assert_restore_bit_identical(&g, t);
    }

    // Gate 2 (untimed): a snapshot carrying unresolved label corruption restores
    // into a configuration the verification wave repairs — restore is just
    // self-stabilization from disk.
    let eg = sparse_workload(24, 12, SEED);
    let mut engine = CompositionEngine::new(&eg, EngineTask::Mst, EngineConfig::seeded(SEED));
    let report = engine.run();
    assert!(report.legal);
    let reference_tree = engine.tree().clone();
    engine.corrupt_random_labels(3);
    let bytes = engine.checkpoint().to_bytes();
    drop(engine);
    let snap = Snapshot::from_bytes(&bytes).expect("engine snapshot parses");
    let (mut restored, _) = CompositionEngine::restore(&snap, 1).expect("engine restores");
    match restored.step() {
        PhaseEvent::Recovered { .. } => {}
        other => panic!("corrupted snapshot must trigger a recovery wave, got {other:?}"),
    }
    assert!(restored.report().legal);
    assert_eq!(
        restored.tree(),
        &reference_tree,
        "recovery must re-stabilize on the uninterrupted run's tree"
    );

    // Gate 3 (untimed): the short mixed-load soaks survive every stressor.
    for &t in thread_counts {
        let engine_soak = run_soak(
            &eg,
            EngineTask::Mst,
            &SoakConfig {
                waves: soak_waves,
                threads: t,
                ..SoakConfig::smoke(SEED)
            },
        );
        assert!(
            engine_soak.legal && engine_soak.checkpoints > 0 && engine_soak.restores > 0,
            "engine soak at {t} threads must survive churn+faults+restores"
        );
        let exec_soak = run_executor_soak(
            &g,
            MinIdSpanningTree,
            &SoakConfig {
                waves: soak_waves,
                threads: t,
                fault_burst: (exec_n / 250).max(2),
                scheduler: SchedulerKind::Synchronous,
                max_steps: 100_000_000,
                ..SoakConfig::smoke(SEED)
            },
        );
        assert!(
            exec_soak.legal && exec_soak.checkpoints > 0 && exec_soak.restores > 0,
            "executor soak at {t} threads must survive faults+restores"
        );
    }
    println!("soak_restore gates: bit identity, corrupted-snapshot recovery, soak survival — ok");

    let mut group = c.benchmark_group("soak_restore");
    group
        .sample_size(if smoke { 2 } else { 10 })
        .measurement_time(Duration::from_secs(if smoke { 2 } else { 8 }))
        .warm_up_time(Duration::from_millis(if smoke { 50 } else { 500 }));

    // Timed: the snapshot roundtrip (checkpoint + serialize + parse + restore) on a
    // converged executor — the per-checkpoint cost the soak pays on its cadence.
    let mut converged =
        Executor::from_arbitrary(&g, MinIdSpanningTree, ExecutorConfig::seeded(SEED));
    converged.run_to_quiescence(20_000_000).expect("converges");
    group.bench_with_input(
        BenchmarkId::new("snapshot_roundtrip", format!("n={exec_n}")),
        &exec_n,
        |b, _| {
            b.iter(|| {
                let bytes = converged.checkpoint().to_bytes();
                let snap = Snapshot::from_bytes(&bytes).expect("parses");
                let restored =
                    Executor::restore(&g, MinIdSpanningTree, &snap, ExecutorConfig::seeded(SEED))
                        .expect("restores");
                black_box(restored.steps())
            });
        },
    );

    // Timed: one full executor soak (faults + checkpoints + restores) per iteration.
    group.bench_with_input(
        BenchmarkId::new("executor_soak", format!("n={exec_n}/waves={soak_waves}")),
        &exec_n,
        |b, _| {
            b.iter(|| {
                let report = run_executor_soak(
                    &g,
                    MinIdSpanningTree,
                    &SoakConfig {
                        waves: soak_waves,
                        scheduler: SchedulerKind::Synchronous,
                        max_steps: 100_000_000,
                        ..SoakConfig::smoke(SEED)
                    },
                );
                assert!(report.legal);
                black_box(report.total_rounds)
            });
        },
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
