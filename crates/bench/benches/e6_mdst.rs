//! Criterion bench for experiment e6_mdst: E6: silent self-stabilizing MDST (FR-tree) construction.
//!
//! The full parameter sweep (and the tables in EXPERIMENTS.md) is produced by
//! `cargo run --release -p stst-bench --bin report`; this bench times representative
//! points of the sweep.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use stst_core::{construct_mdst, EngineConfig};
use stst_graph::generators;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_mdst");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));

    for &n in &[12usize, 20] {
        group.bench_with_input(BenchmarkId::new("construct_mdst", n), &n, |b, &n| {
            let g = generators::workload(n, 0.3, 13);
            b.iter(|| black_box(construct_mdst(&g, &EngineConfig::seeded(13))));
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
