//! The composition engine at scale: `construct_mst` on sparse workloads with
//! incremental label repair vs the retained `Relabel::FromScratch` reference mode.
//!
//! This is the wall-clock side of the refactor's acceptance criterion — the
//! deterministic label-write counter for the same pair is asserted by
//! `tests/incremental_label_oracle.rs` (≥ 5× at n = 1000; ≈ 26× measured).

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use stst_core::{construct_mst, EngineConfig, Relabel};
use stst_graph::generators;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("composition_scale");
    group
        .sample_size(5)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_millis(200));

    for &n in &[400usize, 1000] {
        let g = generators::workload(n, 6.0 / n as f64, 2015);
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter(|| black_box(construct_mst(&g, &EngineConfig::seeded(2015))));
        });
        group.bench_with_input(BenchmarkId::new("from_scratch", n), &n, |b, _| {
            let config = EngineConfig::seeded(2015).with_relabel(Relabel::FromScratch);
            b.iter(|| black_box(construct_mst(&g, &config)));
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
