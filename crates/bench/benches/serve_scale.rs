//! Serving-layer throughput at scale: reader threads answering zipfian query mixes
//! off epoch-pinned snapshots, swept over reader count × query mix × concurrent
//! churn.
//!
//! Before timing anything the bench asserts the serving contracts:
//!
//! * **differential oracle** — every sampled answer equals direct traversal of the
//!   pinned epoch's tree, including while the writer injects churn and republishes;
//! * **decode-free** — no query on the packed store of a certified configuration
//!   falls back to a full label decode;
//! * **pin stability** — a reader holding an old epoch replays a query stream
//!   bit-identically across a concurrent publication.
//!
//! `-- --smoke` runs a reduced grid (small n, readers ∈ {1, 4}); CI additionally
//! gates the same contracts through `report -- --serve --smoke` at threads {1, 4}.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use stst_core::engine::{CompositionEngine, EngineTask};
use stst_core::EngineConfig;
use stst_graph::generators;
use stst_runtime::StoreMode;
use stst_serve::{LoadGen, Query, QueryMix, ServeHub, QUERY_KINDS};

const SEED: u64 = 83;

fn bench(c: &mut Criterion) {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (n, reader_counts): (usize, &[usize]) = if smoke {
        (80, &[1, 4])
    } else {
        (2_000, &[1, 2, 4, 8])
    };
    let (waves, queries) = if smoke { (4, 20_000) } else { (12, 200_000) };
    println!(
        "serve_scale host: {}",
        stst_bench::host_metadata_json(reader_counts)
    );

    // Gates (untimed): the oracle, decode-free and lockstep contracts across the
    // reader grid, with churn running.
    for &readers in reader_counts {
        let run = stst_bench::serve_scale_run(n, waves, queries, readers, SEED);
        assert_eq!(
            run.mismatches, 0,
            "readers={readers}: {} of {} sampled answers diverged from direct traversal",
            run.mismatches, run.checked
        );
        assert_eq!(
            run.full_decodes, 0,
            "readers={readers}: certified packed labels must answer decode-free"
        );
        assert!(run.checked > 0 && run.epochs >= 1);
        println!(
            "serve_scale/{n}: readers={readers} {:.0} qps, {} epochs over {} churn batches, \
             {}/{} oracle-checked",
            run.qps(),
            run.epochs,
            run.batches,
            run.checked - run.mismatches,
            run.checked
        );
    }
    {
        // Lockstep: a pinned reader is indifferent to a concurrent publication.
        let g = generators::workload(n, 6.0 / n as f64, SEED);
        let mut engine = CompositionEngine::new(&g, EngineTask::Mst, EngineConfig::seeded(SEED));
        engine.run();
        let hub = ServeHub::new(StoreMode::Packed);
        hub.publish_from_engine(&engine);
        let mut reader = hub.reader().expect("published");
        let queries: Vec<Query> = {
            let mut gen = LoadGen::new(n, 0.99, QueryMix::default_mix(), SEED);
            (0..512).map(|_| gen.next_query()).collect()
        };
        let before: Vec<_> = queries.iter().map(|&q| reader.query(q)).collect();
        hub.publish_from_engine(&engine);
        assert!(reader.is_stale());
        let after: Vec<_> = queries.iter().map(|&q| reader.query(q)).collect();
        assert_eq!(before, after, "old-epoch answers moved under a publication");
    }

    let mut group = c.benchmark_group("serve_scale");
    group
        .sample_size(if smoke { 2 } else { 5 })
        .measurement_time(Duration::from_secs(if smoke { 2 } else { 10 }))
        .warm_up_time(Duration::from_millis(if smoke { 50 } else { 500 }));

    // Readers × concurrent churn: the headline sweep.
    for &readers in reader_counts {
        group.bench_with_input(
            BenchmarkId::new(&format!("churned/{n}"), format!("readers={readers}")),
            &readers,
            |b, &readers| {
                b.iter(|| {
                    black_box(stst_bench::serve_scale_run(
                        n,
                        waves.min(4),
                        queries / 4,
                        readers,
                        SEED,
                    ))
                });
            },
        );
    }

    // Query-mix sweep on one pinned reader (pure per-query cost, no churn).
    for kind in 0..QUERY_KINDS {
        group.bench_with_input(
            BenchmarkId::new(&format!("mix/{n}"), Query::kind_name(kind)),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    black_box(stst_bench::serve_mix_run(
                        n,
                        queries / 4,
                        QueryMix::only(kind),
                        SEED,
                    ))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
