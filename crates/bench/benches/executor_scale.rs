//! Executor scalability: incremental enabled-set maintenance vs the retained
//! full-rescan reference mode, on a 10k-node network.
//!
//! Two workloads, both driving `run_to_quiescence`:
//!
//! * `recovery` — the steady-state case the incremental design targets: a converged
//!   BFS layer is hit by a small batch of register corruptions and must re-stabilize.
//!   Full rescan pays `O(n·Δ)` per daemon step even though only a handful of nodes
//!   near the faults are enabled; incremental maintenance pays `O(Δ²)` per step.
//! * `from_scratch` — synchronous convergence from an arbitrary configuration, where
//!   almost every node is enabled early on (the incremental win is smaller but the
//!   absolute scale shows the executor handles 10⁴-node networks comfortably).
//!
//! The bench prints the measured `full_rescan / incremental` mean-time ratio for the
//! recovery workload; the companion differential test
//! (`tests/incremental_executor_oracle.rs`) asserts the ≥5× guard-evaluation gap
//! deterministically, so the acceptance criterion does not rest on wall-clock noise.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use stst_core::bfs::{BfsState, RootedBfs};
use stst_graph::{generators, Graph};
use stst_runtime::{ExecMode, Executor, ExecutorConfig, SchedulerKind};

const N: usize = 10_000;

fn big_graph() -> Graph {
    // ~4 extra edges per node on top of the spanning-tree backbone: Δ stays small,
    // which is exactly the regime where full rescans waste the most work.
    generators::shuffle_idents(&generators::random_sparse(N, 4 * N, 41), 41)
}

/// A converged configuration of the rooted-BFS layer on `g`.
fn converged_states(g: &Graph) -> (RootedBfs, Vec<BfsState>) {
    let algo = RootedBfs::new(g.ident(g.min_ident_node()));
    let mut exec = Executor::from_arbitrary(
        g,
        algo,
        ExecutorConfig::with_scheduler(41, SchedulerKind::Synchronous),
    );
    exec.run_to_quiescence(1_000_000).expect("BFS converges");
    (algo, exec.states())
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("executor_scale");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));

    let g = big_graph();
    let (algo, stable) = converged_states(&g);

    let mut means = [Duration::ZERO; 2];
    for (slot, mode) in [
        (0usize, ExecMode::Incremental),
        (1usize, ExecMode::FullRescan),
    ] {
        group.bench_with_input(
            BenchmarkId::new("recovery_after_32_faults", format!("{mode:?}")),
            &mode,
            |b, &mode| {
                b.iter(|| {
                    let config =
                        ExecutorConfig::with_scheduler(41, SchedulerKind::Central).with_mode(mode);
                    let mut exec = Executor::with_states(&g, algo, stable.clone(), config);
                    exec.corrupt_random_nodes(32);
                    black_box(exec.run_to_quiescence(10_000_000).unwrap())
                });
                means[slot] = b.mean();
            },
        );
    }
    if means[0] > Duration::ZERO {
        println!(
            "executor_scale/recovery_after_32_faults: full_rescan / incremental = {:.1}x",
            means[1].as_secs_f64() / means[0].as_secs_f64()
        );
    }

    group.bench_function(BenchmarkId::new("from_scratch_synchronous", N), |b| {
        b.iter(|| {
            let mut exec = Executor::from_arbitrary(
                &g,
                algo,
                ExecutorConfig::with_scheduler(7, SchedulerKind::Synchronous),
            );
            black_box(exec.run_to_quiescence(1_000_000).unwrap())
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
