//! Graph substrate for the self-stabilizing constrained-spanning-tree reproduction.
//!
//! This crate provides everything the distributed algorithms assume to exist *outside*
//! of the self-stabilizing state model:
//!
//! * the network itself ([`Graph`]): a simple connected undirected graph with distinct
//!   node identities and (optionally) distinct edge weights, exactly the assumptions of
//!   §II of Blin–Fraigniaud (ICDCS 2015);
//! * graph [`generators`] used as workloads for the experiments;
//! * rooted spanning trees encoded by parent pointers ([`Tree`]), the distributed output
//!   representation used throughout the paper;
//! * sequential *reference* algorithms used as oracles by tests and benchmarks:
//!   BFS ([`bfs`]), minimum-weight spanning trees ([`mst`]: Kruskal, Prim, Borůvka),
//!   nearest common ancestors ([`nca`]), and minimum-degree spanning trees
//!   ([`fr`]: the Fürer–Raghavachari +1-approximation and an exact search for small graphs).
//!
//! Nothing in this crate is distributed; it is the ground truth the distributed layer is
//! checked against.

pub mod bfs;
pub mod fr;
pub mod generators;
pub mod graph;
pub mod ids;
pub mod mst;
pub mod mutation;
pub mod nca;
pub mod properties;
pub mod tree;
pub mod union_find;

pub use graph::{EdgeId, Graph};
pub use ids::{Ident, NodeId, Weight};
pub use mutation::{Mutation, MutationOutcome};
pub use tree::Tree;
