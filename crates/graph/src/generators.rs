//! Graph generators used as experiment workloads.
//!
//! All generators are deterministic given their `seed`, produce *connected* graphs, and
//! leave every edge with weight 1; combine with [`randomize_weights`] or
//! [`crate::Graph::with_unique_weights`] to obtain the distinct weights assumed by the
//! MST experiments, and with [`shuffle_idents`] to decorrelate node identities from the
//! dense indices.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::graph::Graph;
use crate::ids::{Ident, NodeId, Weight};

/// The path `0 - 1 - … - (n-1)`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize) -> Graph {
    assert!(n > 0, "graphs must have at least one node");
    let edges: Vec<_> = (1..n).map(|i| (i - 1, i, 1)).collect();
    Graph::from_edges(n, &edges)
}

/// The cycle on `n ≥ 3` nodes.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3, "a ring needs at least three nodes");
    let mut edges: Vec<_> = (1..n).map(|i| (i - 1, i, 1)).collect();
    edges.push((n - 1, 0, 1));
    Graph::from_edges(n, &edges)
}

/// The star with center 0 and `n - 1` leaves.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: usize) -> Graph {
    assert!(n > 0, "graphs must have at least one node");
    let edges: Vec<_> = (1..n).map(|i| (0, i, 1)).collect();
    Graph::from_edges(n, &edges)
}

/// The complete graph on `n` nodes.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn complete(n: usize) -> Graph {
    assert!(n > 0, "graphs must have at least one node");
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            edges.push((i, j, 1));
        }
    }
    Graph::from_edges(n, &edges)
}

/// The interior (non-wrapping) edges of a `rows × cols` grid, shared by [`grid`] and
/// [`torus`].
fn grid_edges(rows: usize, cols: usize) -> Vec<(usize, usize, Weight)> {
    let at = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((at(r, c), at(r, c + 1), 1));
            }
            if r + 1 < rows {
                edges.push((at(r, c), at(r + 1, c), 1));
            }
        }
    }
    edges
}

/// The `rows × cols` grid graph.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    Graph::from_edges(rows * cols, &grid_edges(rows, cols))
}

/// The `rows × cols` torus (grid with wrap-around edges). Needs both dimensions ≥ 3 to
/// stay a simple graph.
///
/// # Panics
///
/// Panics if either dimension is `< 3`.
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(
        rows >= 3 && cols >= 3,
        "torus dimensions must be at least 3"
    );
    let at = |r: usize, c: usize| r * cols + c;
    let mut edges = grid_edges(rows, cols);
    for r in 0..rows {
        edges.push((at(r, cols - 1), at(r, 0), 1));
    }
    for c in 0..cols {
        edges.push((at(rows - 1, c), at(0, c), 1));
    }
    Graph::from_edges(rows * cols, &edges)
}

/// A uniformly random labelled tree on `n` nodes (via a random Prüfer-like attachment:
/// node `i` attaches to a uniformly random earlier node).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_tree(n: usize, seed: u64) -> Graph {
    assert!(n > 0, "graphs must have at least one node");
    let mut rng = StdRng::seed_from_u64(seed);
    let edges: Vec<_> = (1..n).map(|i| (rng.gen_range(0..i), i, 1)).collect();
    Graph::from_edges(n, &edges)
}

/// A caterpillar: a spine path of `spine` nodes, each carrying `legs` pendant leaves.
/// Worst-case-ish workload for NCA labels and degree-based potentials.
///
/// # Panics
///
/// Panics if `spine == 0`.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine > 0, "the spine must be non-empty");
    let n = spine + spine * legs;
    let mut edges: Vec<_> = (1..spine).map(|i| (i - 1, i, 1)).collect();
    let mut next = spine;
    for s in 0..spine {
        for _ in 0..legs {
            edges.push((s, next, 1));
            next += 1;
        }
    }
    Graph::from_edges(n, &edges)
}

/// A lollipop: a clique of `clique` nodes attached to a path of `tail` nodes.
/// Classic worst case for walk-based algorithms.
///
/// # Panics
///
/// Panics if `clique < 1`.
pub fn lollipop(clique: usize, tail: usize) -> Graph {
    assert!(clique >= 1, "the clique must be non-empty");
    let n = clique + tail;
    let mut edges = Vec::new();
    for i in 0..clique {
        for j in (i + 1)..clique {
            edges.push((i, j, 1));
        }
    }
    for i in 0..tail {
        let prev = if i == 0 { clique - 1 } else { clique + i - 1 };
        edges.push((prev, clique + i, 1));
    }
    Graph::from_edges(n, &edges)
}

/// An Erdős–Rényi-style random *connected* graph: a random spanning tree plus each other
/// pair independently with probability `p`.
///
/// # Panics
///
/// Panics if `n == 0` or `p` is not in `[0, 1]`.
pub fn random_connected(n: usize, p: f64, seed: u64) -> Graph {
    assert!(n > 0, "graphs must have at least one node");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::new();
    let mut present = HashSet::new();
    // Random spanning tree backbone guarantees connectivity.
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    for i in 1..n {
        let j = rng.gen_range(0..i);
        let (a, b) = (order[j].min(order[i]), order[j].max(order[i]));
        present.insert((a, b));
        edges.push((a, b, 1));
    }
    for u in 0..n {
        for v in (u + 1)..n {
            if !present.contains(&(u, v)) && rng.gen_bool(p) {
                edges.push((u, v, 1));
            }
        }
    }
    Graph::from_edges(n, &edges)
}

/// A sparse random connected graph on `n` nodes with ~`extra` non-tree edges, built in
/// `O(n + extra)` — unlike [`random_connected`], which visits all `Θ(n²)` node pairs.
/// This is the workload of the large-scale executor benches (10⁴–10⁶ nodes).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_sparse(n: usize, extra: usize, seed: u64) -> Graph {
    assert!(n > 0, "graphs must have at least one node");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n - 1 + extra);
    let mut present = HashSet::with_capacity(n - 1 + extra);
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    for i in 1..n {
        let j = rng.gen_range(0..i);
        let (a, b) = (order[j].min(order[i]), order[j].max(order[i]));
        present.insert((a, b));
        edges.push((a, b, 1));
    }
    let max_edges = n * (n - 1) / 2;
    let target = (n - 1 + extra).min(max_edges);
    // Rejection sampling stays cheap while the graph is sparse; bail out to keep the
    // generator total even when `extra` approaches the complete graph.
    let mut attempts = 0usize;
    let attempt_budget = 20 * (extra + 1);
    while edges.len() < target && attempts < attempt_budget {
        attempts += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let (a, b) = (u.min(v), u.max(v));
        if present.insert((a, b)) {
            edges.push((a, b, 1));
        }
    }
    Graph::from_edges(n, &edges)
}

/// A random connected graph with average degree approximately `avg_degree`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_with_avg_degree(n: usize, avg_degree: f64, seed: u64) -> Graph {
    assert!(n > 0, "graphs must have at least one node");
    if n == 1 {
        return Graph::new(1);
    }
    let target_edges = (avg_degree * n as f64 / 2.0).max((n - 1) as f64);
    let extra = (target_edges - (n - 1) as f64).max(0.0);
    let possible_extra = (n * (n - 1) / 2 - (n - 1)) as f64;
    let p = if possible_extra <= 0.0 {
        0.0
    } else {
        (extra / possible_extra).min(1.0)
    };
    random_connected(n, p, seed)
}

/// Replaces every edge weight with a distinct value drawn as a random permutation of
/// `1..=m` (deterministic in `seed`).
pub fn randomize_weights(graph: &Graph, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_u64);
    let mut weights: Vec<Weight> = (1..=graph.edge_count() as Weight).collect();
    weights.shuffle(&mut rng);
    let edges: Vec<_> = graph
        .edges()
        .iter()
        .enumerate()
        .map(|(i, e)| (e.u.0, e.v.0, weights[i]))
        .collect();
    let mut g = Graph::from_edges(graph.node_count(), &edges);
    g.set_idents(
        (0..graph.node_count())
            .map(|v| graph.ident(NodeId(v)))
            .collect(),
    );
    g
}

/// Replaces node identities with a random permutation of `1..=n` (deterministic in
/// `seed`), decorrelating identities from dense indices so that min-identity leader
/// election is not trivially node 0.
pub fn shuffle_idents(graph: &Graph, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1de57_u64);
    let mut ids: Vec<Ident> = (1..=graph.node_count() as Ident).collect();
    ids.shuffle(&mut rng);
    let mut g = graph.clone();
    g.set_idents(ids);
    g
}

/// The standard workload of the experiments: a random connected graph with shuffled
/// identities and distinct random weights.
pub fn workload(n: usize, p: f64, seed: u64) -> Graph {
    let g = random_connected(n, p, seed);
    let g = shuffle_idents(&g, seed.wrapping_add(1));
    randomize_weights(&g, seed.wrapping_add(2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_counts() {
        assert_eq!(path(5).edge_count(), 4);
        assert_eq!(ring(5).edge_count(), 5);
        assert_eq!(star(5).edge_count(), 4);
        assert_eq!(complete(5).edge_count(), 10);
        assert_eq!(grid(3, 4).edge_count(), 3 * 3 + 2 * 4);
        assert_eq!(torus(3, 3).edge_count(), 18);
        assert_eq!(random_tree(17, 3).edge_count(), 16);
        assert_eq!(caterpillar(4, 2).node_count(), 12);
        assert_eq!(lollipop(4, 3).node_count(), 7);
    }

    #[test]
    fn everything_is_connected() {
        for (name, g) in [
            ("path", path(8)),
            ("ring", ring(8)),
            ("star", star(8)),
            ("complete", complete(8)),
            ("grid", grid(3, 5)),
            ("torus", torus(3, 4)),
            ("random_tree", random_tree(20, 11)),
            ("caterpillar", caterpillar(5, 3)),
            ("lollipop", lollipop(5, 4)),
            ("random_connected", random_connected(20, 0.1, 42)),
            ("random_sparse", random_sparse(200, 150, 42)),
            ("avg_degree", random_with_avg_degree(30, 4.0, 42)),
            ("workload", workload(25, 0.15, 9)),
        ] {
            assert!(g.is_connected(), "{name} should be connected");
        }
    }

    #[test]
    fn generators_are_deterministic_in_seed() {
        assert_eq!(random_connected(30, 0.2, 5), random_connected(30, 0.2, 5));
        assert_ne!(random_connected(30, 0.2, 5), random_connected(30, 0.2, 6));
        assert_eq!(workload(20, 0.3, 5), workload(20, 0.3, 5));
    }

    #[test]
    fn randomized_weights_are_distinct_permutation() {
        let g = randomize_weights(&complete(6), 3);
        assert!(g.has_unique_weights());
        let mut w: Vec<_> = g.edges().iter().map(|e| e.weight).collect();
        w.sort_unstable();
        assert_eq!(w, (1..=15).collect::<Vec<_>>());
    }

    #[test]
    fn shuffled_idents_are_a_permutation() {
        let g = shuffle_idents(&path(10), 4);
        let mut ids: Vec<_> = g.nodes().map(|v| g.ident(v)).collect();
        ids.sort_unstable();
        assert_eq!(ids, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn random_sparse_hits_the_requested_edge_budget() {
        let g = random_sparse(1_000, 3_000, 9);
        assert!(g.is_connected());
        assert!(g.edge_count() >= 999, "tree backbone present");
        assert!(
            (3_500..=3_999).contains(&g.edge_count()),
            "~extra edges on top of the tree, got {}",
            g.edge_count()
        );
        assert_eq!(
            random_sparse(1_000, 3_000, 9),
            random_sparse(1_000, 3_000, 9)
        );
        // Near-complete requests stay bounded by the simple-graph limit.
        let dense = random_sparse(8, 1_000, 1);
        assert!(dense.edge_count() <= 28);
    }

    #[test]
    fn avg_degree_is_in_the_ballpark() {
        let g = random_with_avg_degree(100, 6.0, 1);
        let avg = 2.0 * g.edge_count() as f64 / g.node_count() as f64;
        assert!(
            avg > 3.0 && avg < 9.0,
            "average degree {avg} too far from 6"
        );
    }

    #[test]
    #[should_panic(expected = "at least three")]
    fn ring_needs_three_nodes() {
        let _ = ring(2);
    }
}
