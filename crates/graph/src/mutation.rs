//! First-class topology deltas: live mutations of the network.
//!
//! Self-stabilization is exactly the promise that the system recovers from *any*
//! transient change — including the topology itself: links failing, weights drifting,
//! nodes joining and leaving. This module gives [`Graph`] a batched mutation API:
//! [`Graph::apply_mutations`] applies a whole batch of [`Mutation`]s and rebuilds the
//! CSR adjacency and the per-node `(weight, ident)` port order **once**, in
//! `O(n + m + k)` for `k` edge-level mutations, instead of the `k · O(n + m)` that `k`
//! repeated [`Graph::add_edge`] calls would cost (node-level mutations additionally pay
//! an `O(m)` incident-edge sweep each — they remap the dense index space).
//!
//! The returned [`MutationOutcome`] carries the exact **dirty node set** (every node
//! whose incident edge set, incident weight, or dense index changed) plus the node
//! remap table, which is what lets the runtime executor re-seed only the affected
//! enabled-set entries and the composition engine invalidate only the touched label
//! regions (see `stst-core::engine::CompositionEngine::apply_topology`).
//!
//! # Index stability
//!
//! Edge removal uses `swap_remove` on the dense edge list: the removed [`EdgeId`] is
//! recycled for the previously-last edge. Node removal does the same to the node index
//! space. The outcome reports both effects: remapped *nodes* via
//! [`MutationOutcome::old_index`], remapped *edges* by marking the moved edge's
//! endpoints dirty (every structure that names an edge of a fragment/label stores an
//! edge incident to a dirty node, so endpoint-dirty repair re-derives it).

use std::collections::HashMap;

use crate::graph::{Edge, Graph};
use crate::ids::{Ident, NodeId, Weight};

/// One elementary topology delta. Endpoints are dense [`NodeId`]s *at the time the
/// mutation is applied within its batch* (earlier node mutations in the same batch
/// shift the index space; a node added by the batch has index `node_count()` as of its
/// `AddNode`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// Insert the edge `{u, v}` with the given weight.
    AddEdge {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
        /// Weight of the new edge.
        weight: Weight,
    },
    /// Delete the edge `{u, v}`.
    RemoveEdge {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// Re-weight the edge `{u, v}` (weight drift).
    SetWeight {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
        /// The new weight.
        weight: Weight,
    },
    /// Add an isolated node carrying `ident` (usually followed by `AddEdge`s attaching
    /// it in the same batch).
    AddNode {
        /// Identity of the joining node (must be distinct from every existing one).
        ident: Ident,
    },
    /// Remove node `v` together with all of its incident edges.
    RemoveNode {
        /// The leaving node.
        v: NodeId,
    },
}

/// What a batch of mutations did to the graph, as consumed by the incremental layers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MutationOutcome {
    /// Every surviving node whose incident edge set, incident edge weight, or dense
    /// index changed — sorted, deduplicated, in post-batch indices. Guards and labels
    /// outside the closed neighborhoods of these nodes are provably unaffected.
    pub dirty: Vec<NodeId>,
    /// Node remap table: `old_index[i]` is the pre-batch index of the node now at
    /// index `i`, or `None` for a node the batch added. The identity map when
    /// [`MutationOutcome::node_set_changed`] is `false`.
    pub old_index: Vec<Option<NodeId>>,
    /// `true` iff the batch added or removed nodes (the dense node index space was
    /// remapped).
    pub node_set_changed: bool,
}

impl Graph {
    /// Applies a batch of topology mutations, rebuilding the CSR adjacency and the
    /// per-node weight order exactly once at the end.
    ///
    /// Mutations are applied in order; endpoints refer to the index space as mutated
    /// by the earlier entries of the same batch. Connectivity is *not* enforced — the
    /// engine layer decides what to do with a severed network (report, never silently
    /// repair).
    ///
    /// # Panics
    ///
    /// Panics on self-loops, out-of-range endpoints, duplicate edges, removing or
    /// re-weighting a missing edge, duplicate identities, or removing the last node.
    pub fn apply_mutations(&mut self, mutations: &[Mutation]) -> MutationOutcome {
        // Position map (u, v) → dense edge index, maintained across swap_removes so
        // lookups stay O(1) while the CSR is stale.
        let mut pos: HashMap<(NodeId, NodeId), usize> = self
            .edges
            .iter()
            .enumerate()
            .map(|(i, e)| ((e.u, e.v), i))
            .collect();
        let key = |u: NodeId, v: NodeId| if u < v { (u, v) } else { (v, u) };
        let mut dirty: Vec<NodeId> = Vec::new();
        let mut old_index: Vec<Option<NodeId>> =
            (0..self.node_count()).map(|i| Some(NodeId(i))).collect();
        let mut node_set_changed = false;
        for &mutation in mutations {
            match mutation {
                Mutation::AddEdge { u, v, weight } => {
                    assert!(u != v, "self-loops are not allowed");
                    assert!(
                        u.0 < self.node_count() && v.0 < self.node_count(),
                        "endpoint out of range"
                    );
                    let (a, b) = key(u, v);
                    assert!(
                        !pos.contains_key(&(a, b)),
                        "duplicate edge between {u:?} and {v:?}"
                    );
                    pos.insert((a, b), self.edges.len());
                    self.edges.push(Edge { u: a, v: b, weight });
                    dirty.push(u);
                    dirty.push(v);
                }
                Mutation::RemoveEdge { u, v } => {
                    let idx = pos
                        .remove(&key(u, v))
                        .unwrap_or_else(|| panic!("no edge between {u:?} and {v:?} to remove"));
                    self.remove_edge_at(idx, &mut pos, &mut dirty);
                }
                Mutation::SetWeight { u, v, weight } => {
                    let idx = *pos
                        .get(&key(u, v))
                        .unwrap_or_else(|| panic!("no edge between {u:?} and {v:?} to re-weight"));
                    self.edges[idx].weight = weight;
                    dirty.push(u);
                    dirty.push(v);
                }
                Mutation::AddNode { ident } => {
                    assert!(
                        !self.ids.contains(&ident),
                        "identities must be distinct (ident {ident} already present)"
                    );
                    dirty.push(NodeId(self.ids.len()));
                    self.ids.push(ident);
                    old_index.push(None);
                    node_set_changed = true;
                }
                Mutation::RemoveNode { v } => {
                    assert!(v.0 < self.node_count(), "node out of range");
                    assert!(self.node_count() > 1, "cannot remove the last node");
                    // Drop every incident edge in one retain pass (the CSR is stale
                    // mid-batch, so adjacency cannot be trusted). Node churn remaps
                    // the edge index space wholesale — consumers rebuild on
                    // `node_set_changed`, so no per-edge recycling bookkeeping is
                    // needed; the position map is rebuilt below.
                    self.edges.retain(|e| {
                        if e.touches(v) {
                            dirty.push(e.u);
                            dirty.push(e.v);
                            false
                        } else {
                            true
                        }
                    });
                    // Recycle the last dense index for `v` (swap_remove semantics).
                    let last = NodeId(self.ids.len() - 1);
                    self.ids.swap_remove(v.0);
                    old_index.swap_remove(v.0);
                    node_set_changed = true;
                    if v != last {
                        // Remap edge endpoints, re-normalizing the `u < v` order of
                        // remapped records.
                        for e in self.edges.iter_mut() {
                            if e.touches(last) {
                                let (mut a, mut b) = (e.u, e.v);
                                if a == last {
                                    a = v;
                                }
                                if b == last {
                                    b = v;
                                }
                                let (a, b) = if a < b { (a, b) } else { (b, a) };
                                e.u = a;
                                e.v = b;
                            }
                        }
                        for d in dirty.iter_mut() {
                            if *d == last {
                                *d = v;
                            }
                        }
                    }
                    dirty.retain(|&d| d != last);
                    pos.clear();
                    pos.extend(self.edges.iter().enumerate().map(|(i, e)| ((e.u, e.v), i)));
                }
            }
        }
        self.rebuild_csr();
        let n = self.node_count();
        dirty.retain(|d| d.0 < n);
        dirty.sort_unstable();
        dirty.dedup();
        MutationOutcome {
            dirty,
            old_index,
            node_set_changed,
        }
    }

    /// Swap-removes the edge at `idx`, marking the endpoints of both the removed edge
    /// and the edge recycled into its slot dirty, and fixing the recycled edge's
    /// position-map entry.
    fn remove_edge_at(
        &mut self,
        idx: usize,
        pos: &mut HashMap<(NodeId, NodeId), usize>,
        dirty: &mut Vec<NodeId>,
    ) {
        let removed = self.edges.swap_remove(idx);
        dirty.push(removed.u);
        dirty.push(removed.v);
        if idx < self.edges.len() {
            let moved = self.edges[idx];
            pos.insert((moved.u, moved.v), idx);
            // The moved edge changed its EdgeId: anything naming it by index must be
            // re-derived, which endpoint-dirty repair guarantees.
            dirty.push(moved.u);
            dirty.push(moved.v);
        }
    }

    /// Deletes the edge `{u, v}` (single-mutation convenience over
    /// [`Graph::apply_mutations`]).
    ///
    /// # Panics
    ///
    /// Panics if the edge does not exist.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> MutationOutcome {
        self.apply_mutations(&[Mutation::RemoveEdge { u, v }])
    }

    /// Re-weights the edge `{u, v}` (single-mutation convenience).
    ///
    /// # Panics
    ///
    /// Panics if the edge does not exist.
    pub fn set_weight(&mut self, u: NodeId, v: NodeId, weight: Weight) -> MutationOutcome {
        self.apply_mutations(&[Mutation::SetWeight { u, v, weight }])
    }

    /// Adds an isolated node carrying `ident` and returns its dense index.
    ///
    /// # Panics
    ///
    /// Panics if `ident` is already assigned.
    pub fn add_node(&mut self, ident: Ident) -> NodeId {
        self.apply_mutations(&[Mutation::AddNode { ident }]);
        NodeId(self.node_count() - 1)
    }

    /// Removes node `v` with all of its incident edges. The previously-last node is
    /// recycled into index `v` (see [`MutationOutcome::old_index`]).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or the last remaining node.
    pub fn remove_node(&mut self, v: NodeId) -> MutationOutcome {
        self.apply_mutations(&[Mutation::RemoveNode { v }])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeId;

    fn diamond() -> Graph {
        // 0-1-3, 0-2-3 plus the chord 1-2.
        Graph::from_edges(4, &[(0, 1, 1), (0, 2, 2), (1, 3, 3), (2, 3, 4), (1, 2, 5)])
    }

    /// Graphs agree as values *and* in their derived CSR views.
    fn assert_same(a: &Graph, b: &Graph) {
        assert_eq!(a, b);
        for v in a.nodes() {
            assert_eq!(a.neighbors(v), b.neighbors(v));
            assert_eq!(a.neighbor_order_by_weight(v), b.neighbor_order_by_weight(v));
        }
    }

    #[test]
    fn batched_mutations_match_bulk_reconstruction() {
        let mut g = diamond();
        let outcome = g.apply_mutations(&[
            Mutation::RemoveEdge {
                u: NodeId(1),
                v: NodeId(2),
            },
            Mutation::SetWeight {
                u: NodeId(0),
                v: NodeId(2),
                weight: 9,
            },
            Mutation::AddEdge {
                u: NodeId(0),
                v: NodeId(3),
                weight: 6,
            },
        ]);
        assert!(!outcome.node_set_changed);
        assert_eq!(outcome.old_index.len(), 4);
        assert!(outcome
            .old_index
            .iter()
            .enumerate()
            .all(|(i, o)| *o == Some(NodeId(i))));
        // Edge 1-2 (index 4) was last, so no remap; dirty = all touched endpoints.
        assert_eq!(
            outcome.dirty,
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
        let expected =
            Graph::from_edges(4, &[(0, 1, 1), (0, 2, 9), (1, 3, 3), (2, 3, 4), (0, 3, 6)]);
        assert_same(&g, &expected);
    }

    #[test]
    fn edge_removal_recycles_the_last_edge_id_and_marks_it_dirty() {
        let mut g = diamond();
        // Removing edge 0 moves edge 4 (1-2) into slot 0.
        let outcome = g.remove_edge(NodeId(0), NodeId(1));
        assert_eq!(g.edge_count(), 4);
        assert_eq!(
            g.edge(EdgeId(0)),
            &Edge {
                u: NodeId(1),
                v: NodeId(2),
                weight: 5
            }
        );
        assert_eq!(
            outcome.dirty,
            vec![NodeId(0), NodeId(1), NodeId(2)],
            "endpoints of the removed and of the recycled edge"
        );
        assert!(g.edge_between(NodeId(0), NodeId(1)).is_none());
        assert!(g.edge_between(NodeId(1), NodeId(2)).is_some());
    }

    #[test]
    fn node_join_and_leave_remap_the_index_space() {
        let mut g = diamond(); // idents 1..=4
        let joined = g.add_node(99);
        assert_eq!(joined, NodeId(4));
        let outcome = g.apply_mutations(&[
            Mutation::AddEdge {
                u: NodeId(4),
                v: NodeId(0),
                weight: 10,
            },
            Mutation::RemoveNode { v: NodeId(1) },
        ]);
        assert!(outcome.node_set_changed);
        // Node 4 (ident 99) was recycled into slot 1.
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.ident(NodeId(1)), 99);
        // Relative to the start of the *second* batch, node 4 (the joiner of the first
        // batch) already existed; it is reported as remapped, not as new.
        assert_eq!(
            outcome.old_index,
            vec![
                Some(NodeId(0)),
                Some(NodeId(4)),
                Some(NodeId(2)),
                Some(NodeId(3))
            ]
        );
        // The leaver's old neighbors and the remapped node are dirty.
        assert_eq!(
            outcome.dirty,
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
        // All edges are consistent with the remapped indices (edge order reflects the
        // swap_remove recycling, so compare the multiset of endpoint/weight triples).
        let mut triples: Vec<_> = g.edges().iter().map(|e| (e.u, e.v, e.weight)).collect();
        triples.sort_unstable();
        assert_eq!(
            triples,
            vec![
                (NodeId(0), NodeId(1), 10),
                (NodeId(0), NodeId(2), 2),
                (NodeId(2), NodeId(3), 4),
            ]
        );
        assert!(g.is_connected());
    }

    #[test]
    fn removal_can_disconnect_and_the_graph_reports_it() {
        let mut g = Graph::from_edges(4, &[(0, 1, 1), (1, 2, 2), (2, 3, 3)]);
        assert_eq!(g.component_count(), 1);
        g.remove_edge(NodeId(1), NodeId(2));
        assert!(!g.is_connected());
        assert_eq!(g.component_count(), 2);
    }

    #[test]
    #[should_panic(expected = "no edge between")]
    fn removing_a_missing_edge_panics() {
        let mut g = diamond();
        g.remove_edge(NodeId(0), NodeId(3));
    }

    #[test]
    #[should_panic(expected = "identities must be distinct")]
    fn duplicate_join_ident_panics() {
        let mut g = diamond();
        g.add_node(3);
    }

    #[test]
    fn add_edge_still_matches_bulk_construction() {
        // The historical contract of `add_edge` (now a wrapper over the batched path):
        // edge-by-edge insertion agrees with bulk CSR construction exactly.
        let edges = [(0, 1, 5), (1, 2, 3), (0, 2, 9), (2, 3, 1), (1, 3, 7)];
        let bulk = Graph::from_edges(4, &edges);
        let mut incremental = Graph::new(4);
        for &(u, v, w) in &edges {
            incremental.add_edge(NodeId(u), NodeId(v), w);
        }
        assert_same(&bulk, &incremental);
    }
}
