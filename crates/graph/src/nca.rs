//! Nearest-common-ancestor oracle (Euler tour + sparse table).
//!
//! This is the sequential ground truth against which the distributed NCA *labeling*
//! scheme of the paper (§V, after Alstrup–Gavoille–Kaplan–Rauhe) is validated.

use crate::ids::NodeId;
use crate::tree::Tree;

/// An NCA oracle built once per tree; queries run in `O(1)` after `O(n log n)` setup.
#[derive(Clone, Debug)]
pub struct NcaOracle {
    /// Euler tour of the tree (node visited at each tour step).
    tour: Vec<NodeId>,
    /// Depth of the node at each tour step.
    tour_depth: Vec<usize>,
    /// First occurrence of each node in the tour.
    first: Vec<usize>,
    /// Sparse table of minima over `tour_depth` (stores tour indices).
    table: Vec<Vec<usize>>,
}

impl NcaOracle {
    /// Builds the oracle for `tree`.
    pub fn new(tree: &Tree) -> Self {
        let n = tree.node_count();
        let children = tree.children_table();
        let depths = tree.depths();
        let mut tour = Vec::with_capacity(2 * n);
        let mut tour_depth = Vec::with_capacity(2 * n);
        let mut first = vec![usize::MAX; n];
        // Iterative Euler tour to avoid recursion limits on path-like trees.
        enum Frame {
            Enter(NodeId),
            Revisit(NodeId),
        }
        let mut stack = vec![Frame::Enter(tree.root())];
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Enter(v) => {
                    if first[v.0] == usize::MAX {
                        first[v.0] = tour.len();
                    }
                    tour.push(v);
                    tour_depth.push(depths[v.0]);
                    // Visit children; after each child, revisit v.
                    for &c in children[v.0].iter().rev() {
                        stack.push(Frame::Revisit(v));
                        stack.push(Frame::Enter(c));
                    }
                }
                Frame::Revisit(v) => {
                    tour.push(v);
                    tour_depth.push(depths[v.0]);
                }
            }
        }
        // Sparse table over tour_depth.
        let m = tour.len();
        let levels = if m <= 1 {
            1
        } else {
            (usize::BITS - (m - 1).leading_zeros()) as usize + 1
        };
        let mut table = Vec::with_capacity(levels);
        table.push((0..m).collect::<Vec<usize>>());
        let mut len = 1usize;
        for l in 1..levels {
            let prev = &table[l - 1];
            let mut row = Vec::with_capacity(m.saturating_sub(2 * len) + 1);
            for i in 0..m.saturating_sub(2 * len - 1) {
                let a = prev[i];
                let b = prev[i + len];
                row.push(if tour_depth[a] <= tour_depth[b] { a } else { b });
            }
            table.push(row);
            len *= 2;
        }
        NcaOracle {
            tour,
            tour_depth,
            first,
            table,
        }
    }

    /// The nearest common ancestor of `u` and `v`.
    pub fn nca(&self, u: NodeId, v: NodeId) -> NodeId {
        let (mut a, mut b) = (self.first[u.0], self.first[v.0]);
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        let span = b - a + 1;
        let level = if span <= 1 {
            0
        } else {
            (usize::BITS - 1 - span.leading_zeros()) as usize
        };
        let len = 1usize << level;
        let left = self.table[level][a];
        let right = self.table[level][b + 1 - len];
        let idx = if self.tour_depth[left] <= self.tour_depth[right] {
            left
        } else {
            right
        };
        self.tour[idx]
    }

    /// `true` if `a` is an ancestor of `v` (every node is an ancestor of itself).
    pub fn is_ancestor(&self, a: NodeId, v: NodeId) -> bool {
        self.nca(a, v) == a
    }

    /// The hop distance between `u` and `v` in the tree.
    pub fn tree_distance(&self, tree: &Tree, u: NodeId, v: NodeId) -> usize {
        let depths = tree.depths();
        let w = self.nca(u, v);
        depths[u.0] + depths[v.0] - 2 * depths[w.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::graph::Graph;

    fn random_tree_as_tree(n: usize, seed: u64) -> (Graph, Tree) {
        let g = generators::random_tree(n, seed);
        let t = crate::bfs::bfs_tree(&g, NodeId(0));
        (g, t)
    }

    #[test]
    fn matches_naive_nca_on_random_trees() {
        for seed in 0..6 {
            let (_, t) = random_tree_as_tree(40, seed);
            let oracle = NcaOracle::new(&t);
            for u in t.nodes() {
                for v in t.nodes() {
                    assert_eq!(oracle.nca(u, v), t.nca(u, v), "seed {seed}, pair {u} {v}");
                }
            }
        }
    }

    #[test]
    fn works_on_a_path_and_a_star() {
        let path = Tree::path(50);
        let oracle = NcaOracle::new(&path);
        assert_eq!(oracle.nca(NodeId(30), NodeId(45)), NodeId(30));
        assert_eq!(oracle.nca(NodeId(49), NodeId(0)), NodeId(0));
        assert!(oracle.is_ancestor(NodeId(10), NodeId(40)));
        assert!(!oracle.is_ancestor(NodeId(40), NodeId(10)));

        let star = Tree::from_parents(
            std::iter::once(None)
                .chain((1..20).map(|_| Some(NodeId(0))))
                .collect(),
        )
        .unwrap();
        let oracle = NcaOracle::new(&star);
        assert_eq!(oracle.nca(NodeId(3), NodeId(17)), NodeId(0));
        assert_eq!(oracle.nca(NodeId(3), NodeId(3)), NodeId(3));
    }

    #[test]
    fn tree_distance_matches_path_length() {
        let (_, t) = random_tree_as_tree(30, 9);
        let oracle = NcaOracle::new(&t);
        for u in t.nodes() {
            for v in t.nodes() {
                let expected = t.tree_path(u, v).len() - 1;
                assert_eq!(oracle.tree_distance(&t, u, v), expected);
            }
        }
    }

    #[test]
    fn singleton_tree() {
        let t = Tree::from_parents(vec![None]).unwrap();
        let oracle = NcaOracle::new(&t);
        assert_eq!(oracle.nca(NodeId(0), NodeId(0)), NodeId(0));
    }
}
