//! Identifiers used throughout the workspace.
//!
//! A [`NodeId`] is a *dense index* into a [`crate::Graph`]'s node table — it is a
//! simulation artefact and is never read by a distributed algorithm. An [`Ident`] is
//! the node's *identity* in the sense of the paper: a distinct, incorruptible constant
//! known to the node itself and readable by its neighbors. [`Weight`]s play the same
//! role for edges.

use std::fmt;

/// Dense index of a node inside a [`crate::Graph`] (0-based).
///
/// `NodeId` is an addressing convenience of the simulator; distributed algorithms must
/// only ever compare the associated [`Ident`]s and [`Weight`]s, which are the
/// incorruptible constants of the model.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Returns the underlying dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(value: usize) -> Self {
        NodeId(value)
    }
}

/// A node identity: a distinct, incorruptible constant in `{1, …, n^c}` (paper §II-A).
///
/// Identities are the only values distributed algorithms may use to break symmetry
/// (e.g. electing the minimum-identity node as root).
pub type Ident = u64;

/// An edge weight. The paper assumes all weights are pairwise distinct and representable
/// on `O(log n)` bits; [`crate::Graph::with_unique_weights`] enforces distinctness.
pub type Weight = u64;

/// Number of bits needed to store a value of `x` (at least 1).
///
/// Used for the space-accounting of registers and labels: a variable holding values up
/// to `x` costs `bits_for(x)` bits.
#[inline]
pub fn bits_for(x: u64) -> usize {
    if x == 0 {
        1
    } else {
        (64 - x.leading_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from(7usize);
        assert_eq!(id.index(), 7);
        assert_eq!(format!("{id}"), "n7");
        assert_eq!(format!("{id:?}"), "n7");
    }

    #[test]
    fn node_id_ordering_follows_index() {
        assert!(NodeId(3) < NodeId(10));
        assert_eq!(NodeId(4), NodeId(4));
    }

    #[test]
    fn bits_for_small_values() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
    }

    #[test]
    fn bits_for_large_values() {
        assert_eq!(bits_for(u64::MAX), 64);
        assert_eq!(bits_for(1 << 33), 34);
    }

    #[test]
    fn bits_for_is_exact_at_every_power_of_two_boundary() {
        // The codec layer derives every fixed field width from `bits_for`, so the
        // boundary behavior (2^k − 1 fits in k bits, 2^k needs k + 1) is pinned here
        // for the whole width range — including the bits_for(0) = 1 convention the
        // escape-coded integer fields rely on.
        assert_eq!(bits_for(0), 1);
        for k in 1..64u32 {
            assert_eq!(bits_for((1u64 << k) - 1), k as usize, "2^{k} - 1");
            assert_eq!(bits_for(1u64 << k), k as usize + 1, "2^{k}");
        }
        assert_eq!(bits_for((1u64 << 63) | 1), 64);
    }
}
