//! Sequential breadth-first-search reference: distances, BFS trees, and the BFS-tree
//! legality predicate used by experiment E1.

use std::collections::VecDeque;

use crate::graph::Graph;
use crate::ids::NodeId;
use crate::tree::Tree;

/// Hop distances from `root` to every node.
///
/// # Panics
///
/// Panics if the graph is not connected (some node would have no distance).
pub fn distances_from(graph: &Graph, root: NodeId) -> Vec<usize> {
    let n = graph.node_count();
    let mut dist = vec![usize::MAX; n];
    dist[root.0] = 0;
    let mut queue = VecDeque::from([root]);
    while let Some(v) = queue.pop_front() {
        for &(w, _) in graph.neighbors(v) {
            if dist[w.0] == usize::MAX {
                dist[w.0] = dist[v.0] + 1;
                queue.push_back(w);
            }
        }
    }
    assert!(
        dist.iter().all(|&d| d != usize::MAX),
        "BFS distances are only defined on connected graphs"
    );
    dist
}

/// A BFS tree rooted at `root` (parents chosen in neighbor order).
pub fn bfs_tree(graph: &Graph, root: NodeId) -> Tree {
    let n = graph.node_count();
    let mut parents: Vec<Option<NodeId>> = vec![None; n];
    let mut seen = vec![false; n];
    seen[root.0] = true;
    let mut queue = VecDeque::from([root]);
    while let Some(v) = queue.pop_front() {
        for &(w, _) in graph.neighbors(v) {
            if !seen[w.0] {
                seen[w.0] = true;
                parents[w.0] = Some(v);
                queue.push_back(w);
            }
        }
    }
    assert!(
        seen.iter().all(|&s| s),
        "BFS trees are only defined on connected graphs"
    );
    Tree::from_parents(parents).expect("BFS produces a valid tree")
}

/// `true` if `tree` is a BFS tree of `graph` rooted at `tree.root()`:
/// every node's tree depth equals its hop distance from the root in the graph.
pub fn is_bfs_tree(graph: &Graph, tree: &Tree) -> bool {
    if !tree.is_spanning_tree_of(graph) {
        return false;
    }
    let dist = distances_from(graph, tree.root());
    tree.depths()
        .into_iter()
        .enumerate()
        .all(|(v, d)| d == dist[v])
}

/// The BFS potential of the paper's §III example: `φ(T) = Σ_u |depth_T(u) − dist_G(u, r)|`.
/// Zero exactly when `T` is a BFS tree.
pub fn bfs_potential(graph: &Graph, tree: &Tree) -> u64 {
    let dist = distances_from(graph, tree.root());
    tree.depths()
        .into_iter()
        .enumerate()
        .map(|(v, d)| (d as i64 - dist[v] as i64).unsigned_abs())
        .sum()
}

/// Eccentricity of `v`: the maximum hop distance from `v` to any node.
pub fn eccentricity(graph: &Graph, v: NodeId) -> usize {
    distances_from(graph, v).into_iter().max().unwrap_or(0)
}

/// Diameter of the graph (maximum eccentricity). Quadratic; intended for workloads.
pub fn diameter(graph: &Graph) -> usize {
    graph
        .nodes()
        .map(|v| eccentricity(graph, v))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn distances_on_a_ring() {
        let g = generators::ring(6);
        let d = distances_from(&g, NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn bfs_tree_is_a_bfs_tree() {
        for seed in 0..5 {
            let g = generators::random_connected(40, 0.1, seed);
            let t = bfs_tree(&g, NodeId(3));
            assert!(is_bfs_tree(&g, &t));
            assert_eq!(bfs_potential(&g, &t), 0);
        }
    }

    #[test]
    fn non_bfs_tree_has_positive_potential() {
        // On a ring, the path tree rooted at 0 is not a BFS tree (node n-1 is at depth
        // n-1 instead of distance 1).
        let g = generators::ring(8);
        let t = Tree::path(8);
        assert!(!is_bfs_tree(&g, &t));
        assert!(bfs_potential(&g, &t) > 0);
    }

    #[test]
    fn potential_is_zero_iff_bfs() {
        let g = generators::grid(3, 4);
        let t = bfs_tree(&g, NodeId(5));
        assert_eq!(bfs_potential(&g, &t), 0);
    }

    #[test]
    fn diameter_and_eccentricity() {
        assert_eq!(diameter(&generators::path(7)), 6);
        assert_eq!(diameter(&generators::ring(8)), 4);
        assert_eq!(diameter(&generators::complete(5)), 1);
        assert_eq!(eccentricity(&generators::path(7), NodeId(3)), 3);
        assert_eq!(diameter(&generators::grid(3, 3)), 4);
    }

    #[test]
    fn foreign_tree_is_rejected() {
        // A spanning tree of the complete graph that is not a subgraph of the ring.
        let g = generators::ring(5);
        let star_parents = vec![
            None,
            Some(NodeId(0)),
            Some(NodeId(0)),
            Some(NodeId(0)),
            Some(NodeId(0)),
        ];
        let t = Tree::from_parents(star_parents).unwrap();
        assert!(!is_bfs_tree(&g, &t));
    }
}
