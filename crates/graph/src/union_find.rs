//! Disjoint-set forest (union–find) with union by rank and path compression.
//!
//! Used by the sequential Kruskal/Borůvka oracles and by the Fürer–Raghavachari
//! fragment bookkeeping.

/// A disjoint-set forest over `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` if the structure has no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently represented.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Representative of the set containing `x`, with path compression.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`. Returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.components -= 1;
        true
    }

    /// `true` if `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_unions() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.len(), 5);
        assert!(!uf.is_empty());
        assert_eq!(uf.component_count(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.component_count(), 3);
        assert!(uf.same(0, 1));
        assert!(!uf.same(0, 2));
        assert!(uf.union(1, 3));
        assert!(uf.same(0, 2));
        assert_eq!(uf.component_count(), 2);
    }

    #[test]
    fn path_compression_keeps_answers_stable() {
        let mut uf = UnionFind::new(64);
        for i in 0..63 {
            uf.union(i, i + 1);
        }
        let root = uf.find(0);
        for i in 0..64 {
            assert_eq!(uf.find(i), root);
        }
        assert_eq!(uf.component_count(), 1);
    }

    #[test]
    fn empty_structure() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.component_count(), 0);
    }
}
