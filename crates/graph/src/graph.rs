//! The network model: a simple connected undirected graph with distinct node identities
//! and (optionally) distinct edge weights.

use std::collections::HashSet;
use std::fmt;

use crate::ids::{bits_for, Ident, NodeId, Weight};

/// Dense index of an edge inside a [`Graph`] (0-based).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub usize);

impl EdgeId {
    /// Returns the underlying dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An undirected edge record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    /// One endpoint (always the smaller `NodeId`).
    pub u: NodeId,
    /// The other endpoint (always the larger `NodeId`).
    pub v: NodeId,
    /// The (incorruptible) weight of the edge.
    pub weight: Weight,
}

impl Edge {
    /// Returns the endpoint different from `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint of the edge.
    pub fn other(&self, x: NodeId) -> NodeId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!("{x:?} is not an endpoint of edge {self:?}")
        }
    }

    /// Returns `true` if `x` is an endpoint of this edge.
    pub fn touches(&self, x: NodeId) -> bool {
        self.u == x || self.v == x
    }
}

/// A simple undirected graph with stable dense node indices, distinct node identities
/// and edge weights.
///
/// This is the *network* of the state model (paper §II-A): node identities and incident
/// edge weights are incorruptible constants; everything a distributed algorithm stores
/// lives in the runtime crate's registers instead.
///
/// Adjacency is stored in **CSR form** (compressed sparse row): one flat `(neighbor,
/// edge)` array plus per-node offsets. Neighbor iteration is therefore a contiguous
/// slice read — cache-linear and allocation-free — which is what makes the runtime
/// crate's per-guard-evaluation views cheap. Bulk construction ([`Graph::from_edges`]
/// and the `generators`) builds the CSR in `O(n + m)`; the incremental
/// [`Graph::add_edge`] keeps the CSR exact by in-place insertion and costs `O(n + m)`
/// *per call*, so it is meant for small, hand-built test graphs only.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    pub(crate) ids: Vec<Ident>,
    pub(crate) edges: Vec<Edge>,
    /// CSR offsets: node `v`'s neighbors live at `adj[offsets[v] .. offsets[v + 1]]`.
    offsets: Vec<u32>,
    /// Flat adjacency array, grouped by node, insertion order within each group.
    adj: Vec<(NodeId, EdgeId)>,
    /// Per-node port permutation sorting the adjacency slice by `(weight, neighbor
    /// ident)`: entry `offsets[v] + k` is the *local* index (into `neighbors(v)`) of
    /// `v`'s `k`-th lightest incident edge. Weights and identities are incorruptible
    /// constants, so this is computed once per CSR rebuild — "lightest incident edge"
    /// rules (the MST hot loop) read it instead of sorting per guard evaluation.
    adj_order: Vec<u32>,
}

impl Graph {
    /// Creates a graph with `n` nodes, no edges, and the default identity assignment
    /// `ident(v) = v + 1`.
    pub fn new(n: usize) -> Self {
        Graph {
            ids: (0..n as u64).map(|i| i + 1).collect(),
            edges: Vec::new(),
            offsets: vec![0; n + 1],
            adj: Vec::new(),
            adj_order: Vec::new(),
        }
    }

    /// Creates a graph with `n` nodes and the given edge list `(u, v, weight)`,
    /// building the CSR adjacency in bulk (`O(n + m)`).
    ///
    /// # Panics
    ///
    /// Panics if an edge is a self-loop, references an out-of-range node, or duplicates
    /// an existing edge.
    pub fn from_edges(n: usize, edges: &[(usize, usize, Weight)]) -> Self {
        let mut records = Vec::with_capacity(edges.len());
        let mut seen = HashSet::with_capacity(edges.len());
        for &(u, v, w) in edges {
            assert!(u != v, "self-loops are not allowed");
            assert!(u < n && v < n, "endpoint out of range");
            let (a, b) = if u < v { (u, v) } else { (v, u) };
            assert!(
                seen.insert((a, b)),
                "duplicate edge between {:?} and {:?}",
                NodeId(u),
                NodeId(v)
            );
            records.push(Edge {
                u: NodeId(a),
                v: NodeId(b),
                weight: w,
            });
        }
        let mut g = Graph::new(n);
        g.edges = records;
        g.rebuild_csr();
        g
    }

    /// Rebuilds the CSR arrays from `self.edges` in `O(n + m)`, preserving, for every
    /// node, the order in which its incident edges appear in the edge list.
    pub(crate) fn rebuild_csr(&mut self) {
        let n = self.node_count();
        self.offsets.clear();
        self.offsets.resize(n + 1, 0);
        for e in &self.edges {
            self.offsets[e.u.0 + 1] += 1;
            self.offsets[e.v.0 + 1] += 1;
        }
        for i in 0..n {
            self.offsets[i + 1] += self.offsets[i];
        }
        let mut cursor = self.offsets.clone();
        self.adj.clear();
        self.adj
            .resize(2 * self.edges.len(), (NodeId(0), EdgeId(0)));
        for (i, e) in self.edges.iter().enumerate() {
            let id = EdgeId(i);
            self.adj[cursor[e.u.0] as usize] = (e.v, id);
            cursor[e.u.0] += 1;
            self.adj[cursor[e.v.0] as usize] = (e.u, id);
            cursor[e.v.0] += 1;
        }
        self.rebuild_weight_order();
    }

    /// Recomputes the per-node weight-order permutation from the current CSR, weights
    /// and identities (`O(m log Δ)`). Called whenever any of those change.
    fn rebuild_weight_order(&mut self) {
        let n = self.node_count();
        let mut order = std::mem::take(&mut self.adj_order);
        order.clear();
        order.resize(self.adj.len(), 0);
        for v in 0..n {
            let range = self.offsets[v] as usize..self.offsets[v + 1] as usize;
            let slice = &self.adj[range.clone()];
            let sub = &mut order[range];
            for (k, slot) in sub.iter_mut().enumerate() {
                *slot = k as u32;
            }
            sub.sort_by_key(|&k| {
                let (w, e) = slice[k as usize];
                (self.edges[e.0].weight, self.ids[w.0])
            });
        }
        self.adj_order = order;
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.ids.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterator over all node indices.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId)
    }

    /// Iterator over all edge indices.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edge_count()).map(EdgeId)
    }

    /// All edge records.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The edge record for `e`.
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.0]
    }

    /// The identity of node `v` (an incorruptible constant of the model).
    pub fn ident(&self, v: NodeId) -> Ident {
        self.ids[v.0]
    }

    /// The node carrying identity `id`, if any.
    pub fn node_with_ident(&self, id: Ident) -> Option<NodeId> {
        self.ids.iter().position(|&x| x == id).map(NodeId)
    }

    /// The node with the minimum identity. This is the canonical root elected by the
    /// leader-election layer.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no nodes.
    pub fn min_ident_node(&self) -> NodeId {
        self.nodes()
            .min_by_key(|&v| self.ident(v))
            .expect("graph has at least one node")
    }

    /// Overrides the identity assignment. Identities must be pairwise distinct.
    ///
    /// # Panics
    ///
    /// Panics if `ids.len() != n` or identities are not pairwise distinct.
    pub fn set_idents(&mut self, ids: Vec<Ident>) {
        assert_eq!(ids.len(), self.node_count(), "one identity per node");
        let distinct: HashSet<_> = ids.iter().collect();
        assert_eq!(distinct.len(), ids.len(), "identities must be distinct");
        self.ids = ids;
        // Identities break weight ties in the per-node weight order.
        self.rebuild_weight_order();
    }

    /// Adds an undirected edge and returns its [`EdgeId`].
    ///
    /// Thin wrapper over the batched topology-delta path
    /// ([`Graph::apply_mutations`]), so each call rebuilds the CSR and costs
    /// `O(n + m)`; use [`Graph::from_edges`] (or a generator) when building whole
    /// graphs, and batch mutations when applying churn.
    ///
    /// # Panics
    ///
    /// Panics on self-loops, out-of-range endpoints, or duplicate edges.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, weight: Weight) -> EdgeId {
        self.apply_mutations(&[crate::mutation::Mutation::AddEdge { u, v, weight }]);
        EdgeId(self.edges.len() - 1)
    }

    /// Neighbors of `v` with the connecting edge ids, in insertion order — a borrowed
    /// contiguous CSR slice, so iteration is cache-linear and allocation-free.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        &self.adj[self.offsets[v.0] as usize..self.offsets[v.0 + 1] as usize]
    }

    /// Degree of `v` in the graph.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v.0 + 1] - self.offsets[v.0]) as usize
    }

    /// Port permutation of `v`'s adjacency slice in increasing `(weight, neighbor
    /// ident)` order: entry `k` is the local index into [`Graph::neighbors`]`(v)` of
    /// `v`'s `k`-th lightest incident edge. Precomputed at CSR (re)build time, so
    /// "lightest incident edge" rules pay no per-call sort or allocation.
    #[inline]
    pub fn neighbor_order_by_weight(&self, v: NodeId) -> &[u32] {
        &self.adj_order[self.offsets[v.0] as usize..self.offsets[v.0 + 1] as usize]
    }

    /// The edge between `u` and `v`, if present.
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.neighbors(u)
            .iter()
            .find(|(w, _)| *w == v)
            .map(|&(_, e)| e)
    }

    /// Weight of the edge `e`.
    pub fn weight(&self, e: EdgeId) -> Weight {
        self.edges[e.0].weight
    }

    /// Returns a copy of the graph where edge weights have been replaced by a permutation
    /// of `1..=m` (pairwise distinct, as the paper assumes w.l.o.g.), chosen
    /// deterministically from `seed` while preserving the *relative order* of the
    /// original weights (ties broken by edge id).
    pub fn with_unique_weights(&self, seed: u64) -> Graph {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut g = self.clone();
        let mut order: Vec<usize> = (0..g.edges.len()).collect();
        // Stable ordering by (weight, id) keeps intent of caller-provided weights,
        // then a seeded shuffle breaks ties among equal weights reproducibly.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        order.sort_by_key(|&i| (g.edges[i].weight, i));
        for (rank, &i) in order.iter().enumerate() {
            g.edges[i].weight = rank as Weight + 1;
        }
        g.rebuild_weight_order();
        g
    }

    /// `true` if all edge weights are pairwise distinct.
    pub fn has_unique_weights(&self) -> bool {
        let set: HashSet<Weight> = self.edges.iter().map(|e| e.weight).collect();
        set.len() == self.edges.len()
    }

    /// Number of connected components (0 for the empty graph). Used by the churn
    /// layer to report how badly a topology delta severed the network.
    pub fn component_count(&self) -> usize {
        let n = self.node_count();
        let mut seen = vec![false; n];
        let mut stack: Vec<NodeId> = Vec::new();
        let mut components = 0;
        for start in 0..n {
            if seen[start] {
                continue;
            }
            components += 1;
            seen[start] = true;
            stack.push(NodeId(start));
            while let Some(v) = stack.pop() {
                for &(w, _) in self.neighbors(v) {
                    if !seen[w.0] {
                        seen[w.0] = true;
                        stack.push(w);
                    }
                }
            }
        }
        components
    }

    /// `true` if the graph is connected (the paper only considers connected graphs).
    pub fn is_connected(&self) -> bool {
        if self.node_count() == 0 {
            return true;
        }
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![NodeId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &(w, _) in self.neighbors(v) {
                if !seen[w.0] {
                    seen[w.0] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == self.node_count()
    }

    /// Number of bits needed to store a node identity of this graph.
    pub fn ident_bits(&self) -> usize {
        bits_for(self.ids.iter().copied().max().unwrap_or(1))
    }

    /// Number of bits needed to store an edge weight of this graph.
    pub fn weight_bits(&self) -> usize {
        bits_for(self.edges.iter().map(|e| e.weight).max().unwrap_or(1))
    }

    /// Maximum degree over all nodes.
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1, 5), (1, 2, 3), (0, 2, 9)])
    }

    #[test]
    fn builds_adjacency_both_directions() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(NodeId(0)), 2);
        assert_eq!(g.degree(NodeId(1)), 2);
        assert!(g.edge_between(NodeId(2), NodeId(0)).is_some());
        assert!(g.edge_between(NodeId(0), NodeId(0)).is_none());
    }

    #[test]
    fn edge_other_endpoint() {
        let g = triangle();
        let e = g.edge(EdgeId(0));
        assert_eq!(e.other(NodeId(0)), NodeId(1));
        assert_eq!(e.other(NodeId(1)), NodeId(0));
        assert!(e.touches(NodeId(0)));
        assert!(!e.touches(NodeId(2)));
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_panics_for_non_endpoint() {
        let g = triangle();
        g.edge(EdgeId(0)).other(NodeId(2));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loops() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(0), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_duplicate_edges() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId(0), NodeId(1), 1);
        g.add_edge(NodeId(1), NodeId(0), 2);
    }

    #[test]
    fn default_identities_are_distinct_and_positive() {
        let g = Graph::new(5);
        let ids: Vec<_> = g.nodes().map(|v| g.ident(v)).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
        assert_eq!(g.min_ident_node(), NodeId(0));
        assert_eq!(g.node_with_ident(3), Some(NodeId(2)));
        assert_eq!(g.node_with_ident(77), None);
    }

    #[test]
    fn set_idents_changes_root_election() {
        let mut g = triangle();
        g.set_idents(vec![30, 10, 20]);
        assert_eq!(g.min_ident_node(), NodeId(1));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn set_idents_rejects_duplicates() {
        let mut g = triangle();
        g.set_idents(vec![1, 1, 2]);
    }

    #[test]
    fn unique_weights_preserve_order() {
        let g = Graph::from_edges(4, &[(0, 1, 50), (1, 2, 7), (2, 3, 7), (0, 3, 100)]);
        let u = g.with_unique_weights(3);
        assert!(u.has_unique_weights());
        // The lightest original edges stay lighter than the heavier ones.
        assert!(u.weight(EdgeId(1)) < u.weight(EdgeId(0)));
        assert!(u.weight(EdgeId(2)) < u.weight(EdgeId(0)));
        assert!(u.weight(EdgeId(0)) < u.weight(EdgeId(3)));
        // Weights are a permutation of 1..=m.
        let mut ws: Vec<_> = u.edges().iter().map(|e| e.weight).collect();
        ws.sort_unstable();
        assert_eq!(ws, vec![1, 2, 3, 4]);
    }

    #[test]
    fn connectivity() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1), 1);
        g.add_edge(NodeId(2), NodeId(3), 1);
        assert!(!g.is_connected());
        g.add_edge(NodeId(1), NodeId(2), 1);
        assert!(g.is_connected());
        assert!(Graph::new(0).is_connected());
        assert!(Graph::new(1).is_connected());
    }

    #[test]
    fn csr_neighbors_match_incremental_construction() {
        // Bulk CSR construction and edge-by-edge insertion must agree exactly,
        // including the per-node insertion order of the adjacency slices.
        let edges = [(0, 1, 5), (1, 2, 3), (0, 2, 9), (2, 3, 1), (1, 3, 7)];
        let bulk = Graph::from_edges(4, &edges);
        let mut incremental = Graph::new(4);
        for &(u, v, w) in &edges {
            incremental.add_edge(NodeId(u), NodeId(v), w);
        }
        assert_eq!(bulk, incremental);
        for v in bulk.nodes() {
            assert_eq!(bulk.neighbors(v), incremental.neighbors(v));
            assert_eq!(bulk.degree(v), bulk.neighbors(v).len());
        }
        // Every neighbor entry names an edge that really touches both endpoints.
        for v in bulk.nodes() {
            for &(w, e) in bulk.neighbors(v) {
                assert!(bulk.edge(e).touches(v));
                assert!(bulk.edge(e).touches(w));
                assert_eq!(bulk.edge(e).other(v), w);
            }
        }
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn bulk_construction_rejects_duplicates() {
        let _ = Graph::from_edges(3, &[(0, 1, 1), (1, 0, 2)]);
    }

    #[test]
    fn weight_order_is_sorted_and_tracks_mutations() {
        let assert_order = |g: &Graph| {
            for v in g.nodes() {
                let nbrs = g.neighbors(v);
                let order = g.neighbor_order_by_weight(v);
                assert_eq!(order.len(), nbrs.len());
                let keys: Vec<_> = order
                    .iter()
                    .map(|&k| {
                        let (w, e) = nbrs[k as usize];
                        (g.weight(e), g.ident(w))
                    })
                    .collect();
                assert!(
                    keys.windows(2).all(|p| p[0] <= p[1]),
                    "node {v:?}: {keys:?}"
                );
                let mut seen: Vec<u32> = order.to_vec();
                seen.sort_unstable();
                assert_eq!(seen, (0..nbrs.len() as u32).collect::<Vec<_>>());
            }
        };
        let mut g = Graph::from_edges(4, &[(0, 1, 5), (1, 2, 3), (0, 2, 9), (2, 3, 1), (1, 3, 7)]);
        assert_order(&g);
        // add_edge rebuilds the CSR (and the order with it).
        let mut grown = g.clone();
        grown.add_edge(NodeId(0), NodeId(3), 2);
        assert_order(&grown);
        // Identity reassignment re-breaks weight ties.
        g.set_idents(vec![40, 30, 20, 10]);
        assert_order(&g);
        // Weight re-ranking recomputes the order.
        let u = g.with_unique_weights(5);
        assert_order(&u);
    }

    #[test]
    fn bit_measures() {
        let g = triangle();
        assert_eq!(g.ident_bits(), 2); // identities 1..=3
        assert_eq!(g.weight_bits(), 4); // max weight 9
        assert_eq!(g.max_degree(), 2);
    }
}
