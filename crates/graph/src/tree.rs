//! Rooted spanning trees encoded by parent pointers.
//!
//! This is the distributed output representation used throughout the paper: every node
//! `v` stores the identity of its parent `p(v)`, and the root stores `⊥` (paper §II-B).
//! [`Tree`] is the *simulator-side* view of such a configuration, with the utilities the
//! oracles, proof-labeling schemes and experiments need (depths, subtree sizes,
//! fundamental cycles, edge swaps, …).

use std::collections::VecDeque;
use std::fmt;

use crate::graph::{EdgeId, Graph};
use crate::ids::{NodeId, Weight};

/// Errors raised when a parent-pointer vector does not encode a rooted spanning tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TreeError {
    /// No node has `p(v) = ⊥`.
    NoRoot,
    /// More than one node has `p(v) = ⊥` (the 1-factor is a forest).
    MultipleRoots(Vec<NodeId>),
    /// A parent pointer references a node outside the graph.
    ParentOutOfRange { node: NodeId },
    /// A node is its own parent.
    SelfParent { node: NodeId },
    /// Following parent pointers from `node` never reaches the root (a cycle exists).
    CycleDetected { node: NodeId },
    /// A parent pointer uses a pair `(v, p(v))` that is not an edge of the graph.
    NotAGraphEdge { node: NodeId, parent: NodeId },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::NoRoot => write!(f, "no node has a ⊥ parent pointer"),
            TreeError::MultipleRoots(roots) => {
                write!(f, "multiple roots: {roots:?}")
            }
            TreeError::ParentOutOfRange { node } => {
                write!(f, "parent pointer of {node} is out of range")
            }
            TreeError::SelfParent { node } => write!(f, "{node} is its own parent"),
            TreeError::CycleDetected { node } => {
                write!(f, "parent pointers from {node} form a cycle")
            }
            TreeError::NotAGraphEdge { node, parent } => {
                write!(f, "({node}, {parent}) is not an edge of the graph")
            }
        }
    }
}

impl std::error::Error for TreeError {}

/// A rooted tree over the nodes `0..n`, encoded by parent pointers.
#[derive(Clone, PartialEq, Eq)]
pub struct Tree {
    parent: Vec<Option<NodeId>>,
    root: NodeId,
}

impl fmt::Debug for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tree")
            .field("root", &self.root)
            .field("parent", &self.parent)
            .finish()
    }
}

impl Tree {
    /// Builds a tree from a parent-pointer vector, validating that it encodes a rooted
    /// tree spanning all of `0..parents.len()`.
    ///
    /// # Errors
    ///
    /// Returns a [`TreeError`] if there is not exactly one root, a pointer is out of
    /// range, or the pointers contain a cycle.
    pub fn from_parents(parents: Vec<Option<NodeId>>) -> Result<Self, TreeError> {
        let n = parents.len();
        let roots: Vec<NodeId> = parents
            .iter()
            .enumerate()
            .filter(|(_, p)| p.is_none())
            .map(|(i, _)| NodeId(i))
            .collect();
        if roots.is_empty() {
            return Err(TreeError::NoRoot);
        }
        if roots.len() > 1 {
            return Err(TreeError::MultipleRoots(roots));
        }
        let root = roots[0];
        for (i, p) in parents.iter().enumerate() {
            if let Some(p) = p {
                if p.0 >= n {
                    return Err(TreeError::ParentOutOfRange { node: NodeId(i) });
                }
                if p.0 == i {
                    return Err(TreeError::SelfParent { node: NodeId(i) });
                }
            }
        }
        // Cycle check: walk up from every node; a walk longer than n steps means a cycle.
        for start in 0..n {
            let mut cur = NodeId(start);
            let mut steps = 0;
            while let Some(p) = parents[cur.0] {
                cur = p;
                steps += 1;
                if steps > n {
                    return Err(TreeError::CycleDetected {
                        node: NodeId(start),
                    });
                }
            }
        }
        Ok(Tree {
            parent: parents,
            root,
        })
    }

    /// Builds a tree from a parent-pointer vector **without validating it**, for callers
    /// that maintain the pointers themselves (the incremental composition engine applies
    /// `O(path)`-sized edits and cannot afford the `O(n·h)` validation of
    /// [`Tree::from_parents`] on every switch). `root` must be the unique node with a
    /// `⊥` pointer and the pointers must be acyclic; both are checked in debug builds.
    pub fn from_parents_unchecked(parents: Vec<Option<NodeId>>, root: NodeId) -> Self {
        debug_assert!(
            Tree::from_parents(parents.clone())
                .map(|t| t.root == root)
                .unwrap_or(false),
            "from_parents_unchecked requires a valid rooted tree"
        );
        Tree {
            parent: parents,
            root,
        }
    }

    /// Builds a tree from a parent-pointer vector and checks that every tree edge is an
    /// edge of `graph` (i.e. the tree is a spanning tree *of that graph*).
    ///
    /// # Errors
    ///
    /// Returns a [`TreeError`] for the same reasons as [`Tree::from_parents`], plus
    /// [`TreeError::NotAGraphEdge`] when a parent pointer does not follow a graph edge.
    pub fn from_parents_in(graph: &Graph, parents: Vec<Option<NodeId>>) -> Result<Self, TreeError> {
        let tree = Tree::from_parents(parents)?;
        for v in tree.nodes() {
            if let Some(p) = tree.parent(v) {
                if graph.edge_between(v, p).is_none() {
                    return Err(TreeError::NotAGraphEdge { node: v, parent: p });
                }
            }
        }
        Ok(tree)
    }

    /// Builds the path graph `0 - 1 - … - (n-1)` rooted at node 0 (handy in tests).
    pub fn path(n: usize) -> Self {
        let parents = (0..n)
            .map(|i| if i == 0 { None } else { Some(NodeId(i - 1)) })
            .collect();
        Tree::from_parents(parents).expect("a path is a valid tree")
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.parent.len()
    }

    /// Iterator over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId)
    }

    /// The root of the tree (the unique node with `p(v) = ⊥`).
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The parent of `v`, or `None` for the root.
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v.0]
    }

    /// The raw parent-pointer vector.
    pub fn parents(&self) -> &[Option<NodeId>] {
        &self.parent
    }

    /// The children of every node, indexed by node.
    pub fn children_table(&self) -> Vec<Vec<NodeId>> {
        let mut children = vec![Vec::new(); self.node_count()];
        for v in self.nodes() {
            if let Some(p) = self.parent(v) {
                children[p.0].push(v);
            }
        }
        children
    }

    /// The children of `v`.
    pub fn children(&self, v: NodeId) -> Vec<NodeId> {
        self.nodes()
            .filter(|&c| self.parent(c) == Some(v))
            .collect()
    }

    /// The degree of `v` *in the tree* (children plus parent).
    pub fn degree(&self, v: NodeId) -> usize {
        self.children(v).len() + usize::from(self.parent(v).is_some())
    }

    /// The maximum degree of the tree, `deg(T)` in the paper (§II-B).
    pub fn max_degree(&self) -> usize {
        let children = self.children_table();
        self.nodes()
            .map(|v| children[v.0].len() + usize::from(self.parent(v).is_some()))
            .max()
            .unwrap_or(0)
    }

    /// Nodes whose tree degree equals the tree's maximum degree.
    pub fn max_degree_nodes(&self) -> Vec<NodeId> {
        let d = self.max_degree();
        let children = self.children_table();
        self.nodes()
            .filter(|&v| children[v.0].len() + usize::from(self.parent(v).is_some()) == d)
            .collect()
    }

    /// The depth of every node (root has depth 0).
    pub fn depths(&self) -> Vec<usize> {
        let children = self.children_table();
        let mut depth = vec![0usize; self.node_count()];
        let mut queue = VecDeque::from([self.root]);
        while let Some(v) = queue.pop_front() {
            for &c in &children[v.0] {
                depth[c.0] = depth[v.0] + 1;
                queue.push_back(c);
            }
        }
        depth
    }

    /// The height of the tree (maximum depth).
    pub fn height(&self) -> usize {
        self.depths().into_iter().max().unwrap_or(0)
    }

    /// The size of the subtree rooted at every node (the `s` component of the redundant
    /// proof-labeling scheme of §IV).
    pub fn subtree_sizes(&self) -> Vec<usize> {
        let children = self.children_table();
        // Process nodes in reverse BFS order so children are done before their parent.
        let mut order = Vec::with_capacity(self.node_count());
        let mut queue = VecDeque::from([self.root]);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &c in &children[v.0] {
                queue.push_back(c);
            }
        }
        let mut size = vec![1usize; self.node_count()];
        for &v in order.iter().rev() {
            for &c in &children[v.0] {
                size[v.0] += size[c.0];
            }
        }
        size
    }

    /// `true` if `{u, v}` is a tree edge (in either orientation).
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.parent(u) == Some(v) || self.parent(v) == Some(u)
    }

    /// The tree edges as `(child, parent)` pairs.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        self.nodes()
            .filter_map(|v| self.parent(v).map(|p| (v, p)))
            .collect()
    }

    /// The [`EdgeId`]s of the tree edges in `graph`.
    ///
    /// # Panics
    ///
    /// Panics if a tree edge is not an edge of `graph`; build the tree with
    /// [`Tree::from_parents_in`] to get an error instead.
    pub fn edge_ids_in(&self, graph: &Graph) -> Vec<EdgeId> {
        self.edges()
            .into_iter()
            .map(|(v, p)| {
                graph
                    .edge_between(v, p)
                    .unwrap_or_else(|| panic!("tree edge ({v}, {p}) is not in the graph"))
            })
            .collect()
    }

    /// `true` if this tree is a spanning tree of `graph` (same node set, every tree edge
    /// a graph edge).
    pub fn is_spanning_tree_of(&self, graph: &Graph) -> bool {
        self.node_count() == graph.node_count()
            && self
                .edges()
                .iter()
                .all(|&(v, p)| graph.edge_between(v, p).is_some())
    }

    /// Sum of the weights of the tree edges in `graph`.
    ///
    /// # Panics
    ///
    /// Panics if a tree edge is not an edge of `graph`.
    pub fn total_weight(&self, graph: &Graph) -> Weight {
        self.edge_ids_in(graph)
            .into_iter()
            .map(|e| graph.weight(e))
            .sum()
    }

    /// The path from `v` to the root, inclusive of both endpoints.
    pub fn path_to_root(&self, v: NodeId) -> Vec<NodeId> {
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path
    }

    /// The nearest common ancestor of `u` and `v`, computed directly from the parent
    /// pointers (quadratic worst case; the [`crate::nca`] oracle is the fast version).
    pub fn nca(&self, u: NodeId, v: NodeId) -> NodeId {
        let up: Vec<NodeId> = self.path_to_root(u);
        let on_u_path: std::collections::HashSet<NodeId> = up.iter().copied().collect();
        let mut cur = v;
        loop {
            if on_u_path.contains(&cur) {
                return cur;
            }
            cur = self
                .parent(cur)
                .expect("root is a common ancestor of all nodes");
        }
    }

    /// The unique tree path between `u` and `v`, inclusive of both endpoints.
    pub fn tree_path(&self, u: NodeId, v: NodeId) -> Vec<NodeId> {
        let w = self.nca(u, v);
        let mut up = Vec::new();
        let mut cur = u;
        while cur != w {
            up.push(cur);
            cur = self
                .parent(cur)
                .expect("below the NCA there is always a parent");
        }
        up.push(w);
        let mut down = Vec::new();
        let mut cur = v;
        while cur != w {
            down.push(cur);
            cur = self
                .parent(cur)
                .expect("below the NCA there is always a parent");
        }
        up.extend(down.into_iter().rev());
        up
    }

    /// The *fundamental cycle* `T + e` of a non-tree edge `e = {u, v}`: the tree path
    /// from `u` to `v` (as node sequence). Adding `e` closes the cycle (paper, footnote 2).
    ///
    /// # Panics
    ///
    /// Panics if `e` is a tree edge.
    pub fn fundamental_cycle_nodes(&self, graph: &Graph, e: EdgeId) -> Vec<NodeId> {
        let edge = graph.edge(e);
        assert!(
            !self.contains_edge(edge.u, edge.v),
            "fundamental cycles are defined for non-tree edges"
        );
        self.tree_path(edge.u, edge.v)
    }

    /// The tree edges (as [`EdgeId`]s of `graph`) on the fundamental cycle of the
    /// non-tree edge `e`.
    pub fn fundamental_cycle_tree_edges(&self, graph: &Graph, e: EdgeId) -> Vec<EdgeId> {
        let nodes = self.fundamental_cycle_nodes(graph, e);
        nodes
            .windows(2)
            .map(|w| {
                graph
                    .edge_between(w[0], w[1])
                    .expect("consecutive path nodes are connected in the graph")
            })
            .collect()
    }

    /// Returns the tree obtained by the swap `T ← T + e − f`, where `e` is a non-tree
    /// edge and `f` a tree edge on the fundamental cycle of `T + e`, re-rooted at the
    /// original root (the operation of §IV of the paper, performed atomically).
    ///
    /// # Panics
    ///
    /// Panics if `e` is a tree edge, `f` is not a tree edge, or `f` is not on the
    /// fundamental cycle of `T + e` (the result would not be a spanning tree).
    pub fn with_swap(&self, graph: &Graph, add: EdgeId, remove: EdgeId) -> Tree {
        let cycle = self.fundamental_cycle_tree_edges(graph, add);
        assert!(
            cycle.contains(&remove),
            "the removed edge must lie on the fundamental cycle of the added edge"
        );
        let mut edge_set: Vec<EdgeId> = self.edge_ids_in(graph);
        edge_set.retain(|&f| f != remove);
        edge_set.push(add);
        Tree::from_edge_set(graph, &edge_set, self.root).expect("swap preserves spanning trees")
    }

    /// Builds a tree rooted at `root` from an explicit set of `n - 1` graph edges.
    ///
    /// # Errors
    ///
    /// Returns an error if the edge set does not form a spanning tree of `graph`.
    pub fn from_edge_set(graph: &Graph, edges: &[EdgeId], root: NodeId) -> Result<Tree, TreeError> {
        let n = graph.node_count();
        let mut adjacency: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &e in edges {
            let edge = graph.edge(e);
            adjacency[edge.u.0].push(edge.v);
            adjacency[edge.v.0].push(edge.u);
        }
        let mut parents: Vec<Option<NodeId>> = vec![None; n];
        let mut seen = vec![false; n];
        seen[root.0] = true;
        let mut queue = VecDeque::from([root]);
        let mut visited = 1usize;
        while let Some(v) = queue.pop_front() {
            for &w in &adjacency[v.0] {
                if !seen[w.0] {
                    seen[w.0] = true;
                    visited += 1;
                    parents[w.0] = Some(v);
                    queue.push_back(w);
                }
            }
        }
        if visited != n {
            return Err(TreeError::CycleDetected { node: root });
        }
        Tree::from_parents(parents)
    }

    /// Re-roots the tree at `new_root` (reversing the parent pointers on the path from
    /// the old root to the new one).
    pub fn rerooted(&self, new_root: NodeId) -> Tree {
        if new_root == self.root {
            return self.clone();
        }
        let mut parents = self.parent.clone();
        let path = self.path_to_root(new_root);
        for w in path.windows(2) {
            // w[1] is the parent of w[0] in the old orientation; reverse it.
            parents[w[1].0] = Some(w[0]);
        }
        parents[new_root.0] = None;
        Tree::from_parents(parents).expect("re-rooting preserves the tree")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small fixed graph: a 6-cycle plus a chord.
    fn ring_with_chord() -> Graph {
        Graph::from_edges(
            6,
            &[
                (0, 1, 1),
                (1, 2, 2),
                (2, 3, 3),
                (3, 4, 4),
                (4, 5, 5),
                (5, 0, 6),
                (1, 4, 7),
            ],
        )
    }

    fn star_parents() -> Vec<Option<NodeId>> {
        vec![None, Some(NodeId(0)), Some(NodeId(0)), Some(NodeId(0))]
    }

    #[test]
    fn valid_tree_from_parents() {
        let t = Tree::from_parents(star_parents()).unwrap();
        assert_eq!(t.root(), NodeId(0));
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.children(NodeId(0)).len(), 3);
        assert_eq!(t.degree(NodeId(0)), 3);
        assert_eq!(t.degree(NodeId(1)), 1);
        assert_eq!(t.max_degree(), 3);
        assert_eq!(t.max_degree_nodes(), vec![NodeId(0)]);
    }

    #[test]
    fn detects_missing_and_multiple_roots() {
        // A 2-cycle of parent pointers has no root at all.
        assert_eq!(
            Tree::from_parents(vec![Some(NodeId(1)), Some(NodeId(0))]).unwrap_err(),
            TreeError::NoRoot
        );
        let err = Tree::from_parents(vec![None, None]).unwrap_err();
        assert_eq!(err, TreeError::MultipleRoots(vec![NodeId(0), NodeId(1)]));
        let err = Tree::from_parents(Vec::new()).unwrap_err();
        assert_eq!(err, TreeError::NoRoot);
    }

    #[test]
    fn detects_self_parent_and_out_of_range() {
        let err = Tree::from_parents(vec![None, Some(NodeId(1))]).unwrap_err();
        assert_eq!(err, TreeError::SelfParent { node: NodeId(1) });
        let err = Tree::from_parents(vec![None, Some(NodeId(9))]).unwrap_err();
        assert_eq!(err, TreeError::ParentOutOfRange { node: NodeId(1) });
    }

    #[test]
    fn detects_cycles() {
        let err = Tree::from_parents(vec![
            None,
            Some(NodeId(2)),
            Some(NodeId(3)),
            Some(NodeId(1)),
        ])
        .unwrap_err();
        assert!(matches!(err, TreeError::CycleDetected { .. }));
    }

    #[test]
    fn from_parents_in_checks_graph_edges() {
        let g = ring_with_chord();
        // 0-2 is not a graph edge.
        let err = Tree::from_parents_in(
            &g,
            vec![
                None,
                Some(NodeId(0)),
                Some(NodeId(0)),
                Some(NodeId(2)),
                Some(NodeId(3)),
                Some(NodeId(4)),
            ],
        )
        .unwrap_err();
        assert_eq!(
            err,
            TreeError::NotAGraphEdge {
                node: NodeId(2),
                parent: NodeId(0)
            }
        );
    }

    #[test]
    fn depths_sizes_and_height_on_a_path() {
        let t = Tree::path(5);
        assert_eq!(t.depths(), vec![0, 1, 2, 3, 4]);
        assert_eq!(t.height(), 4);
        assert_eq!(t.subtree_sizes(), vec![5, 4, 3, 2, 1]);
        assert_eq!(t.max_degree(), 2);
    }

    #[test]
    fn paths_and_nca() {
        // Tree: 0 - 1 - 2, 1 - 3, 0 - 4
        let t = Tree::from_parents(vec![
            None,
            Some(NodeId(0)),
            Some(NodeId(1)),
            Some(NodeId(1)),
            Some(NodeId(0)),
        ])
        .unwrap();
        assert_eq!(t.nca(NodeId(2), NodeId(3)), NodeId(1));
        assert_eq!(t.nca(NodeId(2), NodeId(4)), NodeId(0));
        assert_eq!(t.nca(NodeId(1), NodeId(2)), NodeId(1));
        assert_eq!(
            t.tree_path(NodeId(2), NodeId(3)),
            vec![NodeId(2), NodeId(1), NodeId(3)]
        );
        assert_eq!(
            t.tree_path(NodeId(2), NodeId(4)),
            vec![NodeId(2), NodeId(1), NodeId(0), NodeId(4)]
        );
        assert_eq!(
            t.path_to_root(NodeId(3)),
            vec![NodeId(3), NodeId(1), NodeId(0)]
        );
    }

    #[test]
    fn fundamental_cycle_of_the_chord() {
        let g = ring_with_chord();
        // Spanning tree: the path 0-1-2-3-4-5 (drop edges {5,0} and {1,4}).
        let t = Tree::path(6);
        assert!(t.is_spanning_tree_of(&g));
        let chord = g.edge_between(NodeId(1), NodeId(4)).unwrap();
        let cyc = t.fundamental_cycle_nodes(&g, chord);
        assert_eq!(cyc, vec![NodeId(1), NodeId(2), NodeId(3), NodeId(4)]);
        let cyc_edges = t.fundamental_cycle_tree_edges(&g, chord);
        assert_eq!(cyc_edges.len(), 3);
    }

    #[test]
    fn swap_preserves_spanning_tree_and_changes_weight() {
        let g = ring_with_chord();
        let t = Tree::path(6);
        let add = g.edge_between(NodeId(1), NodeId(4)).unwrap();
        let remove = g.edge_between(NodeId(2), NodeId(3)).unwrap();
        let before = t.total_weight(&g);
        let t2 = t.with_swap(&g, add, remove);
        assert!(t2.is_spanning_tree_of(&g));
        assert_eq!(t2.root(), t.root());
        assert_eq!(
            t2.total_weight(&g),
            before - g.weight(remove) + g.weight(add)
        );
        assert!(t2.contains_edge(NodeId(1), NodeId(4)));
        assert!(!t2.contains_edge(NodeId(2), NodeId(3)));
    }

    #[test]
    #[should_panic(expected = "fundamental cycle")]
    fn swap_rejects_edge_outside_cycle() {
        let g = ring_with_chord();
        let t = Tree::path(6);
        let add = g.edge_between(NodeId(1), NodeId(4)).unwrap();
        // {0,1} is a tree edge but not on the fundamental cycle of {1,4}.
        let remove = g.edge_between(NodeId(0), NodeId(1)).unwrap();
        let _ = t.with_swap(&g, add, remove);
    }

    #[test]
    fn rerooting_preserves_edges() {
        let t = Tree::path(5);
        let r = t.rerooted(NodeId(3));
        assert_eq!(r.root(), NodeId(3));
        assert_eq!(r.node_count(), 5);
        let mut original: Vec<_> = t
            .edges()
            .into_iter()
            .map(|(a, b)| if a < b { (a, b) } else { (b, a) })
            .collect();
        let mut rerooted: Vec<_> = r
            .edges()
            .into_iter()
            .map(|(a, b)| if a < b { (a, b) } else { (b, a) })
            .collect();
        original.sort();
        rerooted.sort();
        assert_eq!(original, rerooted);
        // Re-rooting at the current root is the identity.
        assert_eq!(t.rerooted(NodeId(0)), t);
    }

    #[test]
    fn total_weight_of_a_path_tree() {
        let g = ring_with_chord();
        let t = Tree::path(6);
        assert_eq!(t.total_weight(&g), 1 + 2 + 3 + 4 + 5);
    }
}
