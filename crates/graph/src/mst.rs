//! Sequential minimum-weight spanning tree references: Kruskal, Prim and Borůvka, plus
//! the red-rule helpers (heaviest edge on a fundamental cycle) used by the PLS-guided
//! MST improvement step (paper §VI).

use crate::graph::{EdgeId, Graph};
use crate::ids::{NodeId, Weight};
use crate::tree::{Tree, TreeError};
use crate::union_find::UnionFind;

/// Errors from the MST oracles.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MstError {
    /// The graph is not connected; no spanning tree exists.
    Disconnected,
    /// The edge set produced internally did not form a tree (should not happen on
    /// well-formed inputs).
    Internal(TreeError),
}

impl std::fmt::Display for MstError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MstError::Disconnected => write!(f, "the graph is not connected"),
            MstError::Internal(e) => write!(f, "internal tree construction error: {e}"),
        }
    }
}

impl std::error::Error for MstError {}

impl From<TreeError> for MstError {
    fn from(value: TreeError) -> Self {
        MstError::Internal(value)
    }
}

fn tree_from_edge_ids(graph: &Graph, edges: &[EdgeId]) -> Result<Tree, MstError> {
    if edges.len() + 1 != graph.node_count() {
        return Err(MstError::Disconnected);
    }
    Ok(Tree::from_edge_set(graph, edges, graph.min_ident_node())?)
}

/// Kruskal's algorithm. Returns an MST rooted at the minimum-identity node.
///
/// # Errors
///
/// Returns [`MstError::Disconnected`] if the graph has no spanning tree.
pub fn kruskal(graph: &Graph) -> Result<Tree, MstError> {
    let mut order: Vec<EdgeId> = graph.edge_ids().collect();
    order.sort_by_key(|&e| (graph.weight(e), e.index()));
    let mut uf = UnionFind::new(graph.node_count());
    let mut chosen = Vec::with_capacity(graph.node_count().saturating_sub(1));
    for e in order {
        let edge = graph.edge(e);
        if uf.union(edge.u.index(), edge.v.index()) {
            chosen.push(e);
        }
    }
    tree_from_edge_ids(graph, &chosen)
}

/// Prim's algorithm starting from `start`. Returns an MST rooted at the minimum-identity
/// node (independently of `start`, so results are comparable across oracles).
///
/// # Errors
///
/// Returns [`MstError::Disconnected`] if the graph has no spanning tree.
pub fn prim(graph: &Graph, start: NodeId) -> Result<Tree, MstError> {
    let n = graph.node_count();
    let mut in_tree = vec![false; n];
    in_tree[start.index()] = true;
    let mut chosen: Vec<EdgeId> = Vec::with_capacity(n.saturating_sub(1));
    for _ in 1..n {
        let mut best: Option<EdgeId> = None;
        for e in graph.edge_ids() {
            let edge = graph.edge(e);
            if in_tree[edge.u.index()] ^ in_tree[edge.v.index()]
                && best.is_none_or(|b| (graph.weight(e), e.index()) < (graph.weight(b), b.index()))
            {
                best = Some(e);
            }
        }
        let Some(e) = best else {
            return Err(MstError::Disconnected);
        };
        let edge = graph.edge(e);
        in_tree[edge.u.index()] = true;
        in_tree[edge.v.index()] = true;
        chosen.push(e);
    }
    tree_from_edge_ids(graph, &chosen)
}

/// One node's record of a Borůvka execution: the sequence of fragments it belonged to
/// and, for each level, the minimum-weight outgoing edge chosen by its fragment.
/// This is exactly the label content of the paper's §VI (Fig. 2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoruvkaTrace {
    /// `fragment[i]` = identity of the level-`i` fragment containing the node
    /// (the minimum node identity in the fragment).
    pub fragment: Vec<u64>,
    /// `chosen_edge[i]` = the minimum-weight edge outgoing from the level-`i` fragment
    /// (`None` once the fragment covers the whole graph).
    pub chosen_edge: Vec<Option<EdgeId>>,
}

/// The result of running Borůvka's algorithm: the MST plus the per-node fragment traces.
#[derive(Clone, Debug)]
pub struct BoruvkaRun {
    /// The minimum spanning tree, rooted at the minimum-identity node.
    pub tree: Tree,
    /// Per-node traces (indexed by dense node index).
    pub traces: Vec<BoruvkaTrace>,
    /// Number of levels until a single fragment remained (`k ≤ ⌈log₂ n⌉`).
    pub levels: usize,
}

/// Borůvka's algorithm *restricted to the edges of a given spanning structure* is what
/// the paper's labeling scheme simulates on the current tree `T`; running it on the full
/// graph yields the true MST. `edges_allowed` filters which edges fragments may choose.
fn boruvka_with_filter(
    graph: &Graph,
    edges_allowed: &dyn Fn(EdgeId) -> bool,
) -> Result<BoruvkaRun, MstError> {
    let n = graph.node_count();
    let mut uf = UnionFind::new(n);
    let mut traces = vec![
        BoruvkaTrace {
            fragment: Vec::new(),
            chosen_edge: Vec::new()
        };
        n
    ];
    let mut chosen_total: Vec<EdgeId> = Vec::new();
    let mut levels = 0usize;
    // At most ⌈log₂ n⌉ + 1 levels; guard with n iterations for safety.
    for _ in 0..=n {
        // Record the fragment identity of every node at this level.
        let mut frag_ident = vec![u64::MAX; n];
        for v in 0..n {
            let r = uf.find(v);
            let id = graph.ident(NodeId(v));
            if id < frag_ident[r] {
                frag_ident[r] = id;
            }
        }
        for v in 0..n {
            let r = uf.find(v);
            traces[v].fragment.push(frag_ident[r]);
        }
        if uf.component_count() == 1 {
            for t in &mut traces {
                t.chosen_edge.push(None);
            }
            levels += 1;
            break;
        }
        // Minimum-weight outgoing edge of each fragment.
        let mut best: Vec<Option<EdgeId>> = vec![None; n];
        for e in graph.edge_ids() {
            if !edges_allowed(e) {
                continue;
            }
            let edge = graph.edge(e);
            let (ru, rv) = (uf.find(edge.u.index()), uf.find(edge.v.index()));
            if ru == rv {
                continue;
            }
            for r in [ru, rv] {
                if best[r]
                    .is_none_or(|b| (graph.weight(e), e.index()) < (graph.weight(b), b.index()))
                {
                    best[r] = Some(e);
                }
            }
        }
        // If some fragment has no outgoing edge at all, the filtered edge set is
        // disconnected.
        let mut any = false;
        for v in 0..n {
            let r = uf.find(v);
            traces[v].chosen_edge.push(best[r]);
            if best[r].is_some() {
                any = true;
            }
        }
        if !any {
            return Err(MstError::Disconnected);
        }
        // Merge along chosen edges.
        let roots: Vec<usize> = (0..n).filter(|&v| uf.find(v) == v).collect();
        for r in roots {
            if let Some(e) = best[r] {
                let edge = graph.edge(e);
                if uf.union(edge.u.index(), edge.v.index()) {
                    chosen_total.push(e);
                }
            }
        }
        levels += 1;
    }
    if uf.component_count() != 1 {
        return Err(MstError::Disconnected);
    }
    let tree = tree_from_edge_ids(graph, &chosen_total)?;
    Ok(BoruvkaRun {
        tree,
        traces,
        levels,
    })
}

/// Borůvka's algorithm on the whole graph. The returned traces are the reference content
/// for the MST fragment labels of §VI.
///
/// # Errors
///
/// Returns [`MstError::Disconnected`] if the graph has no spanning tree.
pub fn boruvka(graph: &Graph) -> Result<BoruvkaRun, MstError> {
    boruvka_with_filter(graph, &|_| true)
}

/// A *virtual* execution of Borůvka's algorithm restricted to the edges of the spanning
/// tree `T` (paper §VI: "each node stores the trace of a virtual execution of Borůvska's
/// algorithm on T"). The traces describe how the fragments of `T` merge; the chosen
/// edges are tree edges.
///
/// # Errors
///
/// Returns an error if `tree` is not a spanning tree of `graph`.
pub fn boruvka_on_tree(graph: &Graph, tree: &Tree) -> Result<BoruvkaRun, MstError> {
    if !tree.is_spanning_tree_of(graph) {
        return Err(MstError::Disconnected);
    }
    let tree_edges: std::collections::HashSet<EdgeId> =
        tree.edge_ids_in(graph).into_iter().collect();
    boruvka_with_filter(graph, &move |e| tree_edges.contains(&e))
}

/// `true` if `tree` is a minimum-weight spanning tree of `graph`.
///
/// Uses the cycle (red) rule: `T` is an MST iff every non-tree edge is a maximum-weight
/// edge on its fundamental cycle. With distinct weights this is equivalent to comparing
/// total weights with Kruskal, but cheaper to pinpoint failures.
pub fn is_mst(graph: &Graph, tree: &Tree) -> bool {
    if !tree.is_spanning_tree_of(graph) {
        return false;
    }
    for e in graph.edge_ids() {
        let edge = graph.edge(e);
        if tree.contains_edge(edge.u, edge.v) {
            continue;
        }
        let max_on_cycle = tree
            .fundamental_cycle_tree_edges(graph, e)
            .into_iter()
            .map(|f| graph.weight(f))
            .max()
            .expect("a fundamental cycle has at least one tree edge");
        if graph.weight(e) < max_on_cycle {
            return false;
        }
    }
    true
}

/// The heaviest tree edge on the fundamental cycle of the non-tree edge `e`
/// (Tarjan's red rule, used by the improvement step of Algorithm 2).
///
/// # Panics
///
/// Panics if `e` is a tree edge.
pub fn heaviest_cycle_edge(graph: &Graph, tree: &Tree, e: EdgeId) -> EdgeId {
    tree.fundamental_cycle_tree_edges(graph, e)
        .into_iter()
        .max_by_key(|&f| (graph.weight(f), f.index()))
        .expect("a fundamental cycle has at least one tree edge")
}

/// An improving swap for a non-MST tree: a non-tree edge `e` and the heaviest tree edge
/// `f` on its fundamental cycle with `w(e) < w(f)`. Returns `None` iff `tree` is an MST.
pub fn improving_swap(graph: &Graph, tree: &Tree) -> Option<(EdgeId, EdgeId)> {
    let mut best: Option<(EdgeId, EdgeId, Weight)> = None;
    for e in graph.edge_ids() {
        let edge = graph.edge(e);
        if tree.contains_edge(edge.u, edge.v) {
            continue;
        }
        let f = heaviest_cycle_edge(graph, tree, e);
        if graph.weight(e) < graph.weight(f) {
            let gain = graph.weight(f) - graph.weight(e);
            if best.is_none_or(|(_, _, g)| gain > g) {
                best = Some((e, f, gain));
            }
        }
    }
    best.map(|(e, f, _)| (e, f))
}

/// Total weight of a minimum spanning tree (convenience wrapper around [`kruskal`]).
///
/// # Errors
///
/// Returns [`MstError::Disconnected`] if the graph has no spanning tree.
pub fn mst_weight(graph: &Graph) -> Result<Weight, MstError> {
    Ok(kruskal(graph)?.total_weight(graph))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn weighted(n: usize, p: f64, seed: u64) -> Graph {
        generators::workload(n, p, seed)
    }

    #[test]
    fn the_three_oracles_agree() {
        for seed in 0..8 {
            let g = weighted(24, 0.2, seed);
            let k = kruskal(&g).unwrap();
            let p = prim(&g, NodeId(seed as usize % 24)).unwrap();
            let b = boruvka(&g).unwrap();
            let w = k.total_weight(&g);
            assert_eq!(p.total_weight(&g), w, "prim disagrees on seed {seed}");
            assert_eq!(
                b.tree.total_weight(&g),
                w,
                "boruvka disagrees on seed {seed}"
            );
            // With distinct weights the MST is unique, so edge sets agree too.
            let mut ke = k.edge_ids_in(&g);
            let mut be = b.tree.edge_ids_in(&g);
            ke.sort();
            be.sort();
            assert_eq!(ke, be);
        }
    }

    #[test]
    fn is_mst_accepts_the_oracle_and_rejects_heavier_trees() {
        let g = weighted(20, 0.3, 3);
        let t = kruskal(&g).unwrap();
        assert!(is_mst(&g, &t));
        // Apply a deteriorating swap if one exists: add the heaviest non-tree edge and
        // remove a lighter cycle edge.
        let non_tree: Vec<EdgeId> = g
            .edge_ids()
            .filter(|&e| {
                let edge = g.edge(e);
                !t.contains_edge(edge.u, edge.v)
            })
            .collect();
        let heavy = *non_tree
            .iter()
            .max_by_key(|&&e| g.weight(e))
            .expect("dense graph has non-tree edges");
        let cycle = t.fundamental_cycle_tree_edges(&g, heavy);
        let light = *cycle.iter().min_by_key(|&&f| g.weight(f)).unwrap();
        assert!(g.weight(heavy) > g.weight(light));
        let worse = t.with_swap(&g, heavy, light);
        assert!(!is_mst(&g, &worse));
        assert!(worse.total_weight(&g) > t.total_weight(&g));
    }

    #[test]
    fn improving_swaps_reach_the_mst() {
        // Local search guided by the red rule converges to the MST from any spanning tree.
        let g = weighted(18, 0.35, 7);
        let mut t = crate::bfs::bfs_tree(&g, NodeId(0));
        let opt = mst_weight(&g).unwrap();
        let mut guard = 0;
        while let Some((e, f)) = improving_swap(&g, &t) {
            let before = t.total_weight(&g);
            t = t.with_swap(&g, e, f);
            assert!(t.total_weight(&g) < before, "each swap strictly improves");
            guard += 1;
            assert!(guard < 1000, "local search must terminate");
        }
        assert_eq!(t.total_weight(&g), opt);
        assert!(is_mst(&g, &t));
    }

    #[test]
    fn boruvka_traces_have_log_levels_and_consistent_fragments() {
        let g = weighted(64, 0.1, 5);
        let run = boruvka(&g).unwrap();
        assert!(
            run.levels <= 8,
            "64 nodes need at most ⌈log₂ 64⌉ + 1 = 7 levels, got {}",
            run.levels
        );
        for v in g.nodes() {
            let tr = &run.traces[v.index()];
            assert_eq!(tr.fragment.len(), run.levels);
            assert_eq!(tr.chosen_edge.len(), run.levels);
            // Level-0 fragments are singletons identified by the node's own identity.
            assert_eq!(tr.fragment[0], g.ident(v));
            // The last level has a single fragment and no outgoing edge.
            assert_eq!(tr.chosen_edge[run.levels - 1], None);
        }
        // All nodes agree on the final fragment identity.
        let last: std::collections::HashSet<u64> = g
            .nodes()
            .map(|v| run.traces[v.index()].fragment[run.levels - 1])
            .collect();
        assert_eq!(last.len(), 1);
    }

    #[test]
    fn boruvka_on_tree_follows_tree_edges() {
        let g = weighted(30, 0.25, 9);
        let t = crate::bfs::bfs_tree(&g, NodeId(2));
        let run = boruvka_on_tree(&g, &t).unwrap();
        // Every chosen edge is a tree edge.
        for tr in &run.traces {
            for e in tr.chosen_edge.iter().flatten() {
                let edge = g.edge(*e);
                assert!(t.contains_edge(edge.u, edge.v));
            }
        }
        // The reconstructed tree spans the graph (it is T itself as an edge set).
        let mut ours = run.tree.edge_ids_in(&g);
        let mut orig = t.edge_ids_in(&g);
        ours.sort();
        orig.sort();
        assert_eq!(ours, orig);
    }

    #[test]
    fn mst_on_a_tree_graph_is_the_graph() {
        let g = generators::randomize_weights(&generators::random_tree(15, 2), 2);
        let t = kruskal(&g).unwrap();
        assert_eq!(
            t.total_weight(&g),
            g.edges().iter().map(|e| e.weight).sum::<u64>()
        );
    }

    #[test]
    fn heaviest_cycle_edge_is_on_the_cycle() {
        let g = weighted(16, 0.4, 11);
        let t = kruskal(&g).unwrap();
        for e in g.edge_ids() {
            let edge = g.edge(e);
            if t.contains_edge(edge.u, edge.v) {
                continue;
            }
            let f = heaviest_cycle_edge(&g, &t, e);
            assert!(t.fundamental_cycle_tree_edges(&g, e).contains(&f));
            // Red rule on an MST: the non-tree edge is at least as heavy as f.
            assert!(g.weight(e) > g.weight(f));
        }
    }
}
