//! Miscellaneous structural properties used by tests, experiments and reports.

use crate::graph::Graph;
use crate::ids::NodeId;
use crate::tree::Tree;
use crate::union_find::UnionFind;

/// The connected components of the graph, as a vector of node lists (sorted by dense
/// index inside each component, components sorted by their smallest member).
pub fn connected_components(graph: &Graph) -> Vec<Vec<NodeId>> {
    let n = graph.node_count();
    let mut uf = UnionFind::new(n);
    for e in graph.edges() {
        uf.union(e.u.0, e.v.0);
    }
    let mut by_root: std::collections::BTreeMap<usize, Vec<NodeId>> = Default::default();
    for v in 0..n {
        by_root.entry(uf.find(v)).or_default().push(NodeId(v));
    }
    let mut comps: Vec<Vec<NodeId>> = by_root.into_values().collect();
    comps.sort_by_key(|c| c[0]);
    comps
}

/// The degree histogram of a tree: `hist[d]` = number of nodes of tree degree `d`.
pub fn tree_degree_histogram(tree: &Tree) -> Vec<usize> {
    let max = tree.max_degree();
    let mut hist = vec![0usize; max + 1];
    for v in tree.nodes() {
        hist[tree.degree(v)] += 1;
    }
    hist
}

/// `true` if the tree is a simple (Hamiltonian) path: every node has degree ≤ 2.
pub fn is_hamiltonian_path(tree: &Tree) -> bool {
    tree.max_degree() <= 2
}

/// The number of leaves of a tree.
pub fn leaf_count(tree: &Tree) -> usize {
    tree.nodes().filter(|&v| tree.degree(v) == 1).count()
}

/// A trivial lower bound on the minimum spanning-tree degree of `graph`:
/// `⌈(n − 1) / n⌉ = 1` is useless, but a cut-based bound is not: for every node `v`,
/// removing `v` splits the graph into `c(v)` components, and any spanning tree must give
/// `v` degree at least `c(v)`. We return the maximum of that bound over all nodes
/// (and at least 2 whenever `n ≥ 3` and the graph is not a single edge).
pub fn min_degree_lower_bound(graph: &Graph) -> usize {
    let n = graph.node_count();
    if n <= 2 {
        return n.saturating_sub(1);
    }
    let mut best = if graph.edge_count() == n - 1 {
        // The graph is itself a tree: its own maximum degree is forced.
        let parents = crate::bfs::bfs_tree(graph, NodeId(0));
        parents.max_degree()
    } else {
        1
    };
    for v in graph.nodes() {
        // Count components of G − v.
        let mut uf = UnionFind::new(n);
        for e in graph.edges() {
            if e.u != v && e.v != v {
                uf.union(e.u.0, e.v.0);
            }
        }
        let comps: std::collections::HashSet<usize> =
            (0..n).filter(|&x| x != v.0).map(|x| uf.find(x)).collect();
        best = best.max(comps.len());
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn components_of_connected_and_disconnected_graphs() {
        let g = generators::ring(6);
        assert_eq!(connected_components(&g).len(), 1);
        let mut g = Graph::new(5);
        g.add_edge(NodeId(0), NodeId(1), 1);
        g.add_edge(NodeId(2), NodeId(3), 1);
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![NodeId(0), NodeId(1)]);
        assert_eq!(comps[2], vec![NodeId(4)]);
    }

    #[test]
    fn histogram_and_leaves_of_a_star_tree() {
        let t = Tree::from_parents(
            std::iter::once(None)
                .chain((1..6).map(|_| Some(NodeId(0))))
                .collect(),
        )
        .unwrap();
        let hist = tree_degree_histogram(&t);
        assert_eq!(hist[5], 1);
        assert_eq!(hist[1], 5);
        assert_eq!(leaf_count(&t), 5);
        assert!(!is_hamiltonian_path(&t));
        assert!(is_hamiltonian_path(&Tree::path(6)));
    }

    #[test]
    fn lower_bound_is_consistent_with_exact_optimum() {
        for seed in 0..6 {
            let g = generators::random_connected(10, 0.25, seed);
            let (opt, _) = crate::fr::exact_min_degree_spanning_tree(&g, 16);
            let lb = min_degree_lower_bound(&g);
            assert!(
                lb <= opt,
                "seed {seed}: lower bound {lb} exceeds optimum {opt}"
            );
        }
    }

    #[test]
    fn lower_bound_on_special_graphs() {
        assert_eq!(min_degree_lower_bound(&generators::star(8)), 7);
        assert!(min_degree_lower_bound(&generators::ring(8)) <= 2);
        assert_eq!(min_degree_lower_bound(&generators::path(2)), 1);
    }
}
