//! Minimum-degree spanning trees: the sequential Fürer–Raghavachari (+1)-approximation,
//! FR-tree certification (Definition 8.1 of the paper), and an exact branch-and-bound
//! search for small instances.
//!
//! The paper's MDST construction (§VIII) stabilizes on *FR-trees*: spanning trees that
//! admit a good/bad marking certifying that their degree is at most `OPT + 1`. This
//! module provides the sequential ground truth: the FR local-search algorithm
//! (Algorithm 4), the marking/certification procedure, and exact optima for small `n`.

use std::collections::HashMap;

use crate::graph::{EdgeId, Graph};
use crate::ids::NodeId;
use crate::tree::Tree;
use crate::union_find::UnionFind;

/// A good/bad marking of the nodes certifying that a tree is an FR-tree
/// (Definition 8.1): max-degree nodes are bad, degree ≤ k−2 nodes are good, and no graph
/// edge joins two good nodes lying in different fragments (components of the tree minus
/// the bad nodes).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrCertificate {
    /// The tree degree `k` the certificate refers to.
    pub degree: usize,
    /// `good[v]` is `true` iff node `v` is marked good.
    pub good: Vec<bool>,
    /// `fragment[v]` identifies the fragment of `v` (meaningful only for good nodes):
    /// the smallest dense index in the fragment.
    pub fragment: Vec<usize>,
}

impl FrCertificate {
    /// `true` if `v` is marked good.
    pub fn is_good(&self, v: NodeId) -> bool {
        self.good[v.0]
    }

    /// Verifies the three conditions of Definition 8.1 against `graph` and `tree`.
    pub fn verify(&self, graph: &Graph, tree: &Tree) -> bool {
        let n = graph.node_count();
        if self.good.len() != n || self.fragment.len() != n {
            return false;
        }
        let k = tree.max_degree();
        if k != self.degree {
            return false;
        }
        for v in tree.nodes() {
            let d = tree.degree(v);
            // (1) every node with degree k is bad.
            if d == k && self.good[v.0] {
                return false;
            }
            // (2) every node with degree ≤ k−2 is good.
            if d + 2 <= k && !self.good[v.0] {
                return false;
            }
        }
        // Recompute fragments (components of T minus bad nodes) and check they match the
        // certificate, then check (3): no graph edge between good nodes of different
        // fragments.
        let frag = fragments_of_good_nodes(tree, &self.good);
        for v in 0..n {
            if self.good[v] && frag[v] != self.fragment[v] {
                return false;
            }
        }
        for e in graph.edges() {
            let (u, v) = (e.u.0, e.v.0);
            if self.good[u] && self.good[v] && frag[u] != frag[v] {
                return false;
            }
        }
        true
    }
}

/// Components of the forest obtained from `tree` by deleting the nodes marked bad,
/// identified by the smallest dense index they contain. Bad nodes get their own index.
fn fragments_of_good_nodes(tree: &Tree, good: &[bool]) -> Vec<usize> {
    let n = tree.node_count();
    let mut uf = UnionFind::new(n);
    for v in tree.nodes() {
        if let Some(p) = tree.parent(v) {
            if good[v.0] && good[p.0] {
                uf.union(v.0, p.0);
            }
        }
    }
    let mut smallest: HashMap<usize, usize> = HashMap::new();
    for v in 0..n {
        let r = uf.find(v);
        let entry = smallest.entry(r).or_insert(v);
        if v < *entry {
            *entry = v;
        }
    }
    (0..n).map(|v| smallest[&uf.find(v)]).collect()
}

/// Result of the good-propagation phase of the FR algorithm on a given tree.
#[derive(Clone, Debug)]
struct Propagation {
    /// Final good marks.
    good: Vec<bool>,
    /// For nodes that started bad and were marked good: the non-tree witness edge whose
    /// fundamental cycle contains them.
    witness: HashMap<NodeId, EdgeId>,
    /// A max-degree node that became good, if any (then the tree is improvable).
    improvable: Option<NodeId>,
}

/// The marking/propagation phase of Fürer–Raghavachari (Algorithm 4, lines 3–9):
/// nodes of degree ≥ d−1 start bad, all others good; repeatedly, a non-tree edge whose
/// endpoints are good and lie in different fragments marks every bad node on its
/// fundamental cycle good (recording the edge as witness) and merges the fragments.
fn propagate(graph: &Graph, tree: &Tree) -> Propagation {
    let n = graph.node_count();
    let d = tree.max_degree();
    let mut good: Vec<bool> = tree.nodes().map(|v| tree.degree(v) + 1 < d).collect();
    let mut uf = UnionFind::new(n);
    for v in tree.nodes() {
        if let Some(p) = tree.parent(v) {
            if good[v.0] && good[p.0] {
                uf.union(v.0, p.0);
            }
        }
    }
    let mut witness: HashMap<NodeId, EdgeId> = HashMap::new();
    let mut improvable: Option<NodeId> = None;
    let mut changed = true;
    while changed && improvable.is_none() {
        changed = false;
        for e in graph.edge_ids() {
            let edge = graph.edge(e);
            if tree.contains_edge(edge.u, edge.v) {
                continue;
            }
            if !(good[edge.u.0] && good[edge.v.0]) {
                continue;
            }
            if uf.same(edge.u.0, edge.v.0) {
                continue;
            }
            // This edge connects two different fragments of good nodes: every bad node
            // on its fundamental cycle can be improved, so mark it good.
            let cycle = tree.fundamental_cycle_nodes(graph, e);
            for &x in &cycle {
                if !good[x.0] {
                    good[x.0] = true;
                    witness.insert(x, e);
                    if tree.degree(x) == d && improvable.is_none() {
                        improvable = Some(x);
                    }
                }
            }
            // Merge the fragments along the cycle (all cycle nodes are now good).
            for w in cycle.windows(2) {
                uf.union(w[0].0, w[1].0);
            }
            uf.union(edge.u.0, edge.v.0);
            changed = true;
            if improvable.is_some() {
                break;
            }
        }
    }
    Propagation {
        good,
        witness,
        improvable,
    }
}

/// Attempts to certify `tree` as an FR-tree. Returns the certificate if the
/// propagation fixed point leaves every max-degree node bad (Definition 8.1), or `None`
/// if the tree is improvable (hence not an FR-tree with this marking).
pub fn fr_certificate(graph: &Graph, tree: &Tree) -> Option<FrCertificate> {
    if !tree.is_spanning_tree_of(graph) {
        return None;
    }
    let prop = propagate(graph, tree);
    if prop.improvable.is_some() {
        return None;
    }
    let fragment = fragments_of_good_nodes(tree, &prop.good);
    Some(FrCertificate {
        degree: tree.max_degree(),
        good: prop.good,
        fragment,
    })
}

/// `true` if the tree is certified as an FR-tree (hence has degree at most `OPT + 1`).
pub fn is_fr_tree(graph: &Graph, tree: &Tree) -> bool {
    fr_certificate(graph, tree).is_some()
}

/// Recursively applies the improvement rooted at the good node `x` (which carries a
/// witness edge): first reduces the degree of any witness-edge endpoint that is still at
/// degree ≥ d−1, then performs the swap that removes a tree edge incident to `x` on the
/// witness cycle. Returns the improved tree, or `None` if the nested structure was
/// invalidated (the caller then restarts the outer loop).
fn apply_improvement(
    graph: &Graph,
    tree: &Tree,
    x: NodeId,
    d: usize,
    witness: &HashMap<NodeId, EdgeId>,
    depth: usize,
) -> Option<Tree> {
    if depth > graph.node_count() {
        return None;
    }
    let &e = witness.get(&x)?;
    let edge = graph.edge(e);
    let mut current = tree.clone();
    for endpoint in [edge.u, edge.v] {
        if current.degree(endpoint) + 1 >= d {
            // The endpoint would reach degree d after the swap: reduce it first
            // (this is the "well nested" sequence of §VII).
            current = apply_improvement(graph, &current, endpoint, d, witness, depth + 1)?;
        }
    }
    if current.contains_edge(edge.u, edge.v) {
        return None;
    }
    let cycle_edges = current.fundamental_cycle_tree_edges(graph, e);
    let f = cycle_edges
        .into_iter()
        .find(|&f| graph.edge(f).touches(x))?;
    Some(current.with_swap(graph, e, f))
}

/// Statistics of a Fürer–Raghavachari run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FrStats {
    /// Number of applied improvements (well-nested swap sequences).
    pub improvements: usize,
    /// Number of individual edge swaps performed across all improvements.
    pub swaps: usize,
    /// Degree of the initial tree.
    pub initial_degree: usize,
    /// Degree of the final tree.
    pub final_degree: usize,
}

/// The sequential Fürer–Raghavachari algorithm (Algorithm 4 of the paper), starting from
/// `initial` (any spanning tree of `graph`). Returns an FR-tree (degree ≤ OPT+1) together
/// with run statistics.
///
/// # Panics
///
/// Panics if `initial` is not a spanning tree of `graph`.
pub fn furer_raghavachari_from(graph: &Graph, initial: &Tree) -> (Tree, FrStats) {
    assert!(
        initial.is_spanning_tree_of(graph),
        "initial tree must span the graph"
    );
    let mut tree = initial.clone();
    let mut stats = FrStats {
        initial_degree: tree.max_degree(),
        final_degree: tree.max_degree(),
        ..FrStats::default()
    };
    // Each successful improvement reduces (degree, #max-degree nodes) lexicographically,
    // so at most n·d iterations happen; we add a hard guard for safety.
    let guard = graph.node_count() * graph.node_count() + 10;
    for _ in 0..guard {
        let d = tree.max_degree();
        if d <= 2 {
            break; // A Hamiltonian path: cannot do better.
        }
        let prop = propagate(graph, &tree);
        let Some(w) = prop.improvable else {
            break; // All max-degree nodes are bad: the tree is an FR-tree.
        };
        let before_edges = tree.edge_ids_in(graph).len();
        match apply_improvement(graph, &tree, w, d, &prop.witness, 0) {
            Some(next) => {
                debug_assert!(next.is_spanning_tree_of(graph));
                debug_assert_eq!(next.edge_ids_in(graph).len(), before_edges);
                // Count swaps as symmetric difference / 2.
                let old: std::collections::HashSet<EdgeId> =
                    tree.edge_ids_in(graph).into_iter().collect();
                let new: std::collections::HashSet<EdgeId> =
                    next.edge_ids_in(graph).into_iter().collect();
                stats.swaps += old.symmetric_difference(&new).count() / 2;
                stats.improvements += 1;
                tree = next;
            }
            None => break,
        }
    }
    stats.final_degree = tree.max_degree();
    (tree, stats)
}

/// Applies *one* Fürer–Raghavachari improvement (a single well-nested swap sequence
/// reducing the number of max-degree nodes), if the tree admits one. Returns `None` when
/// the tree is already an FR-tree (or the nested application was invalidated).
///
/// # Panics
///
/// Panics if `tree` is not a spanning tree of `graph`.
pub fn improve_once(graph: &Graph, tree: &Tree) -> Option<Tree> {
    assert!(
        tree.is_spanning_tree_of(graph),
        "improvements need a spanning tree"
    );
    let d = tree.max_degree();
    if d <= 2 {
        return None;
    }
    let prop = propagate(graph, tree);
    let w = prop.improvable?;
    apply_improvement(graph, tree, w, d, &prop.witness, 0)
}

/// The sequential Fürer–Raghavachari algorithm starting from a BFS tree rooted at the
/// minimum-identity node.
pub fn furer_raghavachari(graph: &Graph) -> (Tree, FrStats) {
    let initial = crate::bfs::bfs_tree(graph, graph.min_ident_node());
    furer_raghavachari_from(graph, &initial)
}

/// Exact minimum spanning-tree degree `∆_min(G)` by branch-and-bound, feasible only for
/// small graphs (`n ≲ 20`). Returns the optimal degree and one optimal tree.
///
/// # Panics
///
/// Panics if the graph is disconnected or has more than `max_nodes` nodes.
pub fn exact_min_degree_spanning_tree(graph: &Graph, max_nodes: usize) -> (usize, Tree) {
    assert!(
        graph.is_connected(),
        "minimum-degree spanning trees need a connected graph"
    );
    assert!(
        graph.node_count() <= max_nodes,
        "exact search is limited to {max_nodes} nodes"
    );
    let n = graph.node_count();
    if n == 1 {
        return (0, Tree::from_parents(vec![None]).expect("singleton tree"));
    }
    // Try degree bounds k = 2, 3, … until a spanning tree within the bound exists.
    for k in 2..n {
        if let Some(tree) = spanning_tree_with_degree_at_most(graph, k) {
            return (k, tree);
        }
    }
    // A star always works with degree n − 1.
    let (t, _) = furer_raghavachari(graph);
    (t.max_degree(), t)
}

/// Backtracking search for a spanning tree with maximum degree at most `k`.
fn spanning_tree_with_degree_at_most(graph: &Graph, k: usize) -> Option<Tree> {
    let n = graph.node_count();
    let edges: Vec<EdgeId> = graph.edge_ids().collect();
    let mut degree = vec![0usize; n];
    let mut chosen: Vec<EdgeId> = Vec::new();
    let mut uf = UnionFind::new(n);

    fn backtrack(
        graph: &Graph,
        edges: &[EdgeId],
        idx: usize,
        k: usize,
        degree: &mut Vec<usize>,
        chosen: &mut Vec<EdgeId>,
        uf: &mut UnionFind,
    ) -> bool {
        let n = graph.node_count();
        if chosen.len() == n - 1 {
            return true;
        }
        if idx >= edges.len() {
            return false;
        }
        // Prune: not enough remaining edges to finish the tree.
        if edges.len() - idx < (n - 1) - chosen.len() {
            return false;
        }
        let e = edges[idx];
        let edge = graph.edge(e);
        let (u, v) = (edge.u.0, edge.v.0);
        // Branch 1: take the edge if it keeps the forest acyclic and within the degree
        // budget.
        if degree[u] < k && degree[v] < k && !uf.same(u, v) {
            let snapshot = uf.clone();
            uf.union(u, v);
            degree[u] += 1;
            degree[v] += 1;
            chosen.push(e);
            if backtrack(graph, edges, idx + 1, k, degree, chosen, uf) {
                return true;
            }
            chosen.pop();
            degree[u] -= 1;
            degree[v] -= 1;
            *uf = snapshot;
        }
        // Branch 2: skip the edge.
        backtrack(graph, edges, idx + 1, k, degree, chosen, uf)
    }

    if backtrack(graph, &edges, 0, k, &mut degree, &mut chosen, &mut uf) {
        Some(Tree::from_edge_set(graph, &chosen, graph.min_ident_node()).expect("valid tree"))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn hamiltonian_graphs_get_low_degree_trees() {
        // On a ring the unique spanning trees are Hamiltonian paths: degree 2.
        let g = generators::ring(12);
        let (t, stats) = furer_raghavachari(&g);
        assert_eq!(t.max_degree(), 2);
        assert!(is_fr_tree(&g, &t));
        assert!(stats.final_degree <= stats.initial_degree);
    }

    #[test]
    fn star_graph_forces_high_degree() {
        // The star has a unique spanning tree: the star itself.
        let g = generators::star(9);
        let (t, _) = furer_raghavachari(&g);
        assert_eq!(t.max_degree(), 8);
        assert!(is_fr_tree(&g, &t));
        let cert = fr_certificate(&g, &t).unwrap();
        assert!(cert.verify(&g, &t));
    }

    #[test]
    fn fr_is_within_one_of_optimal_on_small_graphs() {
        for seed in 0..10 {
            let g = generators::random_connected(11, 0.3, seed);
            let (t, _) = furer_raghavachari(&g);
            let (opt, opt_tree) = exact_min_degree_spanning_tree(&g, 16);
            assert_eq!(opt_tree.max_degree(), opt);
            assert!(
                t.max_degree() <= opt + 1,
                "seed {seed}: FR degree {} vs OPT {opt}",
                t.max_degree()
            );
            assert!(
                is_fr_tree(&g, &t),
                "seed {seed}: result must be FR-certified"
            );
        }
    }

    #[test]
    fn fr_improves_a_deliberately_bad_initial_tree() {
        // Complete graph: OPT = 2 (Hamiltonian path); start from the star.
        let g = generators::complete(10);
        let star_parents: Vec<Option<NodeId>> = std::iter::once(None)
            .chain((1..10).map(|_| Some(NodeId(0))))
            .collect();
        let star = Tree::from_parents(star_parents).unwrap();
        assert_eq!(star.max_degree(), 9);
        let (t, stats) = furer_raghavachari_from(&g, &star);
        assert!(t.max_degree() <= 3, "got degree {}", t.max_degree());
        assert!(stats.improvements > 0);
        assert!(is_fr_tree(&g, &t));
    }

    #[test]
    fn certificate_verification_rejects_tampering() {
        let g = generators::random_connected(14, 0.3, 5);
        let (t, _) = furer_raghavachari(&g);
        let cert = fr_certificate(&g, &t).unwrap();
        assert!(cert.verify(&g, &t));
        // Tamper: mark a max-degree node good.
        let mut bad_cert = cert.clone();
        let w = t.max_degree_nodes()[0];
        bad_cert.good[w.0] = true;
        assert!(!bad_cert.verify(&g, &t));
        // Tamper: wrong degree.
        let mut bad_cert = cert.clone();
        bad_cert.degree += 1;
        assert!(!bad_cert.verify(&g, &t));
    }

    #[test]
    fn improvable_trees_are_not_fr_trees() {
        // Complete graph with a star tree: clearly improvable, so not an FR-tree.
        let g = generators::complete(8);
        let star_parents: Vec<Option<NodeId>> = std::iter::once(None)
            .chain((1..8).map(|_| Some(NodeId(0))))
            .collect();
        let star = Tree::from_parents(star_parents).unwrap();
        assert!(!is_fr_tree(&g, &star));
    }

    #[test]
    fn exact_search_matches_known_optima() {
        // Ring: OPT = 2. Star: OPT = n − 1. Grid 3×3: OPT = 2 (it is Hamiltonian-pathable).
        let (d, _) = exact_min_degree_spanning_tree(&generators::ring(8), 16);
        assert_eq!(d, 2);
        let (d, _) = exact_min_degree_spanning_tree(&generators::star(7), 16);
        assert_eq!(d, 6);
        let (d, t) = exact_min_degree_spanning_tree(&generators::grid(3, 3), 16);
        assert_eq!(d, 2);
        assert_eq!(t.max_degree(), 2);
    }

    #[test]
    fn fr_on_grids_and_caterpillars() {
        let g = generators::grid(4, 4);
        let (t, _) = furer_raghavachari(&g);
        assert!(
            t.max_degree() <= 3,
            "grid FR degree {} too high",
            t.max_degree()
        );
        assert!(is_fr_tree(&g, &t));

        let g = generators::caterpillar(5, 2);
        let (t, _) = furer_raghavachari(&g);
        // The caterpillar is a tree: the only spanning tree is the graph itself.
        assert_eq!(t.max_degree(), 4);
        assert!(is_fr_tree(&g, &t));
    }
}
