//! The churn driver: wave-boundary event injection with measured recovery.

use stst_core::engine::{CompositionEngine, PhaseEvent};
use stst_core::ConstructionReport;
use stst_graph::Mutation;
use stst_obs::{Layer, Obs, TraceEvent};

use crate::event::TopologyEvent;
use crate::trace::ChurnTrace;

/// Measured recovery of one injected event batch (from the wave boundary before the
/// injection to the next silence).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventReport {
    /// Events in the batch.
    pub events: usize,
    /// `false` iff the batch would have severed the network and was dropped.
    pub applied: bool,
    /// Components the network would have been severed into (0 when applied).
    pub severed_components: usize,
    /// Nodes whose incident topology changed.
    pub dirty_nodes: usize,
    /// Orphaned subtrees re-anchored by the delta repair.
    pub reanchored: usize,
    /// Rounds from the injection to renewed silence (repair waves + switches).
    pub recovery_rounds: u64,
    /// Per-node label records written during the recovery.
    pub labels_written: u64,
    /// Improving switches the delta triggered.
    pub switches: u64,
    /// Whether the re-stabilized output satisfies the task's legality predicate.
    pub legal: bool,
}

/// Aggregate over a whole trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChurnSummary {
    /// Non-empty batches injected.
    pub batches: usize,
    /// Events across all applied batches.
    pub events: usize,
    /// Batches dropped because they would sever the network.
    pub severed: usize,
    /// Total recovery rounds across applied batches.
    pub total_recovery_rounds: u64,
    /// Total label records written across applied batches.
    pub total_labels_written: u64,
    /// Total improving switches across applied batches.
    pub total_switches: u64,
    /// Worst single-batch recovery rounds.
    pub max_recovery_rounds: u64,
    /// `true` iff every applied batch re-stabilized to a legal output.
    pub all_legal: bool,
}

/// Drives a [`CompositionEngine`] under live topology churn.
///
/// Injection happens **only at wave boundaries**: before every batch the driver steps
/// the engine to silence, so the mutation lands between waves — the same discipline as
/// the engine's label-corruption hook — and parallel wave execution stays bit-identical
/// at any thread count under churn. Severing batches are *dropped* and reported
/// ([`EventReport::severed_components`]): the engine never silently "repairs" a
/// partition.
pub struct ChurnDriver<'g> {
    engine: CompositionEngine<'g>,
    reports: Vec<EventReport>,
    obs: Obs,
}

impl<'g> ChurnDriver<'g> {
    /// Wraps an engine (constructed, possibly already stepped or stabilized).
    pub fn new(engine: CompositionEngine<'g>) -> Self {
        ChurnDriver {
            engine,
            reports: Vec::new(),
            obs: Obs::disabled(),
        }
    }

    /// Attaches an observability handle: every injected batch becomes one
    /// Churn-layer trace wave (with its `TopologyDelta` and recovery rounds),
    /// and the handle is forwarded to the wrapped engine so engine and
    /// executor waves land in the same trace. Determinism-transparent.
    pub fn attach_obs(&mut self, obs: Obs) {
        self.obs = obs.clone();
        self.engine.attach_obs(obs);
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &CompositionEngine<'g> {
        &self.engine
    }

    /// Hands the engine back (e.g. to inspect labels after a trace).
    pub fn into_engine(self) -> CompositionEngine<'g> {
        self.engine
    }

    /// Per-batch recovery reports, in injection order.
    pub fn reports(&self) -> &[EventReport] {
        &self.reports
    }

    /// Steps the engine to silence and returns its report (idempotent when already
    /// silent).
    pub fn stabilize(&mut self) -> ConstructionReport {
        self.engine.run()
    }

    /// Injects one batch of events at the next wave boundary and measures the
    /// recovery to renewed silence.
    pub fn inject(&mut self, events: &[TopologyEvent]) -> EventReport {
        self.engine.run();
        let mut n = self.engine.graph().node_count();
        let mut mutations: Vec<Mutation> = Vec::new();
        for event in events {
            mutations.extend(event.mutations(n));
            n = n
                .checked_add_signed(event.node_delta())
                .expect("node count stays positive");
        }
        let rounds_before = self.engine.total_rounds();
        let written_before = self.engine.labels_written();
        let switches_before = self.engine.improvements() as u64;
        let obs_wave = if self.obs.is_enabled() {
            let wave = self.obs.begin_wave(Layer::Churn);
            self.obs.emit(TraceEvent::WaveStart {
                layer: Layer::Churn,
                wave,
            });
            self.obs.counter("churn_batches_injected").inc();
            Some(wave)
        } else {
            None
        };
        let report = match self.engine.apply_topology(&mutations) {
            PhaseEvent::Partitioned { components } => EventReport {
                events: events.len(),
                applied: false,
                severed_components: components,
                dirty_nodes: 0,
                reanchored: 0,
                recovery_rounds: 0,
                labels_written: 0,
                switches: 0,
                legal: true,
            },
            PhaseEvent::TopologyApplied {
                dirty_nodes,
                reanchored,
                ..
            } => {
                let report = self.engine.run();
                EventReport {
                    events: events.len(),
                    applied: true,
                    severed_components: 0,
                    dirty_nodes,
                    reanchored,
                    recovery_rounds: self.engine.total_rounds() - rounds_before,
                    labels_written: self.engine.labels_written() - written_before,
                    switches: self.engine.improvements() as u64 - switches_before,
                    legal: report.legal,
                }
            }
            other => unreachable!("apply_topology reports deltas, got {other:?}"),
        };
        if let Some(wave) = obs_wave {
            if report.applied {
                self.obs
                    .counter("churn_events_applied")
                    .add(report.events as u64);
                self.obs.emit(TraceEvent::TopologyDelta {
                    layer: Layer::Churn,
                    wave,
                    dirty_nodes: report.dirty_nodes as u64,
                    reanchored: report.reanchored as u64,
                });
            } else {
                self.obs.counter("churn_batches_severed").inc();
            }
            self.obs.emit(TraceEvent::WaveEnd {
                layer: Layer::Churn,
                wave,
                rounds: report.recovery_rounds,
            });
        }
        self.reports.push(report.clone());
        report
    }

    /// Runs a whole trace (skipping empty batches) and aggregates the recovery costs.
    pub fn run_trace(&mut self, trace: &ChurnTrace) -> ChurnSummary {
        let mut summary = ChurnSummary {
            all_legal: true,
            ..ChurnSummary::default()
        };
        for batch in &trace.batches {
            if batch.is_empty() {
                continue;
            }
            let report = self.inject(batch);
            summary.batches += 1;
            if report.applied {
                summary.events += report.events;
                summary.total_recovery_rounds += report.recovery_rounds;
                summary.total_labels_written += report.labels_written;
                summary.total_switches += report.switches;
                summary.max_recovery_rounds =
                    summary.max_recovery_rounds.max(report.recovery_rounds);
                summary.all_legal &= report.legal;
            } else {
                summary.severed += 1;
            }
        }
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stst_core::engine::EngineTask;
    use stst_core::EngineConfig;
    use stst_graph::generators;
    use stst_graph::mst::kruskal;

    use crate::trace;

    #[test]
    fn steady_churn_keeps_the_mst_optimal() {
        let g = generators::workload(22, 0.3, 4);
        let engine = CompositionEngine::new(&g, EngineTask::Mst, EngineConfig::seeded(4));
        let mut driver = ChurnDriver::new(engine);
        let churn = trace::steady_poisson(&g, 8, 1.5, 0.2, 4);
        let summary = driver.run_trace(&churn);
        assert!(summary.all_legal);
        assert!(summary.events > 0);
        assert_eq!(driver.reports().len(), summary.batches);
        let engine = driver.into_engine();
        let g = engine.graph();
        assert_eq!(
            engine.tree().total_weight(g),
            kruskal(g).unwrap().total_weight(g),
            "the maintained tree is the MST of the churned graph"
        );
    }

    #[test]
    fn partition_batches_are_dropped_and_counted() {
        let g = generators::workload(14, 0.15, 8);
        let engine = CompositionEngine::new(&g, EngineTask::Mst, EngineConfig::seeded(8));
        let mut driver = ChurnDriver::new(engine);
        let churn = trace::partition_and_heal(&g, 8);
        let summary = driver.run_trace(&churn);
        assert!(summary.severed >= 1, "the cut contains a severing removal");
        assert!(summary.all_legal);
        // Healed: same edge count as the start.
        assert_eq!(driver.engine().graph().edge_count(), g.edge_count());
    }

    #[test]
    fn mdst_survives_weight_and_link_churn() {
        let g = generators::workload(16, 0.35, 6);
        let engine = CompositionEngine::new(&g, EngineTask::Mdst, EngineConfig::seeded(6));
        let mut driver = ChurnDriver::new(engine);
        let churn = trace::steady_poisson(&g, 6, 1.0, 0.0, 6);
        let summary = driver.run_trace(&churn);
        assert!(summary.all_legal, "every recovery certifies an FR-tree");
    }
}
