//! The topology event model: what the outside world does to the network.

use std::fmt;

use stst_graph::{Ident, Mutation, NodeId, Weight};

/// One live topology event, in the vocabulary of the system's environment. Events are
/// lowered to the graph layer's [`Mutation`]s by [`TopologyEvent::mutations`];
/// endpoints use the dense indices valid at the moment the event is applied (earlier
/// node events of the same trace shift the index space, exactly as the shadow graph of
/// the generators and the driver's sequential application see it).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyEvent {
    /// A new link comes up.
    EdgeAdd {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
        /// Weight of the new link.
        weight: Weight,
    },
    /// A link fails.
    EdgeRemove {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
    },
    /// A link's weight drifts (latency change, re-metering).
    WeightChange {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
        /// The new weight.
        weight: Weight,
    },
    /// A node joins, attaching to the listed existing nodes.
    NodeJoin {
        /// Identity of the joiner (fresh, distinct).
        ident: Ident,
        /// `(existing node, link weight)` attachments, applied in order.
        attach: Vec<(NodeId, Weight)>,
    },
    /// A node leaves together with all of its incident links.
    NodeLeave {
        /// The leaver.
        v: NodeId,
    },
}

impl TopologyEvent {
    /// Lowers the event to graph mutations. `n` is the node count of the graph the
    /// event is applied to (a joiner gets the next dense index, `n`).
    pub fn mutations(&self, n: usize) -> Vec<Mutation> {
        match self {
            TopologyEvent::EdgeAdd { u, v, weight } => vec![Mutation::AddEdge {
                u: *u,
                v: *v,
                weight: *weight,
            }],
            TopologyEvent::EdgeRemove { u, v } => vec![Mutation::RemoveEdge { u: *u, v: *v }],
            TopologyEvent::WeightChange { u, v, weight } => vec![Mutation::SetWeight {
                u: *u,
                v: *v,
                weight: *weight,
            }],
            TopologyEvent::NodeJoin { ident, attach } => {
                let mut muts = vec![Mutation::AddNode { ident: *ident }];
                let joiner = NodeId(n);
                muts.extend(attach.iter().map(|&(to, weight)| Mutation::AddEdge {
                    u: joiner,
                    v: to,
                    weight,
                }));
                muts
            }
            TopologyEvent::NodeLeave { v } => vec![Mutation::RemoveNode { v: *v }],
        }
    }

    /// How the event changes the node count (+1 join, −1 leave, 0 otherwise) — used
    /// by the driver to thread the correct `n` through a batch.
    pub fn node_delta(&self) -> isize {
        match self {
            TopologyEvent::NodeJoin { .. } => 1,
            TopologyEvent::NodeLeave { .. } => -1,
            _ => 0,
        }
    }

    /// `true` for the single-edge event kinds (the class experiment E10's incremental
    /// vs rebuild comparison is about).
    pub fn is_edge_event(&self) -> bool {
        !matches!(
            self,
            TopologyEvent::NodeJoin { .. } | TopologyEvent::NodeLeave { .. }
        )
    }
}

impl fmt::Display for TopologyEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyEvent::EdgeAdd { u, v, weight } => write!(f, "+edge {u}-{v} (w={weight})"),
            TopologyEvent::EdgeRemove { u, v } => write!(f, "-edge {u}-{v}"),
            TopologyEvent::WeightChange { u, v, weight } => {
                write!(f, "reweight {u}-{v} -> {weight}")
            }
            TopologyEvent::NodeJoin { ident, attach } => {
                write!(f, "+node ident {ident} ({} links)", attach.len())
            }
            TopologyEvent::NodeLeave { v } => write!(f, "-node {v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowering_threads_the_joiner_index() {
        let ev = TopologyEvent::NodeJoin {
            ident: 42,
            attach: vec![(NodeId(3), 7), (NodeId(0), 8)],
        };
        let muts = ev.mutations(10);
        assert_eq!(muts.len(), 3);
        assert_eq!(muts[0], Mutation::AddNode { ident: 42 });
        assert_eq!(
            muts[1],
            Mutation::AddEdge {
                u: NodeId(10),
                v: NodeId(3),
                weight: 7
            }
        );
        assert_eq!(ev.node_delta(), 1);
        assert!(!ev.is_edge_event());
        assert_eq!(TopologyEvent::NodeLeave { v: NodeId(2) }.node_delta(), -1);
        assert!(TopologyEvent::EdgeRemove {
            u: NodeId(0),
            v: NodeId(1)
        }
        .is_edge_event());
    }

    #[test]
    fn display_is_compact() {
        let ev = TopologyEvent::EdgeAdd {
            u: NodeId(1),
            v: NodeId(2),
            weight: 9,
        };
        assert_eq!(format!("{ev}"), "+edge n1-n2 (w=9)");
    }
}
