//! Live topology churn for the self-stabilizing constructions.
//!
//! Self-stabilization (Blin–Fraigniaud, ICDCS 2015) is precisely the property that the
//! system recovers from *any* transient change — yet a static graph never exercises
//! that promise on the workload it was designed for: links failing, weights drifting,
//! nodes joining and leaving. This crate turns the composition engine into a system
//! under churn:
//!
//! * [`TopologyEvent`] — the event model (edge add/remove, weight change, node
//!   join/leave), lowered to the graph layer's batched [`stst_graph::Mutation`]s;
//! * [`trace`] — seeded, deterministic trace generators: steady Poisson churn
//!   ([`trace::steady_poisson`]), link flapping ([`trace::link_flapping`]),
//!   partition-and-heal ([`trace::partition_and_heal`]) and weight drift
//!   ([`trace::weight_drift`]). Generators maintain a *shadow* copy of the evolving
//!   network and apply the same keep-connected policy as the driver, so a trace is
//!   replayable event for event — except partition-and-heal, which deliberately emits
//!   the severing cut so the [`PhaseEvent::Partitioned`] reporting path runs end to
//!   end;
//! * [`ChurnDriver`] — injects event batches **only at wave boundaries** (it steps the
//!   engine to silence before every injection), which is what keeps parallel wave
//!   execution bit-identical at any thread count under churn, and records the
//!   marginal recovery cost of every event batch (rounds, label writes, switches);
//! * [`soak`] — long-haul mixed-load runs: churn + periodic label faults + periodic
//!   durability checkpoints and kill-and-restore cycles, with a measured time series
//!   (RSS, repair latency percentiles, silence ratio, checkpoint cost) — the harness
//!   behind experiment E12.
//!
//! The differential contract — after every injected event the repaired labels and the
//! re-stabilized tree are bit-identical to a from-scratch rebuild on the mutated
//! graph — is pinned by `tests/churn_oracle.rs` at the repository root and measured by
//! experiment E10 (`stst-bench`).

pub mod driver;
pub mod event;
pub mod soak;
pub mod trace;

pub use driver::{ChurnDriver, ChurnSummary, EventReport};
pub use event::TopologyEvent;
pub use soak::{run_executor_soak, run_soak, SoakConfig, SoakReport, SoakSample};
pub use trace::ChurnTrace;

// Re-exported so churn scenarios can be scripted against this crate alone.
pub use stst_core::engine::PhaseEvent;
