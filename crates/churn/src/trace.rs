//! Seeded, deterministic churn trace generators.
//!
//! Every generator maintains a **shadow** copy of the evolving network and applies to
//! it the same keep-connected policy the driver enforces (a severing event is not
//! committed), so the emitted trace is valid event for event when replayed against the
//! engine. [`partition_and_heal`] is the deliberate exception: it emits the severing
//! cut edges so the `Partitioned` reporting path is exercised, and heals only what was
//! actually removed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use stst_graph::{Graph, Ident, NodeId, Weight};

use crate::event::TopologyEvent;

/// A churn trace: one batch of events per injection point (wave boundary). Batches
/// may be empty — a quiet wave.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChurnTrace {
    /// Event batches, in injection order.
    pub batches: Vec<Vec<TopologyEvent>>,
}

impl ChurnTrace {
    /// Total number of events across all batches.
    pub fn event_count(&self) -> usize {
        self.batches.iter().map(Vec::len).sum()
    }
}

/// Uniform draw in `[0, 1)` from the integer generator (53 mantissa bits, like
/// `rand`'s float sampling).
fn uniform(rng: &mut StdRng) -> f64 {
    rng.gen_range(0..(1u64 << 53)) as f64 / (1u64 << 53) as f64
}

/// Knuth's Poisson sampler (fine for the small per-wave rates churn uses; clamped at
/// 64 to keep pathological draws bounded).
fn poisson(rng: &mut StdRng, lambda: f64) -> usize {
    let limit = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= uniform(rng);
        if p <= limit || k >= 64 {
            return k;
        }
        k += 1;
    }
}

/// Bookkeeping shared by the generators: the shadow network plus fresh weight and
/// identity counters (weights stay pairwise distinct — the MST layer's uniqueness
/// assumption survives churn).
struct Shadow {
    graph: Graph,
    next_weight: Weight,
    next_ident: Ident,
}

impl Shadow {
    fn new(graph: &Graph) -> Self {
        Shadow {
            next_weight: graph.edges().iter().map(|e| e.weight).max().unwrap_or(0) + 1,
            next_ident: graph.nodes().map(|v| graph.ident(v)).max().unwrap_or(0) + 1,
            graph: graph.clone(),
        }
    }

    fn fresh_weight(&mut self) -> Weight {
        let w = self.next_weight;
        self.next_weight += 1;
        w
    }

    /// A uniformly random edge add between non-adjacent nodes (bounded retries).
    fn edge_add(&mut self, rng: &mut StdRng) -> Option<TopologyEvent> {
        let n = self.graph.node_count();
        for _ in 0..16 {
            let u = NodeId(rng.gen_range(0..n));
            let v = NodeId(rng.gen_range(0..n));
            if u == v || self.graph.edge_between(u, v).is_some() {
                continue;
            }
            let weight = self.fresh_weight();
            self.graph.add_edge(u, v, weight);
            return Some(TopologyEvent::EdgeAdd { u, v, weight });
        }
        None
    }

    /// A uniformly random **non-severing** edge removal (bounded retries).
    fn edge_remove(&mut self, rng: &mut StdRng) -> Option<TopologyEvent> {
        let m = self.graph.edge_count();
        if m <= 1 {
            return None;
        }
        for _ in 0..16 {
            let e = self.graph.edge(stst_graph::EdgeId(rng.gen_range(0..m)));
            let (u, v) = (e.u, e.v);
            let mut trial = self.graph.clone();
            trial.remove_edge(u, v);
            if trial.is_connected() {
                self.graph = trial;
                return Some(TopologyEvent::EdgeRemove { u, v });
            }
        }
        None
    }

    /// A weight drift on a uniformly random edge (fresh unique weight).
    fn weight_change(&mut self, rng: &mut StdRng) -> Option<TopologyEvent> {
        let m = self.graph.edge_count();
        if m == 0 {
            return None;
        }
        let e = self.graph.edge(stst_graph::EdgeId(rng.gen_range(0..m)));
        let (u, v) = (e.u, e.v);
        let weight = self.fresh_weight();
        self.graph.set_weight(u, v, weight);
        Some(TopologyEvent::WeightChange { u, v, weight })
    }

    /// A joining node with 1–3 links to random existing nodes.
    fn node_join(&mut self, rng: &mut StdRng) -> Option<TopologyEvent> {
        let n = self.graph.node_count();
        let links = 1 + rng.gen_range(0..3usize.min(n));
        let mut attach: Vec<(NodeId, Weight)> = Vec::with_capacity(links);
        while attach.len() < links {
            let to = NodeId(rng.gen_range(0..n));
            if attach.iter().any(|&(t, _)| t == to) {
                continue;
            }
            let w = self.fresh_weight();
            attach.push((to, w));
        }
        let ident = self.next_ident;
        self.next_ident += 1;
        let joiner = self.graph.add_node(ident);
        for &(to, w) in &attach {
            self.graph.add_edge(joiner, to, w);
        }
        Some(TopologyEvent::NodeJoin { ident, attach })
    }

    /// A uniformly random **non-severing** node departure (bounded retries; keeps at
    /// least 3 nodes so the network stays a meaningful instance).
    fn node_leave(&mut self, rng: &mut StdRng) -> Option<TopologyEvent> {
        let n = self.graph.node_count();
        if n <= 3 {
            return None;
        }
        for _ in 0..16 {
            let v = NodeId(rng.gen_range(0..n));
            let mut trial = self.graph.clone();
            trial.remove_node(v);
            if trial.is_connected() {
                self.graph = trial;
                return Some(TopologyEvent::NodeLeave { v });
            }
        }
        None
    }
}

/// Steady churn: at each of `waves` injection points, a Poisson(`rate`)-sized batch of
/// events. A `node_fraction` of the event mass is node churn (half joins, half
/// leaves); the rest splits evenly between edge adds, non-severing edge removals and
/// weight drifts. `node_fraction = 0.0` yields the pure single-edge-event workload of
/// experiment E10's headline comparison.
pub fn steady_poisson(
    graph: &Graph,
    waves: usize,
    rate: f64,
    node_fraction: f64,
    seed: u64,
) -> ChurnTrace {
    assert!((0.0..=1.0).contains(&node_fraction));
    let mut shadow = Shadow::new(graph);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc8_0a_11);
    let mut batches = Vec::with_capacity(waves);
    for _ in 0..waves {
        let k = poisson(&mut rng, rate);
        let mut batch = Vec::with_capacity(k);
        for _ in 0..k {
            let roll = uniform(&mut rng);
            let event = if roll < node_fraction / 2.0 {
                shadow.node_join(&mut rng)
            } else if roll < node_fraction {
                shadow.node_leave(&mut rng)
            } else {
                let edge_roll =
                    (roll - node_fraction) / (1.0 - node_fraction).max(f64::MIN_POSITIVE);
                if edge_roll < 1.0 / 3.0 {
                    shadow.edge_add(&mut rng)
                } else if edge_roll < 2.0 / 3.0 {
                    shadow.edge_remove(&mut rng)
                } else {
                    shadow.weight_change(&mut rng)
                }
            };
            batch.extend(event);
        }
        batches.push(batch);
    }
    ChurnTrace { batches }
}

/// Link flapping: the edge `{u, v}` goes down and comes back up `flaps` times (one
/// event per batch, removal first; an even `flaps` restores the link). The classic
/// unstable-backbone scenario.
///
/// # Panics
///
/// Panics if the edge does not exist or is a bridge (a flap would sever the network —
/// use [`partition_and_heal`] to exercise severing).
pub fn link_flapping(graph: &Graph, u: NodeId, v: NodeId, flaps: usize) -> ChurnTrace {
    let e = graph
        .edge_between(u, v)
        .expect("the flapping link must exist");
    let weight = graph.weight(e);
    {
        let mut trial = graph.clone();
        trial.remove_edge(u, v);
        assert!(
            trial.is_connected(),
            "a flapping bridge would sever the network"
        );
    }
    let batches = (0..flaps)
        .map(|i| {
            if i % 2 == 0 {
                vec![TopologyEvent::EdgeRemove { u, v }]
            } else {
                vec![TopologyEvent::EdgeAdd { u, v, weight }]
            }
        })
        .collect();
    ChurnTrace { batches }
}

/// Partition-and-heal: a random node split's cross edges fail one by one — including
/// the final severing ones, which the engine must *report* (`Partitioned`) rather than
/// commit — and then the actually-removed links heal in reverse order.
pub fn partition_and_heal(graph: &Graph, seed: u64) -> ChurnTrace {
    use rand::seq::SliceRandom;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9a_27);
    let n = graph.node_count();
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    let mut side = vec![false; n];
    for &v in order.iter().take(n / 2) {
        side[v] = true;
    }
    let cross: Vec<(NodeId, NodeId, Weight)> = graph
        .edges()
        .iter()
        .filter(|e| side[e.u.0] != side[e.v.0])
        .map(|e| (e.u, e.v, e.weight))
        .collect();
    let mut shadow = graph.clone();
    let mut batches: Vec<Vec<TopologyEvent>> = Vec::new();
    let mut removed: Vec<(NodeId, NodeId, Weight)> = Vec::new();
    for &(u, v, w) in &cross {
        // Emit the removal unconditionally; track on the shadow whether the driver
        // will be able to commit it.
        batches.push(vec![TopologyEvent::EdgeRemove { u, v }]);
        let mut trial = shadow.clone();
        trial.remove_edge(u, v);
        if trial.is_connected() {
            shadow = trial;
            removed.push((u, v, w));
        }
    }
    for &(u, v, weight) in removed.iter().rev() {
        batches.push(vec![TopologyEvent::EdgeAdd { u, v, weight }]);
    }
    ChurnTrace { batches }
}

/// Weight drift: one re-weighted random edge per wave, weights drifting upward
/// through fresh unique values.
pub fn weight_drift(graph: &Graph, waves: usize, seed: u64) -> ChurnTrace {
    let mut shadow = Shadow::new(graph);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xd1_1f7);
    let batches = (0..waves)
        .map(|_| shadow.weight_change(&mut rng).into_iter().collect())
        .collect();
    ChurnTrace { batches }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stst_graph::generators;

    #[test]
    fn traces_are_deterministic_in_seed() {
        let g = generators::workload(24, 0.25, 3);
        assert_eq!(
            steady_poisson(&g, 10, 1.5, 0.2, 7),
            steady_poisson(&g, 10, 1.5, 0.2, 7)
        );
        assert_ne!(
            steady_poisson(&g, 10, 1.5, 0.2, 7),
            steady_poisson(&g, 10, 1.5, 0.2, 8)
        );
        assert_eq!(weight_drift(&g, 5, 1), weight_drift(&g, 5, 1));
        assert_eq!(partition_and_heal(&g, 2), partition_and_heal(&g, 2));
    }

    #[test]
    fn steady_traces_replay_cleanly_on_a_shadow() {
        // Applying the trace to a fresh copy of the graph must never panic and must
        // keep the network connected (the generator's own policy).
        let g = generators::workload(20, 0.3, 5);
        let trace = steady_poisson(&g, 12, 2.0, 0.25, 11);
        let mut replay = g.clone();
        for batch in &trace.batches {
            for event in batch {
                let n = replay.node_count();
                for m in event.mutations(n) {
                    replay.apply_mutations(&[m]);
                }
                assert!(replay.is_connected());
            }
        }
        assert!(
            trace.event_count() > 0,
            "rate 2.0 over 12 waves yields events"
        );
    }

    #[test]
    fn flapping_alternates_and_restores() {
        let g = generators::workload(12, 0.4, 2);
        // Pick a non-bridge edge.
        let e = g
            .edge_ids()
            .find(|&e| {
                let ed = *g.edge(e);
                let mut trial = g.clone();
                trial.remove_edge(ed.u, ed.v);
                trial.is_connected()
            })
            .unwrap();
        let (u, v) = (g.edge(e).u, g.edge(e).v);
        let trace = link_flapping(&g, u, v, 6);
        assert_eq!(trace.batches.len(), 6);
        let mut replay = g.clone();
        for batch in &trace.batches {
            for event in batch {
                let n = replay.node_count();
                for m in event.mutations(n) {
                    replay.apply_mutations(&[m]);
                }
            }
        }
        // Even flap count: the link is back with its original weight.
        let back = replay.edge_between(u, v).expect("link restored");
        assert_eq!(replay.weight(back), g.weight(e));
    }

    #[test]
    fn partition_trace_contains_a_severing_removal() {
        let g = generators::workload(16, 0.2, 9);
        let trace = partition_and_heal(&g, 4);
        // Replaying with the driver's keep-connected policy must hit at least one
        // removal that would sever (and skip it), and end fully healed.
        let mut replay = g.clone();
        let mut skipped = 0;
        for batch in &trace.batches {
            for event in batch {
                let n = replay.node_count();
                let mut trial = replay.clone();
                for m in event.mutations(n) {
                    trial.apply_mutations(&[m]);
                }
                if trial.is_connected() {
                    replay = trial;
                } else {
                    skipped += 1;
                }
            }
        }
        assert!(skipped >= 1, "the cut must contain a severing removal");
        assert_eq!(replay.edge_count(), g.edge_count(), "healed completely");
        assert!(replay.is_connected());
    }
}
