//! Long-haul soak runs: churn + faults + periodic checkpoint/kill/restore cycles.
//!
//! The churn driver answers "does one event recover correctly?"; the soak harness
//! answers the systems question behind experiment E12: does the composition survive
//! *hours* of mixed load — steady topology churn, periodic label corruption, periodic
//! durability checkpoints, and full kill-and-restore cycles — with bounded memory and
//! bounded repair latency? Every wave is measured (wall-clock repair time, recovery
//! rounds, resident set size, checkpoint cost), and the report aggregates the series
//! into the percentiles the benchmark emits.
//!
//! A restore inside the soak is deliberately *not* special-cased: the restored
//! snapshot may carry unresolved label corruption (a fault wave and a checkpoint wave
//! can coincide), in which case the engine's verification wave detects and repairs it
//! — restore is just self-stabilization from a configuration that happens to come
//! from disk.

use std::time::Instant;

use stst_core::engine::{CompositionEngine, EngineTask, PhaseEvent};
use stst_core::{Algorithm, EngineConfig, Executor, ExecutorConfig, SchedulerKind, Snapshot};
use stst_graph::{Graph, Mutation, NodeId};
use stst_obs::{summarize_waves, Layer, Obs, TraceEvent, WavePoint};

use crate::trace;

/// Resident set size of the current process in bytes (re-exported from
/// [`stst_obs`], where the sampler now lives so every harness shares it).
pub use stst_obs::rss_bytes;

/// Configuration of a soak run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SoakConfig {
    /// Injection points (wave boundaries) to drive.
    pub waves: usize,
    /// Poisson rate of topology events per wave.
    pub churn_rate: f64,
    /// Fraction of churn events that are node joins/leaves (0 = link churn only).
    pub node_fraction: f64,
    /// Inject label corruption every this many waves (0 = never).
    pub fault_period: usize,
    /// Labels corrupted per fault wave.
    pub fault_burst: usize,
    /// Take a durability checkpoint every this many waves (0 = never).
    pub checkpoint_period: usize,
    /// Kill the engine and restore from the snapshot every this many checkpoints
    /// (0 = checkpoints are taken but never restored from).
    pub restore_period: usize,
    /// Seed for the trace generator and the engine.
    pub seed: u64,
    /// Worker threads for the engine's parallel waves.
    pub threads: usize,
    /// Daemon for the guarded-rule phases (synchronous at large scale — the central
    /// daemon's one-activation-per-step bookkeeping does not reach 10⁶ nodes).
    pub scheduler: SchedulerKind,
    /// Step budget for the guarded-rule phases.
    pub max_steps: u64,
}

impl SoakConfig {
    /// A short mixed-load soak: every stressor enabled, sized for CI.
    pub fn smoke(seed: u64) -> Self {
        SoakConfig {
            waves: 24,
            churn_rate: 1.5,
            node_fraction: 0.0,
            fault_period: 5,
            fault_burst: 2,
            checkpoint_period: 4,
            restore_period: 2,
            seed,
            threads: 1,
            scheduler: SchedulerKind::Central,
            max_steps: 5_000_000,
        }
    }
}

/// One wave of the soak time series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SoakSample {
    /// Wave index.
    pub wave: usize,
    /// Churn events injected this wave.
    pub events: usize,
    /// Labels corrupted this wave.
    pub faults: usize,
    /// Rounds from the injection(s) to renewed silence.
    pub recovery_rounds: u64,
    /// Wall-clock milliseconds spent repairing this wave (churn + fault recovery).
    pub repair_ms: f64,
    /// Resident set size after the wave, in bytes (0 where unavailable).
    pub rss_bytes: u64,
    /// Wall-clock milliseconds spent serializing the checkpoint (0 when none).
    pub checkpoint_ms: f64,
    /// Snapshot size in bytes (0 when no checkpoint was taken).
    pub checkpoint_bytes: usize,
    /// Whether this wave ended with a kill-and-restore cycle.
    pub restored: bool,
}

/// Aggregated outcome of a soak run.
#[derive(Clone, Debug, PartialEq)]
pub struct SoakReport {
    /// Per-wave time series, in wave order.
    pub samples: Vec<SoakSample>,
    /// Waves driven.
    pub waves: usize,
    /// Total churn events applied.
    pub events: usize,
    /// Total labels corrupted by fault injection.
    pub faults: usize,
    /// Checkpoints taken.
    pub checkpoints: usize,
    /// Kill-and-restore cycles performed.
    pub restores: usize,
    /// Label families rebuilt by restores (non-zero when a snapshot carried
    /// unresolved corruption or mid-repair state).
    pub restore_rebuilds: usize,
    /// Peak resident set size observed, in bytes (0 where unavailable).
    pub peak_rss_bytes: u64,
    /// Median per-wave repair wall time.
    pub p50_repair_ms: f64,
    /// 99th-percentile per-wave repair wall time.
    pub p99_repair_ms: f64,
    /// Worst per-wave repair wall time.
    pub max_repair_ms: f64,
    /// Fraction of waves that needed no recovery at all (already silent).
    pub silence_ratio: f64,
    /// Mean checkpoint serialization time across checkpoints taken.
    pub mean_checkpoint_ms: f64,
    /// Largest snapshot produced.
    pub max_checkpoint_bytes: usize,
    /// Whether the final stabilized output satisfies the task's legality predicate.
    pub legal: bool,
    /// Engine rounds at the end of the soak.
    pub total_rounds: u64,
    /// Wall-clock duration of the whole soak in milliseconds.
    pub wall_ms: f64,
}

/// Converts the soak time series into the shared summarizer's wave points.
fn wave_points(samples: &[SoakSample]) -> Vec<WavePoint> {
    samples
        .iter()
        .map(|s| WavePoint {
            repair_ms: s.repair_ms,
            recovery_rounds: s.recovery_rounds,
            rss_bytes: s.rss_bytes,
            checkpoint_ms: s.checkpoint_ms,
            checkpoint_bytes: s.checkpoint_bytes,
        })
        .collect()
}

/// Runs a mixed churn + fault + checkpoint/restore soak against a fresh engine on
/// `graph` and returns the measured report.
///
/// The engine is booted through a checkpoint/restore roundtrip so it owns its
/// network: kill-and-restore cycles then replace it wholesale, exactly like a
/// process restart would.
pub fn run_soak(graph: &Graph, task: EngineTask, config: &SoakConfig) -> SoakReport {
    run_soak_observed(graph, task, config, Obs::disabled())
}

/// [`run_soak`] with an observability handle attached: each wave of the soak
/// becomes one Soak-layer trace wave carrying its fault, checkpoint and
/// restore events, the handle rides down through the engine (and its inner
/// executor), and the process RSS is sampled once per wave. Passing
/// `Obs::disabled()` is exactly [`run_soak`] — instrumentation is
/// determinism-transparent, so the measured series differs only in wall-clock
/// noise.
pub fn run_soak_observed(
    graph: &Graph,
    task: EngineTask,
    config: &SoakConfig,
    obs: Obs,
) -> SoakReport {
    let start = Instant::now();
    let trace = trace::steady_poisson(
        graph,
        config.waves,
        config.churn_rate,
        config.node_fraction,
        config.seed,
    );
    let engine_config = EngineConfig::seeded(config.seed)
        .with_scheduler(config.scheduler)
        .with_max_steps(config.max_steps)
        .with_threads(config.threads.max(1));

    let mut engine: CompositionEngine<'static> = {
        let boot = CompositionEngine::new(graph, task, engine_config);
        let snap = boot.checkpoint();
        CompositionEngine::restore(&snap, config.threads.max(1))
            .expect("a self-produced boot snapshot restores")
            .0
    };
    engine.attach_obs(obs.clone());
    engine.run();

    let mut samples = Vec::with_capacity(config.waves);
    let mut events_total = 0usize;
    let mut faults_total = 0usize;
    let mut checkpoints = 0usize;
    let mut restores = 0usize;
    let mut restore_rebuilds = 0usize;

    for (wave, batch) in trace.batches.iter().enumerate() {
        let rounds_before = engine.total_rounds();
        let repair_start = Instant::now();
        let obs_wave = if obs.is_enabled() {
            let w = obs.begin_wave(Layer::Soak);
            obs.emit(TraceEvent::WaveStart {
                layer: Layer::Soak,
                wave: w,
            });
            Some(w)
        } else {
            None
        };

        // Churn: lower the batch to graph mutations and let the engine repair.
        if !batch.is_empty() {
            let mut n = engine.graph().node_count();
            let mut mutations: Vec<Mutation> = Vec::new();
            for event in batch {
                mutations.extend(event.mutations(n));
                n = n
                    .checked_add_signed(event.node_delta())
                    .expect("node count stays positive");
            }
            if let PhaseEvent::Partitioned { .. } = engine.apply_topology(&mutations) {
                // steady_poisson never emits a severing batch; dropped defensively.
            }
            events_total += batch.len();
        }

        // Fault: corrupt labels at the wave boundary.
        let mut faults = 0usize;
        if config.fault_period > 0 && (wave + 1) % config.fault_period == 0 {
            engine.run();
            faults = engine.corrupt_random_labels(config.fault_burst).len();
            faults_total += faults;
            if let Some(w) = obs_wave {
                obs.counter("soak_faults_injected").add(faults as u64);
                obs.emit(TraceEvent::CorruptionInjected {
                    layer: Layer::Soak,
                    wave: w,
                    nodes: faults as u64,
                });
            }
        }

        // Checkpoint — possibly *carrying* the unresolved fault — and, on the
        // restore cadence, kill the engine and reload from the serialized bytes.
        let mut checkpoint_ms = 0.0f64;
        let mut checkpoint_bytes = 0usize;
        let mut restored = false;
        if config.checkpoint_period > 0 && (wave + 1) % config.checkpoint_period == 0 {
            let t = Instant::now();
            let snap = engine.checkpoint();
            let bytes = snap.to_bytes();
            checkpoint_ms = t.elapsed().as_secs_f64() * 1e3;
            checkpoint_bytes = bytes.len();
            checkpoints += 1;
            if let Some(w) = obs_wave {
                obs.counter("soak_checkpoints").inc();
                obs.emit(TraceEvent::Checkpoint {
                    layer: Layer::Soak,
                    wave: w,
                    bytes: bytes.len() as u64,
                    ms: checkpoint_ms,
                });
            }
            if config.restore_period > 0 && checkpoints.is_multiple_of(config.restore_period) {
                let restore_timer = obs.is_enabled().then(Instant::now);
                let reloaded = Snapshot::from_bytes(&bytes)
                    .expect("a freshly serialized snapshot parses back");
                let (next, outcome) = CompositionEngine::restore(&reloaded, config.threads.max(1))
                    .expect("a self-produced snapshot restores");
                engine = next;
                // A restored engine comes up with observability detached.
                engine.attach_obs(obs.clone());
                restores += 1;
                restore_rebuilds += outcome.families_rebuilt;
                restored = true;
                if let Some(w) = obs_wave {
                    obs.counter("soak_restores").inc();
                    obs.emit(TraceEvent::Restore {
                        layer: Layer::Soak,
                        wave: w,
                        bytes: bytes.len() as u64,
                        ms: restore_timer.map_or(0.0, |t| t.elapsed().as_secs_f64() * 1e3),
                    });
                }
            }
        }

        // Recover to silence; everything since the injection is this wave's repair.
        engine.run();
        let recovery_rounds = engine.total_rounds() - rounds_before;
        let rss = if obs.is_enabled() {
            obs.sample_rss()
        } else {
            rss_bytes()
        };
        samples.push(SoakSample {
            wave,
            events: batch.len(),
            faults,
            recovery_rounds,
            repair_ms: repair_start.elapsed().as_secs_f64() * 1e3,
            rss_bytes: rss,
            checkpoint_ms,
            checkpoint_bytes,
            restored,
        });
        if let Some(w) = obs_wave {
            obs.emit(TraceEvent::WaveEnd {
                layer: Layer::Soak,
                wave: w,
                rounds: recovery_rounds,
            });
        }
    }

    let report = engine.report();
    if obs.is_enabled() {
        obs.emit(TraceEvent::SilenceReached {
            layer: Layer::Soak,
            wave: obs.peek_wave(Layer::Soak),
            rounds: engine.total_rounds(),
        });
    }
    let summary = summarize_waves(&wave_points(&samples));
    SoakReport {
        waves: samples.len(),
        events: events_total,
        faults: faults_total,
        checkpoints,
        restores,
        restore_rebuilds,
        peak_rss_bytes: summary.peak_rss_bytes,
        p50_repair_ms: summary.p50_repair_ms,
        p99_repair_ms: summary.p99_repair_ms,
        max_repair_ms: summary.max_repair_ms,
        silence_ratio: summary.silence_ratio,
        mean_checkpoint_ms: summary.mean_checkpoint_ms,
        max_checkpoint_bytes: summary.max_checkpoint_bytes,
        legal: report.legal,
        total_rounds: engine.total_rounds(),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        samples,
    }
}

/// Runs a register-fault + checkpoint/restore soak against the *guarded-rule
/// executor* layer — the configuration that reaches n = 10⁶ on one host, where the
/// full composition engine does not (see `BENCH_space.json`: the n = 10⁵ MST
/// composition alone costs ~10⁷ guarded-rule steps).
///
/// Each wave corrupts `fault_burst` random registers; every second fault wave
/// additionally hammers one rotating victim register `fault_burst` times in a row
/// (the repeated-fault generator). On the checkpoint cadence the executor's complete
/// execution state is serialized, and on the restore cadence the executor is dropped
/// and rebuilt from those bytes — [`Executor::restore`] continues bit-identically,
/// so the soak's recovery trajectory is exactly the uninterrupted one. `churn_rate`
/// and `node_fraction` are unused here: topology churn is an engine-layer stressor.
pub fn run_executor_soak<A: Algorithm + Clone>(
    graph: &Graph,
    algo: A,
    config: &SoakConfig,
) -> SoakReport {
    run_executor_soak_observed(graph, algo, config, Obs::disabled())
}

/// [`run_executor_soak`] with an observability handle attached: the handle is
/// attached to the executor (guard-batch and silence events at the Executor
/// layer), each soak wave becomes one Soak-layer trace wave, and the process
/// RSS is sampled once per wave. Passing `Obs::disabled()` is exactly
/// [`run_executor_soak`].
pub fn run_executor_soak_observed<A: Algorithm + Clone>(
    graph: &Graph,
    algo: A,
    config: &SoakConfig,
    obs: Obs,
) -> SoakReport {
    let start = Instant::now();
    let exec_config = ExecutorConfig::with_scheduler(config.seed, config.scheduler)
        .with_threads(config.threads.max(1));
    let n = graph.node_count();
    let mut exec = Executor::from_arbitrary(graph, algo.clone(), exec_config);
    exec.attach_obs(obs.clone());
    let mut legal = exec
        .run_to_quiescence(config.max_steps)
        .expect("initial stabilization converges")
        .legal;

    let mut samples = Vec::with_capacity(config.waves);
    let mut events_total = 0usize;
    let mut faults_total = 0usize;
    let mut checkpoints = 0usize;
    let mut restores = 0usize;

    for wave in 0..config.waves {
        let rounds_before = exec.rounds();
        let repair_start = Instant::now();
        let obs_wave = if obs.is_enabled() {
            let w = obs.begin_wave(Layer::Soak);
            obs.emit(TraceEvent::WaveStart {
                layer: Layer::Soak,
                wave: w,
            });
            Some(w)
        } else {
            None
        };

        let mut faults = 0usize;
        if config.fault_period > 0 && (wave + 1) % config.fault_period == 0 {
            faults += exec.corrupt_random_nodes(config.fault_burst).len();
            if (wave + 1) % (2 * config.fault_period) == 0 {
                // The repeated-fault generator: hit one register over and over.
                let victim = NodeId((wave * 7919) % n);
                faults += exec.corrupt_node_repeatedly(victim, config.fault_burst.max(1));
            }
            faults_total += faults;
            events_total += faults;
            if let Some(w) = obs_wave {
                obs.counter("soak_faults_injected").add(faults as u64);
                obs.emit(TraceEvent::CorruptionInjected {
                    layer: Layer::Soak,
                    wave: w,
                    nodes: faults as u64,
                });
            }
        }

        let mut checkpoint_ms = 0.0f64;
        let mut checkpoint_bytes = 0usize;
        let mut restored = false;
        if config.checkpoint_period > 0 && (wave + 1) % config.checkpoint_period == 0 {
            let t = Instant::now();
            let snap = exec.checkpoint();
            let bytes = snap.to_bytes();
            checkpoint_ms = t.elapsed().as_secs_f64() * 1e3;
            checkpoint_bytes = bytes.len();
            checkpoints += 1;
            if let Some(w) = obs_wave {
                obs.counter("soak_checkpoints").inc();
                obs.emit(TraceEvent::Checkpoint {
                    layer: Layer::Soak,
                    wave: w,
                    bytes: bytes.len() as u64,
                    ms: checkpoint_ms,
                });
            }
            if config.restore_period > 0 && checkpoints.is_multiple_of(config.restore_period) {
                let restore_timer = obs.is_enabled().then(Instant::now);
                let reloaded = Snapshot::from_bytes(&bytes)
                    .expect("a freshly serialized snapshot parses back");
                exec = Executor::restore(graph, algo.clone(), &reloaded, exec_config)
                    .expect("a self-produced snapshot restores");
                // A restored executor comes up with observability detached.
                exec.attach_obs(obs.clone());
                restores += 1;
                restored = true;
                if let Some(w) = obs_wave {
                    obs.counter("soak_restores").inc();
                    obs.emit(TraceEvent::Restore {
                        layer: Layer::Soak,
                        wave: w,
                        bytes: bytes.len() as u64,
                        ms: restore_timer.map_or(0.0, |t| t.elapsed().as_secs_f64() * 1e3),
                    });
                }
            }
        }

        legal = exec
            .run_to_quiescence(config.max_steps)
            .expect("recovery converges")
            .legal;
        let recovery_rounds = exec.rounds() - rounds_before;
        let rss = if obs.is_enabled() {
            obs.sample_rss()
        } else {
            rss_bytes()
        };
        samples.push(SoakSample {
            wave,
            events: faults,
            faults,
            recovery_rounds,
            repair_ms: repair_start.elapsed().as_secs_f64() * 1e3,
            rss_bytes: rss,
            checkpoint_ms,
            checkpoint_bytes,
            restored,
        });
        if let Some(w) = obs_wave {
            obs.emit(TraceEvent::WaveEnd {
                layer: Layer::Soak,
                wave: w,
                rounds: recovery_rounds,
            });
        }
    }

    if obs.is_enabled() {
        obs.emit(TraceEvent::SilenceReached {
            layer: Layer::Soak,
            wave: obs.peek_wave(Layer::Soak),
            rounds: exec.rounds(),
        });
    }
    let summary = summarize_waves(&wave_points(&samples));
    SoakReport {
        waves: samples.len(),
        events: events_total,
        faults: faults_total,
        checkpoints,
        restores,
        restore_rebuilds: 0,
        peak_rss_bytes: summary.peak_rss_bytes,
        p50_repair_ms: summary.p50_repair_ms,
        p99_repair_ms: summary.p99_repair_ms,
        max_repair_ms: summary.max_repair_ms,
        silence_ratio: summary.silence_ratio,
        mean_checkpoint_ms: summary.mean_checkpoint_ms,
        max_checkpoint_bytes: summary.max_checkpoint_bytes,
        legal,
        total_rounds: exec.rounds(),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stst_graph::generators;

    #[test]
    fn smoke_soak_survives_every_stressor() {
        let g = generators::workload(24, 0.25, 9);
        let report = run_soak(&g, EngineTask::Mst, &SoakConfig::smoke(9));
        assert_eq!(report.waves, 24);
        assert!(report.legal, "the soak must end in a legal configuration");
        assert!(report.checkpoints > 0);
        assert!(report.restores > 0);
        assert!(report.events > 0);
        assert!(report.faults > 0);
        assert!(report.max_checkpoint_bytes > 0);
        assert!(report.p99_repair_ms >= report.p50_repair_ms);
        assert!((0.0..=1.0).contains(&report.silence_ratio));
    }

    #[test]
    fn executor_soak_recovers_from_every_fault_wave() {
        use stst_core::spanning::MinIdSpanningTree;
        let g = generators::workload(40, 0.15, 11);
        let config = SoakConfig {
            waves: 16,
            fault_period: 2,
            fault_burst: 4,
            checkpoint_period: 3,
            restore_period: 2,
            ..SoakConfig::smoke(11)
        };
        let report = run_executor_soak(&g, MinIdSpanningTree, &config);
        assert!(report.legal, "every wave must re-stabilize to legality");
        assert!(report.faults > 0);
        assert!(report.checkpoints > 0);
        assert!(report.restores > 0);
        assert!(report.max_checkpoint_bytes > 0);
    }

    #[test]
    fn soak_is_deterministic_in_everything_but_wall_clock() {
        let g = generators::workload(20, 0.3, 4);
        let config = SoakConfig {
            threads: 2,
            ..SoakConfig::smoke(4)
        };
        let a = run_soak(&g, EngineTask::Mst, &config);
        let b = run_soak(&g, EngineTask::Mst, &config);
        assert_eq!(a.total_rounds, b.total_rounds);
        assert_eq!(a.events, b.events);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.restores, b.restores);
        let rounds_a: Vec<u64> = a.samples.iter().map(|s| s.recovery_rounds).collect();
        let rounds_b: Vec<u64> = b.samples.iter().map(|s| s.recovery_rounds).collect();
        assert_eq!(rounds_a, rounds_b);
    }
}
