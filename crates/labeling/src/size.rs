//! The subtree-size-based proof-labeling scheme for spanning trees.
//!
//! The label of node `v` is the pair `(ID, s)` where `ID` is the root identity and `s`
//! the number of nodes in the subtree rooted at `v`. The verifier checks
//! `s(v) = 1 + Σ_{u ∈ children(v)} s(u)` and root-identity agreement. Together with the
//! distance-based scheme this forms the *redundant* scheme of §IV.

use stst_graph::{Graph, Ident, NodeId, Tree};
use stst_runtime::bits::{BitReader, BitWriter};
use stst_runtime::{Codec, CodecCtx};

use crate::scheme::{Instance, ProofLabelingScheme};

/// Label of the size-based scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SizeLabel {
    /// Identity of the claimed root.
    pub root: Ident,
    /// Claimed number of nodes in the subtree rooted at the node.
    pub size: u64,
}

impl Codec for SizeLabel {
    fn encoded_bits(&self, ctx: &CodecCtx) -> usize {
        CodecCtx::uint_bits(self.root, ctx.ident_bits)
            + CodecCtx::uint_bits(self.size, ctx.count_bits)
    }

    fn encode_into(&self, ctx: &CodecCtx, w: &mut BitWriter<'_>) {
        CodecCtx::write_uint(w, self.root, ctx.ident_bits);
        CodecCtx::write_uint(w, self.size, ctx.count_bits);
    }

    fn decode_from(ctx: &CodecCtx, r: &mut BitReader<'_>) -> Self {
        SizeLabel {
            root: CodecCtx::read_uint(r, ctx.ident_bits),
            size: CodecCtx::read_uint(r, ctx.count_bits),
        }
    }
}

/// The size-based proof-labeling scheme for the family of all spanning trees.
#[derive(Clone, Copy, Debug, Default)]
pub struct SizeScheme;

impl ProofLabelingScheme for SizeScheme {
    type Label = SizeLabel;

    fn name(&self) -> &str {
        "size-based spanning tree PLS"
    }

    fn prove(&self, graph: &Graph, tree: &Tree) -> Vec<SizeLabel> {
        let root_ident = graph.ident(tree.root());
        tree.subtree_sizes()
            .into_iter()
            .map(|s| SizeLabel {
                root: root_ident,
                size: s as u64,
            })
            .collect()
    }

    fn verify_at(&self, instance: &Instance<'_>, labels: &[SizeLabel], v: NodeId) -> bool {
        let graph = instance.graph;
        let own = labels[v.0];
        for &(w, _) in graph.neighbors(v) {
            if labels[w.0].root != own.root {
                return false;
            }
        }
        // Subtree-size equation over the children designated by the parent pointers.
        let children_sum: u64 = instance.children(v).iter().map(|c| labels[c.0].size).sum();
        if own.size != 1 + children_sum {
            return false;
        }
        match instance.parents[v.0] {
            None => graph.ident(v) == own.root,
            Some(p) => graph.edge_between(v, p).is_some(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stst_graph::bfs::bfs_tree;
    use stst_graph::generators;

    #[test]
    fn completeness_on_many_workloads() {
        for seed in 0..5 {
            let g = generators::workload(24, 0.2, seed);
            let t = bfs_tree(&g, g.min_ident_node());
            assert!(SizeScheme.accepts_legal(&g, &t));
        }
    }

    #[test]
    fn soundness_rejects_cycles_for_any_labels() {
        // A cycle cannot satisfy the size equation: summing s(v) = 1 + Σ children sizes
        // around the cycle gives a contradiction (every node has exactly one child in
        // the cycle, so s(v) = 1 + s(next) strictly increases forever).
        let g = generators::ring(5);
        let parents = vec![
            Some(NodeId(1)),
            Some(NodeId(2)),
            Some(NodeId(3)),
            Some(NodeId(4)),
            Some(NodeId(0)),
        ];
        let inst = Instance {
            graph: &g,
            parents: &parents,
        };
        for base in 1..6u64 {
            let labels: Vec<SizeLabel> = (0..5)
                .map(|i| SizeLabel {
                    root: 1,
                    size: base + i as u64,
                })
                .collect();
            assert!(!SizeScheme.verify_all(&inst, &labels).accepted());
        }
    }

    #[test]
    fn tampered_size_is_detected() {
        let g = generators::grid(3, 3);
        let t = bfs_tree(&g, NodeId(0));
        let mut labels = SizeScheme.prove(&g, &t);
        labels[4].size += 1;
        assert!(!SizeScheme
            .verify_all(&Instance::from_tree(&g, &t), &labels)
            .accepted());
    }

    #[test]
    fn codec_round_trips_prover_labels_and_boundaries() {
        use stst_runtime::codec::assert_codec_roundtrip;
        let g = generators::workload(30, 0.15, 2);
        let ctx = CodecCtx::for_graph(&g);
        let t = bfs_tree(&g, g.min_ident_node());
        for label in SizeScheme.prove(&g, &t) {
            assert_codec_roundtrip(&ctx, &label);
        }
        assert_codec_roundtrip(&ctx, &SizeLabel { root: 0, size: 0 });
        assert_codec_roundtrip(
            &ctx,
            &SizeLabel {
                root: u64::MAX,
                size: u64::MAX,
            },
        );
    }

    #[test]
    fn root_size_equals_n() {
        let g = generators::workload(30, 0.1, 3);
        let t = bfs_tree(&g, g.min_ident_node());
        let labels = SizeScheme.prove(&g, &t);
        assert_eq!(labels[t.root().0].size, 30);
    }
}
