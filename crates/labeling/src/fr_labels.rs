//! The FR-tree proof-labeling scheme of §VIII (Lemma 8.1).
//!
//! Certifying that an arbitrary spanning tree has degree ≤ OPT + 1 is impossible with
//! short labels unless NP = co-NP (Proposition 8.1), so the paper certifies membership
//! in the subclass of **FR-trees** instead: trees admitting a good/bad marking such that
//! (1) max-degree nodes are bad, (2) nodes of degree ≤ k − 2 are good, and (3) no graph
//! edge joins good nodes of two different fragments (components of the tree minus the
//! bad nodes). Fürer–Raghavachari's theorem then bounds the degree by OPT + 1.
//!
//! The label of a node carries the tree degree `k`, its good/bad mark, and — for good
//! nodes — a certified pointer into its fragment (the fragment head's identity plus the
//! distance to it inside the fragment), so that fragment identities cannot be forged.
//! An extra `subtree_max_degree` field, aggregated bottom-up along the (separately
//! certified) spanning tree, prevents overstating `k`.

use stst_graph::{Graph, Ident, NodeId, Tree};
use stst_runtime::bits::{BitReader, BitWriter};
use stst_runtime::{Codec, CodecCtx};

use crate::scheme::{Instance, ProofLabelingScheme};

/// Label of the FR-tree scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrLabel {
    /// The degree `k` of the tree (claimed; certified via `subtree_max_degree`).
    pub tree_degree: u64,
    /// Maximum tree degree within the node's subtree (convergecast certificate for
    /// `tree_degree`).
    pub subtree_max_degree: u64,
    /// `true` if the node is marked good.
    pub good: bool,
    /// For good nodes: the identity of the fragment head (the smallest identity in the
    /// fragment) and the distance to it within the fragment. `None` for bad nodes.
    pub fragment: Option<(Ident, u64)>,
}

impl Codec for FrLabel {
    fn encoded_bits(&self, ctx: &CodecCtx) -> usize {
        CodecCtx::uint_bits(self.tree_degree, ctx.count_bits)
            + CodecCtx::uint_bits(self.subtree_max_degree, ctx.count_bits)
            + 1
            + 1
            + self.fragment.map_or(0, |(head, dist)| {
                CodecCtx::uint_bits(head, ctx.ident_bits)
                    + CodecCtx::uint_bits(dist, ctx.count_bits)
            })
    }

    fn encode_into(&self, ctx: &CodecCtx, w: &mut BitWriter<'_>) {
        CodecCtx::write_uint(w, self.tree_degree, ctx.count_bits);
        CodecCtx::write_uint(w, self.subtree_max_degree, ctx.count_bits);
        w.write(u64::from(self.good), 1);
        match self.fragment {
            None => w.write(0, 1),
            Some((head, dist)) => {
                w.write(1, 1);
                CodecCtx::write_uint(w, head, ctx.ident_bits);
                CodecCtx::write_uint(w, dist, ctx.count_bits);
            }
        }
    }

    fn decode_from(ctx: &CodecCtx, r: &mut BitReader<'_>) -> Self {
        let tree_degree = CodecCtx::read_uint(r, ctx.count_bits);
        let subtree_max_degree = CodecCtx::read_uint(r, ctx.count_bits);
        let good = r.read(1) == 1;
        let fragment = (r.read(1) == 1).then(|| {
            let head = CodecCtx::read_uint(r, ctx.ident_bits);
            let dist = CodecCtx::read_uint(r, ctx.count_bits);
            (head, dist)
        });
        FrLabel {
            tree_degree,
            subtree_max_degree,
            good,
            fragment,
        }
    }
}

/// The FR-tree proof-labeling scheme.
#[derive(Clone, Copy, Debug, Default)]
pub struct FrScheme;

impl FrScheme {
    /// Builds the canonical marking used by the prover: degree ≥ k − 1 nodes start bad
    /// and the propagation of [`stst_graph::fr::fr_certificate`] decides the rest.
    fn marking(graph: &Graph, tree: &Tree) -> Option<stst_graph::fr::FrCertificate> {
        stst_graph::fr::fr_certificate(graph, tree)
    }
}

impl ProofLabelingScheme for FrScheme {
    type Label = FrLabel;

    fn name(&self) -> &str {
        "FR-tree PLS"
    }

    /// # Panics
    ///
    /// Panics if `tree` is not an FR-tree of `graph` (there is nothing to certify then);
    /// use [`stst_graph::fr::is_fr_tree`] to check first.
    fn prove(&self, graph: &Graph, tree: &Tree) -> Vec<FrLabel> {
        let cert = Self::marking(graph, tree)
            .expect("the prover is only defined on FR-trees (Definition 8.1)");
        let k = tree.max_degree() as u64;
        // Distance to the fragment head within the fragment, for good nodes.
        let n = graph.node_count();
        let mut frag_dist = vec![0u64; n];
        let mut frag_head: Vec<Option<Ident>> = vec![None; n];
        // Fragment heads: smallest identity among the good nodes of each fragment.
        use std::collections::HashMap;
        let mut head_of: HashMap<usize, NodeId> = HashMap::new();
        for v in graph.nodes() {
            if cert.good[v.0] {
                let f = cert.fragment[v.0];
                let entry = head_of.entry(f).or_insert(v);
                if graph.ident(v) < graph.ident(*entry) {
                    *entry = v;
                }
            }
        }
        // BFS inside each fragment from its head (fragments are subtrees of T restricted
        // to good nodes).
        for (&f, &head) in &head_of {
            let mut queue = std::collections::VecDeque::from([head]);
            frag_dist[head.0] = 0;
            frag_head[head.0] = Some(graph.ident(head));
            let mut seen = vec![false; n];
            seen[head.0] = true;
            while let Some(v) = queue.pop_front() {
                for &(w, _) in graph.neighbors(v) {
                    if !seen[w.0]
                        && cert.good[w.0]
                        && cert.fragment[w.0] == f
                        && tree.contains_edge(v, w)
                    {
                        seen[w.0] = true;
                        frag_dist[w.0] = frag_dist[v.0] + 1;
                        frag_head[w.0] = Some(graph.ident(head));
                        queue.push_back(w);
                    }
                }
            }
        }
        // Subtree max degree, bottom-up.
        let children = tree.children_table();
        let mut order: Vec<NodeId> = Vec::with_capacity(n);
        let mut stack = vec![tree.root()];
        while let Some(v) = stack.pop() {
            order.push(v);
            stack.extend(children[v.0].iter().copied());
        }
        let mut submax = vec![0u64; n];
        for &v in order.iter().rev() {
            let mut m = tree.degree(v) as u64;
            for &c in &children[v.0] {
                m = m.max(submax[c.0]);
            }
            submax[v.0] = m;
        }
        graph
            .nodes()
            .map(|v| FrLabel {
                tree_degree: k,
                subtree_max_degree: submax[v.0],
                good: cert.good[v.0],
                fragment: if cert.good[v.0] {
                    Some((
                        frag_head[v.0].expect("good nodes belong to a fragment"),
                        frag_dist[v.0],
                    ))
                } else {
                    None
                },
            })
            .collect()
    }

    fn verify_at(&self, instance: &Instance<'_>, labels: &[FrLabel], v: NodeId) -> bool {
        let graph = instance.graph;
        let own = labels[v.0];
        let k = own.tree_degree;
        // Everyone must agree on k.
        for &(w, _) in graph.neighbors(v) {
            if labels[w.0].tree_degree != k {
                return false;
            }
        }
        // Tree degree of v according to the parent pointers.
        let children = instance.children(v);
        let deg = children.len() as u64 + u64::from(instance.parents[v.0].is_some());
        // subtree_max_degree is the max of own degree and children's values; the root
        // additionally certifies that the global maximum equals k.
        let mut submax = deg;
        for &c in &children {
            submax = submax.max(labels[c.0].subtree_max_degree);
        }
        if own.subtree_max_degree != submax {
            return false;
        }
        if deg > k {
            return false;
        }
        if instance.parents[v.0].is_none() && own.subtree_max_degree != k {
            return false;
        }
        // Condition (1): degree-k nodes are bad. Condition (2): degree ≤ k − 2 nodes are
        // good.
        if deg == k && own.good {
            return false;
        }
        if deg + 2 <= k && !own.good {
            return false;
        }
        match own.fragment {
            None => {
                // Bad nodes carry no fragment pointer.
                if own.good {
                    return false;
                }
            }
            Some((head, dist)) => {
                if !own.good {
                    return false;
                }
                if dist == 0 {
                    // The fragment head is the node itself.
                    if head != graph.ident(v) {
                        return false;
                    }
                } else {
                    // Some tree-adjacent good neighbor is one step closer to the head.
                    let has_witness = graph.neighbors(v).iter().any(|&(w, _)| {
                        let adjacent_in_tree =
                            instance.parents[v.0] == Some(w) || instance.parents[w.0] == Some(v);
                        adjacent_in_tree
                            && labels[w.0].good
                            && labels[w.0].fragment == Some((head, dist - 1))
                    });
                    if !has_witness {
                        return false;
                    }
                }
                // Condition (3): no graph edge towards a good node of another fragment;
                // tree-adjacent good neighbors must be in the same fragment.
                for &(w, _) in graph.neighbors(v) {
                    if let Some((other_head, _)) = labels[w.0].fragment {
                        if labels[w.0].good && other_head != head {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }
}

/// The MDST potential of §VIII: `φ(T) = (n·∆_T + N_T) · (1 − 1_FR(T))`, where `∆_T` is
/// the tree degree, `N_T` the number of max-degree nodes, and `1_FR` the FR-tree
/// indicator. Zero exactly on FR-trees.
pub fn mdst_potential(graph: &Graph, tree: &Tree) -> u64 {
    if stst_graph::fr::is_fr_tree(graph, tree) {
        0
    } else {
        let delta = tree.max_degree() as u64;
        let count = tree.max_degree_nodes().len() as u64;
        graph.node_count() as u64 * delta + count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stst_graph::fr::{furer_raghavachari, is_fr_tree};
    use stst_graph::generators;

    fn setup(n: usize, seed: u64) -> (Graph, Tree) {
        let g = generators::workload(n, 0.25, seed);
        let (t, _) = furer_raghavachari(&g);
        (g, t)
    }

    #[test]
    fn completeness_on_fr_trees() {
        for seed in 0..6 {
            let (g, t) = setup(18, seed);
            assert!(is_fr_tree(&g, &t));
            assert!(FrScheme.accepts_legal(&g, &t), "seed {seed}");
        }
    }

    #[test]
    fn labels_are_logarithmic() {
        let (g, t) = setup(120, 1);
        let ctx = CodecCtx::for_graph(&g);
        let labels = FrScheme.prove(&g, &t);
        let max_bits = FrScheme.max_label_bits(&ctx, &labels);
        assert!(
            max_bits <= 4 * 10 + 6,
            "FR labels should be O(log n) bits, got {max_bits}"
        );
    }

    #[test]
    fn codec_round_trips_good_bad_and_garbage_labels() {
        use stst_runtime::codec::assert_codec_roundtrip;
        let (g, t) = setup(24, 5);
        let ctx = CodecCtx::for_graph(&g);
        for label in FrScheme.prove(&g, &t) {
            assert_codec_roundtrip(&ctx, &label);
        }
        assert_codec_roundtrip(
            &ctx,
            &FrLabel {
                tree_degree: 0,
                subtree_max_degree: 0,
                good: false,
                fragment: None,
            },
        );
        assert_codec_roundtrip(
            &ctx,
            &FrLabel {
                tree_degree: u64::MAX,
                subtree_max_degree: u64::MAX,
                good: true,
                fragment: Some((u64::MAX, u64::MAX)),
            },
        );
    }

    #[test]
    fn forged_good_mark_on_a_max_degree_node_is_rejected() {
        let (g, t) = setup(16, 2);
        let mut labels = FrScheme.prove(&g, &t);
        let w = t.max_degree_nodes()[0];
        labels[w.0].good = true;
        labels[w.0].fragment = Some((g.ident(w), 0));
        assert!(!FrScheme
            .verify_all(&Instance::from_tree(&g, &t), &labels)
            .accepted());
    }

    #[test]
    fn forged_fragment_identity_is_rejected() {
        let (g, t) = setup(16, 3);
        let labels = FrScheme.prove(&g, &t);
        // Give some good node a bogus fragment head it cannot justify.
        let v = g
            .nodes()
            .find(|&v| labels[v.0].good && labels[v.0].fragment.is_some_and(|(_, d)| d > 0));
        if let Some(v) = v {
            let mut bad = labels.clone();
            bad[v.0].fragment = Some((9999, 1));
            assert!(!FrScheme
                .verify_all(&Instance::from_tree(&g, &t), &bad)
                .accepted());
        }
        // Overstating the tree degree: the root's subtree_max_degree check fails.
        let mut bad = labels;
        for l in &mut bad {
            l.tree_degree += 1;
        }
        assert!(!FrScheme
            .verify_all(&Instance::from_tree(&g, &t), &bad)
            .accepted());
    }

    #[test]
    fn potential_is_zero_exactly_on_fr_trees() {
        let g = generators::complete(9);
        // The star is not an FR-tree of the complete graph.
        let star = Tree::from_parents(
            std::iter::once(None)
                .chain((1..9).map(|_| Some(NodeId(0))))
                .collect(),
        )
        .unwrap();
        assert!(mdst_potential(&g, &star) > 0);
        let (t, _) = furer_raghavachari(&g);
        assert_eq!(mdst_potential(&g, &t), 0);
        // The potential dominates (degree, count) lexicographically: a degree-9 star on
        // 9 nodes scores higher than any degree-3 tree.
        assert!(mdst_potential(&g, &star) > 9 * 3 + 9);
    }
}
