//! The generic prover–verifier interface shared by all proof-labeling schemes.

use stst_graph::{Graph, NodeId, Tree};
use stst_runtime::{Codec, CodecCtx};

/// A candidate configuration to verify: the network plus the parent pointers every node
/// exposes in its register (possibly corrupted — they need not encode a tree).
#[derive(Clone, Copy, Debug)]
pub struct Instance<'a> {
    /// The communication network.
    pub graph: &'a Graph,
    /// `parents[v]` is the parent pointer exposed by node `v` (`None` encodes `⊥`).
    pub parents: &'a [Option<NodeId>],
}

impl<'a> Instance<'a> {
    /// Builds an instance from a (legal) tree.
    pub fn from_tree(graph: &'a Graph, tree: &'a Tree) -> Self {
        Instance {
            graph,
            parents: tree.parents(),
        }
    }

    /// The children of `v` according to the parent pointers (neighbors pointing at `v`).
    pub fn children(&self, v: NodeId) -> Vec<NodeId> {
        self.graph
            .neighbors(v)
            .iter()
            .map(|&(w, _)| w)
            .filter(|&w| self.parents[w.0] == Some(v))
            .collect()
    }
}

/// Result of running the verifier at every node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerificationOutcome {
    /// Nodes whose verifier rejected.
    pub rejecting: Vec<NodeId>,
}

impl VerificationOutcome {
    /// `true` if every node accepted.
    pub fn accepted(&self) -> bool {
        self.rejecting.is_empty()
    }
}

/// A proof-labeling scheme: a prover assigning labels to legal configurations and a
/// 1-hop verifier run at every node.
///
/// Labels are [`Codec`]-able, so every scheme's label can live in the packed
/// configuration store and its size accounting (`label_bits`) is *derived* from the
/// codec — the bits reported are exactly the bits the store allocates, with no
/// per-scheme hand-written size arithmetic to drift out of sync.
pub trait ProofLabelingScheme {
    /// The per-node label.
    type Label: Clone + std::fmt::Debug + PartialEq + Codec;

    /// Scheme name (for reports).
    fn name(&self) -> &str;

    /// The prover: labels for a *legal* configuration (a spanning tree of the graph).
    fn prove(&self, graph: &Graph, tree: &Tree) -> Vec<Self::Label>;

    /// The verifier at node `v`: may inspect `v`'s label and parent pointer and those of
    /// `v`'s neighbors only. Returns `true` to accept.
    fn verify_at(&self, instance: &Instance<'_>, labels: &[Self::Label], v: NodeId) -> bool;

    /// Number of bits of a label under the instance's codec widths — by definition the
    /// bits the packed store writes for it ([`Codec::encoded_bits`]).
    fn label_bits(&self, ctx: &CodecCtx, label: &Self::Label) -> usize {
        label.encoded_bits(ctx)
    }

    /// Runs the verifier at every node.
    fn verify_all(&self, instance: &Instance<'_>, labels: &[Self::Label]) -> VerificationOutcome {
        let rejecting = instance
            .graph
            .nodes()
            .filter(|&v| !self.verify_at(instance, labels, v))
            .collect();
        VerificationOutcome { rejecting }
    }

    /// Maximum label size over an assignment, in bits.
    fn max_label_bits(&self, ctx: &CodecCtx, labels: &[Self::Label]) -> usize {
        labels
            .iter()
            .map(|l| self.label_bits(ctx, l))
            .max()
            .unwrap_or(0)
    }

    /// Completeness check helper: prove a legal tree and verify that every node accepts.
    fn accepts_legal(&self, graph: &Graph, tree: &Tree) -> bool {
        let labels = self.prove(graph, tree);
        self.verify_all(&Instance::from_tree(graph, tree), &labels)
            .accepted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stst_graph::generators;

    #[test]
    fn instance_children_follow_parent_pointers() {
        let g = generators::path(4);
        let parents = vec![None, Some(NodeId(0)), Some(NodeId(1)), Some(NodeId(2))];
        let inst = Instance {
            graph: &g,
            parents: &parents,
        };
        assert_eq!(inst.children(NodeId(0)), vec![NodeId(1)]);
        assert_eq!(inst.children(NodeId(3)), Vec::<NodeId>::new());
    }

    #[test]
    fn outcome_accepts_iff_no_rejections() {
        assert!(VerificationOutcome { rejecting: vec![] }.accepted());
        assert!(!VerificationOutcome {
            rejecting: vec![NodeId(3)]
        }
        .accepted());
    }
}
