//! The informative NCA labeling of §V and its proof-labeling scheme (Lemma 5.1).
//!
//! Given the labels `λ(u)` and `λ(v)` of two nodes, the label of their nearest common
//! ancestor is computable *from the labels alone*; this is what lets every node decide
//! locally whether it lies on the fundamental cycle of a non-tree edge `{u, v}`
//! (paper §V). The labeling follows the heavy-path construction of
//! Alstrup–Gavoille–Kaplan–Rauhe: the label of `v` lists, for every heavy path met on
//! the way down from the root, the identity of the path's head and the depth at which
//! the downward route leaves the path (its own depth for the last path).
//!
//! The number of light edges on a root-to-node path is at most `⌈log₂ n⌉`, so labels
//! have `O(log n)` entries. We store path heads explicitly (`O(log n)` bits each), so
//! the packed size is `O(log² n)` bits in the worst case — a deliberate engineering
//! relaxation of the `O(log n)`-bit encoding of [AGKR 2004], documented in DESIGN.md and
//! measured by experiment E3.

use std::collections::HashMap;

use stst_graph::{Graph, Ident, NodeId, Tree};
use stst_runtime::bits::{BitReader, BitWriter};
use stst_runtime::{Codec, CodecCtx};

use crate::scheme::{Instance, ProofLabelingScheme};

/// One heavy-path segment of an NCA label: the identity of the path's head and the depth
/// (within the path) at which the labelled node's root-path leaves it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Segment {
    /// Identity of the topmost node of the heavy path.
    pub head: Ident,
    /// Depth within the heavy path at which the route exits (or, for the last segment,
    /// the labelled node's own depth on its heavy path).
    pub depth: u64,
}

/// An NCA label: the sequence of heavy-path segments on the root-to-node path.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct NcaLabel {
    /// Segments from the root's heavy path down to the node's own heavy path.
    pub segments: Vec<Segment>,
}

impl Codec for NcaLabel {
    fn encoded_bits(&self, ctx: &CodecCtx) -> usize {
        CodecCtx::uint_bits(self.segments.len() as u64, ctx.len_bits)
            + self
                .segments
                .iter()
                .map(|s| {
                    CodecCtx::uint_bits(s.head, ctx.ident_bits)
                        + CodecCtx::uint_bits(s.depth, ctx.count_bits)
                })
                .sum::<usize>()
    }

    fn encode_into(&self, ctx: &CodecCtx, w: &mut BitWriter<'_>) {
        CodecCtx::write_uint(w, self.segments.len() as u64, ctx.len_bits);
        for s in &self.segments {
            CodecCtx::write_uint(w, s.head, ctx.ident_bits);
            CodecCtx::write_uint(w, s.depth, ctx.count_bits);
        }
    }

    fn decode_from(ctx: &CodecCtx, r: &mut BitReader<'_>) -> Self {
        let len = CodecCtx::read_uint(r, ctx.len_bits) as usize;
        let segments = (0..len)
            .map(|_| Segment {
                head: CodecCtx::read_uint(r, ctx.ident_bits),
                depth: CodecCtx::read_uint(r, ctx.count_bits),
            })
            .collect();
        NcaLabel { segments }
    }
}

impl NcaLabel {
    /// `true` if `self` labels an ancestor of the node labelled by `other`
    /// (every node is an ancestor of itself).
    pub fn is_ancestor_of(&self, other: &NcaLabel) -> bool {
        &nca_of_labels(self, other) == self
    }

    /// Tree depth of the labelled node, recovered from the label alone: the sum of the
    /// per-segment depths plus one edge per heavy-path change (each segment after the
    /// first is entered by a light edge from the previous exit node). Labels produced
    /// by [`nca_of_labels`] obey the same formula, which is what lets distance queries
    /// run as `depth(a) + depth(b) − 2·depth(nca)` without touching the tree.
    pub fn depth(&self) -> u64 {
        let hops: u64 = self.segments.iter().map(|s| s.depth).sum();
        hops + (self.segments.len() as u64).saturating_sub(1)
    }
}

/// Computes the label of the nearest common ancestor of the nodes labelled `a` and `b`,
/// using the labels alone (no access to the tree).
pub fn nca_of_labels(a: &NcaLabel, b: &NcaLabel) -> NcaLabel {
    // Longest common prefix of full (head, depth) segments.
    let mut k = 0;
    while k < a.segments.len() && k < b.segments.len() && a.segments[k] == b.segments[k] {
        k += 1;
    }
    if k == a.segments.len() {
        return a.clone(); // a is an ancestor of b (or a == b).
    }
    if k == b.segments.len() {
        return b.clone(); // b is an ancestor of a.
    }
    if a.segments[k].head == b.segments[k].head {
        // Both routes are on the same heavy path but leave it at different depths (or
        // end on it): the NCA is the shallower of the two positions on that path.
        let mut segments = a.segments[..k].to_vec();
        segments.push(Segment {
            head: a.segments[k].head,
            depth: a.segments[k].depth.min(b.segments[k].depth),
        });
        NcaLabel { segments }
    } else {
        // The routes left the previous heavy path at the same node (full prefix match)
        // but continued into different heavy paths: the NCA is that exit node, whose
        // label is exactly the common prefix.
        NcaLabel {
            segments: a.segments[..k].to_vec(),
        }
    }
}

/// The fundamental-cycle membership test of §V: node `x` lies on the fundamental cycle
/// closed by the non-tree edge `{u, v}` iff
/// `nca(x, u) = x ∧ nca(x, v) = w` or `nca(x, u) = w ∧ nca(x, v) = x`,
/// where `w = nca(u, v)`.
pub fn on_fundamental_cycle(x: &NcaLabel, u: &NcaLabel, v: &NcaLabel) -> bool {
    let w = nca_of_labels(u, v);
    let xu = nca_of_labels(x, u);
    let xv = nca_of_labels(x, v);
    (&xu == x && xv == w) || (xu == w && &xv == x)
}

/// Builds the heavy-path NCA labels of every node of `tree` (prover side).
pub fn assign_nca_labels(graph: &Graph, tree: &Tree) -> Vec<NcaLabel> {
    let n = tree.node_count();
    let sizes = tree.subtree_sizes();
    let children = tree.children_table();
    let mut labels: Vec<NcaLabel> = vec![NcaLabel::default(); n];
    let root = tree.root();
    labels[root.0] = NcaLabel {
        segments: vec![Segment {
            head: graph.ident(root),
            depth: 0,
        }],
    };
    // Top-down traversal: the heavy child continues the parent's heavy path, every other
    // child starts a new one.
    let mut stack = vec![root];
    while let Some(v) = stack.pop() {
        let heavy_child: Option<NodeId> = children[v.0]
            .iter()
            .copied()
            .max_by_key(|&c| (sizes[c.0], std::cmp::Reverse(graph.ident(c))));
        for &c in &children[v.0] {
            let mut label = labels[v.0].clone();
            if Some(c) == heavy_child {
                let last = label.segments.last_mut().expect("labels are never empty");
                last.depth += 1;
            } else {
                label.segments.push(Segment {
                    head: graph.ident(c),
                    depth: 0,
                });
            }
            labels[c.0] = label;
            stack.push(c);
        }
    }
    labels
}

/// Incrementally repairs heavy-path NCA labels after a tree edit.
///
/// `children`, `sizes` and `depths` describe the **new** tree (already repaired by the
/// caller); `seeds` is the dirty frontier — every node whose children set changed plus
/// the parents of every node whose subtree size changed (those are the only places where
/// the heavy-child selection, and hence the label derivation, can differ from the old
/// tree). Starting from each seed in top-down order, the repair re-derives the labels of
/// the seed's children and descends only while a label actually changes: a node whose
/// derived label is unchanged roots a subtree of unchanged labels (labels are a pure
/// function of the parent label and the heavy-child choice along the path). The result
/// is bit-identical to [`assign_nca_labels`] on the new tree.
///
/// Returns the number of labels rewritten (the deterministic work unit).
pub fn repair_nca_labels(
    graph: &Graph,
    children: &[Vec<NodeId>],
    sizes: &[usize],
    depths: &[usize],
    labels: &mut [NcaLabel],
    seeds: &[NodeId],
) -> usize {
    let heavy_child = |v: NodeId| -> Option<NodeId> {
        children[v.0]
            .iter()
            .copied()
            .max_by_key(|&c| (sizes[c.0], std::cmp::Reverse(graph.ident(c))))
    };
    let derive = |parent_label: &NcaLabel, heavy: Option<NodeId>, c: NodeId| -> NcaLabel {
        let mut label = parent_label.clone();
        if Some(c) == heavy {
            let last = label.segments.last_mut().expect("labels are never empty");
            last.depth += 1;
        } else {
            label.segments.push(Segment {
                head: graph.ident(c),
                depth: 0,
            });
        }
        label
    };

    let mut ordered: Vec<NodeId> = seeds.to_vec();
    ordered.sort_by_key(|&v| depths[v.0]);
    ordered.dedup();
    let mut processed = vec![false; labels.len()];
    let mut writes = 0usize;
    let mut stack: Vec<NodeId> = Vec::new();
    for &seed in &ordered {
        if processed[seed.0] {
            continue;
        }
        stack.push(seed);
        while let Some(v) = stack.pop() {
            processed[v.0] = true;
            let heavy = heavy_child(v);
            for &c in &children[v.0] {
                let label = derive(&labels[v.0], heavy, c);
                if label != labels[c.0] {
                    labels[c.0] = label;
                    writes += 1;
                    stack.push(c);
                }
            }
        }
    }
    writes
}

/// The proof-labeling scheme *for the NCA labeling itself* (Lemma 5.1): the verifier at
/// `v` checks that `v`'s label extends its parent's label in one of the two legal ways
/// (heavy continuation or new path headed by `v`), and that at most one child continues
/// `v`'s path. Combined with a spanning-tree scheme for the parent pointers, this
/// certifies that the labels support correct NCA queries.
#[derive(Clone, Copy, Debug, Default)]
pub struct NcaScheme;

impl NcaScheme {
    fn extends_parent(child: &NcaLabel, parent: &NcaLabel, child_ident: Ident) -> bool {
        let cl = child.segments.len();
        let pl = parent.segments.len();
        if cl == pl {
            // Heavy continuation: identical prefix, last depth incremented by one.
            if cl == 0 {
                return false;
            }
            child.segments[..cl - 1] == parent.segments[..pl - 1]
                && child.segments[cl - 1].head == parent.segments[pl - 1].head
                && child.segments[cl - 1].depth == parent.segments[pl - 1].depth + 1
        } else if cl == pl + 1 {
            // New heavy path headed by the child itself.
            child.segments[..pl] == parent.segments[..]
                && child.segments[pl]
                    == Segment {
                        head: child_ident,
                        depth: 0,
                    }
        } else {
            false
        }
    }
}

impl ProofLabelingScheme for NcaScheme {
    type Label = NcaLabel;

    fn name(&self) -> &str {
        "NCA labeling PLS"
    }

    fn prove(&self, graph: &Graph, tree: &Tree) -> Vec<NcaLabel> {
        assign_nca_labels(graph, tree)
    }

    fn verify_at(&self, instance: &Instance<'_>, labels: &[NcaLabel], v: NodeId) -> bool {
        let graph = instance.graph;
        let own = &labels[v.0];
        if own.segments.is_empty() {
            return false;
        }
        // At most one child of v may continue v's heavy path (checked at every node,
        // root included).
        let continuing = instance
            .children(v)
            .into_iter()
            .filter(|c| labels[c.0].segments.len() == own.segments.len())
            .count();
        if continuing > 1 {
            return false;
        }
        match instance.parents[v.0] {
            None => {
                // Root: a single segment (own identity, depth 0).
                own.segments.len() == 1
                    && own.segments[0]
                        == Segment {
                            head: graph.ident(v),
                            depth: 0,
                        }
            }
            Some(p) => {
                if graph.edge_between(v, p).is_none() {
                    return false;
                }
                Self::extends_parent(own, &labels[p.0], graph.ident(v))
            }
        }
    }
}

/// Convenience: a map from label to node, used by tests and by the simulator-side
/// decoding of labels back into nodes.
pub fn label_index(labels: &[NcaLabel]) -> HashMap<NcaLabel, NodeId> {
    labels
        .iter()
        .enumerate()
        .map(|(i, l)| (l.clone(), NodeId(i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stst_graph::bfs::bfs_tree;
    use stst_graph::generators;
    use stst_graph::nca::NcaOracle;

    fn setup(n: usize, seed: u64) -> (Graph, Tree, Vec<NcaLabel>) {
        let g = generators::workload(n, 0.15, seed);
        let t = bfs_tree(&g, g.min_ident_node());
        let labels = assign_nca_labels(&g, &t);
        (g, t, labels)
    }

    #[test]
    fn labels_are_injective() {
        let (_, t, labels) = setup(60, 1);
        let index = label_index(&labels);
        assert_eq!(index.len(), t.node_count());
    }

    #[test]
    fn nca_from_labels_matches_the_oracle() {
        for seed in 0..4 {
            let (_, t, labels) = setup(40, seed);
            let oracle = NcaOracle::new(&t);
            let index = label_index(&labels);
            for u in t.nodes() {
                for v in t.nodes() {
                    let w = nca_of_labels(&labels[u.0], &labels[v.0]);
                    let expected = oracle.nca(u, v);
                    assert_eq!(index[&w], expected, "seed {seed}: nca({u}, {v})");
                }
            }
        }
    }

    #[test]
    fn ancestor_test_matches_the_oracle() {
        let (_, t, labels) = setup(30, 7);
        let oracle = NcaOracle::new(&t);
        for u in t.nodes() {
            for v in t.nodes() {
                assert_eq!(
                    labels[u.0].is_ancestor_of(&labels[v.0]),
                    oracle.is_ancestor(u, v)
                );
            }
        }
    }

    #[test]
    fn cycle_membership_matches_the_tree_path() {
        for seed in 0..4 {
            let (g, t, labels) = setup(28, seed);
            for e in g.edge_ids() {
                let edge = g.edge(e);
                if t.contains_edge(edge.u, edge.v) {
                    continue;
                }
                let cycle: std::collections::HashSet<NodeId> =
                    t.fundamental_cycle_nodes(&g, e).into_iter().collect();
                for x in t.nodes() {
                    let claimed =
                        on_fundamental_cycle(&labels[x.0], &labels[edge.u.0], &labels[edge.v.0]);
                    assert_eq!(
                        claimed,
                        cycle.contains(&x),
                        "seed {seed}, edge {e:?}, node {x}"
                    );
                }
            }
        }
    }

    #[test]
    fn label_sizes_stay_small() {
        // Number of segments is bounded by the number of light edges + 1 ≤ log₂ n + 1.
        let (g, _, labels) = setup(256, 3);
        let ctx = CodecCtx::for_graph(&g);
        let max_segments = labels.iter().map(|l| l.segments.len()).max().unwrap();
        assert!(max_segments <= 9, "got {max_segments} segments for n = 256");
        let max_bits = labels.iter().map(|l| l.encoded_bits(&ctx)).max().unwrap();
        assert!(
            max_bits <= 9 * (11 + 10) + 8,
            "labels too large: {max_bits} bits"
        );
    }

    #[test]
    fn codec_round_trips_labels_including_the_empty_one() {
        use stst_runtime::codec::assert_codec_roundtrip;
        let (g, _, labels) = setup(48, 2);
        let ctx = CodecCtx::for_graph(&g);
        for label in &labels {
            assert_codec_roundtrip(&ctx, label);
        }
        // The empty label (a corrupt shape the verifier rejects) and out-of-width
        // garbage still round-trip exactly.
        assert_codec_roundtrip(&ctx, &NcaLabel::default());
        assert_codec_roundtrip(
            &ctx,
            &NcaLabel {
                segments: vec![Segment {
                    head: u64::MAX,
                    depth: u64::MAX,
                }],
            },
        );
    }

    #[test]
    fn path_and_star_extremes() {
        // On a path, a single heavy path covers everything: one segment per label.
        let g = generators::path(32);
        let t = bfs_tree(&g, NodeId(0));
        let labels = assign_nca_labels(&g, &t);
        assert!(labels.iter().all(|l| l.segments.len() == 1));
        // On a star, exactly one leaf continues the center's heavy path; every other
        // leaf starts its own path (two segments).
        let g = generators::star(16);
        let t = bfs_tree(&g, NodeId(0));
        let labels = assign_nca_labels(&g, &t);
        let two_segment_leaves = labels
            .iter()
            .skip(1)
            .filter(|l| l.segments.len() == 2)
            .count();
        assert_eq!(two_segment_leaves, 14);
        assert!(labels.iter().all(|l| l.segments.len() <= 2));
    }

    #[test]
    fn scheme_completeness_and_soundness() {
        let (g, t, labels) = setup(36, 5);
        assert!(NcaScheme.accepts_legal(&g, &t));
        // Tamper with one label: some node rejects.
        let mut bad = labels.clone();
        let v = t.nodes().find(|&v| t.parent(v).is_some()).unwrap();
        bad[v.0].segments.last_mut().unwrap().depth += 1;
        assert!(!NcaScheme
            .verify_all(&Instance::from_tree(&g, &t), &bad)
            .accepted());
        // Two children continuing the same heavy path: the parent rejects. Rewrite the
        // label of a *light* child (one that currently starts its own path) so that it
        // also claims to continue the parent's path.
        let mut bad = labels;
        let (parent, light_child) = t
            .nodes()
            .find_map(|v| {
                t.children(v)
                    .into_iter()
                    .find(|c| bad[c.0].segments.len() == bad[v.0].segments.len() + 1)
                    .filter(|_| t.children(v).len() >= 2)
                    .map(|c| (v, c))
            })
            .expect("some node has both a heavy and a light child");
        bad[light_child.0] = NcaLabel {
            segments: {
                let mut s = bad[parent.0].segments.clone();
                let last = s.last_mut().unwrap();
                last.depth += 1;
                s
            },
        };
        assert!(!NcaScheme
            .verify_all(&Instance::from_tree(&g, &t), &bad)
            .accepted());
    }
}
