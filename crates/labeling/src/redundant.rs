//! The *redundant* (distance + subtree-size) proof-labeling scheme of §IV, including the
//! pruning discipline (constraints C1/C2) and the verification table of Lemma 4.1.
//!
//! The point of the redundancy is **malleability**: while an edge switch
//! `T ← T + e − f` is in progress, the labels along the affected paths can be *pruned*
//! (one of the two components replaced by `⊥`) in a way that keeps every verifier
//! accepting, so the switch never raises an alarm and the algorithm stays loop-free.

use stst_graph::{Graph, Ident, NodeId, Tree};
use stst_runtime::bits::{BitReader, BitWriter};
use stst_runtime::{Codec, CodecCtx};

use crate::scheme::{Instance, ProofLabelingScheme};

/// Label of the redundant scheme: root identity plus optional distance and subtree size.
/// A label with both components pruned (`(⊥, ⊥)`) is illegal and always rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RedundantLabel {
    /// Identity of the claimed root.
    pub root: Ident,
    /// Distance to the root, or `⊥` when pruned.
    pub dist: Option<u64>,
    /// Size of the subtree rooted at the node, or `⊥` when pruned.
    pub size: Option<u64>,
}

impl RedundantLabel {
    /// A full (unpruned) label.
    pub fn full(root: Ident, dist: u64, size: u64) -> Self {
        RedundantLabel {
            root,
            dist: Some(dist),
            size: Some(size),
        }
    }

    /// The label with its size component pruned (form `(d, ⊥)`).
    pub fn pruned_to_distance(self) -> Self {
        RedundantLabel { size: None, ..self }
    }

    /// The label with its distance component pruned (form `(⊥, s)`).
    pub fn pruned_to_size(self) -> Self {
        RedundantLabel { dist: None, ..self }
    }

    /// `true` if neither component has been pruned.
    pub fn is_full(&self) -> bool {
        self.dist.is_some() && self.size.is_some()
    }
}

impl Codec for RedundantLabel {
    fn encoded_bits(&self, ctx: &CodecCtx) -> usize {
        CodecCtx::uint_bits(self.root, ctx.ident_bits)
            + CodecCtx::opt_uint_bits(&self.dist, ctx.count_bits)
            + CodecCtx::opt_uint_bits(&self.size, ctx.count_bits)
    }

    fn encode_into(&self, ctx: &CodecCtx, w: &mut BitWriter<'_>) {
        CodecCtx::write_uint(w, self.root, ctx.ident_bits);
        CodecCtx::write_opt_uint(w, &self.dist, ctx.count_bits);
        CodecCtx::write_opt_uint(w, &self.size, ctx.count_bits);
    }

    fn decode_from(ctx: &CodecCtx, r: &mut BitReader<'_>) -> Self {
        RedundantLabel {
            root: CodecCtx::read_uint(r, ctx.ident_bits),
            dist: CodecCtx::read_opt_uint(r, ctx.count_bits),
            size: CodecCtx::read_opt_uint(r, ctx.count_bits),
        }
    }
}

/// The redundant (malleable) proof-labeling scheme for spanning trees.
#[derive(Clone, Copy, Debug, Default)]
pub struct RedundantScheme;

impl RedundantScheme {
    /// The "check distance" predicate of the verification table: `d(v) = d(p(v)) + 1`.
    fn distance_ok(labels: &[RedundantLabel], v: NodeId, p: NodeId) -> bool {
        match (labels[v.0].dist, labels[p.0].dist) {
            (Some(dv), Some(dp)) => dv == dp + 1,
            _ => false,
        }
    }

    /// The "check size" predicate: `s(v) = 1 + Σ_{u ∈ children(v)} s(u)`; every child
    /// must expose a size component (by C2 a child of a size-carrying node always does
    /// in a legally pruned labeling).
    fn size_ok(instance: &Instance<'_>, labels: &[RedundantLabel], v: NodeId) -> bool {
        let Some(sv) = labels[v.0].size else {
            return false;
        };
        let mut sum = 0u64;
        for c in instance.children(v) {
            match labels[c.0].size {
                Some(sc) => sum += sc,
                None => return false,
            }
        }
        sv == 1 + sum
    }
}

impl ProofLabelingScheme for RedundantScheme {
    type Label = RedundantLabel;

    fn name(&self) -> &str {
        "redundant (malleable) spanning tree PLS"
    }

    fn prove(&self, graph: &Graph, tree: &Tree) -> Vec<RedundantLabel> {
        let root_ident = graph.ident(tree.root());
        let depths = tree.depths();
        let sizes = tree.subtree_sizes();
        graph
            .nodes()
            .map(|v| RedundantLabel::full(root_ident, depths[v.0] as u64, sizes[v.0] as u64))
            .collect()
    }

    fn verify_at(&self, instance: &Instance<'_>, labels: &[RedundantLabel], v: NodeId) -> bool {
        let graph = instance.graph;
        let own = labels[v.0];
        // (⊥, ⊥) is never a legal label.
        if own.dist.is_none() && own.size.is_none() {
            return false;
        }
        // Root-identity agreement with every neighbor, in all cases.
        for &(w, _) in graph.neighbors(v) {
            if labels[w.0].root != own.root {
                return false;
            }
        }
        match instance.parents[v.0] {
            None => {
                // The root: its identity must match, a present distance must be 0, and a
                // present size must satisfy the subtree equation.
                if graph.ident(v) != own.root {
                    return false;
                }
                if let Some(d) = own.dist {
                    if d != 0 {
                        return false;
                    }
                }
                if own.size.is_some() && !Self::size_ok(instance, labels, v) {
                    return false;
                }
                true
            }
            Some(p) => {
                if graph.edge_between(v, p).is_none() {
                    return false;
                }
                let parent = labels[p.0];
                // The 3×3 verification table of Lemma 4.1 (rows: label of v, columns:
                // label of p(v)).
                match (own.dist, own.size, parent.dist, parent.size) {
                    // v = (d, s)
                    (Some(_), Some(_), Some(_), Some(_)) => {
                        Self::distance_ok(labels, v, p) && Self::size_ok(instance, labels, v)
                    }
                    (Some(_), Some(_), Some(_), None) => Self::distance_ok(labels, v, p),
                    (Some(_), Some(_), None, Some(_)) => Self::size_ok(instance, labels, v),
                    // The parent exposes the illegal label (⊥, ⊥): reject here too.
                    (Some(_), Some(_), None, None) => false,
                    // v = (d, ⊥): constraint C1 requires the parent to be (d', ⊥).
                    (Some(_), None, Some(_), None) => Self::distance_ok(labels, v, p),
                    (Some(_), None, _, _) => false,
                    // v = (⊥, s): constraint C2 forbids a parent of the form (d', ⊥).
                    (None, Some(_), Some(_), None) => false,
                    (None, Some(_), _, _) => Self::size_ok(instance, labels, v),
                    // v = (⊥, ⊥) already rejected above.
                    (None, None, _, _) => false,
                }
            }
        }
    }
}

/// Incrementally repairs a full redundant labeling after a tree edit, given the already
/// repaired `depths` and `sizes` arrays of the *new* tree and the dirty regions computed
/// by the caller (the composition engine): `depth_dirty` is the set of nodes whose
/// root path changed, `size_dirty` the set of nodes whose subtree membership changed.
/// Untouched labels are exactly those of the old tree, so patching the dirty regions
/// reproduces [`RedundantScheme::prove`] on the new tree bit for bit (the root never
/// changes across a loop-free switch). Returns the number of label components written —
/// the deterministic work unit of the incremental-vs-from-scratch comparison.
pub fn repair_redundant_labels(
    labels: &mut [RedundantLabel],
    depths: &[usize],
    sizes: &[usize],
    depth_dirty: &[NodeId],
    size_dirty: &[NodeId],
) -> usize {
    for &v in depth_dirty {
        labels[v.0].dist = Some(depths[v.0] as u64);
    }
    for &v in size_dirty {
        labels[v.0].size = Some(sizes[v.0] as u64);
    }
    depth_dirty.len() + size_dirty.len()
}

/// Checks the pruning constraints C1 and C2 of §IV for a label assignment over a tree:
///
/// * C1: if `λ'(v) = (d, ⊥)` then `λ'(p(v)) = (d', ⊥)`;
/// * C2: if `λ'(v) = (⊥, s)` then `λ'(p(v))` is `(d', s')` or `(⊥, s')`;
/// * no label is `(⊥, ⊥)`.
pub fn pruning_is_legal(tree: &Tree, labels: &[RedundantLabel]) -> bool {
    for v in tree.nodes() {
        let own = labels[v.0];
        if own.dist.is_none() && own.size.is_none() {
            return false;
        }
        if let Some(p) = tree.parent(v) {
            let parent = labels[p.0];
            if own.dist.is_some() && own.size.is_none() && parent.size.is_some() {
                return false; // C1 violated
            }
            if own.dist.is_none() && own.size.is_some() && parent.size.is_none() {
                return false; // C2 violated
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use stst_graph::bfs::bfs_tree;
    use stst_graph::generators;

    fn setup(seed: u64) -> (Graph, Tree, Vec<RedundantLabel>) {
        let g = generators::workload(20, 0.2, seed);
        let t = bfs_tree(&g, g.min_ident_node());
        let labels = RedundantScheme.prove(&g, &t);
        (g, t, labels)
    }

    #[test]
    fn completeness_with_full_labels() {
        for seed in 0..5 {
            let (g, t, _) = setup(seed);
            assert!(RedundantScheme.accepts_legal(&g, &t));
        }
    }

    #[test]
    fn lemma_4_1_pruning_along_root_paths_is_accepted() {
        // Prune to (d, ⊥) along the path from the root to some node w, and to (⊥, s) in
        // the subtree of some node v — exactly the shapes used during a switch (Fig. 1b).
        let (g, t, mut labels) = setup(1);
        let w = NodeId(17 % g.node_count());
        for x in t.path_to_root(w) {
            labels[x.0] = labels[x.0].pruned_to_distance();
        }
        assert!(pruning_is_legal(&t, &labels));
        let outcome = RedundantScheme.verify_all(&Instance::from_tree(&g, &t), &labels);
        assert!(outcome.accepted(), "rejecting: {:?}", outcome.rejecting);
    }

    #[test]
    fn lemma_4_1_pruning_a_subtree_to_sizes_is_accepted() {
        let (g, t, mut labels) = setup(2);
        // Pick an internal node and prune its whole subtree (including itself) to (⊥, s).
        let children = t.children_table();
        let v = t
            .nodes()
            .find(|&v| !children[v.0].is_empty() && t.parent(v).is_some())
            .expect("some internal non-root node exists");
        let mut stack = vec![v];
        while let Some(x) = stack.pop() {
            labels[x.0] = labels[x.0].pruned_to_size();
            stack.extend(children[x.0].iter().copied());
        }
        assert!(pruning_is_legal(&t, &labels));
        let outcome = RedundantScheme.verify_all(&Instance::from_tree(&g, &t), &labels);
        assert!(outcome.accepted(), "rejecting: {:?}", outcome.rejecting);
    }

    #[test]
    fn illegal_prunings_are_rejected() {
        let (g, t, labels) = setup(3);
        // C1 violation: a (d, ⊥) node whose parent keeps its size.
        let v = t.nodes().find(|&v| t.parent(v).is_some()).unwrap();
        let mut bad = labels.clone();
        bad[v.0] = bad[v.0].pruned_to_distance();
        assert!(!pruning_is_legal(&t, &bad));
        assert!(!RedundantScheme
            .verify_all(&Instance::from_tree(&g, &t), &bad)
            .accepted());
        // (⊥, ⊥) is always rejected.
        let mut bad = labels;
        bad[v.0] = RedundantLabel {
            root: bad[v.0].root,
            dist: None,
            size: None,
        };
        assert!(!RedundantScheme
            .verify_all(&Instance::from_tree(&g, &t), &bad)
            .accepted());
    }

    #[test]
    fn soundness_cycles_are_rejected_even_with_pruned_labels() {
        // The proof of Lemma 4.1: on a parent-pointer cycle either some label is
        // (d, ⊥) — then C1 forces the whole cycle to be (·, ⊥) and the distance check
        // fails — or all labels carry sizes and the size check fails.
        let g = generators::ring(6);
        let parents: Vec<Option<NodeId>> = (0..6).map(|i| Some(NodeId((i + 1) % 6))).collect();
        let inst = Instance {
            graph: &g,
            parents: &parents,
        };
        // All labels carry sizes.
        let labels: Vec<RedundantLabel> = (0..6)
            .map(|i| RedundantLabel {
                root: 1,
                dist: None,
                size: Some(6 - i as u64),
            })
            .collect();
        assert!(!RedundantScheme.verify_all(&inst, &labels).accepted());
        // All labels distance-only.
        let labels: Vec<RedundantLabel> = (0..6)
            .map(|i| RedundantLabel {
                root: 1,
                dist: Some(i as u64),
                size: None,
            })
            .collect();
        assert!(!RedundantScheme.verify_all(&inst, &labels).accepted());
        // Mixed labels violate C1 somewhere on the cycle.
        let labels: Vec<RedundantLabel> = (0..6)
            .map(|i| {
                if i % 2 == 0 {
                    RedundantLabel {
                        root: 1,
                        dist: Some(i as u64),
                        size: None,
                    }
                } else {
                    RedundantLabel {
                        root: 1,
                        dist: None,
                        size: Some(10 + i as u64),
                    }
                }
            })
            .collect();
        assert!(!RedundantScheme.verify_all(&inst, &labels).accepted());
    }

    #[test]
    fn label_bits_account_for_pruning() {
        let (g, _, _) = setup(4);
        let ctx = CodecCtx::for_graph(&g);
        let full = RedundantLabel::full(5, 3, 9);
        let bits_full = RedundantScheme.label_bits(&ctx, &full);
        let bits_pruned = RedundantScheme.label_bits(&ctx, &full.pruned_to_distance());
        assert!(bits_pruned < bits_full);
    }

    #[test]
    fn codec_round_trips_full_pruned_and_garbage_labels() {
        use stst_runtime::codec::assert_codec_roundtrip;
        let (g, t, labels) = setup(5);
        let ctx = CodecCtx::for_graph(&g);
        for label in &labels {
            assert_codec_roundtrip(&ctx, label);
            assert_codec_roundtrip(&ctx, &label.pruned_to_distance());
            assert_codec_roundtrip(&ctx, &label.pruned_to_size());
        }
        let _ = t;
        // The illegal (⊥, ⊥) shape and out-of-width garbage still round-trip exactly
        // (a fault can produce them; the verifier — not the codec — rejects them).
        assert_codec_roundtrip(
            &ctx,
            &RedundantLabel {
                root: u64::MAX,
                dist: None,
                size: None,
            },
        );
        assert_codec_roundtrip(
            &ctx,
            &RedundantLabel {
                root: 0,
                dist: Some(u64::MAX),
                size: Some(0),
            },
        );
    }
}
