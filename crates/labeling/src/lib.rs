//! Proof-labeling schemes (PLS) for constrained spanning trees.
//!
//! A proof-labeling scheme is a prover–verifier pair: the prover assigns a short label
//! to every node of a legal configuration, and a 1-hop verifier at every node decides,
//! from its own label and its neighbors' labels only, whether to accept. Legal
//! configurations admit a label assignment accepted everywhere; illegal configurations
//! are rejected by at least one node for *every* label assignment (paper §II-C).
//!
//! The crate provides all the schemes the paper builds on:
//!
//! * [`distance`] — the classical distance-based scheme for spanning trees;
//! * [`size`] — the subtree-size-based scheme;
//! * [`redundant`] — the *redundant* (distance + size) scheme of §IV, together with the
//!   pruning rules C1/C2 and the verification table of Lemma 4.1, which make it
//!   **malleable**: a legal labeling can be degraded into a pruned labeling that stays
//!   accepted while an edge switch `T ← T + e − f` is in progress;
//! * [`nca`] — the informative NCA labeling of §V (heavy-path based), its evaluation
//!   `nca(λ(u), λ(v))`, the fundamental-cycle membership test, and a proof-labeling
//!   scheme *for the labeling itself* (Lemma 5.1);
//! * [`mst_fragments`] — the Borůvka-trace fragment labels of §VI and the MST potential
//!   function `φ`;
//! * [`fr_labels`] — the FR-tree certification labels of §VIII (Lemma 8.1).

pub mod distance;
pub mod fr_labels;
pub mod mst_fragments;
pub mod nca;
pub mod redundant;
pub mod scheme;
pub mod size;

pub use scheme::{Instance, ProofLabelingScheme, VerificationOutcome};
