//! MST fragment labels and the MST potential function of §VI.
//!
//! Each node stores the trace of a *virtual execution of Borůvka's algorithm on the
//! current tree `T`*: for every level `i`, the identity of the level-`i` fragment it
//! belongs to and the minimum-weight **tree** edge outgoing from that fragment
//! (Fig. 2 of the paper). The potential
//! `φ(T) = k·n − Σ_x φ_x(T)`, where `φ_x(T)` is the largest level up to which the
//! recorded outgoing edges are also minimum-weight outgoing edges *in the whole graph*,
//! is zero exactly on minimum spanning trees; when it is positive, the lightest outgoing
//! edge `e` of a violating fragment and the heaviest edge `f` of the fundamental cycle
//! `T + e` form an improving swap (`φ(T + e − f) < φ(T)` — Tarjan's red rule).

use std::collections::{BTreeSet, HashMap, HashSet};

use stst_graph::mst::{boruvka_on_tree, BoruvkaRun};
use stst_graph::{EdgeId, Graph, Ident, NodeId, Tree, Weight};
use stst_runtime::bits::{BitReader, BitWriter};
use stst_runtime::par::ThreadPool;
use stst_runtime::{Codec, CodecCtx};

use crate::scheme::{Instance, ProofLabelingScheme};

/// One level of a fragment label: the fragment identity and the recorded outgoing tree
/// edge `(ID(a), ID(b), w(a, b))` (or `⊥` once the fragment spans the tree).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FragmentLevel {
    /// Identity of the level-`i` fragment (smallest node identity it contains).
    pub fragment: Ident,
    /// The minimum-weight tree edge outgoing from the fragment, as an identity pair plus
    /// weight, or `None` at the final level.
    pub outgoing: Option<(Ident, Ident, Weight)>,
}

/// The fragment label of one node: one [`FragmentLevel`] per Borůvka level
/// (`k ≤ ⌈log₂ n⌉ + 1` levels), `O(log² n)` bits in total — the space-optimal budget for
/// silent MST (Korman–Kutten).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct FragmentLabel {
    /// Levels from 0 (singleton fragments) to `k − 1` (the whole tree).
    pub levels: Vec<FragmentLevel>,
}

impl Codec for FragmentLabel {
    fn encoded_bits(&self, ctx: &CodecCtx) -> usize {
        CodecCtx::uint_bits(self.levels.len() as u64, ctx.len_bits)
            + self
                .levels
                .iter()
                .map(|l| {
                    CodecCtx::uint_bits(l.fragment, ctx.ident_bits)
                        + 1
                        + l.outgoing.map_or(0, |(a, b, w)| {
                            CodecCtx::uint_bits(a, ctx.ident_bits)
                                + CodecCtx::uint_bits(b, ctx.ident_bits)
                                + CodecCtx::uint_bits(w, ctx.weight_bits)
                        })
                })
                .sum::<usize>()
    }

    fn encode_into(&self, ctx: &CodecCtx, w: &mut BitWriter<'_>) {
        CodecCtx::write_uint(w, self.levels.len() as u64, ctx.len_bits);
        for level in &self.levels {
            CodecCtx::write_uint(w, level.fragment, ctx.ident_bits);
            match level.outgoing {
                None => w.write(0, 1),
                Some((a, b, weight)) => {
                    w.write(1, 1);
                    CodecCtx::write_uint(w, a, ctx.ident_bits);
                    CodecCtx::write_uint(w, b, ctx.ident_bits);
                    CodecCtx::write_uint(w, weight, ctx.weight_bits);
                }
            }
        }
    }

    fn decode_from(ctx: &CodecCtx, r: &mut BitReader<'_>) -> Self {
        let len = CodecCtx::read_uint(r, ctx.len_bits) as usize;
        let levels = (0..len)
            .map(|_| {
                let fragment = CodecCtx::read_uint(r, ctx.ident_bits);
                let outgoing = (r.read(1) == 1).then(|| {
                    let a = CodecCtx::read_uint(r, ctx.ident_bits);
                    let b = CodecCtx::read_uint(r, ctx.ident_bits);
                    let weight = CodecCtx::read_uint(r, ctx.weight_bits);
                    (a, b, weight)
                });
                FragmentLevel { fragment, outgoing }
            })
            .collect();
        FragmentLabel { levels }
    }
}

/// Builds the fragment labels of every node for the spanning tree `tree` by running
/// Borůvka virtually on the tree's edges.
///
/// # Panics
///
/// Panics if `tree` is not a spanning tree of `graph`.
pub fn assign_fragment_labels(graph: &Graph, tree: &Tree) -> Vec<FragmentLabel> {
    let run: BoruvkaRun =
        boruvka_on_tree(graph, tree).expect("fragment labels need a spanning tree of the graph");
    labels_from_traces(graph, &run)
}

fn labels_from_traces(graph: &Graph, run: &BoruvkaRun) -> Vec<FragmentLabel> {
    run.traces
        .iter()
        .map(|trace| FragmentLabel {
            levels: trace
                .fragment
                .iter()
                .zip(trace.chosen_edge.iter())
                .map(|(&fragment, &edge)| FragmentLevel {
                    fragment,
                    outgoing: edge.map(|e| outgoing_triple(graph, e)),
                })
                .collect(),
        })
        .collect()
}

/// The `(ID(a), ID(b), w)` form in which a recorded outgoing edge is stored in a label.
fn outgoing_triple(graph: &Graph, e: EdgeId) -> (Ident, Ident, Weight) {
    let ed = graph.edge(e);
    (graph.ident(ed.u), graph.ident(ed.v), ed.weight)
}

/// The MST potential `φ(T) = k·n − Σ_x φ_x(T)` of §VI, computed from freshly assigned
/// fragment labels. Zero iff `T` is a minimum spanning tree.
pub fn mst_potential(graph: &Graph, tree: &Tree) -> u64 {
    FragmentState::new(graph, tree).potential()
}

/// The improving swap prescribed by the potential: for a node `x` whose level-`(i+1)`
/// recorded edge is not the true minimum outgoing edge, take `e` = the true
/// minimum-weight outgoing edge of that fragment in `G` and `f` = the heaviest tree edge
/// on the fundamental cycle of `T + e`. Returns `None` iff the tree is an MST.
pub fn fragment_guided_swap(graph: &Graph, tree: &Tree) -> Option<(EdgeId, EdgeId)> {
    FragmentState::new(graph, tree).improving_swap(graph, tree)
}

/// One Borůvka fragment of one level, as maintained incrementally: its member nodes,
/// the minimum-weight outgoing **tree** edge it recorded, the identity of the
/// level-above fragment it merged into (its own identity at the final level), and the
/// identities of the level-below fragments it is composed of (empty at level 0). The
/// constituent lists are the reverse index that lets a repair regroup only the merge
/// components actually touched by a swap instead of re-deriving the whole level.
#[derive(Clone, Debug)]
struct FragRecord {
    members: Vec<NodeId>,
    chosen: Option<EdgeId>,
    parent: Ident,
    constituents: Vec<Ident>,
}

/// Persistent Borůvka-trace state for one spanning tree, supporting *incremental* label
/// repair after a loop-free switch `T ← T + e − f` (the tentpole of the composition
/// engine). The state keeps, per level, every fragment's member list and chosen edge,
/// plus the true minimum-weight outgoing edge of every fragment *in the whole graph*
/// (the quantity the potential compares against) and the per-node potential `φ_x`.
///
/// [`FragmentState::apply_swap`] exploits that a swap changes the tree edge set by
/// exactly `{+e, −f}`: at every level, a fragment's membership, chosen edge and true
/// minimum outgoing edge can change only if the fragment contains an endpoint of `e` or
/// `f`, or if one of its constituent fragments already changed at the level below. The
/// repair walks the levels once, recomputes only that dirty frontier, and rewrites only
/// the labels of nodes in dirty fragments — producing labels bit-identical to
/// [`assign_fragment_labels`] on the new tree (asserted by the differential oracle
/// tests) at a cost proportional to the dirty region instead of `O(m log n)`.
pub struct FragmentState {
    labels: Vec<FragmentLabel>,
    /// Per level: fragment identity → record. `levels.len()` equals the trace length.
    levels: Vec<HashMap<Ident, FragRecord>>,
    /// Tree membership per edge (the only tree representation the traces depend on).
    is_tree_edge: Vec<bool>,
    /// Per level: fragment identity → minimum-weight outgoing edge over *all* graph
    /// edges (`None` only for the final spanning fragment).
    true_min_out: Vec<HashMap<Ident, EdgeId>>,
    /// `φ_x` per node: the first level whose recorded edge is not the true minimum
    /// outgoing edge of `x`'s fragment (or `k` when all levels agree).
    phi: Vec<usize>,
    phi_sum: u64,
}

impl FragmentState {
    /// Builds the state from scratch (the `Relabel::FromScratch` reference prover),
    /// sequentially. See [`FragmentState::new_with_pool`] for the parallel variant.
    ///
    /// # Panics
    ///
    /// Panics if `tree` is not a spanning tree of `graph`.
    pub fn new(graph: &Graph, tree: &Tree) -> Self {
        FragmentState::new_with_pool(graph, tree, &ThreadPool::sequential())
    }

    /// Builds the state from scratch, running the per-level true-minimum-outgoing-edge
    /// scans (one `O(m)` pass per Borůvka level, mutually independent given the
    /// traces) and the per-node potential pass on `pool`. The result is bit-identical
    /// to [`FragmentState::new`] at any pool width: levels are computed independently
    /// and merged in level order, `φ_x` per node in node order.
    ///
    /// # Panics
    ///
    /// Panics if `tree` is not a spanning tree of `graph`.
    pub fn new_with_pool(graph: &Graph, tree: &Tree, pool: &ThreadPool) -> Self {
        let run = boruvka_on_tree(graph, tree)
            .expect("fragment labels need a spanning tree of the graph");
        let labels = labels_from_traces(graph, &run);
        let n = graph.node_count();
        let k = run.levels;
        let mut levels: Vec<HashMap<Ident, FragRecord>> = vec![HashMap::new(); k];
        for v in graph.nodes() {
            let trace = &run.traces[v.0];
            for i in 0..k {
                let rec = levels[i]
                    .entry(trace.fragment[i])
                    .or_insert_with(|| FragRecord {
                        members: Vec::new(),
                        chosen: trace.chosen_edge[i],
                        parent: if i + 1 < k {
                            trace.fragment[i + 1]
                        } else {
                            trace.fragment[i]
                        },
                        constituents: Vec::new(),
                    });
                rec.members.push(v);
            }
        }
        // Reverse index: every fragment registers with its parent one level up, in
        // ascending identity order (deterministic across builds).
        for i in 0..k.saturating_sub(1) {
            let mut links: Vec<(Ident, Ident)> = levels[i]
                .iter()
                .map(|(&id, rec)| (id, rec.parent))
                .collect();
            links.sort_unstable();
            for (id, parent) in links {
                levels[i + 1]
                    .get_mut(&parent)
                    .expect("parents exist one level up")
                    .constituents
                    .push(id);
            }
        }
        let mut is_tree_edge = vec![false; graph.edge_count()];
        for e in tree.edge_ids_in(graph) {
            is_tree_edge[e.index()] = true;
        }
        let mut state = FragmentState {
            labels,
            levels,
            is_tree_edge,
            true_min_out: vec![HashMap::new(); k],
            phi: vec![0; n],
            phi_sum: 0,
        };
        state.true_min_out = pool
            .run(k, |_, range| {
                range
                    .map(|i| state.true_min_level(graph, i))
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect();
        let mut phi = std::mem::take(&mut state.phi);
        pool.fill_with(&mut phi, |i| state.node_phi(NodeId(i)));
        state.phi = phi;
        state.phi_sum = state.phi.iter().map(|&p| p as u64).sum();
        state
    }

    /// The maintained labels (always equal to `assign_fragment_labels` on the current
    /// tree).
    pub fn labels(&self) -> &[FragmentLabel] {
        &self.labels
    }

    /// Mutable access to the labels, for **fault injection only**: after mutating a
    /// label the state is inconsistent until the owner detects the corruption (via
    /// [`FragmentScheme`]) and rebuilds the state from scratch.
    pub fn labels_mut(&mut self) -> &mut [FragmentLabel] {
        &mut self.labels
    }

    /// Number of Borůvka levels of the current trace.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// `φ(T) = k·n − Σ_x φ_x(T)`; zero iff the current tree is an MST.
    pub fn potential(&self) -> u64 {
        (self.level_count() * self.labels.len()) as u64 - self.phi_sum
    }

    /// The improving swap prescribed by the potential on the current tree (which must be
    /// the tree the state was built/repaired for). `None` iff `φ(T) = 0`.
    pub fn improving_swap(&self, graph: &Graph, tree: &Tree) -> Option<(EdgeId, EdgeId)> {
        let k = self.level_count();
        let mut violating: Option<(NodeId, usize)> = None;
        for x in graph.nodes() {
            let px = self.phi[x.0];
            if px < k && violating.is_none_or(|(_, best)| px < best) {
                violating = Some((x, px));
            }
        }
        let (x, i) = violating?;
        let fragment = self.labels[x.0].levels[i].fragment;
        let e = *self.true_min_out[i]
            .get(&fragment)
            .expect("a violating fragment has an outgoing edge");
        if self.is_tree_edge[e.index()] {
            // The recorded edge was wrong but the true minimum is already a tree edge;
            // the discrepancy is in the labels, not the tree (unreachable for
            // prover-exact state, kept for parity with the label-based definition).
            return None;
        }
        let f = stst_graph::mst::heaviest_cycle_edge(graph, tree, e);
        Some((e, f))
    }

    /// True minimum-weight outgoing edge (over all graph edges) of every fragment of
    /// level `i`, computed from scratch in one edge scan.
    fn true_min_level(&self, graph: &Graph, i: usize) -> HashMap<Ident, EdgeId> {
        let mut best: HashMap<Ident, EdgeId> = HashMap::new();
        for e in graph.edge_ids() {
            let ed = graph.edge(e);
            let fu = self.labels[ed.u.0].levels[i].fragment;
            let fv = self.labels[ed.v.0].levels[i].fragment;
            if fu == fv {
                continue;
            }
            for f in [fu, fv] {
                let slot = best.entry(f).or_insert(e);
                if (graph.weight(e), e.index()) < (graph.weight(*slot), slot.index()) {
                    *slot = e;
                }
            }
        }
        best
    }

    /// Minimum outgoing edge of one fragment under the exact `(weight, edge index)`
    /// order, optionally restricted to tree edges — the shared scan of the
    /// dirty-fragment repair path. Each member's incident edges are walked in the
    /// CSR's precomputed weight order (`Graph::neighbor_order_by_weight`), so the scan
    /// **early-exits** as soon as the remaining edges of a member are strictly heavier
    /// than the best candidate so far: only ties by weight still need the edge-index
    /// comparison, and equal weights are contiguous in the order. Results are
    /// identical to the full `O(Σ_{v ∈ F} deg(v))` scan; the cost drops to the prefix
    /// of each adjacency list at or below the winning weight.
    fn min_outgoing(
        &self,
        graph: &Graph,
        level: usize,
        fragment: Ident,
        tree_only: bool,
    ) -> Option<EdgeId> {
        let members = &self.levels[level][&fragment].members;
        let mut best: Option<(Weight, EdgeId)> = None;
        for &v in members {
            let nbrs = graph.neighbors(v);
            for &k in graph.neighbor_order_by_weight(v) {
                let (w, e) = nbrs[k as usize];
                let weight = graph.weight(e);
                if let Some((best_w, best_e)) = best {
                    if weight > best_w {
                        break; // ascending order: nothing later in this list can win
                    }
                    if weight == best_w && e.index() >= best_e.index() {
                        continue;
                    }
                }
                if (tree_only && !self.is_tree_edge[e.index()])
                    || self.labels[w.0].levels[level].fragment == fragment
                {
                    continue;
                }
                best = Some((weight, e));
            }
        }
        best.map(|(_, e)| e)
    }

    /// True minimum outgoing edge of one fragment (over all graph edges).
    fn true_min_of(&self, graph: &Graph, level: usize, fragment: Ident) -> Option<EdgeId> {
        self.min_outgoing(graph, level, fragment, false)
    }

    /// Minimum-weight outgoing **tree** edge of one fragment (the edge Borůvka records).
    fn chosen_of(&self, graph: &Graph, level: usize, fragment: Ident) -> Option<EdgeId> {
        self.min_outgoing(graph, level, fragment, true)
    }

    /// Recomputes `φ_x` from the maintained records.
    fn node_phi(&self, x: NodeId) -> usize {
        let k = self.level_count();
        for i in 0..k {
            let fragment = self.labels[x.0].levels[i].fragment;
            let recorded = self.levels[i][&fragment].chosen;
            let true_min = self.true_min_out[i].get(&fragment).copied();
            match (recorded, true_min) {
                (None, None) => continue, // final level: the fragment spans everything
                (Some(r), Some(t)) if r == t => continue,
                _ => return i,
            }
        }
        k
    }

    /// Incrementally repairs the state for the swap `T ← T + add − remove`, leaving
    /// labels, records, true minima and potentials exactly as a from-scratch rebuild on
    /// the new tree would. Returns the number of per-node label entries rewritten (the
    /// deterministic work unit of the incremental-vs-from-scratch comparison).
    ///
    /// # Panics
    ///
    /// Panics if `remove` is not a tree edge or `add` already is one.
    pub fn apply_swap(&mut self, graph: &Graph, add: EdgeId, remove: EdgeId) -> u64 {
        assert!(
            self.is_tree_edge[remove.index()] && !self.is_tree_edge[add.index()],
            "apply_swap needs a non-tree edge to add and a tree edge to remove"
        );
        self.is_tree_edge[remove.index()] = false;
        self.is_tree_edge[add.index()] = true;
        let add_edge = graph.edge(add);
        let remove_edge = graph.edge(remove);
        let endpoints = [add_edge.u, add_edge.v, remove_edge.u, remove_edge.v];
        // A swap changes only tree membership, never the graph's edge set, so the true
        // minima of clean fragments are untouched — and the chosen edges of
        // membership-clean fragments can be patched from `{+add, −remove}` alone.
        self.repair_dirty_endpoints(graph, &endpoints, false, Some((add, remove)))
    }

    /// Incrementally repairs the state after a **topology mutation** of the underlying
    /// graph (edges added/removed/re-weighted, node set unchanged): `tree` is the
    /// already-repaired spanning tree of the mutated graph and `dirty` the endpoint
    /// set of every changed edge — graph-mutated edges, edges whose dense index was
    /// recycled by a removal, and the tree edges swapped by the re-anchoring (see
    /// `stst-graph::mutation`). Any fragment whose membership, chosen edge, or true
    /// minimum outgoing edge can change necessarily contains one of these endpoints
    /// (an edge incident to a fragment has an endpoint inside it), so repairing the
    /// endpoint-dirty frontier — this time re-scanning true minima as well, because
    /// the graph's edge set itself moved — leaves the state bit-identical to a
    /// from-scratch rebuild on the mutated instance.
    ///
    /// Returns the per-node label entries rewritten.
    ///
    /// # Panics
    ///
    /// Panics if the node set changed (node churn requires a from-scratch rebuild: the
    /// dense index space every label is keyed by was remapped).
    pub fn apply_topology(&mut self, graph: &Graph, tree: &Tree, dirty: &[NodeId]) -> u64 {
        assert_eq!(
            self.labels.len(),
            graph.node_count(),
            "node churn remaps the index space: rebuild the fragment state from scratch"
        );
        // Edge ids may have been recycled by removals: rebuild tree membership from
        // the repaired tree rather than patching indices.
        self.is_tree_edge.clear();
        self.is_tree_edge.resize(graph.edge_count(), false);
        for e in tree.edge_ids_in(graph) {
            self.is_tree_edge[e.index()] = true;
        }
        self.repair_dirty_endpoints(graph, dirty, true, None)
    }

    /// The shared dirty-frontier cascade of [`FragmentState::apply_swap`] and
    /// [`FragmentState::apply_topology`]: walks the levels once, re-choosing fragments
    /// that contain a dirty endpoint (re-scanning their true minima too when
    /// `refresh_true_min` — i.e. when the graph's own edge set changed), merging and
    /// rebuilding only the groups whose composition changed, and repairing `φ_x` for
    /// exactly the affected nodes.
    fn repair_dirty_endpoints(
        &mut self,
        graph: &Graph,
        endpoints: &[NodeId],
        refresh_true_min: bool,
        swap: Option<(EdgeId, EdgeId)>,
    ) -> u64 {
        let old_level_count = self.level_count();
        let mut writes = 0u64;
        let mut phi_dirty: HashSet<NodeId> = HashSet::new();
        // Fragments of the current level whose member set was rebuilt by the merge step
        // below (none at level 0: singletons never change membership).
        let mut membership_dirty: HashSet<Ident> = HashSet::new();
        // Stale fragment identities to drop from the current level before processing it.
        let mut stale: Vec<Ident> = Vec::new();
        let mut level = 0usize;
        loop {
            // The merge step below can only produce a different grouping if one of its
            // inputs changed at this level: the fragment *set* (stale removals or
            // rebuilt groups) or some fragment's chosen edge. Tracked so that clean
            // levels skip the grouping pass entirely — this is what makes a repair
            // cost `O(dirty region)` per level instead of `O(#fragments)` (at
            // n = 10⁵, the difference between a milliseconds-per-swap cascade and an
            // `O(n)` rebuild per swap).
            // Old parents of the fragments dissolved at this level: their groups lost a
            // constituent, so the merge below must re-derive them (closure seeds).
            let mut stale_parents: Vec<Ident> = Vec::new();
            for id in stale.drain(..) {
                if let Some(rec) = self.levels[level].remove(&id) {
                    stale_parents.push(rec.parent);
                }
                self.true_min_out[level].remove(&id);
            }
            // Fragments whose merge-relevant state changes at this level: rebuilt
            // membership now, or a changed chosen edge (recorded below). The merge
            // pass regroups only the link-closure of these seeds — clean groups
            // elsewhere on the level are never touched, which is what makes a repair
            // cost `O(dirty region)` instead of `O(#fragments)` per level (at
            // n = 10⁵, the difference between a milliseconds-per-swap cascade and an
            // `O(n)` regrouping per swap).
            let mut merge_seeds: BTreeSet<Ident> = membership_dirty.iter().copied().collect();
            // (A) Recompute chosen edges (and true minima) on the dirty frontier: the
            // rebuilt fragments plus every fragment containing an endpoint of e or f
            // (the only fragments whose incident tree-edge set changed).
            let mut rechoose: BTreeSet<Ident> = membership_dirty.iter().copied().collect();
            for &v in endpoints {
                rechoose.insert(self.labels[v.0].levels[level].fragment);
            }
            for id in rechoose {
                let rebuilt = membership_dirty.contains(&id);
                let old_chosen = self.levels[level][&id].chosen;
                let old_min = self.true_min_out[level].get(&id).copied();
                // A membership-clean fragment under a pure swap changes its outgoing
                // **tree**-edge set by exactly `{+add, −remove}`, so its minimum can
                // be patched in O(1): a full member scan (`chosen_of`, O(Σ deg) over
                // the fragment — O(n) for the top-level fragments!) is only needed
                // when the removed edge *was* the recorded minimum. This is what
                // keeps a swap's repair proportional to its dirty region.
                let new_chosen = match swap {
                    Some((add, remove)) if !rebuilt && !refresh_true_min => {
                        if old_chosen == Some(remove) {
                            self.chosen_of(graph, level, id)
                        } else {
                            let ae = graph.edge(add);
                            let fu = self.labels[ae.u.0].levels[level].fragment;
                            let fv = self.labels[ae.v.0].levels[level].fragment;
                            let add_outgoing = (fu == id) != (fv == id);
                            match (old_chosen, add_outgoing) {
                                (Some(o), true)
                                    if (graph.weight(add), add.index())
                                        < (graph.weight(o), o.index()) =>
                                {
                                    Some(add)
                                }
                                (None, true) => Some(add),
                                (other, _) => other,
                            }
                        }
                    }
                    _ => self.chosen_of(graph, level, id),
                };
                if new_chosen != old_chosen {
                    merge_seeds.insert(id);
                }
                // Under a topology mutation the stored `(ID, ID, w)` triple can go
                // stale even when the chosen EdgeId is unchanged (weight drift), so
                // the members' labels are re-derived unconditionally there; the inner
                // loop still only counts entries whose text actually changed.
                if rebuilt || refresh_true_min || new_chosen != old_chosen {
                    let rec = self.levels[level].get_mut(&id).expect("fragment exists");
                    rec.chosen = new_chosen;
                    let members = rec.members.clone();
                    let triple = new_chosen.map(|e| outgoing_triple(graph, e));
                    // Only members whose recorded edge actually differs perform a
                    // register write (a rebuilt fragment that kept its choice leaves
                    // most labels untouched); the work counter counts real writes.
                    for &m in &members {
                        let slot = &mut self.labels[m.0].levels[level].outgoing;
                        if *slot != triple {
                            *slot = triple;
                            writes += 1;
                            phi_dirty.insert(m);
                        }
                    }
                }
                let new_min = if rebuilt || refresh_true_min {
                    let new_min = self.true_min_of(graph, level, id);
                    match new_min {
                        Some(e) => {
                            self.true_min_out[level].insert(id, e);
                        }
                        None => {
                            self.true_min_out[level].remove(&id);
                        }
                    }
                    new_min
                } else {
                    old_min
                };
                // φ reads only the per-fragment (recorded, true-min) *agreement*, so
                // the members' potentials need repair exactly when that agreement
                // flips (or the membership itself was rebuilt) — not on every record
                // rewrite. This keeps the φ repair off the O(n)-member fragments for
                // the vast majority of swaps.
                let old_agree = old_chosen == old_min;
                let new_agree = new_chosen == new_min;
                if rebuilt || old_agree != new_agree {
                    let members = self.levels[level][&id].members.clone();
                    phi_dirty.extend(members);
                }
            }
            // (B) Termination: a single fragment spans the tree at this level.
            if self.levels[level].len() == 1 {
                writes += self.finalize_levels(level + 1, old_level_count, &mut phi_dirty);
                break;
            }
            // (C) Merge into level + 1: group the seeds' link-closure along the chosen
            // edges (cheap per-fragment bookkeeping, no per-node work), then rebuild
            // only the groups whose composition actually changed. When no merge input
            // changed at this level — the fragment set and every chosen edge are
            // exactly what they were before the repair — the grouping is unchanged by
            // definition and the pass is skipped outright (bit-identity to a full
            // regrouping is pinned by the from-scratch differential tests).
            let next_dirty = if !merge_seeds.is_empty() || !stale_parents.is_empty() {
                self.merge_level(
                    graph,
                    level,
                    &membership_dirty,
                    &merge_seeds,
                    &stale_parents,
                    &mut stale,
                    &mut writes,
                    &mut phi_dirty,
                )
            } else {
                HashSet::new()
            };
            membership_dirty = next_dirty;
            level += 1;
        }

        // (D) Repair the per-node potentials of every node whose fragment stack or
        // fragment agreement changed.
        if self.level_count() != old_level_count {
            phi_dirty.extend(graph.nodes());
        }
        let mut dirty_nodes: Vec<NodeId> = phi_dirty.into_iter().collect();
        dirty_nodes.sort_unstable();
        for x in dirty_nodes {
            let new_phi = self.node_phi(x);
            self.phi_sum = self.phi_sum - self.phi[x.0] as u64 + new_phi as u64;
            self.phi[x.0] = new_phi;
        }
        writes
    }

    /// The merge step of one repair level: groups fragments along their chosen edges
    /// with a fragment-granularity union-find, keeps every group whose composition is
    /// provably unchanged, and rebuilds the rest. Returns the identities of the rebuilt
    /// level-`level + 1` fragments.
    ///
    /// The union-find runs over the **link-closure scope** of the seeds, not the whole
    /// level: the full old groups (via the stored constituent lists) of every
    /// chosen-changed, rebuilt or dissolved fragment, extended transitively wherever a
    /// scoped fragment's new link targets a fragment outside the scope. Groups fully
    /// outside the scope keep their recorded grouping verbatim, which is sound because
    /// (a) their own links are unchanged, and (b) a link *into* the scope from an
    /// unchanged fragment implies it already shared an old group with its target
    /// (links pre-existed ⇒ same component), so the closure pulled it in. When the
    /// level count grows there is no recorded grouping to reuse, so the scope falls
    /// back to the whole level.
    #[allow(clippy::too_many_arguments)]
    fn merge_level(
        &mut self,
        graph: &Graph,
        level: usize,
        membership_dirty: &HashSet<Ident>,
        merge_seeds: &BTreeSet<Ident>,
        stale_parents: &[Ident],
        stale: &mut Vec<Ident>,
        writes: &mut u64,
        phi_dirty: &mut HashSet<NodeId>,
    ) -> HashSet<Ident> {
        let ids: Vec<Ident> = if level + 1 >= self.levels.len() {
            let mut ids: Vec<Ident> = self.levels[level].keys().copied().collect();
            ids.sort_unstable();
            ids
        } else {
            let lower = &self.levels[level];
            let upper = &self.levels[level + 1];
            let mut in_scope: BTreeSet<Ident> = BTreeSet::new();
            let mut expanded: BTreeSet<Ident> = BTreeSet::new();
            let mut parent_queue: Vec<Ident> = stale_parents.to_vec();
            let mut frontier: Vec<Ident> = Vec::new();
            for &f in merge_seeds {
                if lower.contains_key(&f) && in_scope.insert(f) {
                    frontier.push(f);
                    parent_queue.push(lower[&f].parent);
                }
            }
            loop {
                while let Some(p) = parent_queue.pop() {
                    if expanded.insert(p) {
                        if let Some(rec) = upper.get(&p) {
                            for &c in &rec.constituents {
                                // Constituent lists can name fragments this repair
                                // already dissolved; only live ones are grouped.
                                if lower.contains_key(&c) && in_scope.insert(c) {
                                    frontier.push(c);
                                }
                            }
                        }
                    }
                }
                let Some(f) = frontier.pop() else { break };
                let e = lower[&f]
                    .chosen
                    .expect("a non-final fragment of a spanning tree has an outgoing tree edge");
                let ed = graph.edge(e);
                let fu = self.labels[ed.u.0].levels[level].fragment;
                let fv = self.labels[ed.v.0].levels[level].fragment;
                let other = if fu == f { fv } else { fu };
                if in_scope.insert(other) {
                    frontier.push(other);
                    if let Some(rec) = lower.get(&other) {
                        parent_queue.push(rec.parent);
                    }
                }
            }
            in_scope.into_iter().collect()
        };
        let index: HashMap<Ident, usize> = ids.iter().enumerate().map(|(i, &d)| (d, i)).collect();
        let mut dsu: Vec<usize> = (0..ids.len()).collect();
        fn find(dsu: &mut [usize], mut x: usize) -> usize {
            while dsu[x] != x {
                dsu[x] = dsu[dsu[x]];
                x = dsu[x];
            }
            x
        }
        for (i, &id) in ids.iter().enumerate() {
            let Some(e) = self.levels[level][&id].chosen else {
                panic!("a non-final fragment of a spanning tree has an outgoing tree edge");
            };
            let ed = graph.edge(e);
            let fu = self.labels[ed.u.0].levels[level].fragment;
            let fv = self.labels[ed.v.0].levels[level].fragment;
            let other = if fu == id { fv } else { fu };
            let (a, b) = (find(&mut dsu, i), find(&mut dsu, index[&other]));
            if a != b {
                dsu[a] = b;
            }
        }
        let mut components: HashMap<usize, Vec<Ident>> = HashMap::new();
        for (i, &id) in ids.iter().enumerate() {
            components.entry(find(&mut dsu, i)).or_default().push(id);
        }
        let growing = level + 1 >= self.levels.len();
        if growing {
            self.levels.push(HashMap::new());
            self.true_min_out.push(HashMap::new());
        }
        let mut next_dirty: HashSet<Ident> = HashSet::new();
        let mut rebuilt: Vec<(Ident, Vec<NodeId>, Vec<Ident>)> = Vec::new();
        for mut constituents in components.into_values() {
            // A group is unchanged iff every constituent kept its membership, they all
            // merged into the same old parent, and together they cover all of it.
            let clean =
                !growing && constituents.iter().all(|id| !membership_dirty.contains(id)) && {
                    let parent = self.levels[level][&constituents[0]].parent;
                    constituents
                        .iter()
                        .all(|id| self.levels[level][id].parent == parent)
                        && self.levels[level + 1].get(&parent).is_some_and(|rec| {
                            rec.members.len()
                                == constituents
                                    .iter()
                                    .map(|id| self.levels[level][id].members.len())
                                    .sum::<usize>()
                        })
                };
            if clean {
                continue;
            }
            constituents.sort_unstable();
            let new_ident = constituents[0];
            let mut members: Vec<NodeId> = Vec::new();
            for id in &constituents {
                let rec = self.levels[level].get_mut(id).expect("constituent exists");
                rec.parent = new_ident;
                members.extend(rec.members.iter().copied());
            }
            members.sort_unstable();
            // The group recomposed out of different constituents but to exactly its old
            // member set (the common case one level above a local swap: the two sides of
            // the fundamental cycle re-merge): everything above this level is unchanged,
            // so the upward dirty cascade stops here — only the reverse index needs the
            // new composition.
            if !growing {
                if let Some(old) = self.levels[level + 1].get_mut(&new_ident) {
                    if old.members == members {
                        old.constituents = constituents;
                        continue;
                    }
                }
            }
            rebuilt.push((new_ident, members, constituents));
        }
        let new_idents: Vec<Ident> = rebuilt.iter().map(|(id, _, _)| *id).collect();
        for (new_ident, members, constituents) in rebuilt {
            for &m in &members {
                let label = &mut self.labels[m.0];
                if level + 1 < label.levels.len() {
                    // The member's old group is dissolved by this rebuild (unless the
                    // rebuilt group reuses its identity — filtered below); remember it
                    // so the next level drops the record before processing. Only members
                    // whose identity entry actually differs perform a register write.
                    let old_parent = label.levels[level + 1].fragment;
                    if old_parent != new_ident {
                        stale.push(old_parent);
                        label.levels[level + 1].fragment = new_ident;
                        *writes += 1;
                        phi_dirty.insert(m);
                    }
                } else {
                    label.levels.push(FragmentLevel {
                        fragment: new_ident,
                        outgoing: None,
                    });
                    *writes += 1;
                    phi_dirty.insert(m);
                }
            }
            // A reused identity keeps its old record's parent: the next level's merge
            // seeds its closure from it to locate the (possibly recomposing) old
            // group. Brand-new identities have no old group; their dissolved
            // predecessors are tracked through `stale_parents` instead.
            let parent = self.levels[level + 1]
                .get(&new_ident)
                .map_or(new_ident, |old| old.parent);
            self.levels[level + 1].insert(
                new_ident,
                FragRecord {
                    members,
                    chosen: None,
                    parent,
                    constituents,
                },
            );
            next_dirty.insert(new_ident);
        }
        stale.sort_unstable();
        stale.dedup();
        stale.retain(|id| !new_idents.contains(id));
        next_dirty
    }

    /// Truncates or confirms the trace length once the repair reached the spanning
    /// fragment at `new_level_count` levels, mirroring the from-scratch run's final
    /// `(fragment, ⊥)` entries. Returns the labels rewritten.
    fn finalize_levels(
        &mut self,
        new_level_count: usize,
        old_level_count: usize,
        phi_dirty: &mut HashSet<NodeId>,
    ) -> u64 {
        let last = new_level_count - 1;
        let final_ident = {
            let (&id, rec) = self.levels[last]
                .iter_mut()
                .next()
                .expect("the final level has one fragment");
            rec.parent = id;
            debug_assert!(
                rec.chosen.is_none(),
                "the spanning fragment has no outgoing edge"
            );
            id
        };
        self.levels.truncate(new_level_count);
        self.true_min_out.truncate(new_level_count);
        if new_level_count == old_level_count {
            return 0;
        }
        let mut writes = 0u64;
        for (i, label) in self.labels.iter_mut().enumerate() {
            if label.levels.len() != new_level_count {
                label.levels.truncate(new_level_count);
                label.levels[last].fragment = final_ident;
                label.levels[last].outgoing = None;
                writes += 1;
                phi_dirty.insert(NodeId(i));
            }
        }
        writes
    }
}

/// The fragment labels as a proof-labeling scheme for MST (completeness: the labels of
/// an MST are accepted; soundness: for a non-MST tree, *these prover-built* labels make
/// some node detect a violating fragment). The verifier at `v` checks that the level-0
/// fragment is `v`'s own identity, that consecutive levels are consistent with the
/// parent/children labels it can see, and that each recorded outgoing edge incident to
/// `v` is not beaten by a lighter incident graph edge leaving the fragment — the local
/// part of the Korman–Kutten style verification.
#[derive(Clone, Copy, Debug, Default)]
pub struct FragmentScheme;

impl ProofLabelingScheme for FragmentScheme {
    type Label = FragmentLabel;

    fn name(&self) -> &str {
        "MST fragment (Borůvka trace) labels"
    }

    fn prove(&self, graph: &Graph, tree: &Tree) -> Vec<FragmentLabel> {
        assign_fragment_labels(graph, tree)
    }

    fn verify_at(&self, instance: &Instance<'_>, labels: &[FragmentLabel], v: NodeId) -> bool {
        let graph = instance.graph;
        let own = &labels[v.0];
        if own.levels.is_empty() {
            return false;
        }
        // Level 0: the singleton fragment is the node itself.
        if own.levels[0].fragment != graph.ident(v) {
            return false;
        }
        // All nodes must agree on the number of levels (checked against neighbors).
        for &(w, _) in graph.neighbors(v) {
            if labels[w.0].levels.len() != own.levels.len() {
                return false;
            }
        }
        // The final level must have no outgoing edge and a fragment identity shared with
        // every neighbor (a single fragment spans the tree).
        let last = own.levels.last().expect("non-empty");
        if last.outgoing.is_some() {
            return false;
        }
        for &(w, _) in graph.neighbors(v) {
            if labels[w.0].levels.last().map(|l| l.fragment) != Some(last.fragment) {
                return false;
            }
        }
        // Local optimality: for every level, if an incident graph edge leaves v's
        // fragment and is lighter than the recorded outgoing edge, reject (this is what
        // lets at least one node notice φ(T) > 0).
        for (i, level) in own.levels.iter().enumerate() {
            if let Some((_, _, recorded_w)) = level.outgoing {
                for &(w, e) in graph.neighbors(v) {
                    let neighbor_frag = labels[w.0].levels.get(i).map(|l| l.fragment);
                    if neighbor_frag != Some(level.fragment) && graph.weight(e) < recorded_w {
                        return false;
                    }
                }
            }
            // Fragment monotonicity: the fragment of level i+1 contains the fragment of
            // level i, so its identity can only get smaller or stay equal.
            if i + 1 < own.levels.len() && own.levels[i + 1].fragment > level.fragment {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stst_graph::bfs::bfs_tree;
    use stst_graph::generators;
    use stst_graph::mst::{is_mst, kruskal};

    fn setup(n: usize, seed: u64) -> (Graph, Tree) {
        let g = generators::workload(n, 0.25, seed);
        let t = bfs_tree(&g, g.min_ident_node());
        (g, t)
    }

    #[test]
    fn potential_is_zero_exactly_on_msts() {
        for seed in 0..6 {
            let (g, t) = setup(20, seed);
            let mst = kruskal(&g).unwrap();
            assert_eq!(
                mst_potential(&g, &mst),
                0,
                "seed {seed}: MST must have φ = 0"
            );
            if !is_mst(&g, &t) {
                assert!(
                    mst_potential(&g, &t) > 0,
                    "seed {seed}: non-MST must have φ > 0"
                );
            }
        }
    }

    #[test]
    fn fragment_guided_local_search_reaches_the_mst() {
        for seed in 0..5 {
            let (g, mut t) = setup(18, seed);
            let opt = kruskal(&g).unwrap().total_weight(&g);
            let mut guard = 0;
            while let Some((e, f)) = fragment_guided_swap(&g, &t) {
                assert!(
                    g.weight(e) < g.weight(f),
                    "swaps strictly decrease the weight"
                );
                t = t.with_swap(&g, e, f);
                guard += 1;
                assert!(guard < 500, "local search must terminate");
            }
            assert_eq!(t.total_weight(&g), opt, "seed {seed}");
            assert!(is_mst(&g, &t));
            assert_eq!(mst_potential(&g, &t), 0);
        }
    }

    #[test]
    fn labels_have_logarithmically_many_levels_and_quadratic_log_bits() {
        let (g, t) = setup(64, 2);
        let ctx = CodecCtx::for_graph(&g);
        let labels = assign_fragment_labels(&g, &t);
        let levels = labels[0].levels.len();
        assert!(
            levels <= 8,
            "64 nodes: at most 7 Borůvka levels, got {levels}"
        );
        let max_bits = labels.iter().map(|l| l.encoded_bits(&ctx)).max().unwrap();
        // O(log² n): generous constant, but far below the O(n log n) of explicit lists.
        assert!(max_bits <= 60 * 8, "labels too large: {max_bits} bits");
    }

    #[test]
    fn codec_round_trips_traces_including_empty_and_garbage_shapes() {
        use stst_runtime::codec::assert_codec_roundtrip;
        let (g, t) = setup(40, 6);
        let ctx = CodecCtx::for_graph(&g);
        for label in assign_fragment_labels(&g, &t) {
            assert_codec_roundtrip(&ctx, &label);
        }
        // The empty trace (a corrupt shape the verifier rejects) and a level whose
        // recorded edge escaped the instance's weight range both round-trip exactly.
        assert_codec_roundtrip(&ctx, &FragmentLabel::default());
        assert_codec_roundtrip(
            &ctx,
            &FragmentLabel {
                levels: vec![
                    FragmentLevel {
                        fragment: u64::MAX,
                        outgoing: Some((u64::MAX, 0, u64::MAX)),
                    },
                    FragmentLevel {
                        fragment: 1,
                        outgoing: None,
                    },
                ],
            },
        );
    }

    #[test]
    fn scheme_completeness_on_msts_and_detection_on_non_msts() {
        for seed in 0..5 {
            let (g, t) = setup(16, seed);
            let mst = kruskal(&g).unwrap();
            assert!(FragmentScheme.accepts_legal(&g, &mst), "seed {seed}");
            if !is_mst(&g, &t) {
                // The prover-built labels of a non-MST tree must alert at least one node.
                let labels = FragmentScheme.prove(&g, &t);
                let outcome = FragmentScheme.verify_all(&Instance::from_tree(&g, &t), &labels);
                assert!(!outcome.accepted(), "seed {seed}: non-MST must be flagged");
            }
        }
    }

    #[test]
    fn incremental_state_matches_from_scratch_across_swap_sequences() {
        // Drive the red-rule local search with an incrementally repaired FragmentState
        // and assert, after every single swap, that labels and potential are
        // bit-identical to a from-scratch rebuild on the new tree.
        for seed in 0..6 {
            let g = generators::workload(26, 0.25, seed);
            let mut t = bfs_tree(&g, g.min_ident_node());
            let mut state = FragmentState::new(&g, &t);
            let mut guard = 0;
            while let Some((e, f)) = state.improving_swap(&g, &t) {
                t = t.with_swap(&g, e, f);
                let written = state.apply_swap(&g, e, f);
                let fresh = FragmentState::new(&g, &t);
                assert_eq!(state.labels(), fresh.labels(), "seed {seed} swap {guard}");
                assert_eq!(
                    state.potential(),
                    fresh.potential(),
                    "seed {seed} swap {guard}"
                );
                assert_eq!(state.phi, fresh.phi, "seed {seed} swap {guard}");
                assert_eq!(
                    state.improving_swap(&g, &t),
                    fresh.improving_swap(&g, &t),
                    "seed {seed} swap {guard}"
                );
                assert!(written > 0, "a swap always rewrites some labels");
                guard += 1;
                assert!(guard < 500, "local search must terminate");
            }
            assert_eq!(state.potential(), 0);
            assert!(is_mst(&g, &t), "seed {seed}");
        }
    }

    #[test]
    fn incremental_repair_touches_a_small_dirty_region() {
        // On a larger sparse instance the per-swap repair must rewrite far fewer labels
        // than the `n · levels` a from-scratch relabeling writes.
        let g = generators::workload(160, 0.05, 9);
        let mut t = bfs_tree(&g, g.min_ident_node());
        let mut state = FragmentState::new(&g, &t);
        let full = (g.node_count() * state.level_count()) as u64;
        let mut total: u64 = 0;
        let mut swaps: u64 = 0;
        while let Some((e, f)) = state.improving_swap(&g, &t) {
            t = t.with_swap(&g, e, f);
            total += state.apply_swap(&g, e, f);
            swaps += 1;
            assert!(swaps < 1000);
        }
        assert!(swaps > 0, "the BFS tree of this workload is not an MST");
        assert!(
            total < swaps * full / 2,
            "incremental repair wrote {total} labels over {swaps} swaps, \
             from-scratch would write {} per swap",
            full
        );
    }

    #[test]
    fn topology_repair_matches_from_scratch_rebuild() {
        // Mutate the graph under a fixed spanning tree (edge removal with EdgeId
        // recycling, weight drift on tree and non-tree edges, edge insertion) and
        // assert after every delta that the endpoint-dirty repair leaves the state
        // bit-identical to a from-scratch rebuild on the mutated instance.
        for seed in 0..5 {
            let mut g = generators::workload(24, 0.3, seed);
            let t = bfs_tree(&g, g.min_ident_node());
            let mut state = FragmentState::new(&g, &t);
            let mut next_weight = g.edges().iter().map(|e| e.weight).max().unwrap() + 1;
            let assert_matches = |state: &FragmentState, g: &Graph, t: &Tree, what: &str| {
                let fresh = FragmentState::new(g, t);
                assert_eq!(state.labels(), fresh.labels(), "seed {seed}: {what}");
                assert_eq!(state.phi, fresh.phi, "seed {seed}: {what}");
                assert_eq!(state.potential(), fresh.potential(), "seed {seed}: {what}");
                assert_eq!(
                    state.improving_swap(g, t),
                    fresh.improving_swap(g, t),
                    "seed {seed}: {what}"
                );
                for (a, b) in state.true_min_out.iter().zip(&fresh.true_min_out) {
                    assert_eq!(a, b, "seed {seed}: {what}");
                }
            };
            // Remove a non-tree edge (the tree stays valid).
            let non_tree = g
                .edge_ids()
                .find(|&e| {
                    let ed = g.edge(e);
                    !t.contains_edge(ed.u, ed.v)
                })
                .expect("workload graphs have non-tree edges");
            let (u, v) = (g.edge(non_tree).u, g.edge(non_tree).v);
            let outcome = g.remove_edge(u, v);
            state.apply_topology(&g, &t, &outcome.dirty);
            assert_matches(&state, &g, &t, "non-tree edge removal");
            // Drift the weight of a tree edge upward (may flip chosen edges anywhere
            // along the fragment stack of its endpoints).
            let te = t.edge_ids_in(&g)[1];
            let (u, v) = (g.edge(te).u, g.edge(te).v);
            let outcome = g.set_weight(u, v, next_weight);
            next_weight += 1;
            state.apply_topology(&g, &t, &outcome.dirty);
            assert_matches(&state, &g, &t, "tree-edge weight drift");
            // Insert a fresh edge between two non-adjacent nodes.
            let (a, b) = {
                let mut found = None;
                'outer: for a in g.nodes() {
                    for b in g.nodes() {
                        if a < b && g.edge_between(a, b).is_none() {
                            found = Some((a, b));
                            break 'outer;
                        }
                    }
                }
                found.expect("sparse graphs have non-adjacent pairs")
            };
            let outcome = g.apply_mutations(&[stst_graph::Mutation::AddEdge {
                u: a,
                v: b,
                weight: next_weight,
            }]);
            state.apply_topology(&g, &t, &outcome.dirty);
            assert_matches(&state, &g, &t, "edge insertion");
        }
    }

    #[test]
    fn pooled_prover_is_bit_identical_to_the_sequential_prover() {
        for seed in 0..3 {
            let g = generators::workload(120, 0.06, seed);
            let t = bfs_tree(&g, g.min_ident_node());
            let seq = FragmentState::new(&g, &t);
            for threads in [2usize, 8] {
                let par = FragmentState::new_with_pool(&g, &t, &ThreadPool::new(threads));
                assert_eq!(seq.labels(), par.labels(), "seed {seed}, {threads} threads");
                assert_eq!(seq.phi, par.phi, "seed {seed}, {threads} threads");
                assert_eq!(seq.potential(), par.potential());
                assert_eq!(seq.true_min_out.len(), par.true_min_out.len());
                for (a, b) in seq.true_min_out.iter().zip(&par.true_min_out) {
                    assert_eq!(a, b);
                }
                assert_eq!(
                    seq.improving_swap(&g, &t),
                    par.improving_swap(&g, &t),
                    "seed {seed}, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn tampering_with_levels_is_detected() {
        let (g, _) = setup(14, 4);
        let mst = kruskal(&g).unwrap();
        let labels = FragmentScheme.prove(&g, &mst);
        // Wrong singleton fragment identity.
        let mut bad = labels.clone();
        bad[3].levels[0].fragment = 999;
        assert!(!FragmentScheme
            .verify_all(&Instance::from_tree(&g, &mst), &bad)
            .accepted());
        // Truncated label (wrong number of levels).
        let mut bad = labels;
        bad[5].levels.pop();
        assert!(!FragmentScheme
            .verify_all(&Instance::from_tree(&g, &mst), &bad)
            .accepted());
    }
}
