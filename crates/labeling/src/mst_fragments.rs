//! MST fragment labels and the MST potential function of §VI.
//!
//! Each node stores the trace of a *virtual execution of Borůvka's algorithm on the
//! current tree `T`*: for every level `i`, the identity of the level-`i` fragment it
//! belongs to and the minimum-weight **tree** edge outgoing from that fragment
//! (Fig. 2 of the paper). The potential
//! `φ(T) = k·n − Σ_x φ_x(T)`, where `φ_x(T)` is the largest level up to which the
//! recorded outgoing edges are also minimum-weight outgoing edges *in the whole graph*,
//! is zero exactly on minimum spanning trees; when it is positive, the lightest outgoing
//! edge `e` of a violating fragment and the heaviest edge `f` of the fundamental cycle
//! `T + e` form an improving swap (`φ(T + e − f) < φ(T)` — Tarjan's red rule).

use stst_graph::ids::bits_for;
use stst_graph::mst::{boruvka_on_tree, BoruvkaRun};
use stst_graph::{EdgeId, Graph, Ident, NodeId, Tree, Weight};

use crate::scheme::{Instance, ProofLabelingScheme};

/// One level of a fragment label: the fragment identity and the recorded outgoing tree
/// edge `(ID(a), ID(b), w(a, b))` (or `⊥` once the fragment spans the tree).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FragmentLevel {
    /// Identity of the level-`i` fragment (smallest node identity it contains).
    pub fragment: Ident,
    /// The minimum-weight tree edge outgoing from the fragment, as an identity pair plus
    /// weight, or `None` at the final level.
    pub outgoing: Option<(Ident, Ident, Weight)>,
}

/// The fragment label of one node: one [`FragmentLevel`] per Borůvka level
/// (`k ≤ ⌈log₂ n⌉ + 1` levels), `O(log² n)` bits in total — the space-optimal budget for
/// silent MST (Korman–Kutten).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct FragmentLabel {
    /// Levels from 0 (singleton fragments) to `k − 1` (the whole tree).
    pub levels: Vec<FragmentLevel>,
}

impl FragmentLabel {
    /// Number of bits of the label.
    pub fn bit_size(&self) -> usize {
        bits_for(self.levels.len() as u64)
            + self
                .levels
                .iter()
                .map(|l| {
                    bits_for(l.fragment)
                        + 1
                        + l.outgoing
                            .map_or(0, |(a, b, w)| bits_for(a) + bits_for(b) + bits_for(w))
                })
                .sum::<usize>()
    }
}

/// Builds the fragment labels of every node for the spanning tree `tree` by running
/// Borůvka virtually on the tree's edges.
///
/// # Panics
///
/// Panics if `tree` is not a spanning tree of `graph`.
pub fn assign_fragment_labels(graph: &Graph, tree: &Tree) -> Vec<FragmentLabel> {
    let run: BoruvkaRun =
        boruvka_on_tree(graph, tree).expect("fragment labels need a spanning tree of the graph");
    run.traces
        .iter()
        .map(|trace| FragmentLabel {
            levels: trace
                .fragment
                .iter()
                .zip(trace.chosen_edge.iter())
                .map(|(&fragment, &edge)| FragmentLevel {
                    fragment,
                    outgoing: edge.map(|e| {
                        let ed = graph.edge(e);
                        (graph.ident(ed.u), graph.ident(ed.v), ed.weight)
                    }),
                })
                .collect(),
        })
        .collect()
}

/// `φ_x(T)`: the largest level `i` such that for every level `j ≤ i` the recorded
/// outgoing edge of `x`'s level-`j` fragment is the minimum-weight outgoing edge of that
/// fragment *in the whole graph* (levels are 1-indexed in the paper; we return a count
/// in `0..=k`).
fn node_potential(graph: &Graph, labels: &[FragmentLabel], x: NodeId) -> usize {
    let k = labels[x.0].levels.len();
    for i in 0..k {
        let level = &labels[x.0].levels[i];
        // The true minimum-weight outgoing edge of x's level-i fragment in G.
        let fragment = level.fragment;
        let min_out = min_outgoing_edge_of_fragment(graph, labels, i, fragment);
        let recorded = level.outgoing;
        match (recorded, min_out) {
            (None, None) => continue, // final level: the fragment spans everything
            (Some((a, b, w)), Some(e)) => {
                let ed = graph.edge(e);
                let same = (graph.ident(ed.u), graph.ident(ed.v), ed.weight) == (a, b, w)
                    || (graph.ident(ed.v), graph.ident(ed.u), ed.weight) == (a, b, w);
                if !same {
                    return i;
                }
            }
            _ => return i,
        }
    }
    k
}

/// The minimum-weight edge of `graph` with exactly one endpoint in the level-`i`
/// fragment identified by `fragment` (fragments are read off the labels).
fn min_outgoing_edge_of_fragment(
    graph: &Graph,
    labels: &[FragmentLabel],
    level: usize,
    fragment: Ident,
) -> Option<EdgeId> {
    let in_fragment = |v: NodeId| {
        labels[v.0]
            .levels
            .get(level)
            .is_some_and(|l| l.fragment == fragment)
    };
    graph
        .edge_ids()
        .filter(|&e| {
            let ed = graph.edge(e);
            in_fragment(ed.u) ^ in_fragment(ed.v)
        })
        .min_by_key(|&e| (graph.weight(e), e.index()))
}

/// The MST potential `φ(T) = k·n − Σ_x φ_x(T)` of §VI, computed from freshly assigned
/// fragment labels. Zero iff `T` is a minimum spanning tree.
pub fn mst_potential(graph: &Graph, tree: &Tree) -> u64 {
    let labels = assign_fragment_labels(graph, tree);
    let k = labels.first().map_or(0, |l| l.levels.len());
    let total: usize = graph
        .nodes()
        .map(|x| node_potential(graph, &labels, x))
        .sum();
    (k * graph.node_count() - total) as u64
}

/// The improving swap prescribed by the potential: for a node `x` whose level-`(i+1)`
/// recorded edge is not the true minimum outgoing edge, take `e` = the true
/// minimum-weight outgoing edge of that fragment in `G` and `f` = the heaviest tree edge
/// on the fundamental cycle of `T + e`. Returns `None` iff the tree is an MST.
pub fn fragment_guided_swap(graph: &Graph, tree: &Tree) -> Option<(EdgeId, EdgeId)> {
    let labels = assign_fragment_labels(graph, tree);
    let k = labels.first().map_or(0, |l| l.levels.len());
    // Find the node with the smallest φ_x < k (any violating node works; picking the
    // smallest index keeps the choice deterministic, mirroring the root's arbitration).
    let mut violating: Option<(NodeId, usize)> = None;
    for x in graph.nodes() {
        let px = node_potential(graph, &labels, x);
        if px < k && violating.is_none_or(|(_, best)| px < best) {
            violating = Some((x, px));
        }
    }
    let (x, i) = violating?;
    let fragment = labels[x.0].levels[i].fragment;
    let e = min_outgoing_edge_of_fragment(graph, &labels, i, fragment)
        .expect("a violating fragment has an outgoing edge");
    let edge = graph.edge(e);
    if tree.contains_edge(edge.u, edge.v) {
        // The recorded edge was wrong but the true minimum is already a tree edge; the
        // discrepancy is in the labels, not the tree. Re-labelling fixes it, no swap.
        return None;
    }
    let f = stst_graph::mst::heaviest_cycle_edge(graph, tree, e);
    Some((e, f))
}

/// The fragment labels as a proof-labeling scheme for MST (completeness: the labels of
/// an MST are accepted; soundness: for a non-MST tree, *these prover-built* labels make
/// some node detect a violating fragment). The verifier at `v` checks that the level-0
/// fragment is `v`'s own identity, that consecutive levels are consistent with the
/// parent/children labels it can see, and that each recorded outgoing edge incident to
/// `v` is not beaten by a lighter incident graph edge leaving the fragment — the local
/// part of the Korman–Kutten style verification.
#[derive(Clone, Copy, Debug, Default)]
pub struct FragmentScheme;

impl ProofLabelingScheme for FragmentScheme {
    type Label = FragmentLabel;

    fn name(&self) -> &str {
        "MST fragment (Borůvka trace) labels"
    }

    fn prove(&self, graph: &Graph, tree: &Tree) -> Vec<FragmentLabel> {
        assign_fragment_labels(graph, tree)
    }

    fn verify_at(&self, instance: &Instance<'_>, labels: &[FragmentLabel], v: NodeId) -> bool {
        let graph = instance.graph;
        let own = &labels[v.0];
        if own.levels.is_empty() {
            return false;
        }
        // Level 0: the singleton fragment is the node itself.
        if own.levels[0].fragment != graph.ident(v) {
            return false;
        }
        // All nodes must agree on the number of levels (checked against neighbors).
        for &(w, _) in graph.neighbors(v) {
            if labels[w.0].levels.len() != own.levels.len() {
                return false;
            }
        }
        // The final level must have no outgoing edge and a fragment identity shared with
        // every neighbor (a single fragment spans the tree).
        let last = own.levels.last().expect("non-empty");
        if last.outgoing.is_some() {
            return false;
        }
        for &(w, _) in graph.neighbors(v) {
            if labels[w.0].levels.last().map(|l| l.fragment) != Some(last.fragment) {
                return false;
            }
        }
        // Local optimality: for every level, if an incident graph edge leaves v's
        // fragment and is lighter than the recorded outgoing edge, reject (this is what
        // lets at least one node notice φ(T) > 0).
        for (i, level) in own.levels.iter().enumerate() {
            if let Some((_, _, recorded_w)) = level.outgoing {
                for &(w, e) in graph.neighbors(v) {
                    let neighbor_frag = labels[w.0].levels.get(i).map(|l| l.fragment);
                    if neighbor_frag != Some(level.fragment) && graph.weight(e) < recorded_w {
                        return false;
                    }
                }
            }
            // Fragment monotonicity: the fragment of level i+1 contains the fragment of
            // level i, so its identity can only get smaller or stay equal.
            if i + 1 < own.levels.len() && own.levels[i + 1].fragment > level.fragment {
                return false;
            }
        }
        true
    }

    fn label_bits(&self, label: &FragmentLabel) -> usize {
        label.bit_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stst_graph::bfs::bfs_tree;
    use stst_graph::generators;
    use stst_graph::mst::{is_mst, kruskal};

    fn setup(n: usize, seed: u64) -> (Graph, Tree) {
        let g = generators::workload(n, 0.25, seed);
        let t = bfs_tree(&g, g.min_ident_node());
        (g, t)
    }

    #[test]
    fn potential_is_zero_exactly_on_msts() {
        for seed in 0..6 {
            let (g, t) = setup(20, seed);
            let mst = kruskal(&g).unwrap();
            assert_eq!(
                mst_potential(&g, &mst),
                0,
                "seed {seed}: MST must have φ = 0"
            );
            if !is_mst(&g, &t) {
                assert!(
                    mst_potential(&g, &t) > 0,
                    "seed {seed}: non-MST must have φ > 0"
                );
            }
        }
    }

    #[test]
    fn fragment_guided_local_search_reaches_the_mst() {
        for seed in 0..5 {
            let (g, mut t) = setup(18, seed);
            let opt = kruskal(&g).unwrap().total_weight(&g);
            let mut guard = 0;
            while let Some((e, f)) = fragment_guided_swap(&g, &t) {
                assert!(
                    g.weight(e) < g.weight(f),
                    "swaps strictly decrease the weight"
                );
                t = t.with_swap(&g, e, f);
                guard += 1;
                assert!(guard < 500, "local search must terminate");
            }
            assert_eq!(t.total_weight(&g), opt, "seed {seed}");
            assert!(is_mst(&g, &t));
            assert_eq!(mst_potential(&g, &t), 0);
        }
    }

    #[test]
    fn labels_have_logarithmically_many_levels_and_quadratic_log_bits() {
        let (g, t) = setup(64, 2);
        let labels = assign_fragment_labels(&g, &t);
        let levels = labels[0].levels.len();
        assert!(
            levels <= 8,
            "64 nodes: at most 7 Borůvka levels, got {levels}"
        );
        let max_bits = labels.iter().map(|l| l.bit_size()).max().unwrap();
        // O(log² n): generous constant, but far below the O(n log n) of explicit lists.
        assert!(max_bits <= 60 * 8, "labels too large: {max_bits} bits");
    }

    #[test]
    fn scheme_completeness_on_msts_and_detection_on_non_msts() {
        for seed in 0..5 {
            let (g, t) = setup(16, seed);
            let mst = kruskal(&g).unwrap();
            assert!(FragmentScheme.accepts_legal(&g, &mst), "seed {seed}");
            if !is_mst(&g, &t) {
                // The prover-built labels of a non-MST tree must alert at least one node.
                let labels = FragmentScheme.prove(&g, &t);
                let outcome = FragmentScheme.verify_all(&Instance::from_tree(&g, &t), &labels);
                assert!(!outcome.accepted(), "seed {seed}: non-MST must be flagged");
            }
        }
    }

    #[test]
    fn tampering_with_levels_is_detected() {
        let (g, _) = setup(14, 4);
        let mst = kruskal(&g).unwrap();
        let labels = FragmentScheme.prove(&g, &mst);
        // Wrong singleton fragment identity.
        let mut bad = labels.clone();
        bad[3].levels[0].fragment = 999;
        assert!(!FragmentScheme
            .verify_all(&Instance::from_tree(&g, &mst), &bad)
            .accepted());
        // Truncated label (wrong number of levels).
        let mut bad = labels;
        bad[5].levels.pop();
        assert!(!FragmentScheme
            .verify_all(&Instance::from_tree(&g, &mst), &bad)
            .accepted());
    }
}
