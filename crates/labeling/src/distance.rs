//! The classical distance-based proof-labeling scheme for spanning trees (§II-C).
//!
//! The label of node `v` is the pair `(ID, d)` where `ID` is the identity of the root
//! and `d` the hop distance from `v` to the root *in the tree*. The verifier checks that
//! the root identity is shared with all neighbors and that `d(v) = d(p(v)) + 1`
//! (`d = 0` at the root, whose identity must match `ID`).

use stst_graph::{Graph, Ident, NodeId, Tree};
use stst_runtime::bits::{BitReader, BitWriter};
use stst_runtime::{Codec, CodecCtx};

use crate::scheme::{Instance, ProofLabelingScheme};

/// Label of the distance-based scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DistanceLabel {
    /// Identity of the claimed root.
    pub root: Ident,
    /// Claimed hop distance to the root in the tree.
    pub dist: u64,
}

impl Codec for DistanceLabel {
    fn encoded_bits(&self, ctx: &CodecCtx) -> usize {
        CodecCtx::uint_bits(self.root, ctx.ident_bits)
            + CodecCtx::uint_bits(self.dist, ctx.count_bits)
    }

    fn encode_into(&self, ctx: &CodecCtx, w: &mut BitWriter<'_>) {
        CodecCtx::write_uint(w, self.root, ctx.ident_bits);
        CodecCtx::write_uint(w, self.dist, ctx.count_bits);
    }

    fn decode_from(ctx: &CodecCtx, r: &mut BitReader<'_>) -> Self {
        DistanceLabel {
            root: CodecCtx::read_uint(r, ctx.ident_bits),
            dist: CodecCtx::read_uint(r, ctx.count_bits),
        }
    }
}

/// The distance-based proof-labeling scheme for the family of all spanning trees.
#[derive(Clone, Copy, Debug, Default)]
pub struct DistanceScheme;

impl ProofLabelingScheme for DistanceScheme {
    type Label = DistanceLabel;

    fn name(&self) -> &str {
        "distance-based spanning tree PLS"
    }

    fn prove(&self, graph: &Graph, tree: &Tree) -> Vec<DistanceLabel> {
        let root_ident = graph.ident(tree.root());
        tree.depths()
            .into_iter()
            .map(|d| DistanceLabel {
                root: root_ident,
                dist: d as u64,
            })
            .collect()
    }

    fn verify_at(&self, instance: &Instance<'_>, labels: &[DistanceLabel], v: NodeId) -> bool {
        let graph = instance.graph;
        let own = labels[v.0];
        // The claimed root identity must be shared with every neighbor.
        for &(w, _) in graph.neighbors(v) {
            if labels[w.0].root != own.root {
                return false;
            }
        }
        match instance.parents[v.0] {
            None => {
                // The root: distance 0 and its own identity is the claimed root identity.
                own.dist == 0 && graph.ident(v) == own.root
            }
            Some(p) => {
                // The parent must be a neighbor and be one hop closer.
                if graph.edge_between(v, p).is_none() {
                    return false;
                }
                own.dist == labels[p.0].dist + 1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stst_graph::bfs::bfs_tree;
    use stst_graph::generators;

    #[test]
    fn completeness_on_many_workloads() {
        for seed in 0..5 {
            let g = generators::workload(24, 0.2, seed);
            let t = bfs_tree(&g, g.min_ident_node());
            assert!(DistanceScheme.accepts_legal(&g, &t));
        }
    }

    #[test]
    fn soundness_rejects_two_roots() {
        let g = generators::path(4);
        let parents = vec![None, Some(NodeId(0)), None, Some(NodeId(2))];
        // Forge labels claiming two different roots.
        let labels = vec![
            DistanceLabel { root: 1, dist: 0 },
            DistanceLabel { root: 1, dist: 1 },
            DistanceLabel { root: 3, dist: 0 },
            DistanceLabel { root: 3, dist: 1 },
        ];
        let inst = Instance {
            graph: &g,
            parents: &parents,
        };
        // Nodes 1 and 2 are adjacent with different claimed roots: one of them rejects.
        assert!(!DistanceScheme.verify_all(&inst, &labels).accepted());
    }

    #[test]
    fn soundness_rejects_cycles_for_any_labels() {
        // 4-cycle of parent pointers on the ring.
        let g = generators::ring(4);
        let parents = vec![
            Some(NodeId(1)),
            Some(NodeId(2)),
            Some(NodeId(3)),
            Some(NodeId(0)),
        ];
        let inst = Instance {
            graph: &g,
            parents: &parents,
        };
        // Distances must strictly increase around the cycle — impossible, so whatever
        // labels we try, someone rejects. Try a few adversarial assignments.
        for base in 0..4u64 {
            let labels: Vec<DistanceLabel> = (0..4)
                .map(|i| DistanceLabel {
                    root: 1,
                    dist: base + i as u64,
                })
                .collect();
            assert!(!DistanceScheme.verify_all(&inst, &labels).accepted());
        }
    }

    #[test]
    fn wrong_distance_is_pinpointed() {
        let g = generators::path(5);
        let t = bfs_tree(&g, NodeId(0));
        let mut labels = DistanceScheme.prove(&g, &t);
        labels[3].dist = 7;
        let outcome = DistanceScheme.verify_all(&Instance::from_tree(&g, &t), &labels);
        assert!(!outcome.accepted());
        // Either node 3 (its own distance is wrong w.r.t. its parent) or node 4 (whose
        // parent is node 3) rejects.
        assert!(outcome.rejecting.iter().all(|v| v.0 == 3 || v.0 == 4));
    }

    #[test]
    fn label_sizes_are_logarithmic() {
        let g = generators::workload(200, 0.05, 1);
        let ctx = CodecCtx::for_graph(&g);
        let t = bfs_tree(&g, g.min_ident_node());
        let labels = DistanceScheme.prove(&g, &t);
        let max_bits = DistanceScheme.max_label_bits(&ctx, &labels);
        assert!(
            max_bits <= 2 * 10 + 2,
            "distance labels should be O(log n), got {max_bits} bits"
        );
    }

    #[test]
    fn codec_round_trips_at_boundary_values() {
        use stst_runtime::codec::assert_codec_roundtrip;
        let g = generators::workload(40, 0.1, 3);
        let ctx = CodecCtx::for_graph(&g);
        let t = bfs_tree(&g, g.min_ident_node());
        for label in DistanceScheme.prove(&g, &t) {
            assert_codec_roundtrip(&ctx, &label);
        }
        for label in [
            DistanceLabel { root: 0, dist: 0 },
            DistanceLabel {
                root: u64::MAX,
                dist: u64::MAX,
            },
        ] {
            assert_codec_roundtrip(&ctx, &label);
        }
    }
}
