//! The guarded-rule transition function of a self-stabilizing algorithm.

use rand::rngs::StdRng;

use stst_graph::{Graph, Ident, NodeId};

use crate::register::Register;
use crate::view::{RawView, View};

/// Outcome of a decode-free guard screen ([`Algorithm::guard_screen`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Screen<S> {
    /// The guard is definitely disabled: the desired next state, computed from
    /// extracted fields alone, equals the current register bit-for-bit.
    Disabled,
    /// The guard resolved decode-free: the node is enabled and this is the next state
    /// [`Algorithm::step`] would produce (required to be bit-identical to it).
    Enabled(S),
    /// The screen cannot decide — some field escaped (fault garbage) or the algorithm
    /// offers no screen. The executor falls back to the full-decode path.
    Unknown,
}

/// A self-stabilizing algorithm in the state model.
///
/// An algorithm is a transition function `δ : S* → S` evaluated over the closed 1-hop
/// neighborhood of a node. A node is **enabled** (activatable) when [`Algorithm::step`]
/// returns `Some(new_state)` with `new_state` different from the current register
/// content; the scheduler decides which enabled nodes actually execute their step.
///
/// Returning `Some(state)` equal to the node's current state is treated as *disabled*
/// by the executor — guards should be written so that an enabled node always changes its
/// register, otherwise the algorithm can never become silent.
///
/// Algorithms are `Sync`: [`Algorithm::step`] is a pure function of the view, and the
/// parallel wave executor evaluates it concurrently from worker threads over the
/// immutable pre-round configuration. (Every transition function is a stateless rule
/// table in practice, so the bound is satisfied by construction.)
pub trait Algorithm: Sync {
    /// The register content maintained at each node.
    type State: Register;

    /// Human-readable algorithm name (used in traces and reports).
    fn name(&self) -> &str;

    /// An arbitrary state for `node`, used both to build *arbitrary initial
    /// configurations* (self-stabilization must cope with any of them) and to model
    /// transient faults that corrupt registers. Implementations should cover the whole
    /// reachable (and ideally some unreachable) state space.
    fn arbitrary_state(&self, graph: &Graph, node: NodeId, rng: &mut StdRng) -> Self::State;

    /// Evaluate the guarded rules of `view.node`. Returns the new register content if
    /// some rule is enabled, `None` otherwise.
    fn step(&self, view: &View<'_, Self::State>) -> Option<Self::State>;

    /// Decode-free guard screen over the **undecoded** closed neighborhood: the cheap
    /// first tier of guard evaluation on the packed store. Implementations mirror
    /// [`Algorithm::step`] on fields extracted by shift/mask ([`RawView`]) and must
    /// return [`Screen::Unknown`] the moment any escape bit fires — the executor then
    /// falls back to the full-decode path, which keeps the two tiers bit-identical
    /// (the differential oracles pin this). The default screens nothing, so
    /// algorithms without one are simply always full-decode.
    fn guard_screen(&self, _raw: &RawView<'_>) -> Screen<Self::State> {
        Screen::Unknown
    }

    /// Global legality predicate for the configuration (used by tests and experiments to
    /// check that the *stabilized* configuration solves the task; it is never consulted
    /// by the distributed rules themselves).
    fn is_legal(&self, graph: &Graph, states: &[Self::State]) -> bool;
}

/// Register contents that encode a parent pointer (the distributed spanning tree
/// representation of §II-B: each node stores the identity of its parent, the root
/// stores `⊥`).
pub trait ParentPointer {
    /// The identity of the parent, or `None` for `⊥`.
    fn parent_ident(&self) -> Option<Ident>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::View;
    use rand::Rng;

    /// A toy algorithm used to exercise the trait plumbing: every node copies the
    /// maximum value seen in its closed neighborhood ("max propagation").
    pub struct MaxPropagation;

    impl Algorithm for MaxPropagation {
        type State = u64;

        fn name(&self) -> &str {
            "max-propagation"
        }

        fn arbitrary_state(&self, _graph: &Graph, _node: NodeId, rng: &mut StdRng) -> u64 {
            rng.gen_range(0..100)
        }

        fn step(&self, view: &View<'_, u64>) -> Option<u64> {
            let max = view
                .neighbors()
                .map(|nb| *nb.state)
                .chain(std::iter::once(*view.state))
                .max()
                .expect("non-empty closed neighborhood");
            (max != *view.state).then_some(max)
        }

        fn is_legal(&self, _graph: &Graph, states: &[u64]) -> bool {
            states.windows(2).all(|w| w[0] == w[1])
        }
    }

    #[test]
    fn max_propagation_is_enabled_only_when_behind() {
        use crate::view::NeighborInfo;
        let algo = MaxPropagation;
        let states = [3u64, 9u64];
        let fwd = [NeighborInfo {
            node: NodeId(1),
            ident: 2,
            weight: 1,
        }];
        let view = View::new(NodeId(0), 1, 2, &fwd, &states);
        assert_eq!(algo.step(&view), Some(9));
        let back = [NeighborInfo {
            node: NodeId(0),
            ident: 1,
            weight: 1,
        }];
        let view_ahead = View::new(NodeId(1), 2, 2, &back, &states);
        assert_eq!(algo.step(&view_ahead), None);
    }
}
