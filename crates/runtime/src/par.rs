//! A deterministic scoped worker pool for parallel wave execution.
//!
//! The paper's synchronous-daemon waves are embarrassingly parallel: every enabled
//! node's guard reads only the *old* configuration, and all writes land at the round
//! barrier (§II-A). The same shape recurs one layer up, in the composition engine's
//! from-scratch phases (verification waves, label reproofs, per-level Borůvka scans):
//! pure functions of an immutable snapshot whose results are merged at a barrier.
//!
//! [`ThreadPool`] is the substrate both layers share. It is deliberately *not* a
//! work-stealing runtime: work is split into **stable contiguous shards** (the same
//! ranges for the same input length and thread count, with no dependence on thread
//! timing), each shard runs as a pure function of shared immutable state, and results
//! are merged **in shard order** on the calling thread. Everything order-sensitive —
//! enabled-set bookkeeping, ledger charges, RNG draws — stays on the caller, so results
//! are bit-identical to the sequential path at any thread count. Workers are scoped
//! (`std::thread::scope`): they may borrow the caller's stack frame and cannot outlive
//! the parallel region, which keeps the pool dependency-free and panic-safe (a worker
//! panic propagates to the caller at the join).
//!
//! A pool with one thread never spawns: every entry point degrades to the plain
//! sequential loop, so `threads = 1` costs one branch over not using the pool at all.

use std::ops::Range;

/// Splits `len` items into at most `shards` stable contiguous ranges, balanced to
/// within one item (the first `len % shards` ranges get the extra item). Deterministic
/// in `(len, shards)`; never returns an empty range.
pub fn shard_ranges(len: usize, shards: usize) -> Vec<Range<usize>> {
    let shards = shards.clamp(1, len.max(1));
    if len == 0 {
        return Vec::new();
    }
    let base = len / shards;
    let extra = len % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// A scoped worker pool of a fixed width. See the module docs for the determinism
/// contract; construction is free (no threads are kept alive between regions — each
/// parallel region spawns scoped workers, which for the wave-sized work units this
/// repo runs is noise next to the work itself).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// A pool running work on `threads` threads (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        ThreadPool {
            threads: threads.max(1),
        }
    }

    /// A single-threaded pool (every entry point runs inline).
    pub fn sequential() -> Self {
        ThreadPool::new(1)
    }

    /// The pool width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `true` if the pool can actually run work concurrently.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// Runs `f(shard_index, range)` once per shard of `0..len` and returns the results
    /// **in shard order** (the deterministic merge). Shard 0 runs on the calling
    /// thread; with one thread (or one shard) nothing is spawned.
    pub fn run<R, F>(&self, len: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, Range<usize>) -> R + Sync,
    {
        let shards = shard_ranges(len, self.threads);
        if shards.len() <= 1 {
            return shards
                .into_iter()
                .enumerate()
                .map(|(i, r)| f(i, r))
                .collect();
        }
        std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = shards
                .iter()
                .enumerate()
                .skip(1)
                .map(|(i, r)| {
                    let r = r.clone();
                    scope.spawn(move || f(i, r))
                })
                .collect();
            let mut out = Vec::with_capacity(shards.len());
            out.push(f(0, shards[0].clone()));
            for h in handles {
                out.push(h.join().expect("pool worker panicked"));
            }
            out
        })
    }

    /// Fills `out[i] = f(i)` for every index, sharding the range across the pool.
    /// Each worker writes a disjoint sub-slice, so no result is ever moved or merged —
    /// the output layout is identical to the sequential loop by construction.
    pub fn fill_with<R, F>(&self, out: &mut [R], f: F)
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let shards = shard_ranges(out.len(), self.threads);
        if shards.len() <= 1 {
            for i in 0..out.len() {
                out[i] = f(i);
            }
            return;
        }
        std::thread::scope(|scope| {
            let f = &f;
            // Shard 0 runs on the calling thread (like `run`): N shards cost N − 1
            // spawns and never leave the caller's core idle at the join.
            let (first, mut rest) = out.split_at_mut(shards[0].len());
            let mut handles = Vec::with_capacity(shards.len() - 1);
            for range in &shards[1..] {
                let (chunk, tail) = rest.split_at_mut(range.len());
                rest = tail;
                let start = range.start;
                handles.push(scope.spawn(move || {
                    for (k, slot) in chunk.iter_mut().enumerate() {
                        *slot = f(start + k);
                    }
                }));
            }
            for (k, slot) in first.iter_mut().enumerate() {
                *slot = f(k);
            }
            for h in handles {
                h.join().expect("pool worker panicked");
            }
        });
    }

    /// Like [`ThreadPool::fill_with`], but hands every worker a private scratch value
    /// built by `init` and reused across that worker's whole shard. This is the entry
    /// point of the packed-store guard waves: each worker keeps one decode buffer for
    /// its shard, so a wave costs `O(threads)` allocations instead of one per guard
    /// evaluation. `f` must be a pure function of `(scratch, index)` up to the scratch's
    /// contents being overwritten per call — results are written into disjoint
    /// sub-slices, so the output is identical to the sequential loop by construction.
    pub fn fill_with_init<R, SC, I, F>(&self, out: &mut [R], init: I, f: F)
    where
        R: Send,
        I: Fn() -> SC + Sync,
        F: Fn(&mut SC, usize) -> R + Sync,
    {
        let shards = shard_ranges(out.len(), self.threads);
        if shards.len() <= 1 {
            let mut scratch = init();
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = f(&mut scratch, i);
            }
            return;
        }
        std::thread::scope(|scope| {
            let f = &f;
            let init = &init;
            let (first, mut rest) = out.split_at_mut(shards[0].len());
            let mut handles = Vec::with_capacity(shards.len() - 1);
            for range in &shards[1..] {
                let (chunk, tail) = rest.split_at_mut(range.len());
                rest = tail;
                let start = range.start;
                handles.push(scope.spawn(move || {
                    let mut scratch = init();
                    for (k, slot) in chunk.iter_mut().enumerate() {
                        *slot = f(&mut scratch, start + k);
                    }
                }));
            }
            let mut scratch = init();
            for (k, slot) in first.iter_mut().enumerate() {
                *slot = f(&mut scratch, k);
            }
            for h in handles {
                h.join().expect("pool worker panicked");
            }
        });
    }

    /// Runs two independent tasks, concurrently when the pool is parallel, and returns
    /// both results. The tasks must not touch shared mutable state (the type system
    /// enforces it: they only get `Send` captures).
    pub fn join<A, B, FA, FB>(&self, fa: FA, fb: FB) -> (A, B)
    where
        A: Send,
        B: Send,
        FA: FnOnce() -> A + Send,
        FB: FnOnce() -> B + Send,
    {
        if !self.is_parallel() {
            let a = fa();
            let b = fb();
            return (a, b);
        }
        std::thread::scope(|scope| {
            let hb = scope.spawn(fb);
            let a = fa();
            let b = hb.join().expect("pool worker panicked");
            (a, b)
        })
    }
}

impl Default for ThreadPool {
    fn default() -> Self {
        ThreadPool::sequential()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_cover_exactly_and_balance() {
        for len in [0usize, 1, 7, 64, 1000] {
            for shards in [1usize, 2, 3, 8, 13] {
                let ranges = shard_ranges(len, shards);
                let covered: usize = ranges.iter().map(|r| r.len()).sum();
                assert_eq!(covered, len, "len {len} shards {shards}");
                let mut expected = 0;
                for r in &ranges {
                    assert_eq!(r.start, expected, "contiguous");
                    assert!(!r.is_empty(), "no empty shard");
                    expected = r.end;
                }
                if let (Some(max), Some(min)) = (
                    ranges.iter().map(|r| r.len()).max(),
                    ranges.iter().map(|r| r.len()).min(),
                ) {
                    assert!(max - min <= 1, "balanced to within one item");
                }
            }
        }
    }

    #[test]
    fn shard_ranges_are_stable_in_input_only() {
        assert_eq!(shard_ranges(10, 4), shard_ranges(10, 4));
        assert_eq!(shard_ranges(10, 4), vec![0..3, 3..6, 6..8, 8..10]);
    }

    #[test]
    fn run_merges_in_shard_order_at_any_width() {
        let items: Vec<u64> = (0..1000).collect();
        let reference: u64 = items.iter().sum();
        for threads in [1usize, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            let partials = pool.run(items.len(), |_, range| items[range].iter().sum::<u64>());
            assert_eq!(partials.iter().sum::<u64>(), reference, "{threads} threads");
            // Shard order: partial sums concatenated re-derive the prefix structure.
            let ranges = shard_ranges(items.len(), threads);
            for (p, r) in partials.iter().zip(ranges) {
                assert_eq!(*p, items[r].iter().sum::<u64>());
            }
        }
    }

    #[test]
    fn fill_with_is_identical_to_the_sequential_loop() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9e37_79b9) ^ 0xabcd;
        let mut seq = vec![0u64; 777];
        ThreadPool::sequential().fill_with(&mut seq, f);
        for threads in [2usize, 5, 8] {
            let mut par = vec![0u64; 777];
            ThreadPool::new(threads).fill_with(&mut par, f);
            assert_eq!(seq, par, "{threads} threads");
        }
    }

    #[test]
    fn fill_with_init_reuses_scratch_and_matches_fill_with() {
        let f = |scratch: &mut Vec<u64>, i: usize| {
            scratch.clear();
            scratch.extend((0..=i as u64).take(8));
            scratch.iter().sum::<u64>() ^ (i as u64)
        };
        let mut seq = vec![0u64; 333];
        ThreadPool::sequential().fill_with_init(&mut seq, Vec::new, f);
        for threads in [2usize, 5, 8] {
            let mut par = vec![0u64; 333];
            ThreadPool::new(threads).fill_with_init(&mut par, Vec::new, f);
            assert_eq!(seq, par, "{threads} threads");
        }
    }

    #[test]
    fn join_returns_both_results() {
        for threads in [1usize, 4] {
            let pool = ThreadPool::new(threads);
            let (a, b) = pool.join(|| 6 * 7, || "waves".len());
            assert_eq!((a, b), (42, 5));
        }
    }

    #[test]
    fn width_is_clamped_to_at_least_one() {
        assert_eq!(ThreadPool::new(0).threads(), 1);
        assert!(!ThreadPool::new(0).is_parallel());
        assert!(ThreadPool::new(2).is_parallel());
        assert_eq!(ThreadPool::default(), ThreadPool::sequential());
    }

    #[test]
    fn empty_input_is_a_no_op() {
        let pool = ThreadPool::new(4);
        assert!(pool.run(0, |_, _| 1u32).is_empty());
        let mut empty: [u8; 0] = [];
        pool.fill_with(&mut empty, |_| 0u8);
    }
}
