//! Versioned, checksummed snapshot container for checkpoint/restore.
//!
//! The paper's self-stabilization claim makes durability almost free: a restored
//! checkpoint — even a stale or mid-repair one — is just another *arbitrary initial
//! configuration*, and the verification wave detects and repairs whatever does not
//! hold. The persistence layer therefore only has to guarantee two things:
//!
//! 1. **Integrity**: a snapshot that passes validation is byte-for-byte what was
//!    written. The file carries a magic tag, a format version, a payload kind, the
//!    payload length and an FNV-1a-64 checksum over the payload (mixed with version
//!    and kind so header tampering is also caught). Decoding only ever runs on
//!    checksum-verified, self-produced bytes — which is why the bit-level decoders can
//!    stay panic-free in practice.
//! 2. **Typed failure**: a snapshot that does *not* validate — truncated, bit-flipped,
//!    produced by a different format version — is rejected with a [`RestoreError`],
//!    never a panic and never silently-loaded garbage.
//!
//! Layout (all little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"STSTSNAP"
//! 8       4     version (u32, currently 1)
//! 12      4     kind    (u32; what the payload describes)
//! 16      8     payload length in u64 words
//! 24      8     FNV-1a-64 checksum over version, kind and payload words
//! 32      8*W   payload words
//! ```
//!
//! The payload itself is a flat `u64` word stream written by the owners of the state
//! (`Executor::checkpoint`, `CompositionEngine::checkpoint`) and read back through the
//! bounds-checked [`SnapshotReader`].

use std::fmt;
use std::fs;
use std::io::{Read as _, Write as _};
use std::path::Path;

use stst_graph::Graph;

/// File magic: identifies a snapshot produced by this workspace.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"STSTSNAP";

/// Current snapshot format version. Bumped on any incompatible payload change; old
/// versions are rejected with [`RestoreError::WrongVersion`] rather than guessed at.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Payload kind tag: an [`crate::Executor`] configuration snapshot.
pub const KIND_EXECUTOR: u32 = 1;

/// Payload kind tag: a composition-engine snapshot (tree + label families + ledger).
pub const KIND_ENGINE: u32 = 2;

/// Why a snapshot could not be restored. Every corruption class maps to a variant —
/// restore never panics and never silently loads garbage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RestoreError {
    /// The underlying file could not be read or written.
    Io(String),
    /// The file ends before the declared payload (or even the header) does.
    Truncated {
        /// Bytes the header (or declared payload) required.
        expected: usize,
        /// Bytes actually present.
        found: usize,
    },
    /// The file does not start with [`SNAPSHOT_MAGIC`] — not a snapshot at all.
    BadMagic,
    /// The snapshot was written by an incompatible format version.
    WrongVersion {
        /// Version recorded in the file.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The payload (or header fields mixed into the digest) was altered on disk.
    ChecksumMismatch {
        /// Checksum recorded in the file.
        stored: u64,
        /// Checksum recomputed over the bytes actually read.
        computed: u64,
    },
    /// A structurally valid snapshot of the wrong kind (e.g. an engine snapshot handed
    /// to `Executor::restore`).
    WrongKind {
        /// Kind tag recorded in the file.
        found: u32,
        /// Kind tag the caller required.
        expected: u32,
    },
    /// The payload validated but its contents do not parse as the declared kind.
    /// Reachable only from snapshots written by a buggy or foreign producer — the
    /// checksum rules out in-flight corruption.
    Malformed(&'static str),
    /// The snapshot describes a different network than the one it is being restored
    /// into (node count or topology fingerprint mismatch).
    GraphMismatch,
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::Io(e) => write!(f, "snapshot I/O failed: {e}"),
            RestoreError::Truncated { expected, found } => {
                write!(
                    f,
                    "snapshot truncated: need {expected} bytes, found {found}"
                )
            }
            RestoreError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            RestoreError::WrongVersion { found, supported } => {
                write!(
                    f,
                    "snapshot version {found} unsupported (this build reads {supported})"
                )
            }
            RestoreError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            RestoreError::WrongKind { found, expected } => {
                write!(
                    f,
                    "snapshot kind {found} where kind {expected} was required"
                )
            }
            RestoreError::Malformed(what) => write!(f, "snapshot payload malformed: {what}"),
            RestoreError::GraphMismatch => {
                write!(
                    f,
                    "snapshot describes a different network than the restore target"
                )
            }
        }
    }
}

impl std::error::Error for RestoreError {}

/// FNV-1a-64 over the version, kind and payload words. Not cryptographic — it guards
/// against torn writes and accidental corruption, which is all a local checkpoint
/// needs.
fn checksum(version: u32, kind: u32, words: &[u64]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |x: u64| {
        for byte in x.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(version as u64);
    eat(kind as u64);
    for &w in words {
        eat(w);
    }
    h
}

/// Order-sensitive FNV-1a-64 fingerprint of a network: node count, identities and the
/// full weighted edge list. Snapshots embed it so a restore into a *different* network
/// is rejected with [`RestoreError::GraphMismatch`] instead of silently producing a
/// configuration that never belonged to the graph it now runs on.
pub fn graph_fingerprint(graph: &Graph) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |x: u64| {
        for byte in x.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    eat(graph.node_count() as u64);
    eat(graph.edge_count() as u64);
    for v in graph.nodes() {
        eat(graph.ident(v));
    }
    for e in graph.edges() {
        eat(e.u.0 as u64);
        eat(e.v.0 as u64);
        eat(e.weight);
    }
    h
}

/// A validated snapshot: a payload kind plus its word stream. Producing one from bytes
/// ([`Snapshot::from_bytes`]) runs the full header/checksum validation, so holders of
/// a `Snapshot` value know the words are exactly what some producer wrote.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    kind: u32,
    words: Vec<u64>,
}

impl Snapshot {
    /// Wraps a payload produced by a checkpointing component.
    pub fn new(kind: u32, words: Vec<u64>) -> Self {
        Snapshot { kind, words }
    }

    /// The payload kind tag ([`KIND_EXECUTOR`], [`KIND_ENGINE`], ...).
    pub fn kind(&self) -> u32 {
        self.kind
    }

    /// The raw payload words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Serialized size in bytes (header + payload).
    pub fn byte_len(&self) -> usize {
        32 + 8 * self.words.len()
    }

    /// Serializes to the on-disk layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.byte_len());
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.kind.to_le_bytes());
        out.extend_from_slice(&(self.words.len() as u64).to_le_bytes());
        out.extend_from_slice(&checksum(SNAPSHOT_VERSION, self.kind, &self.words).to_le_bytes());
        for &w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Validates and parses the on-disk layout: magic, version, declared length,
    /// checksum — in that order, so each corruption class maps to its own
    /// [`RestoreError`] variant.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, RestoreError> {
        if bytes.len() < 32 {
            return Err(RestoreError::Truncated {
                expected: 32,
                found: bytes.len(),
            });
        }
        if bytes[0..8] != SNAPSHOT_MAGIC {
            return Err(RestoreError::BadMagic);
        }
        let word = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != SNAPSHOT_VERSION {
            return Err(RestoreError::WrongVersion {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let kind = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        let len = word(16) as usize;
        // Checked: a corrupted length field can be astronomically large, and the
        // byte-count comparison must reject it instead of overflowing.
        let expected = len
            .checked_mul(8)
            .and_then(|b| b.checked_add(32))
            .unwrap_or(usize::MAX);
        if bytes.len() < expected {
            return Err(RestoreError::Truncated {
                expected,
                found: bytes.len(),
            });
        }
        let stored = word(24);
        let words: Vec<u64> = (0..len).map(|i| word(32 + 8 * i)).collect();
        let computed = checksum(version, kind, &words);
        if stored != computed {
            return Err(RestoreError::ChecksumMismatch { stored, computed });
        }
        Ok(Snapshot { kind, words })
    }

    /// Requires the snapshot to be of `expected` kind, for restore entry points.
    pub fn expect_kind(&self, expected: u32) -> Result<(), RestoreError> {
        if self.kind == expected {
            Ok(())
        } else {
            Err(RestoreError::WrongKind {
                found: self.kind,
                expected,
            })
        }
    }

    /// Writes the snapshot to a file (create/truncate).
    pub fn write_file(&self, path: &Path) -> Result<(), RestoreError> {
        let mut f = fs::File::create(path).map_err(|e| RestoreError::Io(e.to_string()))?;
        f.write_all(&self.to_bytes())
            .map_err(|e| RestoreError::Io(e.to_string()))
    }

    /// Reads and validates a snapshot file.
    pub fn read_file(path: &Path) -> Result<Self, RestoreError> {
        let mut f = fs::File::open(path).map_err(|e| RestoreError::Io(e.to_string()))?;
        let mut bytes = Vec::new();
        f.read_to_end(&mut bytes)
            .map_err(|e| RestoreError::Io(e.to_string()))?;
        Snapshot::from_bytes(&bytes)
    }
}

/// Bounds-checked cursor over a snapshot's payload words. Every read that would run
/// past the end returns [`RestoreError::Malformed`] instead of panicking.
pub struct SnapshotReader<'a> {
    words: &'a [u64],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Starts reading `snapshot`'s payload from the beginning.
    pub fn new(snapshot: &'a Snapshot) -> Self {
        SnapshotReader {
            words: snapshot.words(),
            pos: 0,
        }
    }

    /// The next payload word.
    pub fn next_word(&mut self) -> Result<u64, RestoreError> {
        let w = self
            .words
            .get(self.pos)
            .copied()
            .ok_or(RestoreError::Malformed("payload ended early"))?;
        self.pos += 1;
        Ok(w)
    }

    /// The next payload word as a `usize`, rejecting values that do not fit.
    pub fn next_usize(&mut self) -> Result<usize, RestoreError> {
        usize::try_from(self.next_word()?)
            .map_err(|_| RestoreError::Malformed("word exceeds usize"))
    }

    /// The next `len` payload words.
    pub fn take(&mut self, len: usize) -> Result<&'a [u64], RestoreError> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&end| end <= self.words.len())
            .ok_or(RestoreError::Malformed("payload ended early"))?;
        let slice = &self.words[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// `true` iff every payload word has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.words.len()
    }

    /// Requires the payload to be fully consumed — trailing words mean the payload
    /// does not parse as the kind the caller assumed.
    pub fn expect_exhausted(&self) -> Result<(), RestoreError> {
        if self.is_exhausted() {
            Ok(())
        } else {
            Err(RestoreError::Malformed("trailing payload words"))
        }
    }
}

/// Truncates a snapshot file to `keep` bytes — a structured corruption pattern for
/// crash-injection tests (models a torn write).
pub fn truncate_file(path: &Path, keep: usize) -> Result<(), RestoreError> {
    let bytes = fs::read(path).map_err(|e| RestoreError::Io(e.to_string()))?;
    let keep = keep.min(bytes.len());
    fs::write(path, &bytes[..keep]).map_err(|e| RestoreError::Io(e.to_string()))
}

/// Flips one bit of a snapshot file — a structured corruption pattern for
/// crash-injection tests (models media corruption).
pub fn flip_bit_in_file(path: &Path, bit: usize) -> Result<(), RestoreError> {
    let mut bytes = fs::read(path).map_err(|e| RestoreError::Io(e.to_string()))?;
    if bytes.is_empty() {
        return Err(RestoreError::Truncated {
            expected: 1,
            found: 0,
        });
    }
    let at = (bit / 8) % bytes.len();
    bytes[at] ^= 1 << (bit % 8);
    fs::write(path, &bytes).map_err(|e| RestoreError::Io(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot::new(KIND_EXECUTOR, vec![3, 0, u64::MAX, 42, 0xdead_beef])
    }

    #[test]
    fn roundtrip_preserves_kind_and_words() {
        let snap = sample();
        let back = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.byte_len(), 32 + 8 * 5);
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let bytes = sample().to_bytes();
        for keep in 0..bytes.len() {
            match Snapshot::from_bytes(&bytes[..keep]) {
                Err(RestoreError::Truncated { found, .. }) => assert_eq!(found, keep),
                other => panic!("truncated to {keep} bytes gave {other:?}"),
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let good = sample().to_bytes();
        for bit in 0..good.len() * 8 {
            let mut bad = good.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            match Snapshot::from_bytes(&bad) {
                Ok(snap) => panic!("bit flip {bit} went undetected: {snap:?}"),
                Err(
                    RestoreError::BadMagic
                    | RestoreError::WrongVersion { .. }
                    | RestoreError::ChecksumMismatch { .. }
                    | RestoreError::Truncated { .. },
                ) => {}
                Err(other) => panic!("bit flip {bit} gave unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn wrong_version_is_typed() {
        let mut bytes = sample().to_bytes();
        bytes[8] = 9;
        assert_eq!(
            Snapshot::from_bytes(&bytes),
            Err(RestoreError::WrongVersion {
                found: 9,
                supported: SNAPSHOT_VERSION
            })
        );
    }

    #[test]
    fn kind_mismatch_is_typed() {
        let snap = sample();
        assert!(snap.expect_kind(KIND_EXECUTOR).is_ok());
        assert_eq!(
            snap.expect_kind(KIND_ENGINE),
            Err(RestoreError::WrongKind {
                found: KIND_EXECUTOR,
                expected: KIND_ENGINE
            })
        );
    }

    #[test]
    fn reader_is_bounds_checked() {
        let snap = Snapshot::new(KIND_ENGINE, vec![7, 8]);
        let mut r = SnapshotReader::new(&snap);
        assert_eq!(r.next_word().unwrap(), 7);
        assert_eq!(r.take(1).unwrap(), &[8]);
        assert!(r.is_exhausted());
        assert!(r.expect_exhausted().is_ok());
        assert_eq!(
            r.next_word(),
            Err(RestoreError::Malformed("payload ended early"))
        );
        let mut r = SnapshotReader::new(&snap);
        assert_eq!(
            r.take(3),
            Err(RestoreError::Malformed("payload ended early"))
        );
        assert!(r.expect_exhausted().is_err());
    }

    #[test]
    fn file_corruption_helpers_produce_typed_failures() {
        let dir = std::env::temp_dir().join("stst-persist-unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.bin");
        let snap = sample();
        snap.write_file(&path).unwrap();
        assert_eq!(Snapshot::read_file(&path).unwrap(), snap);

        flip_bit_in_file(&path, 40 * 8 + 3).unwrap();
        assert!(matches!(
            Snapshot::read_file(&path),
            Err(RestoreError::ChecksumMismatch { .. })
        ));

        snap.write_file(&path).unwrap();
        truncate_file(&path, 20).unwrap();
        assert!(matches!(
            Snapshot::read_file(&path),
            Err(RestoreError::Truncated { .. })
        ));

        std::fs::write(&path, b"NOTASNAPSHOTFILEATALL_PADDING_PAD").unwrap();
        assert_eq!(Snapshot::read_file(&path), Err(RestoreError::BadMagic));

        assert!(matches!(
            Snapshot::read_file(&dir.join("missing.bin")),
            Err(RestoreError::Io(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
