//! Register contents: bit-packable values with codec-derived size accounting.
//!
//! Space complexity is a first-class measurement in the paper (it is what
//! "space-optimal" refers to). The seed release *accounted* register sizes with
//! hand-written `bit_size()` sums while state actually lived in fat Rust structs; since
//! the packed configuration store ([`crate::store::ConfigStore`]) landed, a register's
//! size is **derived from its codec**: the accounted bits of a register are exactly the
//! bits [`crate::codec::Codec::encode_into`] writes into the store, so the accounting
//! and the allocation can never disagree (the drift the old hand-written bodies
//! allowed is ruled out by construction).
//!
//! [`Register`] is therefore a marker: any [`Codec`]-able plain-data type qualifies.
//! Registers are `Send + Sync` plain data because the parallel wave executor evaluates
//! guards over the immutable pre-round configuration from worker threads
//! (`stst-runtime::par`).

use crate::codec::Codec;

/// Contents of a node's single-writer multiple-reader register.
///
/// Blanket-implemented for every codec-able plain-data type: implement
/// [`Codec`] (plus the usual `Clone + Debug + PartialEq + Send + Sync` bounds) and the
/// executor can store the type packed, report its exact bit usage, and round-trip it
/// bit-identically across the packed and struct-backed stores.
pub trait Register: Codec + Clone + std::fmt::Debug + PartialEq + Send + Sync {}

impl<T: Codec + Clone + std::fmt::Debug + PartialEq + Send + Sync> Register for T {}

/// The trivial register holding nothing; useful for algorithms whose whole state is a
/// handful of flags assembled in tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UnitRegister;

impl Codec for UnitRegister {
    fn encoded_bits(&self, _ctx: &crate::codec::CodecCtx) -> usize {
        0
    }

    fn encode_into(&self, _ctx: &crate::codec::CodecCtx, _w: &mut crate::bits::BitWriter<'_>) {}

    fn decode_from(_ctx: &crate::codec::CodecCtx, _r: &mut crate::bits::BitReader<'_>) -> Self {
        UnitRegister
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{assert_codec_roundtrip, CodecCtx};

    fn ctx() -> CodecCtx {
        CodecCtx {
            ident_bits: 5,
            weight_bits: 4,
            count_bits: 4,
            len_bits: 7,
        }
    }

    #[test]
    fn primitive_registers_report_codec_derived_sizes() {
        let ctx = ctx();
        // One escape bit + the fixed 5-bit identity field, regardless of the value —
        // the register is a fixed-width word, exactly the paper's model.
        assert_eq!(UnitRegister.encoded_bits(&ctx), 0);
        assert_eq!(0u64.encoded_bits(&ctx), 6);
        assert_eq!(31u64.encoded_bits(&ctx), 6);
        assert_eq!(true.encoded_bits(&ctx), 1);
        assert_eq!((7u64, false).encoded_bits(&ctx), 7);
        // Out-of-width garbage (a fault can leave any word) escapes to 1 + 64 bits.
        assert_eq!(255u64.encoded_bits(&ctx), 65);
    }

    #[test]
    fn primitive_registers_round_trip_including_boundaries() {
        let ctx = ctx();
        for v in [0u64, 1, 15, 16, 31, 32, u64::MAX] {
            assert_codec_roundtrip(&ctx, &v);
        }
        assert_codec_roundtrip(&ctx, &UnitRegister);
        assert_codec_roundtrip(&ctx, &(0u64, true));
        assert_codec_roundtrip(&ctx, &((31u64, false), (u64::MAX, true)));
    }
}
