//! Register contents with exact bit-size accounting.
//!
//! Space complexity is a first-class measurement in the paper (it is what
//! "space-optimal" refers to), so every register type must be able to report the number
//! of bits its current content occupies. The helpers here make the common cases
//! (bounded integers, optional identities, small vectors of sub-records) one-liners.

use stst_graph::ids::bits_for;
use stst_graph::{Ident, Weight};

/// Contents of a node's single-writer multiple-reader register.
///
/// Implementors must report the number of bits their *current* value needs; the
/// executor aggregates those into per-node and per-configuration space reports.
///
/// Registers are `Send + Sync` plain data: the parallel wave executor evaluates
/// guards over the immutable pre-round configuration from worker threads
/// (`stst-runtime::par`), so register contents must be shareable across them.
pub trait Register: Clone + std::fmt::Debug + PartialEq + Send + Sync {
    /// Number of bits needed to store the current register content.
    fn bit_size(&self) -> usize;
}

/// Bits needed for an optional identity: one flag bit plus the identity when present.
pub fn option_ident_bits(value: &Option<Ident>) -> usize {
    1 + value.map_or(0, bits_for)
}

/// Bits needed for an optional weight: one flag bit plus the weight when present.
pub fn option_weight_bits(value: &Option<Weight>) -> usize {
    1 + value.map_or(0, bits_for)
}

/// Bits needed for an unsigned counter value.
pub fn counter_bits(value: u64) -> usize {
    bits_for(value)
}

/// Bits needed for an optional `(ident, ident, weight)` edge descriptor — the encoding
/// `f_i(x) = (ID(a), ID(b), w(a,b))` the paper uses inside MST fragment labels (§VI).
pub fn option_edge_descriptor_bits(value: &Option<(Ident, Ident, Weight)>) -> usize {
    1 + value.map_or(0, |(a, b, w)| bits_for(a) + bits_for(b) + bits_for(w))
}

/// The trivial register holding nothing; useful for algorithms whose whole state is a
/// handful of flags assembled in tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UnitRegister;

impl Register for UnitRegister {
    fn bit_size(&self) -> usize {
        0
    }
}

impl Register for u64 {
    fn bit_size(&self) -> usize {
        bits_for(*self)
    }
}

impl Register for bool {
    fn bit_size(&self) -> usize {
        1
    }
}

impl<A: Register, B: Register> Register for (A, B) {
    fn bit_size(&self) -> usize {
        self.0.bit_size() + self.1.bit_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_registers_report_sizes() {
        assert_eq!(UnitRegister.bit_size(), 0);
        assert_eq!(0u64.bit_size(), 1);
        assert_eq!(255u64.bit_size(), 8);
        assert_eq!(true.bit_size(), 1);
        assert_eq!((7u64, false).bit_size(), 4);
    }

    #[test]
    fn option_helpers() {
        assert_eq!(option_ident_bits(&None), 1);
        assert_eq!(option_ident_bits(&Some(15)), 5);
        assert_eq!(option_weight_bits(&Some(1)), 2);
        assert_eq!(option_edge_descriptor_bits(&None), 1);
        assert_eq!(option_edge_descriptor_bits(&Some((3, 4, 5))), 1 + 2 + 3 + 3);
        assert_eq!(counter_bits(1024), 11);
    }
}
