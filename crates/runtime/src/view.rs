//! The closed 1-hop neighborhood a node reads during an atomic step.
//!
//! In the state model a node sees its own register, the registers of its neighbors, and
//! the incorruptible constants of the model: its identity, its neighbors' identities and
//! the weights of its incident edges (paper §II-A). A [`View`] packages exactly this —
//! algorithms never get access to anything else, which keeps them honest about locality.

use stst_graph::{Ident, NodeId, Weight};

/// What a node sees of one neighbor: the neighbor's identity, the weight of the
/// connecting edge (both incorruptible constants) and the neighbor's register.
#[derive(Clone, Debug)]
pub struct NeighborView<'a, S> {
    /// Dense index of the neighbor (simulation bookkeeping, not readable information —
    /// algorithms should use [`NeighborView::ident`] to name nodes).
    pub node: NodeId,
    /// The neighbor's identity.
    pub ident: Ident,
    /// Weight of the connecting edge.
    pub weight: Weight,
    /// The neighbor's current register content (read-only).
    pub state: &'a S,
}

/// The closed neighborhood view handed to [`crate::Algorithm::step`].
#[derive(Clone, Debug)]
pub struct View<'a, S> {
    /// Dense index of the node taking the step (simulation bookkeeping).
    pub node: NodeId,
    /// The node's own identity.
    pub ident: Ident,
    /// Total number of nodes `n`. The paper allows nodes to know (a polynomial upper
    /// bound on) `n`, since identities live in `{1, …, n^c}`; algorithms use it only to
    /// bound counters.
    pub n: usize,
    /// The node's own register content.
    pub state: &'a S,
    /// One entry per incident edge, in a fixed (but arbitrary) port order.
    pub neighbors: Vec<NeighborView<'a, S>>,
}

impl<'a, S> View<'a, S> {
    /// Degree of the node in the communication graph.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// The neighbor with identity `ident`, if adjacent.
    pub fn neighbor_with_ident(&self, ident: Ident) -> Option<&NeighborView<'a, S>> {
        self.neighbors.iter().find(|nb| nb.ident == ident)
    }

    /// `true` if some neighbor carries identity `ident`.
    pub fn has_neighbor(&self, ident: Ident) -> bool {
        self.neighbor_with_ident(ident).is_some()
    }

    /// The smallest identity in the closed neighborhood (the node and its neighbors).
    pub fn min_ident_in_closed_neighborhood(&self) -> Ident {
        self.neighbors
            .iter()
            .map(|nb| nb.ident)
            .chain(std::iter::once(self.ident))
            .min()
            .expect("the closed neighborhood contains the node itself")
    }

    /// Iterator over neighbors together with the weight of the connecting edge,
    /// ordered by increasing weight (ties by identity). Convenient for
    /// "lightest incident edge" rules.
    pub fn neighbors_by_weight(&self) -> Vec<&NeighborView<'a, S>> {
        let mut v: Vec<&NeighborView<'a, S>> = self.neighbors.iter().collect();
        v.sort_by_key(|nb| (nb.weight, nb.ident));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_view<'a>(states: &'a [u64]) -> View<'a, u64> {
        View {
            node: NodeId(0),
            ident: 5,
            n: 4,
            state: &states[0],
            neighbors: vec![
                NeighborView { node: NodeId(1), ident: 9, weight: 30, state: &states[1] },
                NeighborView { node: NodeId(2), ident: 2, weight: 10, state: &states[2] },
                NeighborView { node: NodeId(3), ident: 7, weight: 20, state: &states[3] },
            ],
        }
    }

    #[test]
    fn lookup_helpers() {
        let states = [0u64, 1, 2, 3];
        let view = sample_view(&states);
        assert_eq!(view.degree(), 3);
        assert!(view.has_neighbor(2));
        assert!(!view.has_neighbor(5));
        assert_eq!(view.neighbor_with_ident(7).unwrap().weight, 20);
        assert_eq!(view.min_ident_in_closed_neighborhood(), 2);
    }

    #[test]
    fn weight_ordering() {
        let states = [0u64, 1, 2, 3];
        let view = sample_view(&states);
        let order: Vec<Ident> = view.neighbors_by_weight().iter().map(|nb| nb.ident).collect();
        assert_eq!(order, vec![2, 7, 9]);
    }
}
