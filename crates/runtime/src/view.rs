//! The closed 1-hop neighborhood a node reads during an atomic step.
//!
//! In the state model a node sees its own register, the registers of its neighbors, and
//! the incorruptible constants of the model: its identity, its neighbors' identities and
//! the weights of its incident edges (paper §II-A). A [`View`] packages exactly this —
//! algorithms never get access to anything else, which keeps them honest about locality.
//!
//! A view is **zero-allocation**: it borrows a CSR slice of per-neighbor constants
//! ([`NeighborInfo`], precomputed once per executor since identities and weights never
//! change) and a register slice. [`View::neighbors`] is a lazy iterator over that
//! slice — building and consuming a view performs no heap allocation, which is what
//! makes guard evaluation cheap enough to run millions of times per second.
//!
//! Register access comes in two indexings:
//!
//! * **global** ([`View::new`], [`View::with_weight_order`]) — the view borrows the
//!   whole dense configuration and dereferences `states[neighbor.node]`; this is the
//!   struct-backed store's zero-copy path;
//! * **local** ([`View::over_decoded`]) — the view borrows a scratch slice holding the
//!   closed neighborhood's registers *decoded from the packed configuration store*
//!   (`states[i]` is the register of `neighbors[i]`, the node's own register is last).
//!   Algorithms observe exactly the same API, so the packed and struct paths evaluate
//!   identical guards — the property the packed-vs-struct differential oracle pins.

use stst_graph::{Ident, NodeId, Weight};

use crate::codec::{CodecCtx, FieldReader};

/// The incorruptible constants a node knows about one neighbor: its dense index (for
/// the simulator), its identity and the weight of the connecting edge. Register
/// contents are *not* stored here — they change every step and are read through the
/// dense state array instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NeighborInfo {
    /// Dense index of the neighbor (simulation bookkeeping, not readable information).
    pub node: NodeId,
    /// The neighbor's identity.
    pub ident: Ident,
    /// Weight of the connecting edge.
    pub weight: Weight,
}

/// What a node sees of one neighbor: the neighbor's identity, the weight of the
/// connecting edge (both incorruptible constants) and the neighbor's register.
#[derive(Debug)]
pub struct NeighborView<'a, S> {
    /// Dense index of the neighbor (simulation bookkeeping, not readable information —
    /// algorithms should use [`NeighborView::ident`] to name nodes).
    pub node: NodeId,
    /// The neighbor's identity.
    pub ident: Ident,
    /// Weight of the connecting edge.
    pub weight: Weight,
    /// The neighbor's current register content (read-only).
    pub state: &'a S,
}

impl<S> Clone for NeighborView<'_, S> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<S> Copy for NeighborView<'_, S> {}

/// The closed neighborhood view handed to [`crate::Algorithm::step`].
///
/// Construct one with [`View::new`]; read neighbors through the allocation-free
/// [`View::neighbors`] iterator.
#[derive(Clone, Copy, Debug)]
pub struct View<'a, S> {
    /// Dense index of the node taking the step (simulation bookkeeping).
    pub node: NodeId,
    /// The node's own identity.
    pub ident: Ident,
    /// Total number of nodes `n`. The paper allows nodes to know (a polynomial upper
    /// bound on) `n`, since identities live in `{1, …, n^c}`; algorithms use it only to
    /// bound counters.
    pub n: usize,
    /// The node's own register content.
    pub state: &'a S,
    /// Per-neighbor constants, one entry per incident edge, in a fixed (but arbitrary)
    /// port order.
    neighbors: &'a [NeighborInfo],
    /// Optional precomputed port permutation sorting `neighbors` by `(weight, ident)`
    /// (local indices into `neighbors`). Weights are incorruptible constants, so the
    /// order can be computed once at graph build time; with it,
    /// [`View::neighbors_by_weight`] neither allocates nor sorts.
    weight_order: Option<&'a [u32]>,
    /// The register slice (neighbors are read through it lazily; locality is preserved
    /// because the iterator only dereferences the listed neighbors). Globally indexed
    /// by dense node id, or — for views decoded out of the packed store — locally
    /// indexed in port order with the node's own register last.
    states: &'a [S],
    /// `true` when `states` is the locally indexed decoded scratch slice.
    local: bool,
}

impl<'a, S> View<'a, S> {
    /// Builds the view of `node` over the configuration `states`, given the
    /// precomputed per-neighbor constants.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range of `states`.
    pub fn new(
        node: NodeId,
        ident: Ident,
        n: usize,
        neighbors: &'a [NeighborInfo],
        states: &'a [S],
    ) -> Self {
        View {
            node,
            ident,
            n,
            state: &states[node.0],
            neighbors,
            weight_order: None,
            states,
            local: false,
        }
    }

    /// Builds the view of `node` with a precomputed weight order for the neighbors
    /// (local indices into `neighbors` sorted by `(weight, ident)`, as produced by
    /// `Graph::neighbor_order_by_weight` at graph build time). This is the constructor
    /// the executor uses: it makes [`View::neighbors_by_weight`] allocation- and
    /// sort-free in hot guard evaluations.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range of `states`, or (debug only) if the order's
    /// length does not match the neighbor count.
    pub fn with_weight_order(
        node: NodeId,
        ident: Ident,
        n: usize,
        neighbors: &'a [NeighborInfo],
        weight_order: &'a [u32],
        states: &'a [S],
    ) -> Self {
        debug_assert_eq!(
            neighbors.len(),
            weight_order.len(),
            "one order entry per neighbor"
        );
        View {
            node,
            ident,
            n,
            state: &states[node.0],
            neighbors,
            weight_order: Some(weight_order),
            states,
            local: false,
        }
    }

    /// Builds the view of `node` over a **locally indexed decoded scratch slice**: the
    /// packed-store executor decodes the closed neighborhood once per guard evaluation
    /// into a reused buffer where `decoded[i]` is the register of `neighbors[i]` and
    /// `decoded[neighbors.len()]` is the node's own register. The view borrows that
    /// scratch — algorithms see the identical API at zero extra allocation.
    ///
    /// # Panics
    ///
    /// Panics (debug only) if `decoded` is not exactly one register per neighbor plus
    /// the node's own, or if a provided weight order's length does not match.
    pub fn over_decoded(
        node: NodeId,
        ident: Ident,
        n: usize,
        neighbors: &'a [NeighborInfo],
        weight_order: Option<&'a [u32]>,
        decoded: &'a [S],
    ) -> Self {
        debug_assert_eq!(
            decoded.len(),
            neighbors.len() + 1,
            "one register per neighbor plus the node's own"
        );
        if let Some(order) = weight_order {
            debug_assert_eq!(order.len(), neighbors.len(), "one order entry per neighbor");
        }
        View {
            node,
            ident,
            n,
            state: &decoded[neighbors.len()],
            neighbors,
            weight_order,
            states: decoded,
            local: true,
        }
    }

    /// Degree of the node in the communication graph.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Allocation-free iterator over the neighbors (identity, edge weight and current
    /// register of each).
    pub fn neighbors(&self) -> Neighbors<'a, S> {
        Neighbors {
            neighbors: self.neighbors,
            states: self.states,
            local: self.local,
            front: 0,
            back: self.neighbors.len(),
        }
    }

    /// The neighbor with identity `ident`, if adjacent.
    pub fn neighbor_with_ident(&self, ident: Ident) -> Option<NeighborView<'a, S>> {
        self.neighbors().find(|nb| nb.ident == ident)
    }

    /// `true` if some neighbor carries identity `ident`.
    pub fn has_neighbor(&self, ident: Ident) -> bool {
        self.neighbor_with_ident(ident).is_some()
    }

    /// The smallest identity in the closed neighborhood (the node and its neighbors).
    pub fn min_ident_in_closed_neighborhood(&self) -> Ident {
        self.neighbors
            .iter()
            .map(|nb| nb.ident)
            .chain(std::iter::once(self.ident))
            .min()
            .expect("the closed neighborhood contains the node itself")
    }

    /// Neighbors together with the weight of the connecting edge, ordered by increasing
    /// weight (ties by identity). When the view was built with
    /// [`View::with_weight_order`] (as the executor always does) the iterator walks the
    /// precomputed port permutation — no allocation, no sort, hot-loop safe. Views
    /// built with [`View::new`] fall back to sorting a collected vector once.
    pub fn neighbors_by_weight(&self) -> NeighborsByWeight<'a, S> {
        let inner = match self.weight_order {
            Some(order) => ByWeightInner::Precomputed {
                order: order.iter(),
                neighbors: self.neighbors,
                states: self.states,
                local: self.local,
            },
            None => {
                let mut v: Vec<NeighborView<'a, S>> = self.neighbors().collect();
                v.sort_by_key(|nb| (nb.weight, nb.ident));
                ByWeightInner::Sorted(v.into_iter())
            }
        };
        NeighborsByWeight { inner }
    }
}

/// The **undecoded** closed neighborhood: what a guard screen reads.
///
/// Where [`View`] hands an algorithm decoded registers, a `RawView` hands it bit
/// cursors ([`FieldReader`]) straight into the packed store's heap — the same closed
/// 1-hop neighborhood (own slot plus one slot per port, same port order), but field
/// extraction is shift/mask with **no `decode_from` and no scratch fill**. Screens use
/// it to answer "definitely disabled?" (or even to produce the full next state) on the
/// fault-free fast path; any fired escape bit makes extraction return `None` and the
/// executor falls back to the full-decode [`View`] path, so the two tiers are
/// bit-identical by construction (pinned by `tests/packed_store_oracle.rs`).
#[derive(Clone, Copy, Debug)]
pub struct RawView<'a> {
    /// Dense index of the node under evaluation (simulation bookkeeping).
    pub node: NodeId,
    /// The node's own identity.
    pub ident: Ident,
    /// Total number of nodes `n` (same bound [`View::n`] exposes).
    pub n: usize,
    /// Per-neighbor constants in port order (same CSR slice the decoded view uses).
    neighbors: &'a [NeighborInfo],
    /// The packed heap and its slot stride.
    heap: &'a [u64],
    stride: u64,
    /// The instance's field widths (what screens pass to [`FieldReader`]).
    ctx: &'a CodecCtx,
}

impl<'a> RawView<'a> {
    /// Builds the raw view of `node` over the packed heap (`heap`/`stride` as returned
    /// by `ConfigStore::raw_parts`).
    pub fn new(
        node: NodeId,
        ident: Ident,
        n: usize,
        neighbors: &'a [NeighborInfo],
        heap: &'a [u64],
        stride: u32,
        ctx: &'a CodecCtx,
    ) -> Self {
        RawView {
            node,
            ident,
            n,
            neighbors,
            heap,
            stride: stride as u64,
            ctx,
        }
    }

    /// Degree of the node in the communication graph.
    #[inline]
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// The incorruptible constants of the neighbor at `port`.
    #[inline]
    pub fn neighbor(&self, port: usize) -> NeighborInfo {
        self.neighbors[port]
    }

    /// The instance field widths.
    #[inline]
    pub fn ctx(&self) -> &'a CodecCtx {
        self.ctx
    }

    /// A field cursor at the start of the node's own slot.
    #[inline]
    pub fn own_reader(&self) -> FieldReader<'a> {
        FieldReader::new(self.heap, self.node.0 as u64 * self.stride)
    }

    /// A field cursor at the start of the slot of the neighbor at `port`.
    #[inline]
    pub fn reader_of(&self, port: usize) -> FieldReader<'a> {
        FieldReader::new(self.heap, self.neighbors[port].node.0 as u64 * self.stride)
    }
}

/// Iterator over a [`View`]'s neighbors in increasing `(weight, ident)` order —
/// allocation-free when the view carries a precomputed weight order.
#[derive(Clone, Debug)]
pub struct NeighborsByWeight<'a, S> {
    inner: ByWeightInner<'a, S>,
}

#[derive(Clone, Debug)]
enum ByWeightInner<'a, S> {
    Precomputed {
        order: std::slice::Iter<'a, u32>,
        neighbors: &'a [NeighborInfo],
        states: &'a [S],
        local: bool,
    },
    Sorted(std::vec::IntoIter<NeighborView<'a, S>>),
}

impl<'a, S> Iterator for NeighborsByWeight<'a, S> {
    type Item = NeighborView<'a, S>;

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.inner {
            ByWeightInner::Precomputed {
                order,
                neighbors,
                states,
                local,
            } => {
                let port = *order.next()? as usize;
                let info = &neighbors[port];
                let state = if *local {
                    &states[port]
                } else {
                    &states[info.node.0]
                };
                Some(NeighborView {
                    node: info.node,
                    ident: info.ident,
                    weight: info.weight,
                    state,
                })
            }
            ByWeightInner::Sorted(items) => items.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.inner {
            ByWeightInner::Precomputed { order, .. } => order.size_hint(),
            ByWeightInner::Sorted(items) => items.size_hint(),
        }
    }
}

impl<S> ExactSizeIterator for NeighborsByWeight<'_, S> {}

/// Lazy, allocation-free iterator over a [`View`]'s neighbors.
#[derive(Clone, Debug)]
pub struct Neighbors<'a, S> {
    neighbors: &'a [NeighborInfo],
    states: &'a [S],
    local: bool,
    front: usize,
    back: usize,
}

impl<'a, S> Neighbors<'a, S> {
    #[inline]
    fn at(&self, port: usize) -> NeighborView<'a, S> {
        let info = &self.neighbors[port];
        let state = if self.local {
            &self.states[port]
        } else {
            &self.states[info.node.0]
        };
        NeighborView {
            node: info.node,
            ident: info.ident,
            weight: info.weight,
            state,
        }
    }
}

impl<'a, S> Iterator for Neighbors<'a, S> {
    type Item = NeighborView<'a, S>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.front >= self.back {
            return None;
        }
        let item = self.at(self.front);
        self.front += 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.back - self.front;
        (remaining, Some(remaining))
    }
}

impl<S> ExactSizeIterator for Neighbors<'_, S> {}

impl<S> DoubleEndedIterator for Neighbors<'_, S> {
    fn next_back(&mut self) -> Option<Self::Item> {
        if self.front >= self.back {
            return None;
        }
        self.back -= 1;
        Some(self.at(self.back))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const INFO: [NeighborInfo; 3] = [
        NeighborInfo {
            node: NodeId(1),
            ident: 9,
            weight: 30,
        },
        NeighborInfo {
            node: NodeId(2),
            ident: 2,
            weight: 10,
        },
        NeighborInfo {
            node: NodeId(3),
            ident: 7,
            weight: 20,
        },
    ];

    fn sample_view(states: &[u64]) -> View<'_, u64> {
        View::new(NodeId(0), 5, 4, &INFO, states)
    }

    #[test]
    fn lookup_helpers() {
        let states = [0u64, 1, 2, 3];
        let view = sample_view(&states);
        assert_eq!(view.degree(), 3);
        assert!(view.has_neighbor(2));
        assert!(!view.has_neighbor(5));
        assert_eq!(view.neighbor_with_ident(7).unwrap().weight, 20);
        assert_eq!(view.min_ident_in_closed_neighborhood(), 2);
        assert_eq!(*view.state, 0);
    }

    #[test]
    fn neighbor_iteration_reads_live_registers() {
        let states = [0u64, 11, 22, 33];
        let view = sample_view(&states);
        let read: Vec<(Ident, u64)> = view.neighbors().map(|nb| (nb.ident, *nb.state)).collect();
        assert_eq!(read, vec![(9, 11), (2, 22), (7, 33)]);
        assert_eq!(view.neighbors().len(), 3);
        let backwards: Vec<Ident> = view.neighbors().rev().map(|nb| nb.ident).collect();
        assert_eq!(backwards, vec![7, 2, 9]);
    }

    #[test]
    fn weight_ordering_fallback_sorts() {
        let states = [0u64, 1, 2, 3];
        let view = sample_view(&states);
        let order: Vec<Ident> = view.neighbors_by_weight().map(|nb| nb.ident).collect();
        assert_eq!(order, vec![2, 7, 9]);
        assert_eq!(view.neighbors_by_weight().len(), 3);
    }

    #[test]
    fn precomputed_weight_order_matches_the_sorting_fallback() {
        let states = [0u64, 11, 22, 33];
        // INFO's (weight, ident) order is (10,2) < (20,7) < (30,9): ports 1, 2, 0.
        let order = [1u32, 2, 0];
        let view = View::with_weight_order(NodeId(0), 5, 4, &INFO, &order, &states);
        let fallback = sample_view(&states);
        let a: Vec<(Ident, u64)> = view
            .neighbors_by_weight()
            .map(|nb| (nb.ident, *nb.state))
            .collect();
        let b: Vec<(Ident, u64)> = fallback
            .neighbors_by_weight()
            .map(|nb| (nb.ident, *nb.state))
            .collect();
        assert_eq!(a, b);
        assert_eq!(a, vec![(2, 22), (7, 33), (9, 11)]);
        // The plain port-order iterator is unaffected by the weight order.
        let ports: Vec<Ident> = view.neighbors().map(|nb| nb.ident).collect();
        assert_eq!(ports, vec![9, 2, 7]);
    }

    #[test]
    fn locally_indexed_decoded_views_match_the_global_indexing() {
        // Global: states indexed by dense node id. Local: the same registers laid out
        // in port order with the node's own register last (what the packed-store
        // executor decodes into scratch).
        let states = [5u64, 11, 22, 33];
        let global = sample_view(&states);
        let decoded = [11u64, 22, 33, 5]; // ports n1, n2, n3, then own (n0)
        let order = [1u32, 2, 0];
        let local = View::over_decoded(NodeId(0), 5, 4, &INFO, Some(&order), &decoded);
        assert_eq!(*local.state, *global.state);
        assert_eq!(local.degree(), global.degree());
        let read = |v: &View<'_, u64>| -> Vec<(Ident, u64)> {
            v.neighbors().map(|nb| (nb.ident, *nb.state)).collect()
        };
        assert_eq!(read(&local), read(&global));
        let back: Vec<u64> = local.neighbors().rev().map(|nb| *nb.state).collect();
        assert_eq!(back, vec![33, 22, 11]);
        let by_weight: Vec<(Ident, u64)> = local
            .neighbors_by_weight()
            .map(|nb| (nb.ident, *nb.state))
            .collect();
        assert_eq!(by_weight, vec![(2, 22), (7, 33), (9, 11)]);
        assert_eq!(local.neighbor_with_ident(7).map(|nb| *nb.state), Some(33));
        assert_eq!(local.min_ident_in_closed_neighborhood(), 2);
    }
}
