//! Self-delimiting bit codecs for register and label contents.
//!
//! The paper's space claims are about *registers*: fixed-width words of
//! `O(log n)`/`O(log² n)` bits. The seed implementation only *accounted* those widths
//! (`bit_size()` summed `bits_for` of the current values) while the actual storage was
//! fat Rust structs. The [`Codec`] trait closes that gap: every register and label type
//! describes how to serialize itself into a [`BitWriter`] and back, and the packed
//! configuration store ([`crate::store`]) allocates exactly those bits. `bit_size`
//! accounting is *derived* from the codec ([`Codec::encoded_bits`] is by definition the
//! number of bits written), so accounting and reality can no longer drift.
//!
//! # Field widths
//!
//! Widths come from a per-instance [`CodecCtx`] built once from the graph: identities,
//! edge weights and bounded counters each get the fixed number of bits the model grants
//! them (`⌈log₂⌉` of their value range, exactly the paper's register layout). Because a
//! transient fault can leave *any* 64-bit garbage in a decoded register, every integer
//! field carries one **escape bit**: `0` + the fixed-width value when it fits, `1` + a
//! raw 64-bit word otherwise. Encoding is therefore total (never panics, never
//! truncates) and exactly invertible — `decode(encode(x)) == x` for every value, which
//! is what keeps packed executions bit-identical to the struct-backed reference
//! (`tests/packed_store_oracle.rs`). In fault-free runs the escape never fires and every
//! field costs `1 + width` bits.

use stst_graph::ids::bits_for;
use stst_graph::Graph;

use crate::bits::{BitReader, BitWriter};

/// Fixed field widths of one problem instance, shared by every codec.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CodecCtx {
    /// Bits of an identity field. Covers every real identity plus the `0..=2n` garbage
    /// range arbitrary initial configurations and fault injection draw from.
    pub ident_bits: u32,
    /// Bits of an edge-weight field.
    pub weight_bits: u32,
    /// Bits of a bounded counter (distances, subtree sizes, degrees — all `≤ n + 1`).
    pub count_bits: u32,
    /// Bits of a trace-length field (Borůvka levels, heavy-path segment counts — all
    /// `≤ ⌈log₂ n⌉ + 1 ≤ 65`).
    pub len_bits: u32,
}

impl CodecCtx {
    /// Builds the widths for `graph`: the instance parameters are incorruptible
    /// constants, so this is decided once per executor (and re-derived after topology
    /// mutations, which can grow the identity or weight ranges).
    pub fn for_graph(graph: &Graph) -> Self {
        let n = graph.node_count() as u64;
        let max_ident = graph.nodes().map(|v| graph.ident(v)).max().unwrap_or(0);
        let max_weight = graph.edge_ids().map(|e| graph.weight(e)).max().unwrap_or(0);
        CodecCtx {
            // +8 headroom: fault hooks nudge identities/counters by small deltas
            // (e.g. `corrupt_random_labels` bumps a fragment identity by one); the
            // escape bit covers anything larger.
            ident_bits: bits_for(max_ident.max(2 * n + 2) + 8) as u32,
            weight_bits: bits_for(max_weight + 8) as u32,
            count_bits: bits_for(n + 8) as u32,
            len_bits: 7,
        }
    }

    /// Bits of an escape-coded integer field of nominal width `width`.
    #[inline]
    pub fn uint_bits(value: u64, width: u32) -> usize {
        if fits(value, width) {
            1 + width as usize
        } else {
            1 + 64
        }
    }

    /// Writes an escape-coded integer field of nominal width `width`.
    #[inline]
    pub fn write_uint(w: &mut BitWriter<'_>, value: u64, width: u32) {
        if fits(value, width) {
            w.write(0, 1);
            w.write(value, width as usize);
        } else {
            w.write(1, 1);
            w.write(value, 64);
        }
    }

    /// Reads an escape-coded integer field of nominal width `width`.
    #[inline]
    pub fn read_uint(r: &mut BitReader<'_>, width: u32) -> u64 {
        if r.read(1) == 0 {
            r.read(width as usize)
        } else {
            r.read(64)
        }
    }

    /// Bits of an optional escape-coded integer (1 presence bit + the field).
    #[inline]
    pub fn opt_uint_bits(value: &Option<u64>, width: u32) -> usize {
        1 + value.map_or(0, |v| Self::uint_bits(v, width))
    }

    /// Writes an optional escape-coded integer.
    #[inline]
    pub fn write_opt_uint(w: &mut BitWriter<'_>, value: &Option<u64>, width: u32) {
        match value {
            None => w.write(0, 1),
            Some(v) => {
                w.write(1, 1);
                Self::write_uint(w, *v, width);
            }
        }
    }

    /// Reads an optional escape-coded integer.
    #[inline]
    pub fn read_opt_uint(r: &mut BitReader<'_>, width: u32) -> Option<u64> {
        if r.read(1) == 1 {
            Some(Self::read_uint(r, width))
        } else {
            None
        }
    }
}

#[inline]
fn fits(value: u64, width: u32) -> bool {
    width >= 64 || value < (1u64 << width)
}

/// Location of one field's payload inside a packed slot, **valid only for the
/// fault-free shape** of the encoding: every escape bit clear and every optional field
/// present. Under that shape the layout is fixed, so `offset`/`width` let a reader
/// pull a field straight out of the heap with one shift/mask — no `decode_from`, no
/// scratch structs. The moment any escape bit is set (fault garbage) or an optional
/// field is absent, later offsets shift and the metadata must not be trusted;
/// [`FieldReader`] is the cursor that handles those cases by walking the
/// escape/presence bits themselves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FieldSpec {
    /// Field name, matching the struct field it extracts.
    pub name: &'static str,
    /// Bit offset of the payload from the start of the slot (past the escape and
    /// presence bits that precede it in the fault-free shape).
    pub offset: u32,
    /// Payload width in bits.
    pub width: u32,
}

/// Decode-free cursor over one encoded register in a word buffer.
///
/// Reads fields in the order the codec wrote them, checking each escape/presence bit
/// inline: extraction is pure shift/mask ([`BitReader::read`]) and never constructs
/// the register struct. A fired escape bit means the slot holds fault garbage wider
/// than the nominal field — extraction returns `None` and the caller must fall back
/// to the full [`Codec::decode_from`] path (the guard screens do exactly that).
#[derive(Clone, Debug)]
pub struct FieldReader<'a> {
    r: BitReader<'a>,
}

impl<'a> FieldReader<'a> {
    /// A cursor at absolute bit offset `pos` of `words` (a slot start in the packed
    /// heap).
    #[inline]
    pub fn new(words: &'a [u64], pos: u64) -> Self {
        FieldReader {
            r: BitReader::new(words, pos),
        }
    }

    /// Extracts an escape-coded integer of nominal width `width`, or `None` if the
    /// escape bit fired. The cursor always advances past the whole field, so further
    /// fields of the slot stay reachable either way.
    #[inline]
    pub fn uint(&mut self, width: u32) -> Option<u64> {
        if self.r.read(1) == 0 {
            Some(self.r.read(width as usize))
        } else {
            self.r.read(64);
            None
        }
    }

    /// Extracts an optional escape-coded integer: `None` if the escape bit of a
    /// present value fired, otherwise `Some(None)` for an absent field or
    /// `Some(Some(v))` for a present one.
    #[inline]
    pub fn opt_uint(&mut self, width: u32) -> Option<Option<u64>> {
        if self.r.read(1) == 0 {
            Some(None)
        } else {
            self.uint(width).map(Some)
        }
    }

    /// Extracts one raw flag bit (a `bool` field or a presence bit whose payload the
    /// caller reads field-by-field, e.g. the fragment tuple of an FR label). Raw bits
    /// have no escape shape, so extraction is total.
    #[inline]
    pub fn bit(&mut self) -> bool {
        self.r.read(1) == 1
    }

    /// The number of bits consumed since construction.
    #[inline]
    pub fn bits_read(&self) -> u64 {
        self.r.bits_read()
    }
}

/// A register or label content that can be bit-packed.
///
/// The contract the packed store and the differential oracles rely on:
///
/// 1. **round trip**: `decode_from(ctx, encode_into(ctx, x)) == x` for every value —
///    including garbage left by fault injection (the escape bit makes integer fields
///    total);
/// 2. **exact accounting**: `encoded_bits(ctx, x)` equals the bits `encode_into`
///    writes and `decode_from` consumes, for every value.
///
/// Both are pinned by seeded property tests next to every implementation.
pub trait Codec: Sized {
    /// Exact number of bits [`Codec::encode_into`] writes for `self`.
    fn encoded_bits(&self, ctx: &CodecCtx) -> usize;

    /// Serializes `self` at the writer's cursor.
    fn encode_into(&self, ctx: &CodecCtx, w: &mut BitWriter<'_>);

    /// Deserializes one value at the reader's cursor.
    fn decode_from(ctx: &CodecCtx, r: &mut BitReader<'_>) -> Self;

    /// Per-field offset/width metadata of the **fault-free encoded shape** (every
    /// escape bit clear, every optional field present), in encoding order. Empty (the
    /// default) means the type offers no decode-free extraction and guards always take
    /// the full-decode path. See [`FieldSpec`] for the validity contract; the
    /// extraction property tests next to each implementation pin
    /// `extract(field) == decode().field`.
    fn field_specs(_ctx: &CodecCtx) -> Vec<FieldSpec> {
        Vec::new()
    }
}

impl Codec for u64 {
    fn encoded_bits(&self, ctx: &CodecCtx) -> usize {
        CodecCtx::uint_bits(*self, ctx.ident_bits)
    }

    fn encode_into(&self, ctx: &CodecCtx, w: &mut BitWriter<'_>) {
        CodecCtx::write_uint(w, *self, ctx.ident_bits);
    }

    fn decode_from(ctx: &CodecCtx, r: &mut BitReader<'_>) -> Self {
        CodecCtx::read_uint(r, ctx.ident_bits)
    }

    fn field_specs(ctx: &CodecCtx) -> Vec<FieldSpec> {
        vec![FieldSpec {
            name: "value",
            offset: 1,
            width: ctx.ident_bits,
        }]
    }
}

impl Codec for bool {
    fn encoded_bits(&self, _ctx: &CodecCtx) -> usize {
        1
    }

    fn encode_into(&self, _ctx: &CodecCtx, w: &mut BitWriter<'_>) {
        w.write(u64::from(*self), 1);
    }

    fn decode_from(_ctx: &CodecCtx, r: &mut BitReader<'_>) -> Self {
        r.read(1) == 1
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encoded_bits(&self, ctx: &CodecCtx) -> usize {
        self.0.encoded_bits(ctx) + self.1.encoded_bits(ctx)
    }

    fn encode_into(&self, ctx: &CodecCtx, w: &mut BitWriter<'_>) {
        self.0.encode_into(ctx, w);
        self.1.encode_into(ctx, w);
    }

    fn decode_from(ctx: &CodecCtx, r: &mut BitReader<'_>) -> Self {
        let a = A::decode_from(ctx, r);
        let b = B::decode_from(ctx, r);
        (a, b)
    }
}

/// Asserts the [`Codec`] contract for one value: exact round trip, and `encoded_bits`
/// matching both the bits written and the bits consumed. Shared by the per-type
/// property tests of every crate implementing the trait.
pub fn assert_codec_roundtrip<T: Codec + PartialEq + std::fmt::Debug>(ctx: &CodecCtx, value: &T) {
    let mut words = Vec::new();
    let mut w = BitWriter::new(&mut words, 0);
    value.encode_into(ctx, &mut w);
    let written = w.position();
    assert_eq!(
        written as usize,
        value.encoded_bits(ctx),
        "encoded_bits must match the bits actually written for {value:?}"
    );
    let mut r = BitReader::new(&words, 0);
    let decoded = T::decode_from(ctx, &mut r);
    assert_eq!(&decoded, value, "decode(encode(x)) must be x");
    assert_eq!(
        r.bits_read(),
        written,
        "decode must consume exactly the bits encode wrote for {value:?}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use stst_graph::generators;

    fn ctx() -> CodecCtx {
        CodecCtx {
            ident_bits: 9,
            weight_bits: 11,
            count_bits: 7,
            len_bits: 7,
        }
    }

    #[test]
    fn ctx_for_graph_covers_the_garbage_range() {
        let g = generators::workload(24, 0.2, 1);
        let ctx = CodecCtx::for_graph(&g);
        // Arbitrary states draw identities from 0..=2n and counters from 0..=n+1.
        assert!(1u64 << ctx.ident_bits > 2 * 24 + 2);
        assert!(1u64 << ctx.count_bits > 24 + 1);
        let max_w = g.edge_ids().map(|e| g.weight(e)).max().unwrap();
        assert!(1u64 << ctx.weight_bits > max_w);
    }

    #[test]
    fn in_range_values_cost_one_bit_over_the_field_width() {
        let ctx = ctx();
        assert_eq!(CodecCtx::uint_bits(0, ctx.ident_bits), 10);
        assert_eq!(CodecCtx::uint_bits(511, ctx.ident_bits), 10);
        assert_eq!(511u64.encoded_bits(&ctx), 10);
    }

    #[test]
    fn out_of_range_values_escape_to_a_raw_word() {
        let ctx = ctx();
        assert_eq!(CodecCtx::uint_bits(512, ctx.ident_bits), 65);
        for value in [512u64, u64::MAX, 1 << 40] {
            assert_codec_roundtrip(&ctx, &value);
        }
    }

    #[test]
    fn primitive_codecs_round_trip_at_boundary_widths() {
        let ctx = ctx();
        for value in [0u64, 1, 2, 255, 256, 511, 512, u64::MAX] {
            assert_codec_roundtrip(&ctx, &value);
        }
        assert_codec_roundtrip(&ctx, &true);
        assert_codec_roundtrip(&ctx, &false);
        assert_codec_roundtrip(&ctx, &(7u64, true));
        assert_codec_roundtrip(&ctx, &(u64::MAX, false));
    }

    #[test]
    fn optional_fields_cost_one_presence_bit() {
        let ctx = ctx();
        assert_eq!(CodecCtx::opt_uint_bits(&None, ctx.ident_bits), 1);
        assert_eq!(CodecCtx::opt_uint_bits(&Some(3), ctx.ident_bits), 11);
        let mut words = Vec::new();
        let mut w = BitWriter::new(&mut words, 0);
        CodecCtx::write_opt_uint(&mut w, &None, ctx.ident_bits);
        CodecCtx::write_opt_uint(&mut w, &Some(500), ctx.ident_bits);
        let mut r = BitReader::new(&words, 0);
        assert_eq!(CodecCtx::read_opt_uint(&mut r, ctx.ident_bits), None);
        assert_eq!(CodecCtx::read_opt_uint(&mut r, ctx.ident_bits), Some(500));
    }

    #[test]
    fn field_reader_extracts_what_the_writer_encoded() {
        let ctx = ctx();
        let mut words = Vec::new();
        let mut w = BitWriter::new(&mut words, 7); // deliberately unaligned
        CodecCtx::write_uint(&mut w, 300, ctx.ident_bits);
        CodecCtx::write_opt_uint(&mut w, &None, ctx.ident_bits);
        CodecCtx::write_opt_uint(&mut w, &Some(41), ctx.count_bits);
        CodecCtx::write_uint(&mut w, u64::MAX, ctx.count_bits); // escapes
        CodecCtx::write_uint(&mut w, 12, ctx.count_bits); // reachable past the escape
        let written = w.position() - 7;
        let mut f = FieldReader::new(&words, 7);
        assert_eq!(f.uint(ctx.ident_bits), Some(300));
        assert_eq!(f.opt_uint(ctx.ident_bits), Some(None));
        assert_eq!(f.opt_uint(ctx.count_bits), Some(Some(41)));
        assert_eq!(
            f.uint(ctx.count_bits),
            None,
            "escape must refuse extraction"
        );
        assert_eq!(
            f.uint(ctx.count_bits),
            Some(12),
            "cursor advances past escapes"
        );
        assert_eq!(f.bits_read(), written);
    }

    #[test]
    fn u64_field_spec_locates_the_payload_in_the_fault_free_shape() {
        let ctx = ctx();
        let specs = u64::field_specs(&ctx);
        assert_eq!(specs.len(), 1);
        for value in [0u64, 17, 511] {
            let mut words = Vec::new();
            let mut w = BitWriter::new(&mut words, 0);
            value.encode_into(&ctx, &mut w);
            let mut r = BitReader::new(&words, specs[0].offset as u64);
            assert_eq!(r.read(specs[0].width as usize), value);
        }
    }

    #[test]
    fn width_64_fields_never_escape() {
        let ctx = CodecCtx {
            ident_bits: 64,
            weight_bits: 64,
            count_bits: 64,
            len_bits: 7,
        };
        assert_eq!(u64::MAX.encoded_bits(&ctx), 65);
        assert_codec_roundtrip(&ctx, &u64::MAX);
    }
}
