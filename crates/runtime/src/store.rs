//! The packed configuration store: registers allocated at their accounted bit widths.
//!
//! A self-stabilizing algorithm's state is a *configuration* — one register per node.
//! The seed kept configurations as `Vec<State>` of fat Rust structs (dozens of machine
//! words per node for `O(log² n)`-bit registers). [`ConfigStore`] makes the accounted
//! space the allocated space: in [`StoreMode::Packed`] every register occupies one
//! fixed-width **bit slot** inside a shared `u64` word heap, exactly the register model
//! of the paper (a register *is* a `⌈max encoded size⌉`-bit word). Slots share a single
//! stride so addressing is one multiply — no per-node offset tables eating the savings
//! back — and the stride grows (with a full repack) the first time a register outgrows
//! it, which is rare and monotone: encoded sizes are bounded by the [`CodecCtx`] field
//! widths.
//!
//! A presence bitmap turns the same layout into the executor's *pending* buffer (the
//! cached next-state per enabled node), so both halves of the double-buffered
//! configuration — pre-round snapshot and pending writes — live in packed form.
//!
//! [`StoreMode::Struct`] retains the plain `Vec<Option<State>>` layout as the reference
//! mode (analogous to the executor's retained `FullRescan` mode): the differential
//! oracle (`tests/packed_store_oracle.rs`) asserts that executions over the two stores
//! are bit-identical, and the space benches measure the struct mode's memory as the
//! baseline the packed mode is compared against.

use std::marker::PhantomData;

use stst_graph::NodeId;

use crate::bits::{BitReader, BitWriter};
use crate::codec::{Codec, CodecCtx, FieldReader};

/// Which representation a [`ConfigStore`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum StoreMode {
    /// Bit-packed fixed-stride slots: the accounted bits are the allocated bits.
    #[default]
    Packed,
    /// Plain `Vec` of decoded structs. Reference mode for differential testing and the
    /// memory baseline of the space benches.
    Struct,
}

/// Measured memory of a store, compared against the accounted register bits in the
/// E5/E7/E11 space tables.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StoreBytes {
    /// Bytes actually allocated for the slots (heap words or struct vector, plus the
    /// presence bitmap).
    pub bytes: usize,
    /// Number of slots.
    pub slots: usize,
}

/// One configuration buffer: `n` optional registers, packed or struct-backed.
#[derive(Clone, Debug)]
pub struct ConfigStore<S> {
    repr: Repr<S>,
}

#[derive(Clone, Debug)]
enum Repr<S> {
    Struct(Vec<Option<S>>),
    Packed(PackedBuf<S>),
}

#[derive(Clone, Debug)]
struct PackedBuf<S> {
    /// Bit width of one slot (the maximum encoded size seen so far).
    stride: u32,
    /// Slot `v` occupies bits `v * stride .. (v + 1) * stride` of this heap.
    heap: Vec<u64>,
    /// Presence bitmap (all-ones for a snapshot store, sparse for a pending store).
    present: Vec<u64>,
    /// Transient encode scratch for [`ConfigStore::set`]'s change detection: one
    /// slot's worth of words, reused across writes. Working space, not slot storage —
    /// excluded from [`ConfigStore::measured`].
    scratch: Vec<u64>,
    len: usize,
    _marker: PhantomData<S>,
}

impl<S: Codec + Clone> ConfigStore<S> {
    /// An empty store of `n` absent slots.
    pub fn empty(mode: StoreMode, n: usize) -> Self {
        let repr = match mode {
            StoreMode::Struct => Repr::Struct(vec![None; n]),
            StoreMode::Packed => Repr::Packed(PackedBuf {
                stride: 0,
                heap: Vec::new(),
                present: vec![0; n.div_ceil(64)],
                scratch: Vec::new(),
                len: n,
                _marker: PhantomData,
            }),
        };
        ConfigStore { repr }
    }

    /// A store holding one register per node, encoded from `states`.
    pub fn from_states(mode: StoreMode, states: Vec<S>, ctx: &CodecCtx) -> Self {
        match mode {
            StoreMode::Struct => ConfigStore {
                repr: Repr::Struct(states.into_iter().map(Some).collect()),
            },
            StoreMode::Packed => ConfigStore::packed_from_slice(&states, ctx),
        }
    }

    /// A packed store encoded from borrowed registers — no clones of the (possibly
    /// heap-holding) decoded values. The stride is pre-computed from the maximum
    /// encoded size, so the heap is allocated exactly once.
    pub fn packed_from_slice(states: &[S], ctx: &CodecCtx) -> Self {
        let stride = states
            .iter()
            .map(|s| s.encoded_bits(ctx))
            .max()
            .unwrap_or(0) as u32;
        let n = states.len();
        let mut buf = PackedBuf {
            stride,
            heap: vec![0; (stride as u64 * n as u64).div_ceil(64) as usize],
            present: vec![u64::MAX; n.div_ceil(64)],
            scratch: Vec::new(),
            len: n,
            _marker: PhantomData,
        };
        if let Some(last) = buf.present.last_mut() {
            let used = n % 64;
            if used != 0 {
                *last = (1u64 << used) - 1;
            }
        }
        for (i, s) in states.iter().enumerate() {
            buf.encode_slot(i, s, ctx);
        }
        ConfigStore {
            repr: Repr::Packed(buf),
        }
    }

    /// A packed store of optional slots with the stride pre-computed over every
    /// present register (one heap allocation, no incremental repacks).
    pub fn packed_from_slots(slots: &[Option<S>], ctx: &CodecCtx) -> Self {
        let stride = slots
            .iter()
            .flatten()
            .map(|s| s.encoded_bits(ctx))
            .max()
            .unwrap_or(0) as u32;
        let n = slots.len();
        let mut buf = PackedBuf {
            stride,
            heap: vec![0; (stride as u64 * n as u64).div_ceil(64) as usize],
            present: vec![0; n.div_ceil(64)],
            scratch: Vec::new(),
            len: n,
            _marker: PhantomData,
        };
        for (i, slot) in slots.iter().enumerate() {
            if let Some(s) = slot {
                buf.encode_slot(i, s, ctx);
                buf.mark_present(i);
            }
        }
        ConfigStore {
            repr: Repr::Packed(buf),
        }
    }

    /// The store's representation mode.
    pub fn mode(&self) -> StoreMode {
        match &self.repr {
            Repr::Struct(_) => StoreMode::Struct,
            Repr::Packed(_) => StoreMode::Packed,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Struct(v) => v.len(),
            Repr::Packed(b) => b.len,
        }
    }

    /// `true` if the store has no slots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` if slot `v` holds a register.
    #[inline]
    pub fn is_present(&self, v: NodeId) -> bool {
        match &self.repr {
            Repr::Struct(s) => s[v.0].is_some(),
            Repr::Packed(b) => b.is_present(v.0),
        }
    }

    /// Decodes the register of `v`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is absent.
    #[inline]
    pub fn get(&self, v: NodeId, ctx: &CodecCtx) -> S {
        match &self.repr {
            Repr::Struct(s) => s[v.0].clone().expect("slot is present"),
            Repr::Packed(b) => {
                debug_assert!(b.is_present(v.0), "slot {v} is present");
                b.decode_slot(v.0, ctx)
            }
        }
    }

    /// Decodes the register of `v` if present.
    #[inline]
    pub fn try_get(&self, v: NodeId, ctx: &CodecCtx) -> Option<S> {
        self.is_present(v).then(|| self.get(v, ctx))
    }

    /// Writes the register of `v` (marking the slot present). Returns `true` iff the
    /// stored bits changed.
    ///
    /// A write that re-encodes to exactly the bits already stored short-circuits
    /// without touching the heap: the slot's xor-fold change [`fingerprint`] is
    /// compared first (almost always different when the value changed), then an exact
    /// window compare confirms — fingerprints can collide, so no skip decision ever
    /// rests on fingerprint equality alone. Because every codec is exactly invertible,
    /// bit-identical ⟺ value-identical, which is what keeps the struct mode's
    /// value-compare short-circuit in lockstep with this one.
    ///
    /// [`fingerprint`]: ConfigStore::fingerprint
    pub fn set(&mut self, v: NodeId, state: &S, ctx: &CodecCtx) -> bool
    where
        S: PartialEq,
    {
        match &mut self.repr {
            Repr::Struct(s) => {
                if s[v.0].as_ref() == Some(state) {
                    return false;
                }
                s[v.0] = Some(state.clone());
                true
            }
            Repr::Packed(b) => {
                let bits = state.encoded_bits(ctx) as u32;
                if bits > b.stride {
                    // Wider than every encoding the store has held, so the stored
                    // value (if any) cannot equal `state`: encoded size is a function
                    // of the value.
                    b.grow_stride(bits, ctx);
                    b.encode_slot(v.0, state, ctx);
                    b.mark_present(v.0);
                    return true;
                }
                if !b.is_present(v.0) {
                    b.encode_slot(v.0, state, ctx);
                    b.mark_present(v.0);
                    return true;
                }
                b.encode_scratch(state, ctx);
                if b.fold_scratch() == b.fingerprint_slot(v.0) && b.slot_equals_scratch(v.0) {
                    return false;
                }
                b.write_scratch_to_slot(v.0);
                true
            }
        }
    }

    /// Takes the register of `v` out of the store (clearing the slot).
    pub fn take(&mut self, v: NodeId, ctx: &CodecCtx) -> Option<S> {
        match &mut self.repr {
            Repr::Struct(s) => s[v.0].take(),
            Repr::Packed(b) => {
                if !b.is_present(v.0) {
                    return None;
                }
                let state = b.decode_slot(v.0, ctx);
                b.clear_present(v.0);
                Some(state)
            }
        }
    }

    /// Clears slot `v`.
    pub fn clear(&mut self, v: NodeId) {
        match &mut self.repr {
            Repr::Struct(s) => s[v.0] = None,
            Repr::Packed(b) => b.clear_present(v.0),
        }
    }

    /// Decodes every present slot into `out[i]` (absent slots are skipped; `out` must
    /// already have one element per slot). Used for full-snapshot reads (legality
    /// checks, tree extraction, `Executor::states`).
    pub fn decode_present_into(&self, ctx: &CodecCtx, out: &mut [Option<S>]) {
        assert_eq!(out.len(), self.len());
        match &self.repr {
            Repr::Struct(s) => out.clone_from_slice(s),
            Repr::Packed(b) => {
                for (i, slot) in out.iter_mut().enumerate() {
                    *slot = b.is_present(i).then(|| b.decode_slot(i, ctx));
                }
            }
        }
    }

    /// Decodes a fully populated store into a vector.
    ///
    /// # Panics
    ///
    /// Panics if some slot is absent.
    pub fn decode_all(&self, ctx: &CodecCtx) -> Vec<S> {
        match &self.repr {
            Repr::Struct(s) => s
                .iter()
                .map(|x| x.clone().expect("snapshot stores are fully populated"))
                .collect(),
            Repr::Packed(b) => (0..b.len)
                .map(|i| {
                    assert!(b.is_present(i), "snapshot stores are fully populated");
                    b.decode_slot(i, ctx)
                })
                .collect(),
        }
    }

    /// Sum of the accounted bits of every present register (recomputed by decoding —
    /// the store keeps no per-slot length metadata, that is part of what it saves).
    pub fn accounted_bits(&self, ctx: &CodecCtx) -> u64 {
        match &self.repr {
            Repr::Struct(s) => s.iter().flatten().map(|x| x.encoded_bits(ctx) as u64).sum(),
            Repr::Packed(b) => (0..b.len)
                .filter(|&i| b.is_present(i))
                .map(|i| b.decode_slot(i, ctx).encoded_bits(ctx) as u64)
                .sum(),
        }
    }

    /// Bytes actually allocated for this store's slots and presence bitmap. For the
    /// struct mode this is the `Vec<Option<S>>` backing allocation — the memory a
    /// system without the packed store pays.
    pub fn measured(&self) -> StoreBytes {
        match &self.repr {
            Repr::Struct(s) => StoreBytes {
                bytes: s.capacity() * std::mem::size_of::<Option<S>>(),
                slots: s.len(),
            },
            Repr::Packed(b) => StoreBytes {
                bytes: (b.heap.capacity() + b.present.capacity()) * 8 + std::mem::size_of::<u32>(),
                slots: b.len,
            },
        }
    }

    /// The slot stride in bits (packed mode only): the width of the fixed-size register
    /// word every node gets, i.e. the maximum encoded size seen so far.
    pub fn stride_bits(&self) -> Option<u32> {
        match &self.repr {
            Repr::Struct(_) => None,
            Repr::Packed(b) => Some(b.stride),
        }
    }

    /// The packed heap and slot stride, for decode-free field extraction (the guard
    /// screens build [`crate::view::RawView`]s over this). `None` in struct mode or
    /// when the stride is zero (zero-bit registers leave nothing to read).
    pub fn raw_parts(&self) -> Option<(&[u64], u32)> {
        match &self.repr {
            Repr::Packed(b) if b.stride > 0 => Some((&b.heap, b.stride)),
            _ => None,
        }
    }

    /// A decode-free cursor positioned at the start of slot `v`'s register, for
    /// escape-aware field extraction without constructing the decoded struct (the
    /// serving layer's query hot path). `None` in struct mode, when the stride is
    /// zero, or when the slot is absent — callers fall back to [`ConfigStore::get`].
    #[inline]
    pub fn field_reader(&self, v: NodeId) -> Option<FieldReader<'_>> {
        match &self.repr {
            Repr::Packed(b) if b.stride > 0 && b.is_present(v.0) => {
                Some(FieldReader::new(&b.heap, v.0 as u64 * b.stride as u64))
            }
            _ => None,
        }
    }

    /// The presence bitmap words (packed mode only): bit `v % 64` of word `v / 64` is
    /// set iff slot `v` holds a register. For the executor's pending buffer this
    /// bitmap *is* the enabled set, which lets the per-round bitset refill run as
    /// word copies + popcounts instead of per-node scatter writes.
    pub fn present_words(&self) -> Option<&[u64]> {
        match &self.repr {
            Repr::Struct(_) => None,
            Repr::Packed(b) => Some(&b.present),
        }
    }

    /// Xor-fold change fingerprint of slot `v`'s stride window, phase-normalized to
    /// the slot start so equal register bits give equal fingerprints at any slot
    /// index (packed mode only; the slot need not be present — an absent slot folds
    /// its zeroed window).
    ///
    /// Derived on demand rather than stored: a persistent word per slot would blow
    /// the ≤4× accounted-bits allocation budget the space gates pin. Equal bits ⇒
    /// equal fingerprints; the converse can fail (xor collisions), so change/skip
    /// decisions treat a fingerprint match only as "maybe unchanged" and confirm with
    /// an exact compare — see [`ConfigStore::set`].
    pub fn fingerprint(&self, v: NodeId) -> Option<u64> {
        match &self.repr {
            Repr::Struct(_) => None,
            Repr::Packed(b) => Some(b.fingerprint_slot(v.0)),
        }
    }
}

impl<S: Codec + Clone> PackedBuf<S> {
    #[inline]
    fn is_present(&self, i: usize) -> bool {
        self.present[i >> 6] & (1u64 << (i & 63)) != 0
    }

    #[inline]
    fn mark_present(&mut self, i: usize) {
        self.present[i >> 6] |= 1u64 << (i & 63);
    }

    #[inline]
    fn clear_present(&mut self, i: usize) {
        self.present[i >> 6] &= !(1u64 << (i & 63));
    }

    fn decode_slot(&self, i: usize, ctx: &CodecCtx) -> S {
        let mut r = BitReader::new(&self.heap, i as u64 * self.stride as u64);
        S::decode_from(ctx, &mut r)
    }

    fn encode_slot(&mut self, i: usize, state: &S, ctx: &CodecCtx) {
        let start = i as u64 * self.stride as u64;
        let mut w = BitWriter::new(&mut self.heap, start);
        state.encode_into(ctx, &mut w);
        // Zero the slot's tail so stale bits of a previous (longer) register can never
        // be misread by a future decode after a rewrite.
        let written = w.position() - start;
        let tail = self.stride as u64 - written;
        let mut remaining = tail;
        while remaining > 0 {
            let chunk = remaining.min(64) as usize;
            w.write(0, chunk);
            remaining -= chunk as u64;
        }
    }

    /// Encodes `state` into the reusable scratch buffer, zero-padded to exactly one
    /// stride so scratch words compare directly against a slot's bit window.
    fn encode_scratch(&mut self, state: &S, ctx: &CodecCtx) {
        self.scratch.clear();
        let mut w = BitWriter::new(&mut self.scratch, 0);
        state.encode_into(ctx, &mut w);
        let mut remaining = self.stride as u64 - w.position();
        while remaining > 0 {
            let chunk = remaining.min(64) as usize;
            w.write(0, chunk);
            remaining -= chunk as u64;
        }
    }

    /// Exact compare of slot `i`'s stride window against the scratch encoding.
    fn slot_equals_scratch(&self, i: usize) -> bool {
        let mut r = BitReader::new(&self.heap, i as u64 * self.stride as u64);
        let mut remaining = self.stride as u64;
        let mut k = 0;
        while remaining > 0 {
            let chunk = remaining.min(64) as usize;
            if r.read(chunk) != self.scratch[k] {
                return false;
            }
            k += 1;
            remaining -= chunk as u64;
        }
        true
    }

    /// Copies the scratch encoding (already padded to one stride) into slot `i`.
    fn write_scratch_to_slot(&mut self, i: usize) {
        let start = i as u64 * self.stride as u64;
        let scratch = std::mem::take(&mut self.scratch);
        let mut w = BitWriter::new(&mut self.heap, start);
        let mut remaining = self.stride as u64;
        for &word in &scratch {
            let chunk = remaining.min(64) as usize;
            w.write(word, chunk);
            remaining -= chunk as u64;
        }
        self.scratch = scratch;
    }

    /// Xor-fold of the scratch encoding (the fingerprint the slot would have after
    /// writing it).
    fn fold_scratch(&self) -> u64 {
        self.scratch.iter().fold(0, |acc, &w| acc ^ w)
    }

    /// Xor-fold fingerprint of slot `i`'s stride window, phase-normalized to the slot
    /// start.
    fn fingerprint_slot(&self, i: usize) -> u64 {
        let mut r = BitReader::new(&self.heap, i as u64 * self.stride as u64);
        let mut fp = 0u64;
        let mut remaining = self.stride as u64;
        while remaining > 0 {
            let chunk = remaining.min(64) as usize;
            fp ^= r.read(chunk);
            remaining -= chunk as u64;
        }
        fp
    }

    /// Repacks every present slot at a wider stride. Monotone and rare: encoded sizes
    /// are bounded by the ctx field widths, so the stride settles after the first few
    /// writes of a run.
    fn grow_stride(&mut self, bits: u32, ctx: &CodecCtx) {
        let old: Vec<Option<S>> = (0..self.len)
            .map(|i| self.is_present(i).then(|| self.decode_slot(i, ctx)))
            .collect();
        self.stride = bits;
        // Fresh exact-sized allocation (not `resize`): slot addresses never run past
        // it, so the heap's capacity — what `measured()` reports — stays exactly
        // `⌈stride · n / 64⌉` words with no amortized-growth slack.
        self.heap = vec![0; (bits as u64 * self.len as u64).div_ceil(64) as usize];
        for (i, slot) in old.iter().enumerate() {
            if let Some(s) = slot {
                self.encode_slot(i, s, ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> CodecCtx {
        CodecCtx {
            ident_bits: 8,
            weight_bits: 8,
            count_bits: 8,
            len_bits: 7,
        }
    }

    #[test]
    fn packed_snapshot_round_trips_every_slot() {
        let ctx = ctx();
        let states: Vec<u64> = (0..100).map(|i| (i * 37) % 251).collect();
        let store = ConfigStore::from_states(StoreMode::Packed, states.clone(), &ctx);
        assert_eq!(store.decode_all(&ctx), states);
        for (i, s) in states.iter().enumerate() {
            assert_eq!(store.get(NodeId(i), &ctx), *s);
        }
        assert_eq!(store.stride_bits(), Some(9)); // escape bit + 8-bit field
    }

    #[test]
    fn set_and_take_maintain_presence() {
        let ctx = ctx();
        let mut store: ConfigStore<u64> = ConfigStore::empty(StoreMode::Packed, 70);
        assert!(!store.is_present(NodeId(65)));
        store.set(NodeId(65), &42, &ctx);
        assert!(store.is_present(NodeId(65)));
        assert_eq!(store.try_get(NodeId(65), &ctx), Some(42));
        assert_eq!(store.take(NodeId(65), &ctx), Some(42));
        assert_eq!(store.take(NodeId(65), &ctx), None);
        assert!(!store.is_present(NodeId(65)));
    }

    #[test]
    fn stride_growth_repacks_without_losing_registers() {
        let ctx = ctx();
        let mut store: ConfigStore<u64> = ConfigStore::empty(StoreMode::Packed, 10);
        for i in 0..10 {
            store.set(NodeId(i), &(i as u64), &ctx);
        }
        // A value that escapes the 8-bit field forces a wider stride.
        store.set(NodeId(3), &u64::MAX, &ctx);
        assert_eq!(store.stride_bits(), Some(65));
        for i in 0..10 {
            let expected = if i == 3 { u64::MAX } else { i as u64 };
            assert_eq!(store.get(NodeId(i), &ctx), expected);
        }
    }

    #[test]
    fn rewriting_with_a_shorter_register_zeroes_the_tail() {
        let ctx = ctx();
        let mut store: ConfigStore<(u64, bool)> = ConfigStore::empty(StoreMode::Packed, 4);
        store.set(NodeId(1), &(u64::MAX, true), &ctx); // 65 + 1 bits
        store.set(NodeId(1), &(1, false), &ctx); // 9 + 1 bits, same (wide) stride
        assert_eq!(store.get(NodeId(1), &ctx), (1, false));
    }

    #[test]
    fn struct_mode_matches_packed_behavior() {
        let ctx = ctx();
        for mode in [StoreMode::Struct, StoreMode::Packed] {
            let mut store: ConfigStore<u64> = ConfigStore::empty(mode, 8);
            store.set(NodeId(2), &9, &ctx);
            store.set(NodeId(5), &200, &ctx);
            store.clear(NodeId(2));
            let mut out = vec![None; 8];
            store.decode_present_into(&ctx, &mut out);
            assert_eq!(out[2], None, "{mode:?}");
            assert_eq!(out[5], Some(200), "{mode:?}");
            assert_eq!(store.accounted_bits(&ctx), 9, "{mode:?}");
        }
    }

    #[test]
    fn set_reports_whether_the_stored_bits_changed() {
        let ctx = ctx();
        for mode in [StoreMode::Struct, StoreMode::Packed] {
            let mut store: ConfigStore<u64> = ConfigStore::empty(mode, 8);
            assert!(store.set(NodeId(3), &7, &ctx), "{mode:?}: first write");
            assert!(
                !store.set(NodeId(3), &7, &ctx),
                "{mode:?}: bit-identical rewrite short-circuits"
            );
            assert!(store.set(NodeId(3), &8, &ctx), "{mode:?}: changed value");
            // An escaping value forces a stride growth in packed mode; either way the
            // value differs so the write must report a change.
            assert!(store.set(NodeId(3), &u64::MAX, &ctx), "{mode:?}: escape");
            assert!(
                !store.set(NodeId(3), &u64::MAX, &ctx),
                "{mode:?}: same escape"
            );
            assert_eq!(store.get(NodeId(3), &ctx), u64::MAX, "{mode:?}");
        }
    }

    #[test]
    fn fingerprints_track_slot_bits_not_slot_position() {
        let ctx = ctx();
        let states: Vec<u64> = vec![5, 9, 5, 200];
        let store = ConfigStore::from_states(StoreMode::Packed, states, &ctx);
        // Equal register bits ⇒ equal fingerprints, at unrelated bit phases.
        assert_eq!(store.fingerprint(NodeId(0)), store.fingerprint(NodeId(2)));
        assert_ne!(store.fingerprint(NodeId(0)), store.fingerprint(NodeId(1)));
        let structs = ConfigStore::from_states(StoreMode::Struct, vec![5u64], &ctx);
        assert_eq!(structs.fingerprint(NodeId(0)), None);
    }

    #[test]
    fn present_words_mirror_the_presence_bitmap() {
        let ctx = ctx();
        let mut store: ConfigStore<u64> = ConfigStore::empty(StoreMode::Packed, 70);
        store.set(NodeId(1), &1, &ctx);
        store.set(NodeId(65), &2, &ctx);
        let words = store.present_words().unwrap();
        assert_eq!(words.len(), 2);
        assert_eq!(words[0], 1 << 1);
        assert_eq!(words[1], 1 << 1);
        assert_eq!(
            words.iter().map(|w| w.count_ones()).sum::<u32>(),
            2,
            "popcount agrees with the number of present slots"
        );
        let raw = store.raw_parts().unwrap();
        assert_eq!(raw.1, store.stride_bits().unwrap());
    }

    #[test]
    fn packed_memory_is_far_below_struct_memory() {
        let ctx = ctx();
        let states: Vec<(u64, bool)> = (0..1000).map(|i| (i % 250, i % 2 == 0)).collect();
        let packed = ConfigStore::from_states(StoreMode::Packed, states.clone(), &ctx);
        let structs = ConfigStore::from_states(StoreMode::Struct, states, &ctx);
        let pb = packed.measured().bytes;
        let sb = structs.measured().bytes;
        assert!(
            pb * 4 < sb,
            "packed {pb} bytes should be at least 4x below struct {sb} bytes"
        );
        // The packed allocation is within a word-rounding of stride × slots.
        let stride = packed.stride_bits().unwrap() as usize;
        assert!(pb * 8 <= stride * 1000 + 1000 / 64 * 64 + 256);
    }
}
