//! The executor: runs a guarded-rule algorithm under a daemon, counting moves and rounds
//! exactly as defined in the paper, detecting silence, and injecting transient faults.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use stst_graph::tree::TreeError;
use stst_graph::{Graph, NodeId, Tree};

use crate::algorithm::{Algorithm, ParentPointer};
use crate::register::Register;
use crate::scheduler::{Scheduler, SchedulerKind};
use crate::view::{NeighborView, View};

/// Executor configuration: a seed (for the arbitrary initial configuration, the daemon's
/// random choices, and fault injection) and the daemon kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecutorConfig {
    /// Seed for every random choice made by the executor.
    pub seed: u64,
    /// The daemon under which the algorithm runs.
    pub scheduler: SchedulerKind,
}

impl ExecutorConfig {
    /// Central daemon with the given seed.
    pub fn seeded(seed: u64) -> Self {
        ExecutorConfig { seed, scheduler: SchedulerKind::Central }
    }

    /// The given daemon with the given seed.
    pub fn with_scheduler(seed: u64, scheduler: SchedulerKind) -> Self {
        ExecutorConfig { seed, scheduler }
    }
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig::seeded(0)
    }
}

/// Why an execution stopped before reaching quiescence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// The step budget was exhausted while some node was still enabled.
    StepBudgetExhausted {
        /// Steps taken before giving up.
        steps: u64,
        /// Rounds completed before giving up.
        rounds: u64,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::StepBudgetExhausted { steps, rounds } => write!(
                f,
                "step budget exhausted after {steps} steps ({rounds} rounds) without quiescence"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// Measurements of a run that reached quiescence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Quiescence {
    /// `true` — quiescence means no node is enabled, i.e. the algorithm is silent.
    pub silent: bool,
    /// Number of rounds until quiescence (paper §II-A definition).
    pub rounds: u64,
    /// Number of individual node activations (moves).
    pub moves: u64,
    /// Number of daemon steps (a synchronous step may contain many moves).
    pub steps: u64,
    /// Whether the final configuration satisfies the algorithm's legality predicate.
    pub legal: bool,
}

/// Space usage of a configuration, in bits per node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpaceReport {
    /// Maximum register size over all nodes, in bits.
    pub max_bits: usize,
    /// Average register size, in bits.
    pub avg_bits: f64,
    /// Sum of register sizes, in bits.
    pub total_bits: usize,
}

/// Runs an [`Algorithm`] on a [`Graph`] under a [`Scheduler`].
#[derive(Clone, Debug)]
pub struct Executor<'g, A: Algorithm> {
    graph: &'g Graph,
    algo: A,
    states: Vec<A::State>,
    scheduler: Scheduler,
    rng: StdRng,
    moves: u64,
    steps: u64,
    rounds: u64,
    /// Nodes that were enabled at the start of the current round and have neither been
    /// activated nor become disabled since.
    round_pending: Vec<NodeId>,
    /// Peak register size observed at any point of the execution, per node.
    peak_bits: Vec<usize>,
}

impl<'g, A: Algorithm> Executor<'g, A> {
    /// Creates an executor with an explicit initial configuration.
    ///
    /// # Panics
    ///
    /// Panics if `states.len()` differs from the number of nodes.
    pub fn with_states(graph: &'g Graph, algo: A, states: Vec<A::State>, config: ExecutorConfig) -> Self {
        assert_eq!(states.len(), graph.node_count(), "one register per node");
        let peak_bits = states.iter().map(Register::bit_size).collect();
        let mut exec = Executor {
            graph,
            algo,
            states,
            scheduler: Scheduler::new(config.scheduler, graph.node_count(), config.seed),
            rng: StdRng::seed_from_u64(config.seed ^ 0xfa_0717),
            moves: 0,
            steps: 0,
            rounds: 0,
            round_pending: Vec::new(),
            peak_bits,
        };
        exec.round_pending = exec.enabled_nodes();
        exec
    }

    /// Creates an executor whose initial configuration is *arbitrary*: every register is
    /// set to a state drawn by [`Algorithm::arbitrary_state`]. This is the standard
    /// starting point for self-stabilization experiments.
    pub fn from_arbitrary(graph: &'g Graph, algo: A, config: ExecutorConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x0171_a100);
        let states = graph
            .nodes()
            .map(|v| algo.arbitrary_state(graph, v, &mut rng))
            .collect();
        Executor::with_states(graph, algo, states, config)
    }

    /// The network the algorithm runs on.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The algorithm being executed.
    pub fn algorithm(&self) -> &A {
        &self.algo
    }

    /// The current configuration (one register per node, indexed densely).
    pub fn states(&self) -> &[A::State] {
        &self.states
    }

    /// The register of node `v`.
    pub fn state(&self, v: NodeId) -> &A::State {
        &self.states[v.0]
    }

    /// Overwrites the register of `v` (models a transient fault targeting `v`).
    pub fn corrupt_node(&mut self, v: NodeId, state: A::State) {
        self.peak_bits[v.0] = self.peak_bits[v.0].max(state.bit_size());
        self.states[v.0] = state;
        self.round_pending = self.enabled_nodes();
    }

    /// Corrupts `k` distinct registers chosen uniformly at random, replacing each with an
    /// arbitrary state. Returns the nodes hit.
    pub fn corrupt_random_nodes(&mut self, k: usize) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.graph.nodes().collect();
        nodes.shuffle(&mut self.rng);
        nodes.truncate(k.min(self.graph.node_count()));
        for &v in &nodes {
            let state = self.algo.arbitrary_state(self.graph, v, &mut self.rng);
            self.peak_bits[v.0] = self.peak_bits[v.0].max(state.bit_size());
            self.states[v.0] = state;
        }
        self.round_pending = self.enabled_nodes();
        nodes
    }

    /// Builds the closed-neighborhood view of `v` over the current configuration.
    fn view_of(&self, v: NodeId) -> View<'_, A::State> {
        let neighbors = self
            .graph
            .neighbors(v)
            .iter()
            .map(|&(w, e)| NeighborView {
                node: w,
                ident: self.graph.ident(w),
                weight: self.graph.weight(e),
                state: &self.states[w.0],
            })
            .collect();
        View {
            node: v,
            ident: self.graph.ident(v),
            n: self.graph.node_count(),
            state: &self.states[v.0],
            neighbors,
        }
    }

    /// The next state of `v` if it is enabled, `None` otherwise.
    fn pending_transition(&self, v: NodeId) -> Option<A::State> {
        let view = self.view_of(v);
        match self.algo.step(&view) {
            Some(next) if next != self.states[v.0] => Some(next),
            _ => None,
        }
    }

    /// `true` if node `v` is enabled in the current configuration.
    pub fn is_enabled(&self, v: NodeId) -> bool {
        self.pending_transition(v).is_some()
    }

    /// All enabled nodes of the current configuration.
    pub fn enabled_nodes(&self) -> Vec<NodeId> {
        self.graph.nodes().filter(|&v| self.is_enabled(v)).collect()
    }

    /// `true` if no node is enabled (the algorithm is silent in this configuration).
    pub fn is_quiescent(&self) -> bool {
        self.enabled_nodes().is_empty()
    }

    /// Number of rounds completed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Number of moves (node activations) so far.
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Number of daemon steps so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Executes one daemon step. Returns the nodes that were activated, or an empty
    /// vector if the configuration was already quiescent.
    pub fn step_once(&mut self) -> Vec<NodeId> {
        let enabled = self.enabled_nodes();
        if enabled.is_empty() {
            return Vec::new();
        }
        if self.round_pending.is_empty() {
            self.round_pending = enabled.clone();
        }
        let chosen = self.scheduler.select(&enabled);
        // All chosen nodes read the same pre-step configuration (their reads are
        // concurrent), then write.
        let transitions: Vec<(NodeId, A::State)> = chosen
            .iter()
            .filter_map(|&v| self.pending_transition(v).map(|s| (v, s)))
            .collect();
        for (v, next) in transitions {
            self.peak_bits[v.0] = self.peak_bits[v.0].max(next.bit_size());
            self.states[v.0] = next;
            self.moves += 1;
        }
        self.steps += 1;
        // Round accounting (paper §II-A): the round ends once every node that was
        // enabled at its start has been activated or has become disabled.
        let still_pending: Vec<NodeId> = self
            .round_pending
            .iter()
            .copied()
            .filter(|&v| !chosen.contains(&v) && self.is_enabled(v))
            .collect();
        self.round_pending = still_pending;
        if self.round_pending.is_empty() {
            self.rounds += 1;
            self.round_pending = self.enabled_nodes();
        }
        chosen
    }

    /// Runs until no node is enabled or the step budget runs out.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::StepBudgetExhausted`] if quiescence is not reached within
    /// `max_steps` daemon steps.
    pub fn run_to_quiescence(&mut self, max_steps: u64) -> Result<Quiescence, ExecError> {
        for _ in 0..max_steps {
            if self.is_quiescent() {
                return Ok(self.quiescence());
            }
            self.step_once();
        }
        if self.is_quiescent() {
            Ok(self.quiescence())
        } else {
            Err(ExecError::StepBudgetExhausted { steps: self.steps, rounds: self.rounds })
        }
    }

    fn quiescence(&self) -> Quiescence {
        Quiescence {
            silent: true,
            rounds: self.rounds,
            moves: self.moves,
            steps: self.steps,
            legal: self.algo.is_legal(self.graph, &self.states),
        }
    }

    /// Space usage of the *current* configuration.
    pub fn space_report(&self) -> SpaceReport {
        let sizes: Vec<usize> = self.states.iter().map(Register::bit_size).collect();
        let total: usize = sizes.iter().sum();
        SpaceReport {
            max_bits: sizes.iter().copied().max().unwrap_or(0),
            avg_bits: if sizes.is_empty() { 0.0 } else { total as f64 / sizes.len() as f64 },
            total_bits: total,
        }
    }

    /// Space usage accounting for the *peak* register size each node reached at any
    /// point of the execution (the honest measure of the algorithm's space complexity).
    pub fn peak_space_report(&self) -> SpaceReport {
        let total: usize = self.peak_bits.iter().sum();
        SpaceReport {
            max_bits: self.peak_bits.iter().copied().max().unwrap_or(0),
            avg_bits: if self.peak_bits.is_empty() {
                0.0
            } else {
                total as f64 / self.peak_bits.len() as f64
            },
            total_bits: total,
        }
    }

    /// Per-node activation counts (useful to visualize scheduler unfairness).
    pub fn activation_counts(&self) -> Vec<u64> {
        self.graph
            .nodes()
            .map(|v| self.scheduler.activation_count(v))
            .collect()
    }
}

impl<'g, A: Algorithm> Executor<'g, A>
where
    A::State: ParentPointer,
{
    /// Decodes the spanning tree encoded by the parent pointers of the current
    /// configuration (paper §II-B): `p(v)` is an identity, `⊥` marks the root.
    ///
    /// # Errors
    ///
    /// Returns a [`TreeError`] if the parent pointers do not encode a spanning tree of
    /// the graph (e.g. a parent identity that is not a neighbor, several roots, or a
    /// cycle).
    pub fn extract_tree(&self) -> Result<Tree, TreeError> {
        parent_pointer_tree(self.graph, &self.states)
    }
}

/// Decodes the spanning tree encoded by a configuration of parent-pointer registers.
///
/// # Errors
///
/// Returns a [`TreeError`] if the pointers do not encode a spanning tree of `graph`.
pub fn parent_pointer_tree<S: ParentPointer>(
    graph: &Graph,
    states: &[S],
) -> Result<Tree, TreeError> {
    let mut parents: Vec<Option<NodeId>> = Vec::with_capacity(graph.node_count());
    for v in graph.nodes() {
        match states[v.0].parent_ident() {
            None => parents.push(None),
            Some(id) => {
                // The parent must be a neighbor carrying that identity.
                let parent = graph
                    .neighbors(v)
                    .iter()
                    .map(|&(w, _)| w)
                    .find(|&w| graph.ident(w) == id);
                match parent {
                    Some(p) => parents.push(Some(p)),
                    None => return Err(TreeError::ParentOutOfRange { node: v }),
                }
            }
        }
    }
    Tree::from_parents_in(graph, parents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use stst_graph::generators;
    use stst_graph::Ident;

    /// Toy algorithm: propagate the maximum identity seen so far ("flooding max").
    /// Silent, converges in at most `diameter` rounds, legal when all agree on the
    /// global maximum identity.
    struct FloodMax;

    impl Algorithm for FloodMax {
        type State = u64;

        fn name(&self) -> &str {
            "flood-max"
        }

        fn arbitrary_state(&self, graph: &Graph, _node: NodeId, rng: &mut StdRng) -> u64 {
            // Arbitrary garbage, possibly larger than any real identity — the algorithm
            // below is *not* resilient to that (flood-max famously is not
            // self-stabilizing), which the tests exploit.
            rng.gen_range(0..2 * graph.node_count() as u64)
        }

        fn step(&self, view: &View<'_, u64>) -> Option<u64> {
            let best = view
                .neighbors
                .iter()
                .map(|nb| *nb.state)
                .chain(std::iter::once(view.ident))
                .max()
                .expect("closed neighborhood is non-empty");
            (best > *view.state).then_some(best)
        }

        fn is_legal(&self, graph: &Graph, states: &[u64]) -> bool {
            let max_id = graph.nodes().map(|v| graph.ident(v)).max().unwrap_or(0);
            states.iter().all(|&s| s == max_id)
        }
    }

    /// Parent-pointer register for tree-extraction tests.
    #[derive(Clone, Debug, PartialEq, Eq)]
    struct Ptr(Option<Ident>);

    impl Register for Ptr {
        fn bit_size(&self) -> usize {
            crate::register::option_ident_bits(&self.0)
        }
    }

    impl ParentPointer for Ptr {
        fn parent_ident(&self) -> Option<Ident> {
            self.0
        }
    }

    #[test]
    fn flood_max_converges_and_counts_rounds() {
        let g = generators::path(8);
        // Start from the all-zero configuration (not arbitrary — flood-max is only a
        // plumbing test, not a self-stabilizing algorithm).
        let exec_config = ExecutorConfig::with_scheduler(3, SchedulerKind::Synchronous);
        let mut exec = Executor::with_states(&g, FloodMax, vec![0u64; 8], exec_config);
        let q = exec.run_to_quiescence(10_000).unwrap();
        assert!(q.silent);
        assert!(q.legal);
        // Under the synchronous daemon every node first adopts its own identity
        // (round 1), then the maximum identity (node 7, ident 8) travels one hop per
        // round: 7 more rounds to reach node 0.
        assert_eq!(q.rounds, 8);
        assert!(q.moves >= 7);
        assert!(exec.is_quiescent());
    }

    #[test]
    fn all_daemons_reach_the_same_fixed_point() {
        let g = generators::random_connected(20, 0.15, 4);
        for kind in SchedulerKind::all() {
            let mut exec = Executor::with_states(
                &g,
                FloodMax,
                vec![0u64; 20],
                ExecutorConfig::with_scheduler(11, kind),
            );
            let q = exec.run_to_quiescence(200_000).unwrap();
            assert!(q.legal, "daemon {kind} must still converge to the max");
        }
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let g = generators::path(6);
        let mut exec = Executor::with_states(
            &g,
            FloodMax,
            vec![0u64; 6],
            ExecutorConfig::with_scheduler(0, SchedulerKind::Central),
        );
        let err = exec.run_to_quiescence(1).unwrap_err();
        assert!(matches!(err, ExecError::StepBudgetExhausted { steps: 1, .. }));
    }

    #[test]
    fn corruption_reactivates_the_system() {
        let g = generators::path(5);
        let mut exec = Executor::with_states(
            &g,
            FloodMax,
            vec![0u64; 5],
            ExecutorConfig::seeded(1),
        );
        exec.run_to_quiescence(10_000).unwrap();
        assert!(exec.is_quiescent());
        // Corrupt one register downwards: its neighbors are unaffected but the node
        // itself becomes enabled again.
        exec.corrupt_node(NodeId(2), 0);
        assert!(!exec.is_quiescent());
        let q = exec.run_to_quiescence(10_000).unwrap();
        assert!(q.legal);
    }

    #[test]
    fn random_corruption_hits_the_requested_number_of_nodes() {
        let g = generators::ring(10);
        let mut exec = Executor::from_arbitrary(&g, FloodMax, ExecutorConfig::seeded(5));
        let hit = exec.corrupt_random_nodes(4);
        assert_eq!(hit.len(), 4);
        let hit_all = exec.corrupt_random_nodes(100);
        assert_eq!(hit_all.len(), 10);
    }

    #[test]
    fn space_reports_track_current_and_peak_sizes() {
        let g = generators::path(3);
        let mut exec = Executor::with_states(
            &g,
            FloodMax,
            vec![0u64, 1023, 0],
            ExecutorConfig::seeded(2),
        );
        let now = exec.space_report();
        assert_eq!(now.max_bits, 10);
        assert_eq!(now.total_bits, 12);
        exec.run_to_quiescence(1_000).unwrap();
        // After convergence every register holds 1023 (the corrupted maximum), so the
        // peak equals the current size.
        let peak = exec.peak_space_report();
        assert_eq!(peak.max_bits, 10);
        assert!(peak.avg_bits >= exec.space_report().avg_bits - f64::EPSILON);
    }

    #[test]
    fn tree_extraction_decodes_parent_identities() {
        let g = generators::path(4); // identities 1,2,3,4
        let states = vec![
            Ptr(None),
            Ptr(Some(1)),
            Ptr(Some(2)),
            Ptr(Some(3)),
        ];
        let tree = parent_pointer_tree(&g, &states).unwrap();
        assert_eq!(tree.root(), NodeId(0));
        assert_eq!(tree.parent(NodeId(3)), Some(NodeId(2)));
        // A parent identity that is not a neighbor is rejected.
        let bad = vec![Ptr(None), Ptr(Some(4)), Ptr(Some(2)), Ptr(Some(3))];
        assert!(parent_pointer_tree(&g, &bad).is_err());
        // Two roots are rejected.
        let two_roots = vec![Ptr(None), Ptr(None), Ptr(Some(2)), Ptr(Some(3))];
        assert!(parent_pointer_tree(&g, &two_roots).is_err());
    }

    #[test]
    fn activation_counts_reflect_daemon_choices() {
        let g = generators::path(4);
        let mut exec = Executor::with_states(
            &g,
            FloodMax,
            vec![0u64; 4],
            ExecutorConfig::with_scheduler(7, SchedulerKind::Central),
        );
        exec.run_to_quiescence(10_000).unwrap();
        let counts = exec.activation_counts();
        assert_eq!(counts.iter().sum::<u64>(), exec.moves());
    }
}
