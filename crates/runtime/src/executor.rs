//! The executor: runs a guarded-rule algorithm under a daemon, counting moves and rounds
//! exactly as defined in the paper, detecting silence, and injecting transient faults.
//!
//! # Incremental enabled-set maintenance
//!
//! A naive executor re-evaluates every guard in the network at every daemon step —
//! `O(n·Δ)` work per step just to decide who is enabled. This executor instead
//! maintains the enabled set *incrementally*: a node's guard reads only its closed
//! 1-hop neighborhood, so after a step in which the set `M` of nodes moved, only nodes
//! in `⋃_{v∈M} N[v]` can change enabledness. Each step therefore re-evaluates
//! `O(Σ_{v∈M} deg(v))` guards, each exactly once, and caches the resulting *pending
//! transition* so the write applied when the daemon picks the node needs no second
//! evaluation. The invariants (verified by the differential oracle tests against a
//! brute-force rescan) are spelled out in DESIGN.md:
//!
//! 1. `pending[v]` is `Some(s)` iff `v` is enabled in the current configuration, and
//!    `s` is exactly what [`Algorithm::step`] returns on `v`'s current view;
//! 2. `enabled_list`/`enabled_pos`/`in_enabled` form an indexed set equal to
//!    `{v : pending[v].is_some()}`;
//! 3. `round_pending` (a dense bitset) is the subset of nodes enabled at the start of
//!    the current round that have neither been activated nor been observed disabled
//!    since — when it empties, a round is complete (paper §II-A).
//!
//! This requires [`Algorithm::step`] to be a *pure function of the view* (the trait
//! offers no randomness, so this is enforced by construction). A full-rescan reference
//! mode ([`ExecMode::FullRescan`]) is retained for differential testing and for
//! benchmarking the speedup.
//!
//! # Deterministic parallel wave execution
//!
//! The same purity makes large steps embarrassingly parallel: every guard reads only
//! the immutable pre-step configuration, so with [`ExecutorConfig::with_threads`] the
//! executor evaluates the guards of the refresh frontier (the closed neighborhoods of
//! the movers — under the synchronous daemon, potentially the whole network) on a
//! scoped worker pool ([`crate::par::ThreadPool`]) over stable node-range shards.
//! Everything order-sensitive — the write-back of pending transitions, the enabled-set
//! bookkeeping, round accounting, RNG draws — stays on the calling thread, applied in
//! the *same deterministic frontier order* the sequential path uses, so executions are
//! **bit-identical at any thread count** (asserted by `tests/parallel_determinism.rs`
//! across daemons, seeds and fault injection). Small frontiers (under
//! [`PAR_MIN_ITEMS`] guards) skip the pool entirely, so `threads > 1` never slows the
//! central-daemon steady state and `threads = 1` is the sequential executor verbatim.
//!
//! # Packed configuration storage
//!
//! The pre-round configuration and the pending-transition cache are double-buffered in
//! a [`ConfigStore`]: under the default [`StoreMode::Packed`] every register occupies a
//! fixed-width bit slot sized by its codec ([`crate::codec::Codec`]), so the bits the
//! space reports account are the bits actually allocated (see `crates/runtime/src/store.rs`
//! and DESIGN.md §2.9). Guard evaluations decode the closed neighborhood into a reused
//! scratch buffer and run over a locally indexed [`View`] — algorithms observe the
//! identical API, and because `decode(encode(x)) == x` exactly (the codec contract),
//! packed executions are **bit-identical** to the retained [`StoreMode::Struct`]
//! reference (asserted by `tests/packed_store_oracle.rs` across daemons, seeds,
//! thread counts, fault injection and topology churn).
//!
//! # Two-tier guard evaluation (decode-free screening)
//!
//! On the packed store, guard evaluation is two-tiered. The cheap first tier is the
//! algorithm's [`Algorithm::guard_screen`]: it mirrors [`Algorithm::step`] on fields
//! extracted from the heap by shift/mask ([`crate::view::RawView`]) — no
//! `decode_from`, no scratch fill — and resolves the guard outright
//! ([`crate::algorithm::Screen::Disabled`] / [`crate::algorithm::Screen::Enabled`])
//! whenever every field of the closed neighborhood is in its fault-free shape. Only
//! when some escape bit fires (fault garbage) or the algorithm offers no screen does
//! the executor fall back to the full-decode second tier, so after the initial
//! garbage is burned off a stabilizing run pays almost no decoding at all. The
//! [`Executor::guard_screen_hits`] / [`Executor::guard_full_decodes`] counters split
//! [`Executor::guard_evaluations`] between the tiers (struct-backed runs leave both
//! at zero — that path is zero-copy and has nothing to screen), and the differential
//! oracles pin that screening never changes a single bit of the execution.
//!
//! Writes are symmetric: [`ConfigStore::set`] short-circuits on bit-identical
//! re-encodes via a per-slot xor-fold fingerprint, and the fault-injection paths use
//! its changed/unchanged verdict to skip re-evaluating closed neighborhoods whose
//! registers did not actually change bits.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use stst_graph::tree::TreeError;
use stst_graph::{Graph, MutationOutcome, NodeId, Tree};
use stst_obs::{Layer, Obs, TraceEvent};

use crate::algorithm::{Algorithm, ParentPointer, Screen};
use crate::bits::{BitReader, BitWriter};
use crate::codec::{Codec, CodecCtx};
use crate::par::ThreadPool;
use crate::persist::{self, RestoreError, Snapshot, SnapshotReader};
use crate::scheduler::{Scheduler, SchedulerKind, SchedulerState};
use crate::store::{ConfigStore, StoreMode};
use crate::view::{NeighborInfo, RawView, View};

/// Minimum number of guard evaluations in one wave before the executor hands the work
/// to the pool: below this, thread spawn overhead beats the parallelism. Purity makes
/// the threshold invisible in the results (both paths compute the same values in the
/// same order) — it only affects wall clock.
pub const PAR_MIN_ITEMS: usize = 128;

/// Which tier resolved one guard evaluation (see the module docs on two-tier guard
/// evaluation). Returned alongside the result by `Executor::eval_guard` so the
/// order-sensitive caller can count tier usage deterministically — the evaluation
/// itself is a pure `&self` read and must not touch counters (worker threads run it
/// concurrently).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum GuardPath {
    /// Struct-backed evaluation: zero-copy over decoded structs, nothing to screen.
    Struct,
    /// The decode-free screen resolved the guard (packed store, fault-free shape).
    Screened,
    /// Full decode of the closed neighborhood (screen returned `Unknown`, the
    /// algorithm has no screen, or the store has no extractable heap).
    Decoded,
}

/// How the executor maintains its enabled set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Incremental maintenance: `O(Σ_{v moved} deg(v))` guard evaluations per step.
    #[default]
    Incremental,
    /// Reference mode: re-evaluate every guard after every step (`O(n·Δ)` per step).
    /// Retained for differential tests and as the baseline of the speedup benches.
    FullRescan,
}

/// Executor configuration: a seed (for the arbitrary initial configuration, the daemon's
/// random choices, and fault injection), the daemon kind, the enabled-set mode and the
/// register-store representation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecutorConfig {
    /// Seed for every random choice made by the executor.
    pub seed: u64,
    /// The daemon under which the algorithm runs.
    pub scheduler: SchedulerKind,
    /// Enabled-set maintenance strategy (incremental unless benchmarking the rescan).
    pub mode: ExecMode,
    /// Worker threads for parallel wave evaluation (1 = fully sequential). Results are
    /// bit-identical at any value; only wall clock changes.
    pub threads: usize,
    /// Register-store representation (bit-packed unless benchmarking the struct-backed
    /// reference). Results are bit-identical in either mode; only memory changes.
    pub store: StoreMode,
}

impl ExecutorConfig {
    /// Central daemon with the given seed.
    pub fn seeded(seed: u64) -> Self {
        ExecutorConfig {
            seed,
            scheduler: SchedulerKind::Central,
            mode: ExecMode::Incremental,
            threads: 1,
            store: StoreMode::Packed,
        }
    }

    /// The given daemon with the given seed.
    pub fn with_scheduler(seed: u64, scheduler: SchedulerKind) -> Self {
        ExecutorConfig {
            scheduler,
            ..ExecutorConfig::seeded(seed)
        }
    }

    /// The same configuration with the given enabled-set mode.
    pub fn with_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// The same configuration with the given worker-thread count (clamped to ≥ 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The same configuration with the given register-store representation.
    pub fn with_store(mut self, store: StoreMode) -> Self {
        self.store = store;
        self
    }
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig::seeded(0)
    }
}

/// Why an execution stopped before reaching quiescence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// The step budget was exhausted while some node was still enabled.
    StepBudgetExhausted {
        /// Steps taken before giving up.
        steps: u64,
        /// Rounds completed before giving up.
        rounds: u64,
    },
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::StepBudgetExhausted { steps, rounds } => write!(
                f,
                "step budget exhausted after {steps} steps ({rounds} rounds) without quiescence"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// Measurements of a run that reached quiescence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Quiescence {
    /// `true` — quiescence means no node is enabled, i.e. the algorithm is silent.
    pub silent: bool,
    /// Number of rounds until quiescence (paper §II-A definition).
    pub rounds: u64,
    /// Number of individual node activations (moves).
    pub moves: u64,
    /// Number of daemon steps (a synchronous step may contain many moves).
    pub steps: u64,
    /// Whether the final configuration satisfies the algorithm's legality predicate.
    pub legal: bool,
}

/// Space usage of a configuration, in bits per node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SpaceReport {
    /// Maximum register size over all nodes, in bits.
    pub max_bits: usize,
    /// Average register size, in bits.
    pub avg_bits: f64,
    /// Sum of register sizes, in bits.
    pub total_bits: usize,
}

/// Measured memory of the executor's configuration storage (snapshot **and** pending
/// buffers — the double-buffered state both store modes keep), set against the
/// codec-accounted register bits. This is the allocated-vs-accounted comparison the
/// E5/E7/E11 space tables record: for the packed store the ratio is a small constant
/// (slot stride + presence bit over the accounted bits); for the struct-backed
/// reference it is the 10–50× a `Vec` of decoded structs pays.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StoreReport {
    /// The store representation measured.
    pub mode: StoreMode,
    /// Bytes allocated for the snapshot + pending configuration buffers.
    pub measured_bytes: usize,
    /// Codec-accounted bits of the current configuration (sum over nodes).
    pub accounted_bits: u64,
    /// `measured_bytes / n`.
    pub bytes_per_node: f64,
    /// `accounted_bits / n`.
    pub accounted_bits_per_node: f64,
}

/// The executor's double-buffered register storage: the pre-round snapshot plus the
/// pending-transition cache, in matching representations. The struct variant is kept
/// verbatim from the seed (dense `Vec`s, zero-copy global-indexed views) as the
/// reference mode; the packed variant holds both buffers bit-packed.
#[derive(Clone, Debug)]
enum StateBackend<S: Codec + Clone> {
    Struct {
        states: Vec<S>,
        pending: Vec<Option<S>>,
    },
    Packed {
        states: ConfigStore<S>,
        pending: ConfigStore<S>,
    },
}

/// Runs an [`Algorithm`] on a [`Graph`] under a [`Scheduler`].
#[derive(Clone, Debug)]
pub struct Executor<'g, A: Algorithm> {
    graph: &'g Graph,
    algo: A,
    /// Snapshot + pending configuration buffers (packed or struct-backed).
    backend: StateBackend<A::State>,
    /// Fixed codec field widths of the current instance (re-derived on topology
    /// mutations, which can grow the identity/weight ranges).
    ctx: CodecCtx,
    scheduler: Scheduler,
    rng: StdRng,
    mode: ExecMode,
    moves: u64,
    steps: u64,
    rounds: u64,
    /// Total guard evaluations performed (the cost metric the incremental design
    /// optimizes; exposed so tests and benches can assert the asymptotics).
    guard_evals: u64,
    /// Guard evaluations resolved by the decode-free screen (packed store only).
    screen_hits: u64,
    /// Guard evaluations that fell through to a full decode of the closed
    /// neighborhood (packed store only; the struct path decodes nothing).
    full_decodes: u64,
    /// CSR of per-neighbor incorruptible constants: node `v`'s entries live at
    /// `nbr_info[nbr_offsets[v] .. nbr_offsets[v + 1]]`. Built once — identities and
    /// weights never change, so views borrow these slices allocation-free.
    nbr_offsets: Vec<u32>,
    nbr_info: Vec<NeighborInfo>,
    /// Indexed enabled set: membership flags, dense list, and list positions.
    in_enabled: Vec<bool>,
    enabled_list: Vec<NodeId>,
    enabled_pos: Vec<usize>,
    /// Bitset of nodes enabled at the start of the current round that have neither been
    /// activated nor become disabled since, plus its population count.
    round_words: Vec<u64>,
    round_count: usize,
    /// Epoch stamps deduplicating guard re-evaluations within one step.
    touched: Vec<u32>,
    stamp: u32,
    /// Peak register size observed at any point of the execution, per node.
    peak_bits: Vec<usize>,
    /// Scoped worker pool for parallel wave evaluation (width 1 = sequential).
    pool: ThreadPool,
    /// Scratch buffer the daemon's per-step selection is written into (reused across
    /// steps — no per-step allocation, [`Scheduler::select_into`]).
    chosen_buf: Vec<NodeId>,
    /// Scratch buffer holding the refresh frontier of the current step, in the
    /// deterministic order bookkeeping is applied in.
    refresh_buf: Vec<NodeId>,
    /// Scratch buffer for the parallel wave's guard results (and the tier that
    /// produced each), index-aligned with `refresh_buf`.
    eval_buf: Vec<(Option<A::State>, GuardPath)>,
    /// Scratch buffer the packed store decodes closed neighborhoods into (sequential
    /// path; parallel waves hold one such buffer per worker).
    decode_buf: Vec<A::State>,
    /// Observability handle ([`Executor::attach_obs`]); disabled by default, in which
    /// case every instrumentation site reduces to one branch. All trace emission and
    /// metric publication happens at wave boundaries on the calling thread — never
    /// from guard evaluation — so enabling it cannot perturb the execution.
    obs: Obs,
    /// Wave index of the trace wave currently open (None between waves; always None
    /// while `obs` is disabled).
    obs_wave: Option<u64>,
    /// Guard-counter readings (`guard_evals`, `screen_hits`, `full_decodes`) at the
    /// last trace publish, so each `GuardBatch` event carries per-wave deltas.
    obs_guard_mark: (u64, u64, u64),
}

impl<'g, A: Algorithm> Executor<'g, A> {
    /// Creates an executor with an explicit initial configuration.
    ///
    /// # Panics
    ///
    /// Panics if `states.len()` differs from the number of nodes.
    pub fn with_states(
        graph: &'g Graph,
        algo: A,
        states: Vec<A::State>,
        config: ExecutorConfig,
    ) -> Self {
        let n = graph.node_count();
        assert_eq!(states.len(), n, "one register per node");
        let ctx = CodecCtx::for_graph(graph);
        let peak_bits = states.iter().map(|s| s.encoded_bits(&ctx)).collect();
        let backend = match config.store {
            StoreMode::Struct => StateBackend::Struct {
                states,
                pending: vec![None; n],
            },
            StoreMode::Packed => StateBackend::Packed {
                states: ConfigStore::from_states(StoreMode::Packed, states, &ctx),
                pending: ConfigStore::empty(StoreMode::Packed, n),
            },
        };
        let mut nbr_offsets = Vec::with_capacity(n + 1);
        nbr_offsets.push(0u32);
        let mut nbr_info = Vec::with_capacity(2 * graph.edge_count());
        for v in graph.nodes() {
            for &(w, e) in graph.neighbors(v) {
                nbr_info.push(NeighborInfo {
                    node: w,
                    ident: graph.ident(w),
                    weight: graph.weight(e),
                });
            }
            nbr_offsets.push(nbr_info.len() as u32);
        }
        let mut exec = Executor {
            graph,
            algo,
            backend,
            ctx,
            scheduler: Scheduler::new(config.scheduler, n, config.seed),
            rng: StdRng::seed_from_u64(config.seed ^ 0xfa_0717),
            mode: config.mode,
            moves: 0,
            steps: 0,
            rounds: 0,
            guard_evals: 0,
            screen_hits: 0,
            full_decodes: 0,
            nbr_offsets,
            nbr_info,
            in_enabled: vec![false; n],
            enabled_list: Vec::new(),
            enabled_pos: vec![usize::MAX; n],
            round_words: vec![0; n.div_ceil(64)],
            round_count: 0,
            touched: vec![0; n],
            stamp: 0,
            peak_bits,
            pool: ThreadPool::new(config.threads),
            chosen_buf: Vec::new(),
            refresh_buf: Vec::new(),
            eval_buf: Vec::new(),
            decode_buf: Vec::new(),
            obs: Obs::disabled(),
            obs_wave: None,
            obs_guard_mark: (0, 0, 0),
        };
        exec.initial_scan();
        exec.refill_round_pending();
        exec
    }

    /// Creates an executor whose initial configuration is *arbitrary*: every register is
    /// set to a state drawn by [`Algorithm::arbitrary_state`]. This is the standard
    /// starting point for self-stabilization experiments.
    pub fn from_arbitrary(graph: &'g Graph, algo: A, config: ExecutorConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x0171_a100);
        let states = graph
            .nodes()
            .map(|v| algo.arbitrary_state(graph, v, &mut rng))
            .collect();
        Executor::with_states(graph, algo, states, config)
    }

    /// The network the algorithm runs on.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The algorithm being executed.
    pub fn algorithm(&self) -> &A {
        &self.algo
    }

    /// The enabled-set maintenance mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The register-store representation.
    pub fn store_mode(&self) -> StoreMode {
        match &self.backend {
            StateBackend::Struct { .. } => StoreMode::Struct,
            StateBackend::Packed { .. } => StoreMode::Packed,
        }
    }

    /// The codec field widths of the current instance (what the packed store encodes
    /// with and the space reports account in).
    pub fn codec_ctx(&self) -> &CodecCtx {
        &self.ctx
    }

    /// The current configuration, decoded (one register per node, indexed densely).
    pub fn states(&self) -> Vec<A::State> {
        match &self.backend {
            StateBackend::Struct { states, .. } => states.clone(),
            StateBackend::Packed { states, .. } => states.decode_all(&self.ctx),
        }
    }

    /// The register of node `v`, decoded.
    pub fn state(&self, v: NodeId) -> A::State {
        match &self.backend {
            StateBackend::Struct { states, .. } => states[v.0].clone(),
            StateBackend::Packed { states, .. } => states.get(v, &self.ctx),
        }
    }

    /// Writes `state` into the snapshot buffer of `v`. Returns whether the stored
    /// register actually changed: the packed store compares bits (fingerprint first,
    /// exact on a match — [`ConfigStore::set`]), the struct store compares values,
    /// and by codec exactness the two verdicts are always identical.
    fn write_snapshot(&mut self, v: NodeId, state: A::State) -> bool {
        match &mut self.backend {
            StateBackend::Struct { states, .. } => {
                if states[v.0] == state {
                    false
                } else {
                    states[v.0] = state;
                    true
                }
            }
            StateBackend::Packed { states, .. } => states.set(v, &state, &self.ctx),
        }
    }

    /// Overwrites the register of `v` (models a transient fault targeting `v`).
    /// Re-evaluates the guards of `v`'s closed neighborhood and restarts the round
    /// accounting from the now-enabled set. A fault that leaves the register
    /// bit-identical is skipped outright (no guard in the network can observe it), so
    /// the re-evaluation cost is paid only for faults that actually flipped bits.
    pub fn corrupt_node(&mut self, v: NodeId, state: A::State) {
        self.peak_bits[v.0] = self.peak_bits[v.0].max(state.encoded_bits(&self.ctx));
        if !self.write_snapshot(v, state) {
            return;
        }
        self.bump_stamp();
        self.refresh_closed_neighborhood(v);
        self.refill_round_pending();
        self.obs_note_corruption(1);
    }

    /// Corrupts `k` distinct registers chosen uniformly at random, replacing each with an
    /// arbitrary state. Returns the nodes hit. Closed neighborhoods are re-evaluated
    /// only around the nodes whose registers actually changed bits (an "overwrite"
    /// with the very state already stored is invisible to every guard).
    pub fn corrupt_random_nodes(&mut self, k: usize) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.graph.nodes().collect();
        nodes.shuffle(&mut self.rng);
        nodes.truncate(k.min(self.graph.node_count()));
        let mut changed = Vec::with_capacity(nodes.len());
        for &v in &nodes {
            let state = self.algo.arbitrary_state(self.graph, v, &mut self.rng);
            self.peak_bits[v.0] = self.peak_bits[v.0].max(state.encoded_bits(&self.ctx));
            changed.push(self.write_snapshot(v, state));
        }
        if changed.iter().any(|&c| c) {
            self.bump_stamp();
            for i in 0..nodes.len() {
                if changed[i] {
                    self.refresh_closed_neighborhood(nodes[i]);
                }
            }
            self.refill_round_pending();
            self.obs_note_corruption(changed.iter().filter(|&&c| c).count() as u64);
        }
        nodes
    }

    /// Re-binds the executor to a **mutated** graph mid-run: the caller applied a
    /// batch of [`stst_graph::Mutation`]s to a copy of the network and passes the
    /// mutated graph together with the resulting [`MutationOutcome`]. This is the
    /// guarded-rule layer's topology-churn hook — a link failing or a node leaving is
    /// just another transient change for a self-stabilizing algorithm, so the
    /// executor treats it exactly like the fault hooks:
    ///
    /// * registers survive (remapped through [`MutationOutcome::old_index`] under
    ///   node churn; joining nodes start from an arbitrary state, like the initial
    ///   configuration);
    /// * the per-neighbor constant caches (identities, weights) are rebuilt against
    ///   the new CSR;
    /// * the enabled set is **re-seeded from exactly the dirty nodes**: a guard
    ///   reads only its closed 1-hop neighborhood and every changed edge has both
    ///   endpoints in [`MutationOutcome::dirty`], so no other cached pending
    ///   transition can be stale (`O(Σ_{v dirty} deg(v))` guard evaluations, not
    ///   `O(n·Δ)`; node churn remaps the whole index space and is the one inherently
    ///   `O(n·Δ)` case);
    /// * round accounting restarts at the now-enabled set (paper §II-A — a fresh
    ///   round begins at the post-fault configuration).
    ///
    /// Both graphs must outlive the executor; keep the mutated graph alongside the
    /// original (e.g. `let g1 = { let mut g = g0.clone(); g.apply_mutations(..); g };`).
    ///
    /// # Panics
    ///
    /// Panics if `outcome.old_index` disagrees with the node count of `graph`.
    pub fn apply_topology(&mut self, graph: &'g Graph, outcome: &MutationOutcome) {
        let n = graph.node_count();
        let old_ctx = self.ctx;
        let new_ctx = CodecCtx::for_graph(graph);
        // Decode both configuration buffers out of the store before touching anything:
        // the codec field widths follow the instance (weight drift and joining
        // identities can grow them), so every surviving register — snapshot and cached
        // pending transition alike — is re-encoded under the new context.
        let mut states: Vec<A::State> = match &self.backend {
            StateBackend::Struct { states, .. } => states.clone(),
            StateBackend::Packed { states, .. } => states.decode_all(&old_ctx),
        };
        let mut pending: Vec<Option<A::State>> = vec![None; states.len()];
        match &self.backend {
            StateBackend::Struct { pending: p, .. } => pending.clone_from_slice(p),
            StateBackend::Packed { pending: p, .. } => {
                p.decode_present_into(&old_ctx, &mut pending)
            }
        }
        if outcome.node_set_changed {
            assert_eq!(
                outcome.old_index.len(),
                n,
                "outcome does not match the graph"
            );
            let old_states = states;
            let old_peaks = std::mem::take(&mut self.peak_bits);
            states = outcome
                .old_index
                .iter()
                .enumerate()
                .map(|(i, o)| match o {
                    Some(o) => old_states[o.0].clone(),
                    None => self.algo.arbitrary_state(graph, NodeId(i), &mut self.rng),
                })
                .collect();
            self.peak_bits = outcome
                .old_index
                .iter()
                .enumerate()
                .map(|(i, o)| {
                    let now = states[i].encoded_bits(&new_ctx);
                    match o {
                        Some(o) => old_peaks[o.0].max(now),
                        None => now,
                    }
                })
                .collect();
            pending = vec![None; n];
        }
        self.ctx = new_ctx;
        let mode = self.store_mode();
        self.backend = match mode {
            StoreMode::Struct => StateBackend::Struct { states, pending },
            StoreMode::Packed => StateBackend::Packed {
                states: ConfigStore::from_states(StoreMode::Packed, states, &new_ctx),
                pending: ConfigStore::packed_from_slots(&pending, &new_ctx),
            },
        };
        self.graph = graph;
        self.nbr_offsets.clear();
        self.nbr_offsets.push(0);
        self.nbr_info.clear();
        for v in graph.nodes() {
            for &(w, e) in graph.neighbors(v) {
                self.nbr_info.push(NeighborInfo {
                    node: w,
                    ident: graph.ident(w),
                    weight: graph.weight(e),
                });
            }
            self.nbr_offsets.push(self.nbr_info.len() as u32);
        }
        if outcome.node_set_changed {
            // The dense index space was remapped: rebuild the enabled bookkeeping
            // wholesale.
            self.scheduler.remap_nodes(&outcome.old_index);
            self.in_enabled.clear();
            self.in_enabled.resize(n, false);
            self.enabled_list.clear();
            self.enabled_pos.clear();
            self.enabled_pos.resize(n, usize::MAX);
            self.round_words.clear();
            self.round_words.resize(n.div_ceil(64), 0);
            self.round_count = 0;
            self.touched.clear();
            self.touched.resize(n, 0);
            self.stamp = 0;
            self.bump_stamp();
            self.rescan_all();
        } else {
            self.bump_stamp();
            for &v in &outcome.dirty {
                self.refresh_if_untouched(v);
            }
        }
        self.refill_round_pending();
        if self.obs.is_enabled() {
            let wave = self.obs_current_wave();
            let dirty_nodes = if outcome.node_set_changed {
                n as u64
            } else {
                outcome.dirty.len() as u64
            };
            self.obs.counter("executor_topology_deltas").inc();
            self.obs.emit(TraceEvent::TopologyDelta {
                layer: Layer::Executor,
                wave,
                dirty_nodes,
                reanchored: 0,
            });
        }
    }

    /// Evaluates `v`'s guard on the current configuration: the next state if `v` is
    /// enabled, `None` otherwise, plus the tier that resolved it. Pure read — does not
    /// touch the executor's caches or counters, which is what lets the parallel wave
    /// run it from worker threads (each worker brings its own decode scratch; the
    /// caller applies the returned [`GuardPath`]s in frontier order). The
    /// struct-backed store evaluates over the dense slice zero-copy; the packed store
    /// first tries the algorithm's decode-free screen over the raw heap and only on
    /// [`Screen::Unknown`] decodes the closed neighborhood into `scratch` — identical
    /// guard semantics either way (the screen is required to mirror `step` exactly on
    /// fault-free shapes).
    fn eval_guard(&self, v: NodeId, scratch: &mut Vec<A::State>) -> (Option<A::State>, GuardPath) {
        let range = self.nbr_offsets[v.0] as usize..self.nbr_offsets[v.0 + 1] as usize;
        let infos = &self.nbr_info[range];
        match &self.backend {
            StateBackend::Struct { states, .. } => {
                let view = View::with_weight_order(
                    v,
                    self.graph.ident(v),
                    self.graph.node_count(),
                    infos,
                    self.graph.neighbor_order_by_weight(v),
                    states,
                );
                let next = match self.algo.step(&view) {
                    Some(next) if next != states[v.0] => Some(next),
                    _ => None,
                };
                (next, GuardPath::Struct)
            }
            StateBackend::Packed { states, .. } => {
                if let Some((heap, stride)) = states.raw_parts() {
                    let raw = RawView::new(
                        v,
                        self.graph.ident(v),
                        self.graph.node_count(),
                        infos,
                        heap,
                        stride,
                        &self.ctx,
                    );
                    match self.algo.guard_screen(&raw) {
                        Screen::Disabled => return (None, GuardPath::Screened),
                        Screen::Enabled(next) => return (Some(next), GuardPath::Screened),
                        Screen::Unknown => {}
                    }
                }
                scratch.clear();
                for info in infos {
                    scratch.push(states.get(info.node, &self.ctx));
                }
                scratch.push(states.get(v, &self.ctx));
                let view = View::over_decoded(
                    v,
                    self.graph.ident(v),
                    self.graph.node_count(),
                    infos,
                    Some(self.graph.neighbor_order_by_weight(v)),
                    scratch,
                );
                let next = match self.algo.step(&view) {
                    Some(next) if next != scratch[infos.len()] => Some(next),
                    _ => None,
                };
                (next, GuardPath::Decoded)
            }
        }
    }

    /// Counts which tier resolved one guard evaluation. Applied on the calling thread
    /// in frontier order (never from workers), so the counters are as deterministic —
    /// and as thread-count-invariant — as the execution itself.
    #[inline]
    fn note_path(&mut self, path: GuardPath) {
        match path {
            GuardPath::Struct => {}
            GuardPath::Screened => self.screen_hits += 1,
            GuardPath::Decoded => self.full_decodes += 1,
        }
    }

    /// Re-evaluates `v`'s guard and updates the pending cache, the indexed enabled set
    /// and (on an enabled → disabled transition) the round bitset.
    fn refresh(&mut self, v: NodeId) {
        self.guard_evals += 1;
        let mut scratch = std::mem::take(&mut self.decode_buf);
        let (next, path) = self.eval_guard(v, &mut scratch);
        self.decode_buf = scratch;
        self.note_path(path);
        self.apply_refresh(v, next);
    }

    /// Applies an already-evaluated guard result to the caches: the pending slot, the
    /// indexed enabled set and (on an enabled → disabled transition) the round bitset.
    /// This is the order-sensitive half of a refresh — the parallel wave evaluates
    /// guards on the pool but always applies them here, on the calling thread, in
    /// frontier order, so the enabled-list layout matches the sequential path exactly.
    fn apply_refresh(&mut self, v: NodeId, next: Option<A::State>) {
        let now = next.is_some();
        let was = self.in_enabled[v.0];
        match &mut self.backend {
            StateBackend::Struct { pending, .. } => pending[v.0] = next,
            StateBackend::Packed { pending, .. } => match &next {
                Some(s) => {
                    pending.set(v, s, &self.ctx);
                }
                None => pending.clear(v),
            },
        }
        if now && !was {
            self.enabled_pos[v.0] = self.enabled_list.len();
            self.enabled_list.push(v);
            self.in_enabled[v.0] = true;
        } else if !now && was {
            let pos = self.enabled_pos[v.0];
            self.enabled_list.swap_remove(pos);
            if pos < self.enabled_list.len() {
                self.enabled_pos[self.enabled_list[pos].0] = pos;
            }
            self.enabled_pos[v.0] = usize::MAX;
            self.in_enabled[v.0] = false;
            self.clear_round_bit(v);
        }
    }

    /// Re-evaluates every guard (initialization and the full-rescan reference mode).
    fn rescan_all(&mut self) {
        for v in self.graph.nodes() {
            self.refresh(v);
        }
    }

    /// The construction-time scan over every guard: parallel when the pool and the
    /// network are big enough (an arbitrary initial configuration enables most of the
    /// network, so this is a full wave), bookkeeping applied in node order either way.
    fn initial_scan(&mut self) {
        let n = self.graph.node_count();
        if !self.pool.is_parallel() || n < PAR_MIN_ITEMS {
            self.rescan_all();
            return;
        }
        let mut results = std::mem::take(&mut self.eval_buf);
        results.clear();
        results.resize(n, (None, GuardPath::Struct));
        self.pool
            .fill_with_init(&mut results, Vec::new, |scratch, i| {
                self.eval_guard(NodeId(i), scratch)
            });
        self.guard_evals += n as u64;
        for (i, slot) in results.iter_mut().enumerate() {
            let (next, path) = (slot.0.take(), slot.1);
            self.note_path(path);
            self.apply_refresh(NodeId(i), next);
        }
        self.eval_buf = results;
    }

    /// Re-evaluates the guards of `v` and its neighbors, skipping nodes already
    /// refreshed in the current epoch.
    fn refresh_closed_neighborhood(&mut self, v: NodeId) {
        self.refresh_if_untouched(v);
        let range = self.nbr_offsets[v.0] as usize..self.nbr_offsets[v.0 + 1] as usize;
        for i in range {
            let w = self.nbr_info[i].node;
            self.refresh_if_untouched(w);
        }
    }

    fn refresh_if_untouched(&mut self, v: NodeId) {
        if self.touched[v.0] != self.stamp {
            self.touched[v.0] = self.stamp;
            self.refresh(v);
        }
    }

    /// Starts a new deduplication epoch for guard re-evaluation.
    fn bump_stamp(&mut self) {
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            self.touched.fill(0);
            self.stamp = 1;
        }
    }

    #[inline]
    fn clear_round_bit(&mut self, v: NodeId) {
        let (word, bit) = (v.0 >> 6, 1u64 << (v.0 & 63));
        if self.round_words[word] & bit != 0 {
            self.round_words[word] &= !bit;
            self.round_count -= 1;
        }
    }

    /// Resets the round bitset to the currently enabled set (a fresh round begins).
    ///
    /// Under the packed store this is word-parallel: invariant 1 makes the pending
    /// buffer's presence bitmap *equal* to the enabled set, so the refill is a
    /// word-copy plus popcounts over `n/64` words instead of a zero-fill plus one
    /// scatter write per enabled node — whole runs of disabled nodes cost one word.
    fn refill_round_pending(&mut self) {
        if let StateBackend::Packed { pending, .. } = &self.backend {
            if let Some(words) = pending.present_words() {
                let mut count = 0usize;
                for (dst, &src) in self.round_words.iter_mut().zip(words) {
                    *dst = src;
                    count += src.count_ones() as usize;
                }
                debug_assert_eq!(count, self.enabled_list.len());
                self.round_count = count;
                return;
            }
        }
        self.round_words.iter_mut().for_each(|w| *w = 0);
        let words = &mut self.round_words;
        for &v in &self.enabled_list {
            words[v.0 >> 6] |= 1u64 << (v.0 & 63);
        }
        self.round_count = self.enabled_list.len();
    }

    /// `true` if node `v` is enabled in the current configuration.
    pub fn is_enabled(&self, v: NodeId) -> bool {
        self.in_enabled[v.0]
    }

    /// Number of enabled nodes in the current configuration (`O(1)`).
    pub fn enabled_count(&self) -> usize {
        self.enabled_list.len()
    }

    /// All enabled nodes of the current configuration, in ascending index order.
    /// Allocating wrapper around [`Executor::enabled_nodes_into`] — per-step loops
    /// (the differential oracles) should reuse a scratch buffer through that instead.
    pub fn enabled_nodes(&self) -> Vec<NodeId> {
        let mut nodes = Vec::with_capacity(self.enabled_list.len());
        self.enabled_nodes_into(&mut nodes);
        nodes
    }

    /// Writes the enabled nodes, in ascending index order, into `out` (cleared first).
    /// Reusing one scratch buffer across a step loop avoids cloning the whole enabled
    /// list every step.
    pub fn enabled_nodes_into(&self, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend_from_slice(&self.enabled_list);
        out.sort_unstable();
    }

    /// Brute-force oracle: recomputes the enabled set by evaluating every guard from
    /// scratch, bypassing all caches. The differential tests assert that this always
    /// equals [`Executor::enabled_nodes`].
    pub fn rescan_enabled_nodes(&self) -> Vec<NodeId> {
        let mut scratch = Vec::new();
        self.graph
            .nodes()
            .filter(|&v| self.eval_guard(v, &mut scratch).0.is_some())
            .collect()
    }

    /// `true` if no node is enabled (the algorithm is silent in this configuration).
    /// `O(1)` — the enabled set is maintained incrementally.
    pub fn is_quiescent(&self) -> bool {
        self.enabled_list.is_empty()
    }

    /// Number of rounds completed so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Number of moves (node activations) so far.
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Number of daemon steps so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Total guard evaluations so far (initialization scan included).
    pub fn guard_evaluations(&self) -> u64 {
        self.guard_evals
    }

    /// Guard evaluations the decode-free screen resolved (packed store only; always
    /// zero under [`StoreMode::Struct`], whose evaluation is zero-copy). In packed
    /// mode `guard_screen_hits() + guard_full_decodes() == guard_evaluations()`.
    pub fn guard_screen_hits(&self) -> u64 {
        self.screen_hits
    }

    /// Guard evaluations that decoded the whole closed neighborhood (packed store
    /// only): the screen returned [`Screen::Unknown`] — some register held escaped
    /// fault garbage or the algorithm offers no screen.
    pub fn guard_full_decodes(&self) -> u64 {
        self.full_decodes
    }

    /// Attaches an observability handle. Subsequent waves emit
    /// [`TraceEvent::WaveStart`]/[`TraceEvent::WaveEnd`]/[`TraceEvent::GuardBatch`]
    /// into its trace ring, and the guard-tier counters are published to its registry
    /// (`executor_guard_evaluations` / `executor_guard_screen_hits` /
    /// `executor_guard_full_decodes`). The counters accumulated so far — including
    /// the construction-time initial scan — are folded into the registry at the next
    /// publish, so the registry totals always equal [`Executor::guard_evaluations`]
    /// and friends.
    ///
    /// Instrumentation is determinism-transparent: attaching an enabled handle never
    /// changes a bit of the execution (pinned by `tests/parallel_determinism.rs` and
    /// `tests/packed_store_oracle.rs`).
    pub fn attach_obs(&mut self, obs: Obs) {
        self.obs = obs;
        self.obs_wave = None;
        self.obs_guard_mark = (0, 0, 0);
    }

    /// The attached observability handle (disabled unless [`Executor::attach_obs`]
    /// was called).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Publishes the guard-counter deltas since the last publish: a `GuardBatch`
    /// trace event stamped with `wave` plus registry counter increments. No-op when
    /// nothing accumulated.
    fn obs_publish_guards(&mut self, wave: u64) {
        let evals = self.guard_evals - self.obs_guard_mark.0;
        let screen_hits = self.screen_hits - self.obs_guard_mark.1;
        let full_decodes = self.full_decodes - self.obs_guard_mark.2;
        if evals == 0 {
            return;
        }
        self.obs_guard_mark = (self.guard_evals, self.screen_hits, self.full_decodes);
        self.obs.counter("executor_guard_evaluations").add(evals);
        self.obs
            .counter("executor_guard_screen_hits")
            .add(screen_hits);
        self.obs
            .counter("executor_guard_full_decodes")
            .add(full_decodes);
        self.obs.emit(TraceEvent::GuardBatch {
            layer: Layer::Executor,
            wave,
            evals,
            screen_hits,
            full_decodes,
        });
    }

    /// The wave index to stamp an out-of-band event with: the open wave if one is in
    /// progress, otherwise the index the next wave will get (keeps per-layer wave
    /// sequences monotone).
    fn obs_current_wave(&self) -> u64 {
        self.obs_wave
            .unwrap_or_else(|| self.obs.peek_wave(Layer::Executor))
    }

    /// Emits a `CorruptionInjected` event for `nodes` registers that actually flipped
    /// bits (injections invisible to every guard emit nothing).
    fn obs_note_corruption(&mut self, nodes: u64) {
        if nodes == 0 || !self.obs.is_enabled() {
            return;
        }
        let wave = self.obs_current_wave();
        self.obs.counter("executor_corruptions_injected").add(nodes);
        self.obs.emit(TraceEvent::CorruptionInjected {
            layer: Layer::Executor,
            wave,
            nodes,
        });
    }

    /// Trace bookkeeping at quiescence: flushes guard deltas accumulated outside a
    /// completed round (e.g. by fault-injection refreshes), emits `SilenceReached`,
    /// and publishes the round/move/step totals as gauges.
    fn obs_note_silence(&mut self) {
        if !self.obs.is_enabled() {
            return;
        }
        let wave = self.obs_current_wave();
        self.obs_publish_guards(wave);
        self.obs.emit(TraceEvent::SilenceReached {
            layer: Layer::Executor,
            wave,
            rounds: self.rounds,
        });
        self.obs.gauge("executor_rounds").set(self.rounds);
        self.obs.gauge("executor_moves").set(self.moves);
        self.obs.gauge("executor_steps").set(self.steps);
    }

    /// Executes one daemon step. Returns the nodes that were activated (borrowed from
    /// an internal scratch buffer, valid until the next `&mut self` call), or an empty
    /// slice if the configuration was already quiescent.
    pub fn step_once(&mut self) -> &[NodeId] {
        if self.enabled_list.is_empty() {
            self.chosen_buf.clear();
            return &self.chosen_buf;
        }
        if self.round_count == 0 {
            // Defensive: a round in progress always tracks some pending node; if the
            // bookkeeping was reset externally, restart the round at the current set.
            self.refill_round_pending();
        }
        if self.obs.is_enabled() && self.obs_wave.is_none() {
            let wave = self.obs.begin_wave(Layer::Executor);
            self.obs_wave = Some(wave);
            self.obs.emit(TraceEvent::WaveStart {
                layer: Layer::Executor,
                wave,
            });
        }
        let mut chosen = std::mem::take(&mut self.chosen_buf);
        self.scheduler.select_into(&self.enabled_list, &mut chosen);
        // All chosen nodes read the same pre-step configuration (their reads are
        // concurrent): the cached pending transitions were all computed against it, so
        // applying them in sequence is exactly the simultaneous write.
        for &v in &chosen {
            let taken = match &mut self.backend {
                StateBackend::Struct { pending, .. } => pending[v.0].take(),
                StateBackend::Packed { pending, .. } => pending.take(v, &self.ctx),
            };
            if let Some(next) = taken {
                self.peak_bits[v.0] = self.peak_bits[v.0].max(next.encoded_bits(&self.ctx));
                let wrote = self.write_snapshot(v, next);
                debug_assert!(wrote, "a pending transition always changes the register");
                self.moves += 1;
            }
        }
        self.steps += 1;
        // Round accounting (paper §II-A): the round ends once every node that was
        // enabled at its start has been activated or has become disabled.
        for &v in &chosen {
            self.clear_round_bit(v);
        }
        match self.mode {
            ExecMode::Incremental => self.refresh_after_moves(&chosen),
            ExecMode::FullRescan => self.rescan_all(),
        }
        if self.round_count == 0 {
            self.rounds += 1;
            self.refill_round_pending();
            if let Some(wave) = self.obs_wave.take() {
                self.obs_publish_guards(wave);
                self.obs.emit(TraceEvent::WaveEnd {
                    layer: Layer::Executor,
                    wave,
                    rounds: 1,
                });
            }
        }
        self.chosen_buf = chosen;
        &self.chosen_buf
    }

    /// Incremental-mode refresh of one step: only the closed neighborhoods of the
    /// movers can change enabledness. The frontier is collected once, in a
    /// deterministic order (movers in selection order, each followed by its CSR-order
    /// neighbors, first occurrence wins); big frontiers are guard-evaluated on the
    /// worker pool, small ones inline — bookkeeping is applied in frontier order
    /// either way, so the two paths leave bit-identical executor state.
    fn refresh_after_moves(&mut self, chosen: &[NodeId]) {
        self.bump_stamp();
        let mut frontier = std::mem::take(&mut self.refresh_buf);
        frontier.clear();
        for &v in chosen {
            if self.touched[v.0] != self.stamp {
                self.touched[v.0] = self.stamp;
                frontier.push(v);
            }
            let range = self.nbr_offsets[v.0] as usize..self.nbr_offsets[v.0 + 1] as usize;
            for i in range {
                let w = self.nbr_info[i].node;
                if self.touched[w.0] != self.stamp {
                    self.touched[w.0] = self.stamp;
                    frontier.push(w);
                }
            }
        }
        self.guard_evals += frontier.len() as u64;
        if self.pool.is_parallel() && frontier.len() >= PAR_MIN_ITEMS {
            let mut results = std::mem::take(&mut self.eval_buf);
            results.clear();
            results.resize(frontier.len(), (None, GuardPath::Struct));
            self.pool
                .fill_with_init(&mut results, Vec::new, |scratch, i| {
                    self.eval_guard(frontier[i], scratch)
                });
            for (i, slot) in results.iter_mut().enumerate() {
                let (next, path) = (slot.0.take(), slot.1);
                self.note_path(path);
                self.apply_refresh(frontier[i], next);
            }
            self.eval_buf = results;
        } else {
            let mut scratch = std::mem::take(&mut self.decode_buf);
            for &v in &frontier {
                let (next, path) = self.eval_guard(v, &mut scratch);
                self.note_path(path);
                self.apply_refresh(v, next);
            }
            self.decode_buf = scratch;
        }
        self.refresh_buf = frontier;
    }

    /// Runs until no node is enabled or the step budget runs out.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::StepBudgetExhausted`] if quiescence is not reached within
    /// `max_steps` daemon steps.
    pub fn run_to_quiescence(&mut self, max_steps: u64) -> Result<Quiescence, ExecError> {
        for _ in 0..max_steps {
            if self.is_quiescent() {
                self.obs_note_silence();
                return Ok(self.quiescence());
            }
            self.step_once();
        }
        if self.is_quiescent() {
            self.obs_note_silence();
            Ok(self.quiescence())
        } else {
            Err(ExecError::StepBudgetExhausted {
                steps: self.steps,
                rounds: self.rounds,
            })
        }
    }

    fn quiescence(&self) -> Quiescence {
        let snapshot = self.states();
        Quiescence {
            silent: true,
            rounds: self.rounds,
            moves: self.moves,
            steps: self.steps,
            legal: self.algo.is_legal(self.graph, &snapshot),
        }
    }

    /// Space usage of the *current* configuration, in codec-accounted bits (which,
    /// under the packed store, are the bits actually allocated per slot payload).
    pub fn space_report(&self) -> SpaceReport {
        let sizes: Vec<usize> = match &self.backend {
            StateBackend::Struct { states, .. } => {
                states.iter().map(|s| s.encoded_bits(&self.ctx)).collect()
            }
            StateBackend::Packed { states, .. } => (0..states.len())
                .map(|i| states.get(NodeId(i), &self.ctx).encoded_bits(&self.ctx))
                .collect(),
        };
        let total: usize = sizes.iter().sum();
        SpaceReport {
            max_bits: sizes.iter().copied().max().unwrap_or(0),
            avg_bits: if sizes.is_empty() {
                0.0
            } else {
                total as f64 / sizes.len() as f64
            },
            total_bits: total,
        }
    }

    /// Measured memory of the configuration storage (snapshot + pending buffers)
    /// against the accounted register bits — the allocated-vs-accounted comparison of
    /// the E5/E7/E11 space tables.
    pub fn store_report(&self) -> StoreReport {
        let n = self.graph.node_count().max(1);
        let (mode, measured_bytes, accounted_bits) = match &self.backend {
            StateBackend::Struct { states, pending } => (
                StoreMode::Struct,
                states.capacity() * std::mem::size_of::<A::State>()
                    + pending.capacity() * std::mem::size_of::<Option<A::State>>(),
                states
                    .iter()
                    .map(|s| s.encoded_bits(&self.ctx) as u64)
                    .sum(),
            ),
            StateBackend::Packed { states, pending } => (
                StoreMode::Packed,
                states.measured().bytes + pending.measured().bytes,
                states.accounted_bits(&self.ctx),
            ),
        };
        StoreReport {
            mode,
            measured_bytes,
            accounted_bits,
            bytes_per_node: measured_bytes as f64 / n as f64,
            accounted_bits_per_node: accounted_bits as f64 / n as f64,
        }
    }

    /// Space usage accounting for the *peak* register size each node reached at any
    /// point of the execution (the honest measure of the algorithm's space complexity).
    pub fn peak_space_report(&self) -> SpaceReport {
        let total: usize = self.peak_bits.iter().sum();
        SpaceReport {
            max_bits: self.peak_bits.iter().copied().max().unwrap_or(0),
            avg_bits: if self.peak_bits.is_empty() {
                0.0
            } else {
                total as f64 / self.peak_bits.len() as f64
            },
            total_bits: total,
        }
    }

    /// Per-node activation counts (useful to visualize scheduler unfairness).
    pub fn activation_counts(&self) -> Vec<u64> {
        self.graph
            .nodes()
            .map(|v| self.scheduler.activation_count(v))
            .collect()
    }

    /// Overwrites the register of `v` with `k` successive arbitrary states — the
    /// "keep hitting the same register" fault pattern: unlike
    /// [`Executor::corrupt_random_nodes`] the damage concentrates on one node,
    /// modelling a faulty component rather than scattered transients. Every overwrite
    /// draws from the fault RNG and runs through the same changed-bits screen as
    /// [`Executor::corrupt_node`]; guards are re-evaluated once, after the last hit
    /// (intermediate values are never observable — registers are atomic). Returns how
    /// many of the `k` overwrites actually flipped stored bits.
    pub fn corrupt_node_repeatedly(&mut self, v: NodeId, k: usize) -> usize {
        let mut changed = 0usize;
        for _ in 0..k {
            let state = self.algo.arbitrary_state(self.graph, v, &mut self.rng);
            self.peak_bits[v.0] = self.peak_bits[v.0].max(state.encoded_bits(&self.ctx));
            if self.write_snapshot(v, state) {
                changed += 1;
            }
        }
        if changed > 0 {
            self.bump_stamp();
            self.refresh_closed_neighborhood(v);
            self.refill_round_pending();
            self.obs_note_corruption(1);
        }
        changed
    }

    /// Serializes the executor's **complete** execution state into a versioned,
    /// checksummed [`Snapshot`]: the configuration (every register, as one packed
    /// codec bitstream — the same `O(log² n)`-bit layout the packed store holds), the
    /// move/step/round/guard counters, the mid-round bitset, the per-node peak sizes,
    /// and both RNG streams (executor fault RNG and the daemon's full decision state).
    ///
    /// [`Executor::restore`] rebuilds an executor that continues the execution
    /// **bit-identically**: every future daemon choice, register write and counter
    /// increment matches the uninterrupted run. The enabled *set* and the
    /// pending-transition cache are *not* serialized — they are a pure function of the
    /// configuration and are rebuilt by the restore scan (DESIGN.md §2.11). The
    /// enabled list's *order*, however, is execution state like the RNG streams: the
    /// daemons index into it, and its layout depends on the history of swap-removes
    /// that produced it — so the order is serialized and reimposed on the rebuilt set.
    pub fn checkpoint(&self) -> Snapshot {
        // Clock reads are gated on the handle so a disabled run never touches the
        // timer; the event is emitted through the shared ring (`&self` is enough).
        let timer = self.obs.is_enabled().then(std::time::Instant::now);
        let n = self.graph.node_count();
        let mut words: Vec<u64> = vec![persist::graph_fingerprint(self.graph), n as u64];
        words.push(self.moves);
        words.push(self.steps);
        words.push(self.rounds);
        words.push(self.guard_evals);
        words.push(self.screen_hits);
        words.push(self.full_decodes);
        words.extend_from_slice(&self.rng.state());
        let sched = self.scheduler.export_state();
        words.push(sched.kind.tag());
        words.push(sched.cursor as u64);
        words.extend_from_slice(&sched.rng);
        words.extend_from_slice(&sched.activations);
        words.push(self.round_count as u64);
        words.extend_from_slice(&self.round_words);
        words.extend(self.peak_bits.iter().map(|&b| b as u64));
        words.push(self.enabled_list.len() as u64);
        words.extend(self.enabled_list.iter().map(|&v| v.0 as u64));
        let states = self.states();
        let mut stream: Vec<u64> = Vec::new();
        let mut writer = BitWriter::new(&mut stream, 0);
        let mut bits = 0usize;
        for s in &states {
            s.encode_into(&self.ctx, &mut writer);
            bits += s.encoded_bits(&self.ctx);
        }
        words.push(bits as u64);
        words.push(stream.len() as u64);
        words.extend_from_slice(&stream);
        let snapshot = Snapshot::new(persist::KIND_EXECUTOR, words);
        if let Some(started) = timer {
            self.obs.emit(TraceEvent::Checkpoint {
                layer: Layer::Executor,
                wave: self.obs_current_wave(),
                bytes: snapshot.byte_len() as u64,
                ms: started.elapsed().as_secs_f64() * 1e3,
            });
        }
        snapshot
    }

    /// Rebuilds an executor from a [`Snapshot`] written by [`Executor::checkpoint`],
    /// resuming the execution bit-identically to the uninterrupted run.
    ///
    /// `graph` must be the network the snapshot was taken on (checked by
    /// fingerprint); `config` supplies the *representation* choices — store mode and
    /// thread count — which may freely differ from the checkpointing process (the
    /// differential oracles pin that executions are bit-identical across all of
    /// them). The enabled-set mode may also differ, but it is trajectory-affecting,
    /// not pure representation: [`ExecMode::FullRescan`] refreshes guards in node
    /// order where [`ExecMode::Incremental`] refreshes in frontier order, so the
    /// enabled list's layout — and with it the daemon's indexed picks — diverges,
    /// exactly as it does between two fresh runs in different modes. The daemon
    /// kind, its RNG stream and the fault RNG come from the snapshot: they are
    /// execution state, not representation.
    ///
    /// # Errors
    ///
    /// Returns a typed [`RestoreError`] — never panics, never loads garbage — on a
    /// snapshot of the wrong kind, for a different graph, or with a payload that does
    /// not parse.
    pub fn restore(
        graph: &'g Graph,
        algo: A,
        snapshot: &Snapshot,
        config: ExecutorConfig,
    ) -> Result<Self, RestoreError> {
        snapshot.expect_kind(persist::KIND_EXECUTOR)?;
        let mut r = SnapshotReader::new(snapshot);
        if r.next_word()? != persist::graph_fingerprint(graph) {
            return Err(RestoreError::GraphMismatch);
        }
        let n = r.next_usize()?;
        if n != graph.node_count() {
            return Err(RestoreError::GraphMismatch);
        }
        let moves = r.next_word()?;
        let steps = r.next_word()?;
        let rounds = r.next_word()?;
        let guard_evals = r.next_word()?;
        let screen_hits = r.next_word()?;
        let full_decodes = r.next_word()?;
        let rng_state = [
            r.next_word()?,
            r.next_word()?,
            r.next_word()?,
            r.next_word()?,
        ];
        let kind = SchedulerKind::from_tag(r.next_word()?)
            .ok_or(RestoreError::Malformed("unknown scheduler kind"))?;
        let cursor = r.next_usize()?;
        let sched_rng = [
            r.next_word()?,
            r.next_word()?,
            r.next_word()?,
            r.next_word()?,
        ];
        let activations = r.take(n)?.to_vec();
        let round_count = r.next_usize()?;
        let round_words = r.take(n.div_ceil(64))?.to_vec();
        let peak_bits: Vec<usize> = r
            .take(n)?
            .iter()
            .map(|&w| usize::try_from(w))
            .collect::<Result<_, _>>()
            .map_err(|_| RestoreError::Malformed("peak bits exceed usize"))?;
        let enabled_len = r.next_usize()?;
        if enabled_len > n {
            return Err(RestoreError::Malformed(
                "enabled list longer than the network",
            ));
        }
        let enabled_order: Vec<usize> = r
            .take(enabled_len)?
            .iter()
            .map(|&w| usize::try_from(w))
            .collect::<Result<_, _>>()
            .map_err(|_| RestoreError::Malformed("enabled node exceeds usize"))?;
        let bit_len = r.next_usize()?;
        let word_len = r.next_usize()?;
        let stream = r.take(word_len)?;
        r.expect_exhausted()?;
        if bit_len > word_len * 64 || round_count > n {
            return Err(RestoreError::Malformed("length field out of range"));
        }
        let ctx = CodecCtx::for_graph(graph);
        let mut reader = BitReader::new(stream, 0);
        let mut states: Vec<A::State> = Vec::with_capacity(n);
        for _ in 0..n {
            if reader.bits_read() > bit_len as u64 {
                return Err(RestoreError::Malformed("state bitstream ended early"));
            }
            states.push(A::State::decode_from(&ctx, &mut reader));
        }
        if reader.bits_read() != bit_len as u64 {
            return Err(RestoreError::Malformed("state bitstream length mismatch"));
        }
        let mut exec = Executor::with_states(
            graph,
            algo,
            states,
            ExecutorConfig {
                scheduler: kind,
                ..config
            },
        );
        // The round bitset must be a subset of the (deterministically rebuilt) enabled
        // set and agree with its population count — true of every self-produced
        // snapshot, verified rather than assumed.
        let mut popcount = 0usize;
        for (word_idx, &word) in round_words.iter().enumerate() {
            popcount += word.count_ones() as usize;
            let mut bits = word;
            while bits != 0 {
                let v = (word_idx << 6) + bits.trailing_zeros() as usize;
                if v >= n || !exec.in_enabled[v] {
                    return Err(RestoreError::Malformed(
                        "round bitset is not a subset of the enabled set",
                    ));
                }
                bits &= bits - 1;
            }
        }
        if popcount != round_count {
            return Err(RestoreError::Malformed("round bitset population mismatch"));
        }
        // The serialized enabled order must be a permutation of the rebuilt enabled
        // set; reimpose it so the daemons' indexed picks continue bit-identically.
        if enabled_order.len() != exec.enabled_list.len() {
            return Err(RestoreError::Malformed(
                "enabled order does not match the enabled set",
            ));
        }
        let mut seen = vec![false; n];
        for &v in &enabled_order {
            if v >= n || !exec.in_enabled[v] || seen[v] {
                return Err(RestoreError::Malformed(
                    "enabled order does not match the enabled set",
                ));
            }
            seen[v] = true;
        }
        exec.enabled_list = enabled_order.into_iter().map(NodeId).collect();
        for (pos, &v) in exec.enabled_list.iter().enumerate() {
            exec.enabled_pos[v.0] = pos;
        }
        exec.moves = moves;
        exec.steps = steps;
        exec.rounds = rounds;
        exec.guard_evals = guard_evals;
        exec.screen_hits = screen_hits;
        exec.full_decodes = full_decodes;
        exec.rng = StdRng::from_state(rng_state);
        exec.scheduler = Scheduler::from_state(SchedulerState {
            kind,
            cursor,
            rng: sched_rng,
            activations,
        });
        exec.round_words = round_words;
        exec.round_count = round_count;
        exec.peak_bits = peak_bits;
        Ok(exec)
    }
}

impl<'g, A: Algorithm> Executor<'g, A>
where
    A::State: ParentPointer,
{
    /// Decodes the spanning tree encoded by the parent pointers of the current
    /// configuration (paper §II-B): `p(v)` is an identity, `⊥` marks the root.
    ///
    /// # Errors
    ///
    /// Returns a [`TreeError`] if the parent pointers do not encode a spanning tree of
    /// the graph (e.g. a parent identity that is not a neighbor, several roots, or a
    /// cycle).
    pub fn extract_tree(&self) -> Result<Tree, TreeError> {
        parent_pointer_tree(self.graph, &self.states())
    }
}

/// Decodes the spanning tree encoded by a configuration of parent-pointer registers.
///
/// # Errors
///
/// Returns a [`TreeError`] if the pointers do not encode a spanning tree of `graph`.
pub fn parent_pointer_tree<S: ParentPointer>(
    graph: &Graph,
    states: &[S],
) -> Result<Tree, TreeError> {
    let mut parents: Vec<Option<NodeId>> = Vec::with_capacity(graph.node_count());
    for v in graph.nodes() {
        match states[v.0].parent_ident() {
            None => parents.push(None),
            Some(id) => {
                // The parent must be a neighbor carrying that identity.
                let parent = graph
                    .neighbors(v)
                    .iter()
                    .map(|&(w, _)| w)
                    .find(|&w| graph.ident(w) == id);
                match parent {
                    Some(p) => parents.push(Some(p)),
                    None => return Err(TreeError::ParentOutOfRange { node: v }),
                }
            }
        }
    }
    Tree::from_parents_in(graph, parents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use stst_graph::generators;
    use stst_graph::Ident;

    /// Toy algorithm: propagate the maximum identity seen so far ("flooding max").
    /// Silent, converges in at most `diameter` rounds, legal when all agree on the
    /// global maximum identity.
    struct FloodMax;

    impl Algorithm for FloodMax {
        type State = u64;

        fn name(&self) -> &str {
            "flood-max"
        }

        fn arbitrary_state(&self, graph: &Graph, _node: NodeId, rng: &mut StdRng) -> u64 {
            // Arbitrary garbage, possibly larger than any real identity — the algorithm
            // below is *not* resilient to that (flood-max famously is not
            // self-stabilizing), which the tests exploit.
            rng.gen_range(0..2 * graph.node_count() as u64)
        }

        fn step(&self, view: &View<'_, u64>) -> Option<u64> {
            let best = view
                .neighbors()
                .map(|nb| *nb.state)
                .chain(std::iter::once(view.ident))
                .max()
                .expect("closed neighborhood is non-empty");
            (best > *view.state).then_some(best)
        }

        fn is_legal(&self, graph: &Graph, states: &[u64]) -> bool {
            let max_id = graph.nodes().map(|v| graph.ident(v)).max().unwrap_or(0);
            states.iter().all(|&s| s == max_id)
        }
    }

    /// Parent-pointer register for tree-extraction tests.
    #[derive(Clone, Debug, PartialEq, Eq)]
    struct Ptr(Option<Ident>);

    impl Codec for Ptr {
        fn encoded_bits(&self, ctx: &CodecCtx) -> usize {
            CodecCtx::opt_uint_bits(&self.0, ctx.ident_bits)
        }

        fn encode_into(&self, ctx: &CodecCtx, w: &mut crate::bits::BitWriter<'_>) {
            CodecCtx::write_opt_uint(w, &self.0, ctx.ident_bits);
        }

        fn decode_from(ctx: &CodecCtx, r: &mut crate::bits::BitReader<'_>) -> Self {
            Ptr(CodecCtx::read_opt_uint(r, ctx.ident_bits))
        }
    }

    impl ParentPointer for Ptr {
        fn parent_ident(&self) -> Option<Ident> {
            self.0
        }
    }

    #[test]
    fn flood_max_converges_and_counts_rounds() {
        let g = generators::path(8);
        // Start from the all-zero configuration (not arbitrary — flood-max is only a
        // plumbing test, not a self-stabilizing algorithm).
        let exec_config = ExecutorConfig::with_scheduler(3, SchedulerKind::Synchronous);
        let mut exec = Executor::with_states(&g, FloodMax, vec![0u64; 8], exec_config);
        let q = exec.run_to_quiescence(10_000).unwrap();
        assert!(q.silent);
        assert!(q.legal);
        // Under the synchronous daemon every node first adopts its own identity
        // (round 1), then the maximum identity (node 7, ident 8) travels one hop per
        // round: 7 more rounds to reach node 0.
        assert_eq!(q.rounds, 8);
        assert!(q.moves >= 7);
        assert!(exec.is_quiescent());
    }

    #[test]
    fn all_daemons_reach_the_same_fixed_point() {
        let g = generators::random_connected(20, 0.15, 4);
        for kind in SchedulerKind::all() {
            let mut exec = Executor::with_states(
                &g,
                FloodMax,
                vec![0u64; 20],
                ExecutorConfig::with_scheduler(11, kind),
            );
            let q = exec.run_to_quiescence(200_000).unwrap();
            assert!(q.legal, "daemon {kind} must still converge to the max");
        }
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let g = generators::path(6);
        let mut exec = Executor::with_states(
            &g,
            FloodMax,
            vec![0u64; 6],
            ExecutorConfig::with_scheduler(0, SchedulerKind::Central),
        );
        let err = exec.run_to_quiescence(1).unwrap_err();
        assert!(matches!(
            err,
            ExecError::StepBudgetExhausted { steps: 1, .. }
        ));
    }

    #[test]
    fn corruption_reactivates_the_system() {
        let g = generators::path(5);
        let mut exec =
            Executor::with_states(&g, FloodMax, vec![0u64; 5], ExecutorConfig::seeded(1));
        exec.run_to_quiescence(10_000).unwrap();
        assert!(exec.is_quiescent());
        // Corrupt one register downwards: its neighbors are unaffected but the node
        // itself becomes enabled again.
        exec.corrupt_node(NodeId(2), 0);
        assert!(!exec.is_quiescent());
        let q = exec.run_to_quiescence(10_000).unwrap();
        assert!(q.legal);
    }

    #[test]
    fn random_corruption_hits_the_requested_number_of_nodes() {
        let g = generators::ring(10);
        let mut exec = Executor::from_arbitrary(&g, FloodMax, ExecutorConfig::seeded(5));
        let hit = exec.corrupt_random_nodes(4);
        assert_eq!(hit.len(), 4);
        let hit_all = exec.corrupt_random_nodes(100);
        assert_eq!(hit_all.len(), 10);
    }

    #[test]
    fn space_reports_track_current_and_peak_sizes() {
        let g = generators::path(3);
        let mut exec =
            Executor::with_states(&g, FloodMax, vec![0u64, 1023, 0], ExecutorConfig::seeded(2));
        // path(3) grants identities a (1 escape + 5)-bit field (covers the 0..=2n
        // garbage range with headroom); 1023 blows the field and escapes to 1 + 64.
        let ident_field = 1 + exec.codec_ctx().ident_bits as usize;
        let now = exec.space_report();
        assert_eq!(now.max_bits, 65);
        assert_eq!(now.total_bits, 65 + 2 * ident_field);
        exec.run_to_quiescence(1_000).unwrap();
        // After convergence every register holds 1023 (the corrupted maximum), so the
        // peak equals the current size.
        let peak = exec.peak_space_report();
        assert_eq!(peak.max_bits, 65);
        assert!(peak.avg_bits >= exec.space_report().avg_bits - f64::EPSILON);
    }

    #[test]
    fn packed_store_memory_tracks_the_accounted_bits() {
        let g = generators::random_connected(200, 0.03, 1);
        let mut packed = Executor::from_arbitrary(&g, FloodMax, ExecutorConfig::seeded(4));
        let mut structs = Executor::from_arbitrary(
            &g,
            FloodMax,
            ExecutorConfig::seeded(4).with_store(StoreMode::Struct),
        );
        assert_eq!(packed.store_mode(), StoreMode::Packed);
        assert_eq!(structs.store_mode(), StoreMode::Struct);
        let qp = packed.run_to_quiescence(1_000_000).unwrap();
        let qs = structs.run_to_quiescence(1_000_000).unwrap();
        assert_eq!(qp, qs, "stores must not change the execution");
        assert_eq!(packed.states(), structs.states());
        let pr = packed.store_report();
        let sr = structs.store_report();
        assert_eq!(pr.accounted_bits, sr.accounted_bits);
        // The packed double buffer stays within 4x of the accounted bits; the struct
        // reference pays an order of magnitude more.
        assert!(
            (pr.measured_bytes as u64) * 8 <= 4 * pr.accounted_bits,
            "packed store: {} bytes for {} accounted bits",
            pr.measured_bytes,
            pr.accounted_bits
        );
        assert!(pr.measured_bytes * 4 < sr.measured_bytes);
    }

    #[test]
    fn guard_tier_counters_account_every_packed_evaluation() {
        // Flood-max has no screen, so on the packed store every evaluation falls
        // through to a full decode; the struct path has nothing to screen or decode.
        let g = generators::random_connected(60, 0.08, 12);
        let mut packed = Executor::from_arbitrary(&g, FloodMax, ExecutorConfig::seeded(12));
        packed.run_to_quiescence(1_000_000).unwrap();
        assert_eq!(packed.guard_screen_hits(), 0);
        assert_eq!(packed.guard_full_decodes(), packed.guard_evaluations());
        let mut structs = Executor::from_arbitrary(
            &g,
            FloodMax,
            ExecutorConfig::seeded(12).with_store(StoreMode::Struct),
        );
        structs.run_to_quiescence(1_000_000).unwrap();
        assert_eq!(structs.guard_screen_hits(), 0);
        assert_eq!(structs.guard_full_decodes(), 0);
        assert_eq!(structs.guard_evaluations(), packed.guard_evaluations());
    }

    #[test]
    fn bit_identical_corruption_is_invisible() {
        // Overwriting a register with the exact state it already holds must not
        // re-evaluate anything or restart the round accounting, in either store mode.
        for store in [StoreMode::Packed, StoreMode::Struct] {
            let g = generators::path(5);
            let config = ExecutorConfig::seeded(1).with_store(store);
            let mut exec = Executor::with_states(&g, FloodMax, vec![0u64; 5], config);
            exec.run_to_quiescence(10_000).unwrap();
            let settled = exec.state(NodeId(2));
            let evals = exec.guard_evaluations();
            exec.corrupt_node(NodeId(2), settled);
            assert!(exec.is_quiescent(), "{store:?}");
            assert_eq!(exec.guard_evaluations(), evals, "{store:?}");
            // A fault that actually flips bits still reactivates the system.
            exec.corrupt_node(NodeId(2), 0);
            assert!(!exec.is_quiescent(), "{store:?}");
            assert!(exec.guard_evaluations() > evals, "{store:?}");
        }
    }

    #[test]
    fn tree_extraction_decodes_parent_identities() {
        let g = generators::path(4); // identities 1,2,3,4
        let states = vec![Ptr(None), Ptr(Some(1)), Ptr(Some(2)), Ptr(Some(3))];
        let tree = parent_pointer_tree(&g, &states).unwrap();
        assert_eq!(tree.root(), NodeId(0));
        assert_eq!(tree.parent(NodeId(3)), Some(NodeId(2)));
        // A parent identity that is not a neighbor is rejected.
        let bad = vec![Ptr(None), Ptr(Some(4)), Ptr(Some(2)), Ptr(Some(3))];
        assert!(parent_pointer_tree(&g, &bad).is_err());
        // Two roots are rejected.
        let two_roots = vec![Ptr(None), Ptr(None), Ptr(Some(2)), Ptr(Some(3))];
        assert!(parent_pointer_tree(&g, &two_roots).is_err());
    }

    #[test]
    fn activation_counts_reflect_daemon_choices() {
        let g = generators::path(4);
        let mut exec = Executor::with_states(
            &g,
            FloodMax,
            vec![0u64; 4],
            ExecutorConfig::with_scheduler(7, SchedulerKind::Central),
        );
        exec.run_to_quiescence(10_000).unwrap();
        let counts = exec.activation_counts();
        assert_eq!(counts.iter().sum::<u64>(), exec.moves());
    }

    #[test]
    fn incremental_enabled_set_matches_the_rescan_oracle_stepwise() {
        let g = generators::random_connected(18, 0.2, 2);
        for kind in SchedulerKind::all() {
            let mut exec =
                Executor::from_arbitrary(&g, FloodMax, ExecutorConfig::with_scheduler(5, kind));
            assert_eq!(
                exec.enabled_nodes(),
                exec.rescan_enabled_nodes(),
                "init, {kind}"
            );
            for step in 0..200 {
                if exec.is_quiescent() {
                    break;
                }
                exec.step_once();
                assert_eq!(
                    exec.enabled_nodes(),
                    exec.rescan_enabled_nodes(),
                    "daemon {kind}, step {step}"
                );
            }
        }
    }

    #[test]
    fn full_rescan_and_incremental_modes_agree_under_deterministic_daemons() {
        // The synchronous, round-robin and adversarial daemons pick the same nodes
        // regardless of the (unordered) enabled-list layout, so the two modes must
        // produce identical trajectories step by step.
        let g = generators::random_connected(16, 0.25, 7);
        for kind in [
            SchedulerKind::Synchronous,
            SchedulerKind::RoundRobin,
            SchedulerKind::Adversarial,
        ] {
            let config = ExecutorConfig::with_scheduler(9, kind);
            let mut inc = Executor::from_arbitrary(&g, FloodMax, config);
            let mut full =
                Executor::from_arbitrary(&g, FloodMax, config.with_mode(ExecMode::FullRescan));
            for step in 0..300 {
                assert_eq!(inc.states(), full.states(), "daemon {kind}, step {step}");
                assert_eq!(inc.rounds(), full.rounds(), "daemon {kind}, step {step}");
                assert_eq!(inc.moves(), full.moves(), "daemon {kind}, step {step}");
                if inc.is_quiescent() {
                    assert!(full.is_quiescent());
                    break;
                }
                let mut a = inc.step_once().to_vec();
                let mut b = full.step_once().to_vec();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "daemon {kind}, step {step}");
            }
            assert!(
                inc.is_quiescent(),
                "daemon {kind} must converge within the budget"
            );
        }
    }

    #[test]
    fn parallel_wave_execution_is_bit_identical_to_sequential() {
        // Large enough to cross PAR_MIN_ITEMS both at the initial scan and in the
        // synchronous waves, so the pool path genuinely runs.
        let g = generators::random_connected(300, 0.02, 8);
        for kind in SchedulerKind::all() {
            let (base_states, base_q, base_guards) = {
                let config = ExecutorConfig::with_scheduler(4, kind);
                let mut exec = Executor::from_arbitrary(&g, FloodMax, config);
                let q = exec.run_to_quiescence(500_000).unwrap();
                (exec.states(), q, exec.guard_evaluations())
            };
            for threads in [2usize, 8] {
                let config = ExecutorConfig::with_scheduler(4, kind).with_threads(threads);
                let mut exec = Executor::from_arbitrary(&g, FloodMax, config);
                let q = exec.run_to_quiescence(500_000).unwrap();
                assert_eq!(
                    exec.states(),
                    base_states.as_slice(),
                    "daemon {kind}, {threads} threads"
                );
                assert_eq!(q, base_q, "daemon {kind}, {threads} threads");
                assert_eq!(
                    exec.guard_evaluations(),
                    base_guards,
                    "daemon {kind}, {threads} threads"
                );
            }
        }
    }

    #[test]
    fn topology_churn_reseeds_exactly_the_dirty_neighborhoods() {
        use stst_graph::Mutation;
        let g0 = generators::random_connected(40, 0.1, 6);
        // Zero initial states: flood-max is a plumbing test, not self-stabilizing
        // from arbitrary garbage (see the other tests above).
        let mut exec =
            Executor::with_states(&g0, FloodMax, vec![0u64; 40], ExecutorConfig::seeded(6));
        exec.run_to_quiescence(100_000).unwrap();
        assert!(exec.is_quiescent());
        // An edge appears and one disappears: the incremental enabled set must match
        // the brute-force rescan oracle on the mutated graph.
        let (a, b) = {
            let mut found = None;
            'outer: for a in g0.nodes() {
                for b in g0.nodes() {
                    if a < b && g0.edge_between(a, b).is_none() {
                        found = Some((a, b));
                        break 'outer;
                    }
                }
            }
            found.unwrap()
        };
        let removable = g0
            .edge_ids()
            .find(|&e| {
                let ed = *g0.edge(e);
                let mut trial = g0.clone();
                trial.remove_edge(ed.u, ed.v);
                trial.is_connected()
            })
            .unwrap();
        let (ru, rv) = (g0.edge(removable).u, g0.edge(removable).v);
        let g1 = {
            let mut g = g0.clone();
            g.apply_mutations(&[
                Mutation::AddEdge {
                    u: a,
                    v: b,
                    weight: 1,
                },
                Mutation::RemoveEdge { u: ru, v: rv },
            ]);
            g
        };
        let outcome = {
            let mut g = g0.clone();
            g.apply_mutations(&[
                Mutation::AddEdge {
                    u: a,
                    v: b,
                    weight: 1,
                },
                Mutation::RemoveEdge { u: ru, v: rv },
            ])
        };
        let guards_before = exec.guard_evaluations();
        exec.apply_topology(&g1, &outcome);
        // Only the dirty closed neighborhoods were re-evaluated...
        assert!(exec.guard_evaluations() - guards_before <= outcome.dirty.len() as u64);
        // ...yet the enabled set matches the from-scratch oracle, stepwise.
        assert_eq!(exec.enabled_nodes(), exec.rescan_enabled_nodes());
        for _ in 0..200 {
            if exec.is_quiescent() {
                break;
            }
            exec.step_once();
            assert_eq!(exec.enabled_nodes(), exec.rescan_enabled_nodes());
        }
        let q = exec.run_to_quiescence(100_000).unwrap();
        assert!(q.legal, "flood-max stays legal under edge churn");
    }

    #[test]
    fn node_churn_remaps_registers_and_reconverges() {
        use stst_graph::Mutation;
        let g0 = generators::random_connected(20, 0.2, 9);
        let mut exec =
            Executor::with_states(&g0, FloodMax, vec![0u64; 20], ExecutorConfig::seeded(9));
        exec.run_to_quiescence(100_000).unwrap();
        // A node with a large identity joins: the new maximum must flood.
        let mut g1 = g0.clone();
        let outcome = g1.apply_mutations(&[
            Mutation::AddNode { ident: 500 },
            Mutation::AddEdge {
                u: NodeId(20),
                v: NodeId(0),
                weight: 1,
            },
        ]);
        exec.apply_topology(&g1, &outcome);
        assert_eq!(exec.states().len(), 21);
        assert_eq!(exec.enabled_nodes(), exec.rescan_enabled_nodes());
        let q = exec.run_to_quiescence(100_000).unwrap();
        assert!(q.legal, "the joining maximum floods the network");
        assert!(exec.states().iter().all(|&s| s == 500));
    }

    #[test]
    fn steady_state_maintenance_is_local_not_global() {
        // After convergence, corrupting one register must cost O(deg) guard
        // evaluations per step, not O(n): compare against the full-rescan mode.
        let g = generators::random_connected(240, 0.03, 3);
        let run = |mode: ExecMode| {
            let config = ExecutorConfig::with_scheduler(1, SchedulerKind::Central).with_mode(mode);
            let mut exec = Executor::with_states(&g, FloodMax, vec![0u64; 240], config);
            exec.run_to_quiescence(100_000).unwrap();
            let before = exec.guard_evaluations();
            exec.corrupt_node(NodeId(60), 0);
            exec.run_to_quiescence(100_000).unwrap();
            exec.guard_evaluations() - before
        };
        let incremental = run(ExecMode::Incremental);
        let rescan = run(ExecMode::FullRescan);
        assert!(
            incremental * 5 <= rescan,
            "incremental recovery used {incremental} guard evaluations, \
             full rescan {rescan}: expected at least a 5x gap"
        );
    }
}
