//! Bit-granular readers and writers over `u64` word buffers.
//!
//! The packed configuration store ([`crate::store`]) keeps every register as a
//! contiguous run of bits inside a shared word buffer. [`BitWriter`] and [`BitReader`]
//! are the only primitives that touch those bits: a writer appends (or overwrites)
//! fields of up to 64 bits at an absolute bit cursor, a reader consumes them in the
//! same order. Both are branch-light two-word read-modify-write loops — no per-field
//! allocation, no byte alignment, no padding.

/// Writes bit fields into a `u64` word buffer at an absolute bit cursor, growing the
/// buffer on demand. Writing **clears the target bits first**, so a writer can rewrite
/// an existing slot in place without zeroing it separately.
#[derive(Debug)]
pub struct BitWriter<'a> {
    words: &'a mut Vec<u64>,
    pos: u64,
}

impl<'a> BitWriter<'a> {
    /// A writer positioned at absolute bit offset `pos` of `words`.
    pub fn new(words: &'a mut Vec<u64>, pos: u64) -> Self {
        BitWriter { words, pos }
    }

    /// The current absolute bit position.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Writes the low `width` bits of `value` and advances the cursor.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or if `value` has bits set above `width` (the codec layer
    /// is responsible for choosing widths that fit).
    pub fn write(&mut self, value: u64, width: usize) {
        debug_assert!(width <= 64, "bit fields are at most one word");
        debug_assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        if width == 0 {
            return;
        }
        let end_word = (self.pos + width as u64).div_ceil(64) as usize;
        if self.words.len() < end_word {
            self.words.resize(end_word, 0);
        }
        let word = (self.pos / 64) as usize;
        let bit = (self.pos % 64) as usize;
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        self.words[word] = (self.words[word] & !(mask << bit)) | (value << bit);
        let spilled = bit + width;
        if spilled > 64 {
            let high_bits = spilled - 64;
            let high = value >> (width - high_bits);
            let high_mask = (1u64 << high_bits) - 1;
            self.words[word + 1] = (self.words[word + 1] & !high_mask) | high;
        }
        self.pos += width as u64;
    }
}

/// Reads bit fields from a `u64` word buffer at an absolute bit cursor, in the order a
/// [`BitWriter`] produced them.
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    words: &'a [u64],
    pos: u64,
    start: u64,
}

impl<'a> BitReader<'a> {
    /// A reader positioned at absolute bit offset `pos` of `words`.
    pub fn new(words: &'a [u64], pos: u64) -> Self {
        BitReader {
            words,
            pos,
            start: pos,
        }
    }

    /// The number of bits consumed since construction (what the round-trip property
    /// tests compare against `Codec::encoded_bits`).
    pub fn bits_read(&self) -> u64 {
        self.pos - self.start
    }

    /// Reads a `width`-bit field and advances the cursor.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or the cursor runs past the buffer.
    pub fn read(&mut self, width: usize) -> u64 {
        debug_assert!(width <= 64, "bit fields are at most one word");
        if width == 0 {
            return 0;
        }
        let word = (self.pos / 64) as usize;
        let bit = (self.pos % 64) as usize;
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let mut value = (self.words[word] >> bit) & mask;
        let spilled = bit + width;
        if spilled > 64 {
            let high_bits = spilled - 64;
            let low_bits = width - high_bits;
            let high = self.words[word + 1] & ((1u64 << high_bits) - 1);
            value |= high << low_bits;
        }
        self.pos += width as u64;
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_word_fields_round_trip() {
        let mut words = Vec::new();
        let mut w = BitWriter::new(&mut words, 0);
        w.write(0b101, 3);
        w.write(0, 1);
        w.write(0xffff, 16);
        w.write(42, 7);
        let mut r = BitReader::new(&words, 0);
        assert_eq!(r.read(3), 0b101);
        assert_eq!(r.read(1), 0);
        assert_eq!(r.read(16), 0xffff);
        assert_eq!(r.read(7), 42);
        assert_eq!(r.bits_read(), 27);
    }

    #[test]
    fn fields_spanning_word_boundaries_round_trip() {
        let mut words = Vec::new();
        let mut w = BitWriter::new(&mut words, 60);
        w.write(0b1_0110_1011, 9); // straddles words 0 and 1
        w.write(u64::MAX, 64); // straddles words 1 and 2
        let mut r = BitReader::new(&words, 60);
        assert_eq!(r.read(9), 0b1_0110_1011);
        assert_eq!(r.read(64), u64::MAX);
    }

    #[test]
    fn rewriting_a_slot_clears_the_old_bits() {
        let mut words = vec![u64::MAX; 2];
        let mut w = BitWriter::new(&mut words, 10);
        w.write(0, 40);
        let mut r = BitReader::new(&words, 10);
        assert_eq!(r.read(40), 0);
        // The surrounding bits are untouched.
        let mut r = BitReader::new(&words, 0);
        assert_eq!(r.read(10), (1 << 10) - 1);
        let mut r = BitReader::new(&words, 50);
        assert_eq!(r.read(14), (1 << 14) - 1);
    }

    #[test]
    fn zero_width_fields_are_free() {
        let mut words = Vec::new();
        let mut w = BitWriter::new(&mut words, 0);
        w.write(0, 0);
        assert_eq!(w.position(), 0);
        assert!(words.is_empty());
        let mut r = BitReader::new(&words, 0);
        assert_eq!(r.read(0), 0);
        assert_eq!(r.bits_read(), 0);
    }
}
