//! The self-stabilization *state model* runtime (paper §II-A).
//!
//! Every node of the network is a state machine holding a single-writer multiple-reader
//! register. In one atomic step a node (1) reads its own register and the registers of
//! its neighbors, (2) applies its transition function, and (3) writes its register.
//! Which enabled node(s) actually take a step is decided by a *scheduler* (daemon); the
//! paper assumes the **unfair** scheduler, which is only required to activate at least
//! one enabled node per step.
//!
//! This crate provides:
//!
//! * [`Register`] / [`Codec`] — register contents with exact, codec-derived bit
//!   accounting, so the space-complexity claims of the paper (`O(log n)`, `O(log² n)`
//!   bits per node) can be measured rather than asserted;
//! * [`store::ConfigStore`] — the packed configuration store: registers allocated at
//!   their accounted bit widths (fixed-stride bit slots in a shared word heap, with a
//!   struct-backed reference mode for differential testing), so the accounted space
//!   *is* the allocated space;
//! * [`Algorithm`] — a guarded-rule transition function over the closed 1-hop
//!   neighborhood [`View`];
//! * [`Scheduler`] — central, synchronous, round-robin, uniformly random and
//!   greedy-adversarial (unfair) daemons;
//! * [`Executor`] — runs an algorithm from an *arbitrary* initial configuration,
//!   counts **moves** and **rounds** exactly as defined in the paper, detects
//!   *silence* (no node enabled), and injects transient faults (register corruption).
//!   The enabled set is maintained **incrementally** (only the closed neighborhoods of
//!   the nodes that moved are re-evaluated, `O(Δ)` per move instead of `O(n·Δ)` per
//!   step — see DESIGN.md), with a retained full-rescan reference mode
//!   ([`ExecMode::FullRescan`]) for differential testing and benchmarking;
//! * [`SpaceReport`] / [`Quiescence`] — the measurements consumed by the experiment
//!   harness;
//! * [`par`] — a deterministic scoped worker pool ([`ThreadPool`]): the executor uses
//!   it to evaluate synchronous-daemon waves in parallel over stable node-range
//!   shards (bit-identical to the sequential path at any thread count, see
//!   `ExecutorConfig::with_threads`), and the composition engine reuses it for its
//!   heavy from-scratch phases.

pub mod algorithm;
pub mod bits;
pub mod codec;
pub mod executor;
pub mod par;
pub mod persist;
pub mod register;
pub mod scheduler;
pub mod store;
pub mod view;

pub use algorithm::{Algorithm, ParentPointer, Screen};
pub use codec::{Codec, CodecCtx, FieldReader, FieldSpec};
pub use executor::{
    ExecError, ExecMode, Executor, ExecutorConfig, Quiescence, SpaceReport, StoreReport,
};
pub use par::ThreadPool;
pub use persist::{RestoreError, Snapshot, SnapshotReader};
pub use register::Register;
pub use scheduler::{Scheduler, SchedulerKind, SchedulerState};
pub use store::{ConfigStore, StoreMode};
pub use view::{NeighborInfo, NeighborView, RawView, View};
