//! The self-stabilization *state model* runtime (paper §II-A).
//!
//! Every node of the network is a state machine holding a single-writer multiple-reader
//! register. In one atomic step a node (1) reads its own register and the registers of
//! its neighbors, (2) applies its transition function, and (3) writes its register.
//! Which enabled node(s) actually take a step is decided by a *scheduler* (daemon); the
//! paper assumes the **unfair** scheduler, which is only required to activate at least
//! one enabled node per step.
//!
//! This crate provides:
//!
//! * [`Register`] — register contents with exact bit-size accounting, so the
//!   space-complexity claims of the paper (`O(log n)`, `O(log² n)` bits per node) can be
//!   measured rather than asserted;
//! * [`Algorithm`] — a guarded-rule transition function over the closed 1-hop
//!   neighborhood [`View`];
//! * [`Scheduler`] — central, synchronous, round-robin, uniformly random and
//!   greedy-adversarial (unfair) daemons;
//! * [`Executor`] — runs an algorithm from an *arbitrary* initial configuration,
//!   counts **moves** and **rounds** exactly as defined in the paper, detects
//!   *silence* (no node enabled), and injects transient faults (register corruption).
//!   The enabled set is maintained **incrementally** (only the closed neighborhoods of
//!   the nodes that moved are re-evaluated, `O(Δ)` per move instead of `O(n·Δ)` per
//!   step — see DESIGN.md), with a retained full-rescan reference mode
//!   ([`ExecMode::FullRescan`]) for differential testing and benchmarking;
//! * [`SpaceReport`] / [`Quiescence`] — the measurements consumed by the experiment
//!   harness;
//! * [`par`] — a deterministic scoped worker pool ([`ThreadPool`]): the executor uses
//!   it to evaluate synchronous-daemon waves in parallel over stable node-range
//!   shards (bit-identical to the sequential path at any thread count, see
//!   `ExecutorConfig::with_threads`), and the composition engine reuses it for its
//!   heavy from-scratch phases.

pub mod algorithm;
pub mod executor;
pub mod par;
pub mod register;
pub mod scheduler;
pub mod view;

pub use algorithm::{Algorithm, ParentPointer};
pub use executor::{ExecError, ExecMode, Executor, ExecutorConfig, Quiescence, SpaceReport};
pub use par::ThreadPool;
pub use register::Register;
pub use scheduler::{Scheduler, SchedulerKind};
pub use view::{NeighborInfo, NeighborView, View};
