//! Schedulers (daemons) deciding which enabled nodes take a step.
//!
//! The paper's results hold under the **unfair** scheduler, the weakest assumption: at
//! each step the daemon activates *at least one* enabled node, with no fairness
//! obligation whatsoever. The executor supports several daemons so experiments can show
//! that convergence and the stabilized output do not depend on the scheduling
//! (experiment E9):
//!
//! * [`SchedulerKind::Central`] — activates exactly one enabled node, chosen uniformly
//!   at random (the classical central daemon);
//! * [`SchedulerKind::Synchronous`] — activates every enabled node simultaneously;
//! * [`SchedulerKind::RoundRobin`] — cycles over the nodes in a fixed order, activating
//!   the next enabled one (a fair distributed daemon);
//! * [`SchedulerKind::UniformRandom`] — activates a uniformly random non-empty subset of
//!   the enabled nodes (a random distributed daemon);
//! * [`SchedulerKind::Adversarial`] — a greedy model of the unfair daemon: it keeps
//!   re-activating the nodes it has activated most often, starving the others for as
//!   long as they stay merely enabled.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use stst_graph::NodeId;

/// The scheduling policies supported by the executor.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SchedulerKind {
    /// Activate one enabled node, chosen uniformly at random.
    Central,
    /// Activate all enabled nodes at once.
    Synchronous,
    /// Activate the next enabled node in a fixed cyclic order.
    RoundRobin,
    /// Activate a uniformly random non-empty subset of the enabled nodes.
    UniformRandom,
    /// Greedy unfair daemon: keep activating already-favoured nodes, starving the rest.
    Adversarial,
}

impl SchedulerKind {
    /// All scheduler kinds, for sweep experiments.
    pub fn all() -> [SchedulerKind; 5] {
        [
            SchedulerKind::Central,
            SchedulerKind::Synchronous,
            SchedulerKind::RoundRobin,
            SchedulerKind::UniformRandom,
            SchedulerKind::Adversarial,
        ]
    }
}

impl SchedulerKind {
    /// Stable numeric tag for snapshot serialization (see `stst_runtime::persist`).
    pub fn tag(self) -> u64 {
        match self {
            SchedulerKind::Central => 0,
            SchedulerKind::Synchronous => 1,
            SchedulerKind::RoundRobin => 2,
            SchedulerKind::UniformRandom => 3,
            SchedulerKind::Adversarial => 4,
        }
    }

    /// Inverse of [`SchedulerKind::tag`]; `None` for an unknown tag.
    pub fn from_tag(tag: u64) -> Option<SchedulerKind> {
        Some(match tag {
            0 => SchedulerKind::Central,
            1 => SchedulerKind::Synchronous,
            2 => SchedulerKind::RoundRobin,
            3 => SchedulerKind::UniformRandom,
            4 => SchedulerKind::Adversarial,
            _ => return None,
        })
    }
}

impl std::fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            SchedulerKind::Central => "central",
            SchedulerKind::Synchronous => "synchronous",
            SchedulerKind::RoundRobin => "round-robin",
            SchedulerKind::UniformRandom => "uniform-random",
            SchedulerKind::Adversarial => "adversarial",
        };
        write!(f, "{name}")
    }
}

/// The checkpointable part of a daemon, captured by [`Scheduler::export_state`] and
/// restored by [`Scheduler::from_state`]. Holds everything that influences future
/// selections: the policy, the RNG stream position, the round-robin cursor and the
/// per-node activation counts (the scratch mask is rebuilt on restore).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchedulerState {
    /// The scheduling policy.
    pub kind: SchedulerKind,
    /// Round-robin cursor.
    pub cursor: usize,
    /// Raw xoshiro256** RNG state.
    pub rng: [u64; 4],
    /// Per-node activation counts.
    pub activations: Vec<u64>,
}

/// A stateful daemon: given the set of currently enabled nodes, selects the non-empty
/// subset that takes the next step.
#[derive(Clone, Debug)]
pub struct Scheduler {
    kind: SchedulerKind,
    rng: StdRng,
    /// How many times each node has been activated (used by the adversarial daemon).
    activations: Vec<u64>,
    /// Cursor for the round-robin daemon.
    cursor: usize,
    /// Reusable membership mask (cleared after every use) so daemons that probe
    /// "is this node enabled?" do it in O(1) instead of scanning the enabled slice.
    mask: Vec<bool>,
}

impl Scheduler {
    /// Creates a scheduler of the given kind for an `n`-node network, seeded
    /// deterministically.
    pub fn new(kind: SchedulerKind, n: usize, seed: u64) -> Self {
        Scheduler {
            kind,
            rng: StdRng::seed_from_u64(seed ^ 0x00da_e000),
            activations: vec![0; n],
            cursor: 0,
            mask: vec![false; n],
        }
    }

    /// The scheduling policy of this daemon.
    pub fn kind(&self) -> SchedulerKind {
        self.kind
    }

    /// Captures the daemon's full decision state for a checkpoint.
    pub fn export_state(&self) -> SchedulerState {
        SchedulerState {
            kind: self.kind,
            cursor: self.cursor,
            rng: self.rng.state(),
            activations: self.activations.clone(),
        }
    }

    /// Rebuilds a daemon from a captured [`SchedulerState`]. The restored daemon
    /// produces the exact selection stream the original would have from the capture
    /// point on.
    pub fn from_state(state: SchedulerState) -> Self {
        let n = state.activations.len();
        Scheduler {
            kind: state.kind,
            rng: StdRng::from_state(state.rng),
            activations: state.activations,
            cursor: if n == 0 { 0 } else { state.cursor % n },
            mask: vec![false; n],
        }
    }

    /// Remaps the daemon's per-node state after node churn: `old_index[i]` is the
    /// pre-mutation index of the node now at `i` (`None` for a joiner, which starts
    /// with zero activations). The RNG stream is untouched, so executions stay
    /// deterministic across the remap.
    pub fn remap_nodes(&mut self, old_index: &[Option<NodeId>]) {
        let n = old_index.len();
        let old = std::mem::take(&mut self.activations);
        self.activations = old_index
            .iter()
            .map(|o| o.map_or(0, |o| old[o.0]))
            .collect();
        self.mask.clear();
        self.mask.resize(n, false);
        self.cursor %= n.max(1);
    }

    /// Number of times `v` has been selected so far.
    pub fn activation_count(&self, v: NodeId) -> u64 {
        self.activations[v.0]
    }

    /// Selects the nodes to activate among `enabled` (which must be non-empty).
    ///
    /// Allocating wrapper around [`Scheduler::select_into`] — step loops should reuse
    /// a scratch buffer through `select_into` instead.
    ///
    /// # Panics
    ///
    /// Panics if `enabled` is empty — the executor must detect silence before asking.
    pub fn select(&mut self, enabled: &[NodeId]) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.select_into(enabled, &mut out);
        out
    }

    /// Selects the nodes to activate among `enabled` (which must be non-empty) into
    /// `out` (cleared first). Writing into a caller-owned scratch buffer keeps the
    /// per-step cost allocation-free — under the synchronous daemon the old
    /// `Vec`-returning path cloned the whole enabled list every step.
    ///
    /// # Panics
    ///
    /// Panics if `enabled` is empty — the executor must detect silence before asking.
    pub fn select_into(&mut self, enabled: &[NodeId], out: &mut Vec<NodeId>) {
        assert!(
            !enabled.is_empty(),
            "the daemon is only consulted when some node is enabled"
        );
        out.clear();
        match self.kind {
            SchedulerKind::Central => {
                out.push(*enabled.choose(&mut self.rng).expect("non-empty"));
            }
            SchedulerKind::Synchronous => out.extend_from_slice(enabled),
            SchedulerKind::RoundRobin => {
                for &v in enabled {
                    self.mask[v.0] = true;
                }
                let n = self.activations.len();
                let mut pick = None;
                for offset in 0..n {
                    let candidate = NodeId((self.cursor + offset) % n);
                    if self.mask[candidate.0] {
                        pick = Some(candidate);
                        self.cursor = (candidate.0 + 1) % n;
                        break;
                    }
                }
                for &v in enabled {
                    self.mask[v.0] = false;
                }
                out.push(pick.expect("some enabled node exists"));
            }
            SchedulerKind::UniformRandom => {
                out.extend(enabled.iter().copied().filter(|_| self.rng.gen_bool(0.5)));
                if out.is_empty() {
                    out.push(*enabled.choose(&mut self.rng).expect("non-empty"));
                }
            }
            SchedulerKind::Adversarial => {
                // Starve the least-activated nodes: keep choosing the enabled node that
                // has already been activated the most (ties broken by identity order).
                out.push(
                    *enabled
                        .iter()
                        .max_by_key(|v| (self.activations[v.0], std::cmp::Reverse(v.0)))
                        .expect("non-empty"),
                );
            }
        }
        for &v in out.iter() {
            self.activations[v.0] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[usize]) -> Vec<NodeId> {
        v.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn central_picks_exactly_one_enabled_node() {
        let mut s = Scheduler::new(SchedulerKind::Central, 5, 1);
        for _ in 0..20 {
            let chosen = s.select(&ids(&[1, 3, 4]));
            assert_eq!(chosen.len(), 1);
            assert!(ids(&[1, 3, 4]).contains(&chosen[0]));
        }
    }

    #[test]
    fn synchronous_picks_everyone() {
        let mut s = Scheduler::new(SchedulerKind::Synchronous, 5, 1);
        assert_eq!(s.select(&ids(&[0, 2, 4])), ids(&[0, 2, 4]));
    }

    #[test]
    fn round_robin_cycles() {
        let mut s = Scheduler::new(SchedulerKind::RoundRobin, 4, 1);
        assert_eq!(s.select(&ids(&[0, 1, 2, 3])), ids(&[0]));
        assert_eq!(s.select(&ids(&[0, 1, 2, 3])), ids(&[1]));
        assert_eq!(s.select(&ids(&[0, 1, 3])), ids(&[3]));
        assert_eq!(s.select(&ids(&[0, 1, 3])), ids(&[0]));
    }

    #[test]
    fn uniform_random_never_returns_empty() {
        let mut s = Scheduler::new(SchedulerKind::UniformRandom, 6, 9);
        for _ in 0..50 {
            assert!(!s.select(&ids(&[2, 5])).is_empty());
        }
    }

    #[test]
    fn adversarial_starves_nodes() {
        let mut s = Scheduler::new(SchedulerKind::Adversarial, 3, 1);
        // Node 2 gets picked first (ties broken toward the smallest index via Reverse),
        // wait: ties are broken toward the *largest* activation count, then smallest
        // index. After the first pick the favoured node keeps winning.
        let first = s.select(&ids(&[0, 1, 2]))[0];
        for _ in 0..10 {
            assert_eq!(s.select(&ids(&[0, 1, 2]))[0], first);
        }
        // Other nodes are starved for as long as the favourite stays enabled.
        assert_eq!(s.activation_count(first), 11);
    }

    #[test]
    #[should_panic(expected = "enabled")]
    fn asking_with_no_enabled_node_is_a_bug() {
        let mut s = Scheduler::new(SchedulerKind::Central, 3, 1);
        let _ = s.select(&[]);
    }

    #[test]
    fn select_into_reuses_the_buffer_and_matches_select() {
        let mut a = Scheduler::new(SchedulerKind::UniformRandom, 8, 4);
        let mut b = Scheduler::new(SchedulerKind::UniformRandom, 8, 4);
        let enabled = ids(&[0, 2, 3, 5, 7]);
        let mut buf = Vec::new();
        for _ in 0..30 {
            a.select_into(&enabled, &mut buf);
            assert_eq!(buf, b.select(&enabled), "same seed, same RNG stream");
        }
    }

    #[test]
    fn all_lists_every_kind() {
        assert_eq!(SchedulerKind::all().len(), 5);
        assert_eq!(format!("{}", SchedulerKind::Adversarial), "adversarial");
    }
}
