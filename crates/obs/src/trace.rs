//! Typed wave-level trace events, a bounded ring buffer, and a JSONL codec.
//!
//! Events are emitted at *wave* granularity (never per guard evaluation), so
//! tracing a run costs a handful of ring pushes per wave. The ring is
//! bounded: on overflow the oldest events are dropped, the newest kept, and
//! a `dropped_events` counter records the loss so a truncated export is
//! never mistaken for a complete one.
//!
//! The JSONL codec is round-trip exact: `emit -> parse -> re-emit` produces
//! byte-identical lines. Integer fields are `u64`; the only floating-point
//! field (`ms`) round-trips because Rust's `f64` `Display` prints the
//! shortest decimal that parses back to the same bits.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;

use crate::metrics::Counter;

/// Which layer of the stack emitted an event. Wave indices are allocated
/// per layer, so each layer's trace reads as one monotone wave sequence
/// even when several components (e.g. two executors) share a buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    Executor,
    Engine,
    Churn,
    Soak,
}

/// All trace layers, in wave-allocation order.
pub const LAYERS: [Layer; 4] = [Layer::Executor, Layer::Engine, Layer::Churn, Layer::Soak];

impl Layer {
    pub fn as_str(self) -> &'static str {
        match self {
            Layer::Executor => "executor",
            Layer::Engine => "engine",
            Layer::Churn => "churn",
            Layer::Soak => "soak",
        }
    }

    pub fn parse(s: &str) -> Option<Layer> {
        match s {
            "executor" => Some(Layer::Executor),
            "engine" => Some(Layer::Engine),
            "churn" => Some(Layer::Churn),
            "soak" => Some(Layer::Soak),
            _ => None,
        }
    }

    pub(crate) fn index(self) -> usize {
        match self {
            Layer::Executor => 0,
            Layer::Engine => 1,
            Layer::Churn => 2,
            Layer::Soak => 3,
        }
    }
}

/// Label family touched by a repair wave.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Family {
    /// Spanning-tree structure itself (parent pointers).
    Tree,
    /// Fragment (MST) labels.
    Fragments,
    /// Nearest-common-ancestor labels.
    Nca,
    /// Redundant (checkable) labels.
    Redundant,
}

impl Family {
    pub fn as_str(self) -> &'static str {
        match self {
            Family::Tree => "tree",
            Family::Fragments => "fragments",
            Family::Nca => "nca",
            Family::Redundant => "redundant",
        }
    }

    pub fn parse(s: &str) -> Option<Family> {
        match s {
            "tree" => Some(Family::Tree),
            "fragments" => Some(Family::Fragments),
            "nca" => Some(Family::Nca),
            "redundant" => Some(Family::Redundant),
            _ => None,
        }
    }
}

/// A typed trace event. Every variant carries its emitting layer and the
/// per-layer wave index it belongs to.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A wave (executor round / engine phase step / churn batch / soak
    /// iteration) opened.
    WaveStart { layer: Layer, wave: u64 },
    /// The wave closed after `rounds` algorithm rounds.
    WaveEnd {
        layer: Layer,
        wave: u64,
        rounds: u64,
    },
    /// Guard-evaluation tier counts accumulated during the wave
    /// (decode-free screens vs full decodes; `evals = screen_hits +
    /// full_decodes` in packed mode).
    GuardBatch {
        layer: Layer,
        wave: u64,
        evals: u64,
        screen_hits: u64,
        full_decodes: u64,
    },
    /// A label family was repaired: `dirty_nodes` touched, `labels_written`
    /// registers rewritten.
    Repair {
        layer: Layer,
        wave: u64,
        family: Family,
        dirty_nodes: u64,
        labels_written: u64,
    },
    /// The layer reached silence after `rounds` total rounds.
    SilenceReached {
        layer: Layer,
        wave: u64,
        rounds: u64,
    },
    /// Adversarial state corruption was injected into `nodes` registers.
    CorruptionInjected { layer: Layer, wave: u64, nodes: u64 },
    /// A topology mutation batch was applied: `dirty_nodes` in the dirty
    /// region, `reanchored` subtrees re-hung.
    TopologyDelta {
        layer: Layer,
        wave: u64,
        dirty_nodes: u64,
        reanchored: u64,
    },
    /// A snapshot was serialized (`bytes`) in `ms` milliseconds.
    Checkpoint {
        layer: Layer,
        wave: u64,
        bytes: u64,
        ms: f64,
    },
    /// A snapshot was deserialized and rebuilt (`bytes`) in `ms`
    /// milliseconds.
    Restore {
        layer: Layer,
        wave: u64,
        bytes: u64,
        ms: f64,
    },
}

impl TraceEvent {
    pub fn layer(&self) -> Layer {
        match *self {
            TraceEvent::WaveStart { layer, .. }
            | TraceEvent::WaveEnd { layer, .. }
            | TraceEvent::GuardBatch { layer, .. }
            | TraceEvent::Repair { layer, .. }
            | TraceEvent::SilenceReached { layer, .. }
            | TraceEvent::CorruptionInjected { layer, .. }
            | TraceEvent::TopologyDelta { layer, .. }
            | TraceEvent::Checkpoint { layer, .. }
            | TraceEvent::Restore { layer, .. } => layer,
        }
    }

    pub fn wave(&self) -> u64 {
        match *self {
            TraceEvent::WaveStart { wave, .. }
            | TraceEvent::WaveEnd { wave, .. }
            | TraceEvent::GuardBatch { wave, .. }
            | TraceEvent::Repair { wave, .. }
            | TraceEvent::SilenceReached { wave, .. }
            | TraceEvent::CorruptionInjected { wave, .. }
            | TraceEvent::TopologyDelta { wave, .. }
            | TraceEvent::Checkpoint { wave, .. }
            | TraceEvent::Restore { wave, .. } => wave,
        }
    }

    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::WaveStart { .. } => "wave_start",
            TraceEvent::WaveEnd { .. } => "wave_end",
            TraceEvent::GuardBatch { .. } => "guard_batch",
            TraceEvent::Repair { .. } => "repair",
            TraceEvent::SilenceReached { .. } => "silence_reached",
            TraceEvent::CorruptionInjected { .. } => "corruption_injected",
            TraceEvent::TopologyDelta { .. } => "topology_delta",
            TraceEvent::Checkpoint { .. } => "checkpoint",
            TraceEvent::Restore { .. } => "restore",
        }
    }

    /// Serializes the event as one JSONL line (no trailing newline). Field
    /// order is fixed — `seq`, `type`, `layer`, `wave`, then the variant's
    /// payload — so re-emitting a parsed event is byte-identical.
    pub fn jsonl(&self, seq: u64) -> String {
        let head = format!(
            "{{\"seq\":{seq},\"type\":\"{}\",\"layer\":\"{}\",\"wave\":{}",
            self.kind(),
            self.layer().as_str(),
            self.wave()
        );
        match *self {
            TraceEvent::WaveStart { .. } => format!("{head}}}"),
            TraceEvent::WaveEnd { rounds, .. } => format!("{head},\"rounds\":{rounds}}}"),
            TraceEvent::GuardBatch { evals, screen_hits, full_decodes, .. } => format!(
                "{head},\"evals\":{evals},\"screen_hits\":{screen_hits},\"full_decodes\":{full_decodes}}}"
            ),
            TraceEvent::Repair { family, dirty_nodes, labels_written, .. } => format!(
                "{head},\"family\":\"{}\",\"dirty_nodes\":{dirty_nodes},\"labels_written\":{labels_written}}}",
                family.as_str()
            ),
            TraceEvent::SilenceReached { rounds, .. } => format!("{head},\"rounds\":{rounds}}}"),
            TraceEvent::CorruptionInjected { nodes, .. } => format!("{head},\"nodes\":{nodes}}}"),
            TraceEvent::TopologyDelta { dirty_nodes, reanchored, .. } => {
                format!("{head},\"dirty_nodes\":{dirty_nodes},\"reanchored\":{reanchored}}}")
            }
            TraceEvent::Checkpoint { bytes, ms, .. } => {
                format!("{head},\"bytes\":{bytes},\"ms\":{ms}}}")
            }
            TraceEvent::Restore { bytes, ms, .. } => {
                format!("{head},\"bytes\":{bytes},\"ms\":{ms}}}")
            }
        }
    }

    /// Parses one JSONL line produced by [`TraceEvent::jsonl`]. Returns the
    /// sequence number and the event.
    pub fn parse_jsonl(line: &str) -> Result<(u64, TraceEvent), TraceParseError> {
        let fields = parse_flat_object(line)?;
        let get = |key: &str| -> Result<&JsonValue, TraceParseError> {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or(TraceParseError::MissingField(key_name(key)))
        };
        let get_u64 = |key: &str| -> Result<u64, TraceParseError> {
            match get(key)? {
                JsonValue::Number(text) => {
                    text.parse::<u64>().map_err(|_| TraceParseError::BadNumber)
                }
                JsonValue::String(_) => Err(TraceParseError::WrongType(key_name(key))),
            }
        };
        let get_f64 = |key: &str| -> Result<f64, TraceParseError> {
            match get(key)? {
                JsonValue::Number(text) => {
                    text.parse::<f64>().map_err(|_| TraceParseError::BadNumber)
                }
                JsonValue::String(_) => Err(TraceParseError::WrongType(key_name(key))),
            }
        };
        let get_str = |key: &str| -> Result<&str, TraceParseError> {
            match get(key)? {
                JsonValue::String(text) => Ok(text.as_str()),
                JsonValue::Number(_) => Err(TraceParseError::WrongType(key_name(key))),
            }
        };

        let seq = get_u64("seq")?;
        let layer = Layer::parse(get_str("layer")?).ok_or(TraceParseError::UnknownLayer)?;
        let wave = get_u64("wave")?;
        let event = match get_str("type")? {
            "wave_start" => TraceEvent::WaveStart { layer, wave },
            "wave_end" => TraceEvent::WaveEnd {
                layer,
                wave,
                rounds: get_u64("rounds")?,
            },
            "guard_batch" => TraceEvent::GuardBatch {
                layer,
                wave,
                evals: get_u64("evals")?,
                screen_hits: get_u64("screen_hits")?,
                full_decodes: get_u64("full_decodes")?,
            },
            "repair" => TraceEvent::Repair {
                layer,
                wave,
                family: Family::parse(get_str("family")?).ok_or(TraceParseError::UnknownFamily)?,
                dirty_nodes: get_u64("dirty_nodes")?,
                labels_written: get_u64("labels_written")?,
            },
            "silence_reached" => TraceEvent::SilenceReached {
                layer,
                wave,
                rounds: get_u64("rounds")?,
            },
            "corruption_injected" => TraceEvent::CorruptionInjected {
                layer,
                wave,
                nodes: get_u64("nodes")?,
            },
            "topology_delta" => TraceEvent::TopologyDelta {
                layer,
                wave,
                dirty_nodes: get_u64("dirty_nodes")?,
                reanchored: get_u64("reanchored")?,
            },
            "checkpoint" => TraceEvent::Checkpoint {
                layer,
                wave,
                bytes: get_u64("bytes")?,
                ms: get_f64("ms")?,
            },
            "restore" => TraceEvent::Restore {
                layer,
                wave,
                bytes: get_u64("bytes")?,
                ms: get_f64("ms")?,
            },
            _ => return Err(TraceParseError::UnknownType),
        };
        Ok((seq, event))
    }
}

/// Why a JSONL line failed to parse.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceParseError {
    NotAnObject,
    BadSyntax,
    BadNumber,
    MissingField(&'static str),
    WrongType(&'static str),
    UnknownType,
    UnknownLayer,
    UnknownFamily,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceParseError::NotAnObject => write!(f, "line is not a JSON object"),
            TraceParseError::BadSyntax => write!(f, "malformed JSON"),
            TraceParseError::BadNumber => write!(f, "unparseable numeric field"),
            TraceParseError::MissingField(name) => write!(f, "missing field {name:?}"),
            TraceParseError::WrongType(name) => write!(f, "field {name:?} has the wrong type"),
            TraceParseError::UnknownType => write!(f, "unknown event type"),
            TraceParseError::UnknownLayer => write!(f, "unknown layer"),
            TraceParseError::UnknownFamily => write!(f, "unknown family"),
        }
    }
}

impl std::error::Error for TraceParseError {}

/// Maps a dynamic key back to the static name used in error messages. The
/// codec only ever looks up keys from this fixed set.
fn key_name(key: &str) -> &'static str {
    const KEYS: [&str; 13] = [
        "seq",
        "type",
        "layer",
        "wave",
        "rounds",
        "evals",
        "screen_hits",
        "full_decodes",
        "family",
        "dirty_nodes",
        "labels_written",
        "nodes",
        "bytes",
    ];
    KEYS.iter().find(|&&k| k == key).copied().unwrap_or("ms")
}

enum JsonValue {
    Number(String),
    String(String),
}

/// Minimal parser for the flat JSON objects the codec emits: string and
/// number values only, no nesting, no escapes beyond what `jsonl` writes
/// (which is none — all strings are static identifiers).
fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonValue)>, TraceParseError> {
    let line = line.trim();
    let inner = line
        .strip_prefix('{')
        .and_then(|rest| rest.strip_suffix('}'))
        .ok_or(TraceParseError::NotAnObject)?;
    let mut fields = Vec::new();
    let mut chars = inner.char_indices().peekable();
    loop {
        // Key: a quoted string.
        match chars.next() {
            None => break,
            Some((_, '"')) => {}
            Some(_) => return Err(TraceParseError::BadSyntax),
        }
        let mut key = String::new();
        loop {
            match chars.next() {
                Some((_, '"')) => break,
                Some((_, c)) => key.push(c),
                None => return Err(TraceParseError::BadSyntax),
            }
        }
        match chars.next() {
            Some((_, ':')) => {}
            _ => return Err(TraceParseError::BadSyntax),
        }
        // Value: a quoted string or a bare number token.
        let value = match chars.peek() {
            Some((_, '"')) => {
                chars.next();
                let mut text = String::new();
                loop {
                    match chars.next() {
                        Some((_, '"')) => break,
                        Some((_, '\\')) => return Err(TraceParseError::BadSyntax),
                        Some((_, c)) => text.push(c),
                        None => return Err(TraceParseError::BadSyntax),
                    }
                }
                JsonValue::String(text)
            }
            Some(_) => {
                let mut text = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if c == ',' {
                        break;
                    }
                    text.push(c);
                    chars.next();
                }
                if text.is_empty() {
                    return Err(TraceParseError::BadSyntax);
                }
                JsonValue::Number(text)
            }
            None => return Err(TraceParseError::BadSyntax),
        };
        fields.push((key, value));
        match chars.next() {
            Some((_, ',')) => {}
            None => break,
            Some(_) => return Err(TraceParseError::BadSyntax),
        }
    }
    Ok(fields)
}

struct Ring {
    events: VecDeque<(u64, TraceEvent)>,
    next_seq: u64,
    dropped: u64,
}

/// Bounded, thread-safe trace buffer. Each pushed event receives a monotone
/// sequence number; on overflow the *oldest* events are evicted and the
/// `dropped_events` counter (shared with the owning registry) records how
/// many were lost.
#[derive(Debug)]
pub struct TraceBuffer {
    ring: Mutex<Ring>,
    capacity: usize,
    dropped_counter: Counter,
}

impl fmt::Debug for Ring {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ring")
            .field("len", &self.events.len())
            .field("next_seq", &self.next_seq)
            .field("dropped", &self.dropped)
            .finish()
    }
}

impl TraceBuffer {
    /// A buffer holding at most `capacity` events (capacity 0 is clamped to
    /// 1 so the newest event is always retained).
    pub fn new(capacity: usize, dropped_counter: Counter) -> Self {
        let capacity = capacity.max(1);
        TraceBuffer {
            ring: Mutex::new(Ring {
                events: VecDeque::with_capacity(capacity.min(1024)),
                next_seq: 0,
                dropped: 0,
            }),
            capacity,
            dropped_counter,
        }
    }

    pub fn push(&self, event: TraceEvent) {
        let mut ring = self.ring.lock().unwrap();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
            self.dropped_counter.inc();
        }
        ring.events.push_back((seq, event));
    }

    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events evicted by overflow since creation.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().unwrap().dropped
    }

    /// Copies out the retained events, oldest first, with their sequence
    /// numbers.
    pub fn snapshot(&self) -> Vec<(u64, TraceEvent)> {
        self.ring.lock().unwrap().events.iter().cloned().collect()
    }

    /// Serializes the retained events as JSONL, one event per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (seq, event) in self.snapshot() {
            out.push_str(&event.jsonl(seq));
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL trace (ignoring blank lines) back into sequenced
    /// events.
    pub fn parse_jsonl(text: &str) -> Result<Vec<(u64, TraceEvent)>, TraceParseError> {
        text.lines()
            .filter(|line| !line.trim().is_empty())
            .map(TraceEvent::parse_jsonl)
            .collect()
    }
}

/// Validates wave ordering of a sequenced event stream: sequence numbers
/// strictly increase, each layer's wave indices never decrease, waves do
/// not nest within a layer, and every `WaveEnd` matches the open
/// `WaveStart`. A `WaveEnd` without a matching start is tolerated only at
/// the head of a layer's stream when `truncated` is true (ring overflow may
/// have evicted the start).
pub fn check_wave_order(events: &[(u64, TraceEvent)], truncated: bool) -> Result<(), String> {
    let mut last_seq: Option<u64> = None;
    // Per layer: (max wave seen, currently open wave, seen any event yet).
    let mut state: [(u64, Option<u64>, bool); 4] = [(0, None, false); 4];
    for (seq, event) in events {
        if let Some(prev) = last_seq {
            if *seq <= prev {
                return Err(format!("seq {seq} not strictly increasing after {prev}"));
            }
        }
        last_seq = Some(*seq);
        let idx = event.layer().index();
        let (last_wave, open, seen) = &mut state[idx];
        let wave = event.wave();
        match event {
            TraceEvent::WaveStart { .. } => {
                if open.is_some() {
                    return Err(format!(
                        "seq {seq}: wave {wave} starts while wave {} is open on {}",
                        open.unwrap(),
                        event.layer().as_str()
                    ));
                }
                if *seen && wave < *last_wave {
                    return Err(format!(
                        "seq {seq}: wave {wave} regresses below {last_wave} on {}",
                        event.layer().as_str()
                    ));
                }
                *open = Some(wave);
            }
            TraceEvent::WaveEnd { .. } => match open {
                Some(open_wave) if *open_wave == wave => *open = None,
                Some(open_wave) => {
                    return Err(format!(
                        "seq {seq}: wave_end {wave} does not match open wave {open_wave} on {}",
                        event.layer().as_str()
                    ));
                }
                None if truncated && !*seen => {}
                None => {
                    return Err(format!(
                        "seq {seq}: wave_end {wave} without wave_start on {}",
                        event.layer().as_str()
                    ));
                }
            },
            _ => {
                if *seen && wave < *last_wave {
                    return Err(format!(
                        "seq {seq}: {} at wave {wave} regresses below {last_wave} on {}",
                        event.kind(),
                        event.layer().as_str()
                    ));
                }
            }
        }
        *last_wave = (*last_wave).max(wave);
        *seen = true;
    }
    for (idx, (_, open, _)) in state.iter().enumerate() {
        if let Some(wave) = open {
            return Err(format!("wave {wave} left open on {}", LAYERS[idx].as_str()));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::WaveStart {
                layer: Layer::Executor,
                wave: 0,
            },
            TraceEvent::GuardBatch {
                layer: Layer::Executor,
                wave: 0,
                evals: 12,
                screen_hits: 9,
                full_decodes: 3,
            },
            TraceEvent::WaveEnd {
                layer: Layer::Executor,
                wave: 0,
                rounds: 1,
            },
            TraceEvent::CorruptionInjected {
                layer: Layer::Executor,
                wave: 1,
                nodes: 4,
            },
            TraceEvent::Repair {
                layer: Layer::Engine,
                wave: 0,
                family: Family::Nca,
                dirty_nodes: 7,
                labels_written: 21,
            },
            TraceEvent::TopologyDelta {
                layer: Layer::Churn,
                wave: 0,
                dirty_nodes: 3,
                reanchored: 1,
            },
            TraceEvent::Checkpoint {
                layer: Layer::Soak,
                wave: 0,
                bytes: 4096,
                ms: 1.25,
            },
            TraceEvent::Restore {
                layer: Layer::Soak,
                wave: 0,
                bytes: 4096,
                ms: 0.75,
            },
            TraceEvent::SilenceReached {
                layer: Layer::Executor,
                wave: 2,
                rounds: 5,
            },
        ]
    }

    #[test]
    fn jsonl_round_trip_is_byte_identical() {
        for (i, event) in sample_events().into_iter().enumerate() {
            let line = event.jsonl(i as u64);
            let (seq, parsed) = TraceEvent::parse_jsonl(&line).unwrap();
            assert_eq!(seq, i as u64);
            assert_eq!(parsed, event);
            assert_eq!(parsed.jsonl(seq), line, "re-emit must be byte-identical");
        }
    }

    #[test]
    fn fractional_ms_round_trips() {
        for ms in [0.0, 0.1, 1.5, 0.0001, 123.456789, 7e-7] {
            let event = TraceEvent::Checkpoint {
                layer: Layer::Soak,
                wave: 3,
                bytes: 1,
                ms,
            };
            let line = event.jsonl(0);
            let (_, parsed) = TraceEvent::parse_jsonl(&line).unwrap();
            assert_eq!(parsed.jsonl(0), line);
        }
    }

    #[test]
    fn buffer_round_trips_and_orders() {
        let buffer = TraceBuffer::new(64, Counter::noop());
        for event in sample_events() {
            buffer.push(event);
        }
        let text = buffer.to_jsonl();
        let parsed = TraceBuffer::parse_jsonl(&text).unwrap();
        assert_eq!(parsed, buffer.snapshot());
        let mut re_emitted = String::new();
        for (seq, event) in &parsed {
            re_emitted.push_str(&event.jsonl(*seq));
            re_emitted.push('\n');
        }
        assert_eq!(re_emitted, text);
    }

    #[test]
    fn overflow_keeps_newest_and_counts_drops() {
        let dropped = Counter::noop();
        let buffer = TraceBuffer::new(4, dropped.clone());
        for wave in 0..10 {
            buffer.push(TraceEvent::WaveStart {
                layer: Layer::Executor,
                wave,
            });
        }
        assert_eq!(buffer.len(), 4);
        assert_eq!(buffer.dropped(), 6);
        let seqs: Vec<u64> = buffer.snapshot().iter().map(|(seq, _)| *seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "newest events are retained");
        let waves: Vec<u64> = buffer.snapshot().iter().map(|(_, e)| e.wave()).collect();
        assert_eq!(waves, vec![6, 7, 8, 9]);
    }

    #[test]
    fn wave_order_checker_accepts_valid_and_rejects_invalid() {
        let buffer = TraceBuffer::new(64, Counter::noop());
        buffer.push(TraceEvent::WaveStart {
            layer: Layer::Executor,
            wave: 0,
        });
        buffer.push(TraceEvent::WaveStart {
            layer: Layer::Engine,
            wave: 0,
        });
        buffer.push(TraceEvent::WaveEnd {
            layer: Layer::Engine,
            wave: 0,
            rounds: 2,
        });
        buffer.push(TraceEvent::WaveEnd {
            layer: Layer::Executor,
            wave: 0,
            rounds: 1,
        });
        buffer.push(TraceEvent::WaveStart {
            layer: Layer::Executor,
            wave: 1,
        });
        buffer.push(TraceEvent::WaveEnd {
            layer: Layer::Executor,
            wave: 1,
            rounds: 1,
        });
        assert_eq!(check_wave_order(&buffer.snapshot(), false), Ok(()));

        let bad = vec![
            (
                0,
                TraceEvent::WaveStart {
                    layer: Layer::Executor,
                    wave: 1,
                },
            ),
            (
                1,
                TraceEvent::WaveEnd {
                    layer: Layer::Executor,
                    wave: 1,
                    rounds: 1,
                },
            ),
            (
                2,
                TraceEvent::WaveStart {
                    layer: Layer::Executor,
                    wave: 0,
                },
            ),
        ];
        assert!(
            check_wave_order(&bad, false).is_err(),
            "wave regression must fail"
        );

        let unmatched = vec![(
            0,
            TraceEvent::WaveEnd {
                layer: Layer::Executor,
                wave: 3,
                rounds: 1,
            },
        )];
        assert!(check_wave_order(&unmatched, false).is_err());
        assert_eq!(
            check_wave_order(&unmatched, true),
            Ok(()),
            "tolerated after truncation"
        );
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(TraceEvent::parse_jsonl("not json").is_err());
        assert!(TraceEvent::parse_jsonl("{\"seq\":0}").is_err());
        assert!(TraceEvent::parse_jsonl(
            "{\"seq\":0,\"type\":\"wave_start\",\"layer\":\"nowhere\",\"wave\":0}"
        )
        .is_err());
    }
}
