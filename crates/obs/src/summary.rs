//! Shared wave-series summarizer.
//!
//! The soak harness (and any future long-haul driver) measures a per-wave
//! time series — repair wall time, recovery rounds, RSS, checkpoint cost —
//! and reports aggregate percentiles. The aggregation used to be
//! copy-pasted per harness; this module is the single implementation.

/// One wave's worth of measurements, the common denominator of every
/// soak-style time series.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WavePoint {
    /// Wall-clock milliseconds spent repairing this wave.
    pub repair_ms: f64,
    /// Rounds from injection to renewed silence (0 = the wave was silent).
    pub recovery_rounds: u64,
    /// Resident set size after the wave, in bytes (0 where unavailable).
    pub rss_bytes: u64,
    /// Checkpoint serialization wall time (0 when no checkpoint was taken).
    pub checkpoint_ms: f64,
    /// Snapshot size in bytes (0 when no checkpoint was taken).
    pub checkpoint_bytes: usize,
}

/// Aggregates of a wave series, matching the soak-report fields they feed.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WaveSeriesSummary {
    /// Peak resident set size observed.
    pub peak_rss_bytes: u64,
    /// Median per-wave repair wall time.
    pub p50_repair_ms: f64,
    /// 99th-percentile per-wave repair wall time.
    pub p99_repair_ms: f64,
    /// Worst per-wave repair wall time.
    pub max_repair_ms: f64,
    /// Fraction of waves that needed no recovery (1.0 for an empty series).
    pub silence_ratio: f64,
    /// Mean checkpoint serialization time across waves that checkpointed.
    pub mean_checkpoint_ms: f64,
    /// Largest snapshot produced.
    pub max_checkpoint_bytes: usize,
}

/// Nearest-rank percentile over an ascending-sorted slice (`q` in `[0, 1]`).
/// Returns 0.0 for an empty slice.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Collapses a wave series into its report aggregates. Checkpoint means are
/// taken only over waves that actually produced a snapshot
/// (`checkpoint_bytes > 0`); an empty series counts as fully silent.
pub fn summarize_waves(points: &[WavePoint]) -> WaveSeriesSummary {
    let mut repair_sorted: Vec<f64> = points.iter().map(|p| p.repair_ms).collect();
    repair_sorted.sort_by(|a, b| a.partial_cmp(b).expect("repair times are finite"));
    let checkpoint_times: Vec<f64> = points
        .iter()
        .filter(|p| p.checkpoint_bytes > 0)
        .map(|p| p.checkpoint_ms)
        .collect();
    let silent_waves = points.iter().filter(|p| p.recovery_rounds == 0).count();
    WaveSeriesSummary {
        peak_rss_bytes: points.iter().map(|p| p.rss_bytes).max().unwrap_or(0),
        p50_repair_ms: percentile(&repair_sorted, 0.50),
        p99_repair_ms: percentile(&repair_sorted, 0.99),
        max_repair_ms: repair_sorted.last().copied().unwrap_or(0.0),
        silence_ratio: if points.is_empty() {
            1.0
        } else {
            silent_waves as f64 / points.len() as f64
        },
        mean_checkpoint_ms: if checkpoint_times.is_empty() {
            0.0
        } else {
            checkpoint_times.iter().sum::<f64>() / checkpoint_times.len() as f64
        },
        max_checkpoint_bytes: points.iter().map(|p| p.checkpoint_bytes).max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series_is_fully_silent_with_zero_aggregates() {
        let summary = summarize_waves(&[]);
        assert_eq!(summary.silence_ratio, 1.0);
        assert_eq!(summary.peak_rss_bytes, 0);
        assert_eq!(summary.p50_repair_ms, 0.0);
        assert_eq!(summary.max_repair_ms, 0.0);
        assert_eq!(summary.mean_checkpoint_ms, 0.0);
        assert_eq!(summary.max_checkpoint_bytes, 0);
    }

    #[test]
    fn aggregates_match_hand_computation() {
        let points = vec![
            WavePoint {
                repair_ms: 4.0,
                recovery_rounds: 3,
                rss_bytes: 1000,
                checkpoint_ms: 2.0,
                checkpoint_bytes: 64,
            },
            WavePoint {
                repair_ms: 1.0,
                recovery_rounds: 0,
                rss_bytes: 3000,
                checkpoint_ms: 0.0,
                checkpoint_bytes: 0,
            },
            WavePoint {
                repair_ms: 9.0,
                recovery_rounds: 7,
                rss_bytes: 2000,
                checkpoint_ms: 6.0,
                checkpoint_bytes: 128,
            },
            WavePoint {
                repair_ms: 2.0,
                recovery_rounds: 0,
                rss_bytes: 2500,
                checkpoint_ms: 0.0,
                checkpoint_bytes: 0,
            },
        ];
        let summary = summarize_waves(&points);
        assert_eq!(summary.peak_rss_bytes, 3000);
        // Sorted repair times: [1, 2, 4, 9]; nearest-rank p50 over 4 points
        // rounds rank 1.5 to index 2.
        assert_eq!(summary.p50_repair_ms, 4.0);
        assert_eq!(summary.p99_repair_ms, 9.0);
        assert_eq!(summary.max_repair_ms, 9.0);
        assert_eq!(summary.silence_ratio, 0.5);
        // Only the two checkpointing waves contribute to the mean.
        assert_eq!(summary.mean_checkpoint_ms, 4.0);
        assert_eq!(summary.max_checkpoint_bytes, 128);
    }

    #[test]
    fn percentile_is_nearest_rank_and_clamped() {
        let sorted = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 0.5), 2.0);
        assert_eq!(percentile(&sorted, 1.0), 3.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }
}
