//! Metrics registry: named counters, gauges, and log2-bucketed histograms.
//!
//! Handles (`Counter`, `Gauge`, `Histogram`) are cheap clones of an
//! `Arc<AtomicU64>` (or the histogram equivalent); recording a value is a
//! single relaxed atomic op and never takes the registry lock. A handle
//! obtained from a no-op constructor records nothing, so instrumented code
//! can hold handles unconditionally and pay only a null-check when
//! observability is disabled.
//!
//! Exposition is deterministic: metric names are kept in a `BTreeMap`, so
//! both the Prometheus text format and the JSON dump list metrics in sorted
//! name order regardless of registration order.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `i >= 1`
/// holds values in `[2^(i-1), 2^i)`. 64 power-of-two buckets plus the zero
/// bucket cover the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Monotone counter handle. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A handle that records nothing (disabled observability).
    pub fn noop() -> Self {
        Counter(None)
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// Last-value gauge handle. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// A handle that records nothing (disabled observability).
    pub fn noop() -> Self {
        Gauge(None)
    }

    pub fn set(&self, value: u64) {
        if let Some(cell) = &self.0 {
            cell.store(value, Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `value` if it is larger than the current reading
    /// (peak tracking, e.g. high-water RSS).
    pub fn set_max(&self, value: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_max(value, Ordering::Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCells {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCells {
    fn new() -> Self {
        HistogramCells {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Log2-bucketed histogram handle. Cloning shares the underlying cells.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistogramCells>>);

impl Histogram {
    /// A handle that records nothing (disabled observability).
    pub fn noop() -> Self {
        Histogram(None)
    }

    /// Bucket index for `value`: 0 for 0, otherwise `bit_length(value)` so
    /// that bucket `i` holds `[2^(i-1), 2^i)`.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive lower bound of bucket `index` (0 for the zero bucket).
    pub fn bucket_lower_bound(index: usize) -> u64 {
        assert!(index < HISTOGRAM_BUCKETS);
        if index == 0 {
            0
        } else {
            1u64 << (index - 1)
        }
    }

    /// Inclusive upper bound of bucket `index` (`2^index - 1`).
    pub fn bucket_upper_bound(index: usize) -> u64 {
        assert!(index < HISTOGRAM_BUCKETS);
        if index == 0 {
            0
        } else if index == 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    pub fn observe(&self, value: u64) {
        if let Some(cells) = &self.0 {
            cells.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
            cells.count.fetch_add(1, Ordering::Relaxed);
            cells.sum.fetch_add(value, Ordering::Relaxed);
        }
    }

    /// Folds a locally accumulated histogram into the shared cells: per-bucket
    /// counts laid out by [`Histogram::bucket_index`], plus the exact sum of the raw
    /// samples. This is the wave-boundary flush path — hot loops (e.g. the serving
    /// layer's query readers) accumulate into a plain local array and merge once per
    /// wave instead of paying three atomic ops per sample.
    pub fn merge(&self, bucket_counts: &[u64; HISTOGRAM_BUCKETS], sum: u64) {
        if let Some(cells) = &self.0 {
            let mut total = 0u64;
            for (bucket, &c) in cells.buckets.iter().zip(bucket_counts.iter()) {
                if c > 0 {
                    bucket.fetch_add(c, Ordering::Relaxed);
                    total += c;
                }
            }
            cells.count.fetch_add(total, Ordering::Relaxed);
            cells.sum.fetch_add(sum, Ordering::Relaxed);
        }
    }

    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    pub fn sum(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.sum.load(Ordering::Relaxed))
    }

    /// Raw (non-cumulative) count of bucket `index`.
    pub fn bucket_count(&self, index: usize) -> u64 {
        assert!(index < HISTOGRAM_BUCKETS);
        self.0
            .as_ref()
            .map_or(0, |c| c.buckets[index].load(Ordering::Relaxed))
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramCells>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// Named-metric registry. `counter`/`gauge`/`histogram` get-or-register a
/// metric and hand back a lock-free handle; re-requesting a name returns a
/// handle to the same cells, so independent components (e.g. the engine's
/// inner executor and a standalone executor) sharing a registry accumulate
/// into one metric.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers (or re-opens) a counter. Panics if `name` is already
    /// registered as a different metric kind — that is a programming error,
    /// not a runtime condition.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.metrics.lock().unwrap();
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0))));
        match metric {
            Metric::Counter(cell) => Counter(Some(Arc::clone(cell))),
            other => panic!("metric {name:?} already registered as {}", other.kind()),
        }
    }

    /// Registers (or re-opens) a gauge. Panics on kind mismatch.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.metrics.lock().unwrap();
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(AtomicU64::new(0))));
        match metric {
            Metric::Gauge(cell) => Gauge(Some(Arc::clone(cell))),
            other => panic!("metric {name:?} already registered as {}", other.kind()),
        }
    }

    /// Registers (or re-opens) a histogram. Panics on kind mismatch.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut metrics = self.metrics.lock().unwrap();
        let metric = metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(HistogramCells::new())));
        match metric {
            Metric::Histogram(cells) => Histogram(Some(Arc::clone(cells))),
            other => panic!("metric {name:?} already registered as {}", other.kind()),
        }
    }

    /// Current value of a registered counter, if any.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.metrics.lock().unwrap().get(name) {
            Some(Metric::Counter(cell)) => Some(cell.load(Ordering::Relaxed)),
            _ => None,
        }
    }

    /// Current value of a registered gauge, if any.
    pub fn gauge_value(&self, name: &str) -> Option<u64> {
        match self.metrics.lock().unwrap().get(name) {
            Some(Metric::Gauge(cell)) => Some(cell.load(Ordering::Relaxed)),
            _ => None,
        }
    }

    /// Sorted names of all registered metrics.
    pub fn names(&self) -> Vec<String> {
        self.metrics.lock().unwrap().keys().cloned().collect()
    }

    /// Prometheus text exposition. Histogram buckets are cumulative with
    /// `le` set to the inclusive upper bound of each non-empty prefix of the
    /// log2 bucket ladder, ending with `+Inf`.
    pub fn prometheus_text(&self) -> String {
        let metrics = self.metrics.lock().unwrap();
        let mut out = String::new();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(cell) => {
                    out.push_str(&format!("# TYPE {name} counter\n"));
                    out.push_str(&format!("{name} {}\n", cell.load(Ordering::Relaxed)));
                }
                Metric::Gauge(cell) => {
                    out.push_str(&format!("# TYPE {name} gauge\n"));
                    out.push_str(&format!("{name} {}\n", cell.load(Ordering::Relaxed)));
                }
                Metric::Histogram(cells) => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let counts: Vec<u64> = cells
                        .buckets
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .collect();
                    let highest = counts.iter().rposition(|&c| c > 0);
                    let mut cumulative = 0u64;
                    if let Some(highest) = highest {
                        for (index, &count) in counts.iter().enumerate().take(highest + 1) {
                            cumulative += count;
                            let le = Histogram::bucket_upper_bound(index);
                            out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
                        }
                    }
                    let count = cells.count.load(Ordering::Relaxed);
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {count}\n"));
                    out.push_str(&format!(
                        "{name}_sum {}\n",
                        cells.sum.load(Ordering::Relaxed)
                    ));
                    out.push_str(&format!("{name}_count {count}\n"));
                }
            }
        }
        out
    }

    /// JSON dump of every metric, names sorted. Histograms list only their
    /// non-empty buckets as `[lower_bound, count]` pairs.
    pub fn json(&self) -> String {
        let metrics = self.metrics.lock().unwrap();
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(cell) => {
                    counters.push(format!("\"{name}\":{}", cell.load(Ordering::Relaxed)));
                }
                Metric::Gauge(cell) => {
                    gauges.push(format!("\"{name}\":{}", cell.load(Ordering::Relaxed)));
                }
                Metric::Histogram(cells) => {
                    let buckets: Vec<String> = cells
                        .buckets
                        .iter()
                        .enumerate()
                        .filter_map(|(index, bucket)| {
                            let count = bucket.load(Ordering::Relaxed);
                            (count > 0).then(|| {
                                format!("[{},{count}]", Histogram::bucket_lower_bound(index))
                            })
                        })
                        .collect();
                    histograms.push(format!(
                        "\"{name}\":{{\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
                        cells.count.load(Ordering::Relaxed),
                        cells.sum.load(Ordering::Relaxed),
                        buckets.join(",")
                    ));
                }
            }
        }
        format!(
            "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
            counters.join(","),
            gauges.join(","),
            histograms.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share_cells() {
        let registry = Registry::new();
        let a = registry.counter("hits");
        let b = registry.counter("hits");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(registry.counter_value("hits"), Some(5));
    }

    #[test]
    fn noop_handles_record_nothing() {
        let c = Counter::noop();
        c.add(10);
        assert_eq!(c.get(), 0);
        let g = Gauge::noop();
        g.set(7);
        assert_eq!(g.get(), 0);
        let h = Histogram::noop();
        h.observe(3);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn gauge_set_max_tracks_peak() {
        let registry = Registry::new();
        let g = registry.gauge("rss");
        g.set_max(10);
        g.set_max(3);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn histogram_bucket_boundaries_are_pinned_at_powers_of_two() {
        // Bucket 0 holds exactly the value 0.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_lower_bound(0), 0);
        assert_eq!(Histogram::bucket_upper_bound(0), 0);
        // Bucket i holds [2^(i-1), 2^i - 1] — checked at every boundary.
        for i in 1..HISTOGRAM_BUCKETS {
            let lower = Histogram::bucket_lower_bound(i);
            let upper = Histogram::bucket_upper_bound(i);
            assert_eq!(lower, 1u64 << (i - 1));
            if i < 64 {
                assert_eq!(upper, (1u64 << i) - 1);
            } else {
                assert_eq!(upper, u64::MAX);
            }
            assert_eq!(Histogram::bucket_index(lower), i);
            assert_eq!(Histogram::bucket_index(upper), i);
            if i > 1 {
                assert_eq!(Histogram::bucket_index(lower - 1), i - 1);
            }
        }
        // Spot values: powers of two open a new bucket, power-of-two minus
        // one stays in the previous one.
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(1023), 10);
    }

    #[test]
    fn histogram_records_count_sum_and_buckets() {
        let registry = Registry::new();
        let h = registry.histogram("lat");
        for v in [0, 1, 2, 3, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1006);
        assert_eq!(h.bucket_count(0), 1); // 0
        assert_eq!(h.bucket_count(1), 1); // 1
        assert_eq!(h.bucket_count(2), 2); // 2, 3
        assert_eq!(h.bucket_count(10), 1); // 1000 in [512, 1023]
    }

    #[test]
    fn merge_folds_a_local_histogram_in_one_pass() {
        let registry = Registry::new();
        let h = registry.histogram("lat");
        h.observe(9);
        let mut local = [0u64; HISTOGRAM_BUCKETS];
        let mut sum = 0u64;
        for v in [0u64, 1, 2, 3, 1000] {
            local[Histogram::bucket_index(v)] += 1;
            sum += v;
        }
        h.merge(&local, sum);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1015);
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(2), 2);
        assert_eq!(h.bucket_count(10), 1);
        Histogram::noop().merge(&local, sum); // records nothing, must not panic
    }

    #[test]
    fn exposition_is_sorted_and_parseable() {
        let registry = Registry::new();
        registry.counter("b_counter").add(2);
        registry.gauge("a_gauge").set(9);
        registry.histogram("c_hist").observe(5);
        let text = registry.prometheus_text();
        let a = text.find("a_gauge").unwrap();
        let b = text.find("b_counter").unwrap();
        let c = text.find("c_hist").unwrap();
        assert!(a < b && b < c, "exposition must be name-sorted:\n{text}");
        assert!(text.contains("# TYPE b_counter counter"));
        assert!(text.contains("c_hist_bucket{le=\"7\"} 1"));
        assert!(text.contains("c_hist_bucket{le=\"+Inf\"} 1"));
        let json = registry.json();
        assert!(json.contains("\"b_counter\":2"));
        assert!(json.contains("\"a_gauge\":9"));
        assert!(json.contains("\"c_hist\":{\"count\":1,\"sum\":5,\"buckets\":[[4,1]]}"));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        registry.counter("x");
        registry.gauge("x");
    }
}
