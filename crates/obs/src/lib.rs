//! `stst-obs`: zero-dependency observability for the stabilization stack.
//!
//! Three facilities behind one cheap handle ([`Obs`]):
//!
//! * a **metrics registry** — named counters, gauges, and log2-bucketed
//!   histograms with Prometheus-style text exposition and a JSON dump
//!   ([`metrics`]);
//! * **typed trace events** at wave granularity, captured into a bounded
//!   ring buffer with byte-exact JSONL export ([`trace`]);
//! * **profiling hooks** — wall-time [`Span`]s and a process RSS sampler
//!   ([`rss_bytes`]), plus the shared wave-series summarizer the soak
//!   harness aggregates with ([`summary`]).
//!
//! # Determinism transparency
//!
//! Instrumentation must never change what a run computes. The contract,
//! pinned by the repo-level oracles (`tests/parallel_determinism.rs`,
//! `tests/packed_store_oracle.rs`): a run with an enabled `Obs` attached is
//! bit-identical to the same run with observability disabled. The crate is
//! designed so that holding the contract is easy:
//!
//! * `Obs` is a nullable handle. Disabled, every operation is a single
//!   `Option` check — no clocks, no allocation, no locks, no RNG.
//! * Nothing in this crate draws randomness or feeds anything back into the
//!   instrumented computation; emitters only *read* state they already
//!   maintain (counter deltas, wave indices, snapshot sizes).
//! * Events are emitted at wave boundaries on the coordinating thread,
//!   never from inside parallel guard evaluation, so thread scheduling
//!   cannot reorder a trace.
//! * Wall-clock readings (`ms` fields, spans, RSS) are observational
//!   outputs only; no control flow in the instrumented crates branches on
//!   them.

pub mod metrics;
pub mod span;
pub mod summary;
pub mod trace;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

pub use metrics::{Counter, Gauge, Histogram, Registry, HISTOGRAM_BUCKETS};
pub use span::Span;
pub use summary::{percentile, summarize_waves, WavePoint, WaveSeriesSummary};
pub use trace::{
    check_wave_order, Family, Layer, TraceBuffer, TraceEvent, TraceParseError, LAYERS,
};

/// Default trace ring capacity: ample for any CI scenario while bounding a
/// runaway soak to a few MiB of retained events.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Shared state behind an enabled [`Obs`] handle.
#[derive(Debug)]
pub struct ObsCore {
    registry: Registry,
    trace: TraceBuffer,
    /// Per-layer wave allocators (see [`Obs::begin_wave`]).
    waves: [AtomicU64; 4],
}

/// The observability handle threaded through executors, engines, drivers,
/// and harnesses. `Obs::disabled()` (also `Default`) is a null handle whose
/// every operation reduces to one branch; `Obs::enabled()` carries a shared
/// registry + trace ring. Cloning shares the core, so attaching one enabled
/// handle across layers produces a single unified trace and metric set.
#[derive(Clone, Debug, Default)]
pub struct Obs(Option<Arc<ObsCore>>);

impl Obs {
    /// The null handle: records nothing, costs one branch per call site.
    pub fn disabled() -> Self {
        Obs(None)
    }

    /// An enabled handle with the default trace capacity.
    pub fn enabled() -> Self {
        Self::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// An enabled handle whose trace ring holds at most `capacity` events.
    /// The ring's `dropped_events` counter is pre-registered so a truncated
    /// trace is always detectable from the registry.
    pub fn with_trace_capacity(capacity: usize) -> Self {
        let registry = Registry::new();
        let dropped = registry.counter("trace_dropped_events");
        Obs(Some(Arc::new(ObsCore {
            trace: TraceBuffer::new(capacity, dropped),
            registry,
            waves: [
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
                AtomicU64::new(0),
            ],
        })))
    }

    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The metric registry, when enabled.
    pub fn registry(&self) -> Option<&Registry> {
        self.0.as_deref().map(|core| &core.registry)
    }

    /// The trace ring, when enabled.
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.0.as_deref().map(|core| &core.trace)
    }

    /// Pushes a trace event (no-op when disabled).
    pub fn emit(&self, event: TraceEvent) {
        if let Some(core) = &self.0 {
            core.trace.push(event);
        }
    }

    /// Allocates the next wave index for `layer`. Wave indices are global
    /// per layer within one `Obs` core, so several components emitting into
    /// the same layer (e.g. the engine's inner executor after a standalone
    /// executor) still produce one monotone wave sequence. Returns 0 when
    /// disabled.
    pub fn begin_wave(&self, layer: Layer) -> u64 {
        match &self.0 {
            Some(core) => core.waves[layer.index()].fetch_add(1, Ordering::Relaxed),
            None => 0,
        }
    }

    /// The index the next `begin_wave(layer)` would return — used to stamp
    /// events that occur between waves. Returns 0 when disabled.
    pub fn peek_wave(&self, layer: Layer) -> u64 {
        match &self.0 {
            Some(core) => core.waves[layer.index()].load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// A counter handle for `name` (no-op handle when disabled).
    pub fn counter(&self, name: &str) -> Counter {
        match &self.0 {
            Some(core) => core.registry.counter(name),
            None => Counter::noop(),
        }
    }

    /// A gauge handle for `name` (no-op handle when disabled).
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.0 {
            Some(core) => core.registry.gauge(name),
            None => Gauge::noop(),
        }
    }

    /// A histogram handle for `name` (no-op handle when disabled).
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.0 {
            Some(core) => core.registry.histogram(name),
            None => Histogram::noop(),
        }
    }

    /// Starts a wall-time span recording into the histogram
    /// `span_<name>_us`. Disabled handles return a span that never reads
    /// the clock.
    pub fn span(&self, name: &str) -> Span {
        match &self.0 {
            Some(core) => Span::start(core.registry.histogram(&format!("span_{name}_us"))),
            None => Span::disabled(),
        }
    }

    /// Samples the process RSS, publishes it to the `process_rss_bytes`
    /// gauge and the `process_peak_rss_bytes` high-water gauge, and returns
    /// the reading. When disabled, samples nothing and returns 0.
    pub fn sample_rss(&self) -> u64 {
        match &self.0 {
            Some(core) => {
                let rss = rss_bytes();
                core.registry.gauge("process_rss_bytes").set(rss);
                core.registry.gauge("process_peak_rss_bytes").set_max(rss);
                rss
            }
            None => 0,
        }
    }
}

/// Resident set size of the current process in bytes, from
/// `/proc/self/status` (`VmRSS`). Returns 0 on platforms without procfs —
/// callers still run, the RSS column is just absent.
pub fn rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmRSS:") {
                    let kb = rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse::<u64>()
                        .unwrap_or(0);
                    return kb * 1024;
                }
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = Obs::disabled();
        assert!(!obs.is_enabled());
        assert!(obs.registry().is_none());
        assert!(obs.trace().is_none());
        obs.emit(TraceEvent::WaveStart {
            layer: Layer::Executor,
            wave: 0,
        });
        assert_eq!(obs.begin_wave(Layer::Executor), 0);
        assert_eq!(obs.begin_wave(Layer::Executor), 0);
        obs.counter("c").inc();
        obs.gauge("g").set(1);
        obs.histogram("h").observe(1);
        assert_eq!(obs.span("s").finish(), 0.0);
        assert_eq!(obs.sample_rss(), 0);
    }

    #[test]
    fn enabled_handle_shares_core_across_clones() {
        let obs = Obs::enabled();
        let clone = obs.clone();
        clone.counter("hits").add(3);
        obs.counter("hits").add(2);
        assert_eq!(obs.registry().unwrap().counter_value("hits"), Some(5));
        clone.emit(TraceEvent::WaveStart {
            layer: Layer::Engine,
            wave: 0,
        });
        assert_eq!(obs.trace().unwrap().len(), 1);
    }

    #[test]
    fn wave_allocation_is_monotone_per_layer() {
        let obs = Obs::enabled();
        assert_eq!(obs.begin_wave(Layer::Executor), 0);
        assert_eq!(obs.begin_wave(Layer::Executor), 1);
        assert_eq!(obs.peek_wave(Layer::Executor), 2);
        // Layers allocate independently.
        assert_eq!(obs.begin_wave(Layer::Engine), 0);
        assert_eq!(obs.peek_wave(Layer::Soak), 0);
    }

    #[test]
    fn span_lands_in_named_histogram() {
        let obs = Obs::enabled();
        obs.span("unit").finish();
        let names = obs.registry().unwrap().names();
        assert!(names.contains(&"span_unit_us".to_string()), "{names:?}");
    }

    #[test]
    fn sample_rss_publishes_gauges_on_linux() {
        let obs = Obs::enabled();
        let rss = obs.sample_rss();
        let registry = obs.registry().unwrap();
        assert_eq!(registry.gauge_value("process_rss_bytes"), Some(rss));
        assert_eq!(registry.gauge_value("process_peak_rss_bytes"), Some(rss));
        #[cfg(target_os = "linux")]
        assert!(rss > 0, "VmRSS should be readable on Linux");
    }
}
