//! Wall-time profiling spans.
//!
//! A [`Span`] measures the wall-clock time between its creation and its
//! `finish()` (or drop) and records the elapsed microseconds into a
//! log2-bucketed histogram. Spans obtained from a disabled `Obs` handle
//! never call `Instant::now()`, so profiling has strictly zero timing cost
//! when observability is off.

use std::time::Instant;

use crate::metrics::Histogram;

/// An in-flight wall-time measurement. Dropping the span records it; call
/// [`Span::finish`] to also get the elapsed milliseconds back.
#[derive(Debug)]
pub struct Span {
    state: Option<(Instant, Histogram)>,
}

impl Span {
    /// A span that measures nothing (disabled observability).
    pub fn disabled() -> Self {
        Span { state: None }
    }

    /// Starts timing now; the elapsed microseconds land in `histogram`.
    pub fn start(histogram: Histogram) -> Self {
        Span {
            state: Some((Instant::now(), histogram)),
        }
    }

    /// Stops the span, records it, and returns the elapsed wall time in
    /// milliseconds (0.0 for a disabled span).
    pub fn finish(mut self) -> f64 {
        self.record()
    }

    fn record(&mut self) -> f64 {
        match self.state.take() {
            Some((started, histogram)) => {
                let elapsed = started.elapsed();
                histogram.observe(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
                elapsed.as_secs_f64() * 1e3
            }
            None => 0.0,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn finished_span_records_exactly_once() {
        let registry = Registry::new();
        let h = registry.histogram("span_us");
        let span = Span::start(h.clone());
        let ms = span.finish();
        assert!(ms >= 0.0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn dropped_span_records() {
        let registry = Registry::new();
        let h = registry.histogram("span_us");
        {
            let _span = Span::start(h.clone());
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn disabled_span_records_nothing() {
        let span = Span::disabled();
        assert_eq!(span.finish(), 0.0);
    }
}
